// Execution engine + JIT manager for the ANTAREX VM.
//
// The engine owns, per function name, a *versioned* entry: the generic
// bytecode plus any number of runtime-specialized variants guarded by the
// value of one argument. This is the mechanism behind the paper's Figure 4
// (`PrepareSpecialize` / `Specialize` / `AddVersion`): the DSL engine calls
// into this API when weaving dynamic aspects.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cir/ast.hpp"
#include "vm/bytecode.hpp"
#include "vm/value.hpp"

namespace antarex::vm {

using HostFunction = std::function<Value(std::span<const Value>)>;

/// Observer invoked at dispatch time for every call to a *bytecode* function,
/// before version selection. Dynamic aspects (paper Figure 4) hang off this:
/// the DSL runtime inspects the runtime argument values and may install new
/// specialized versions before the call proceeds.
using CallHook = std::function<void(const std::string& name,
                                    const std::vector<Value>& args)>;

/// Dispatch statistics per function (exposed to monitors and benches).
struct DispatchStats {
  u64 calls = 0;            ///< total calls through this entry
  u64 specialized_hits = 0; ///< calls served by a specialized variant
};

class Engine {
 public:
  Engine();

  // --- program loading ------------------------------------------------------

  /// Compile and register every function of a module (replaces same-named
  /// entries, dropping their specializations).
  void load_module(const cir::Module& m);

  /// Register a single compiled function (generic version).
  void load_function(CompiledFunction f);

  /// Register a native host function (math builtins are pre-registered;
  /// instrumentation probes like `profile_args` are added by the DSL runtime).
  void register_host(const std::string& name, HostFunction fn);
  bool has_host(const std::string& name) const;

  // --- JIT manager: function multiversioning --------------------------------

  /// Declare that `func` may be specialized on parameter `param_index`.
  /// Subsequent calls consult the variant table before the generic version.
  void prepare_specialize(const std::string& func, int param_index);

  /// Register a specialized variant valid when argument `prepare_specialize`d
  /// parameter equals `guard_value`.
  void add_version(const std::string& func, i64 guard_value, CompiledFunction variant);

  /// Number of installed variants for a function (0 if none / unknown).
  std::size_t version_count(const std::string& func) const;
  int specialize_param(const std::string& func) const;  ///< -1 if not prepared
  DispatchStats dispatch_stats(const std::string& func) const;

  // --- execution ------------------------------------------------------------

  /// Call a function (bytecode or host) by name.
  Value call(const std::string& func, std::vector<Value> args);

  /// Instructions executed since construction / last reset. This is the
  /// engine's deterministic "cycle" counter: the performance metric used by
  /// iterative compilation and the autotuner when wall time would be noisy.
  u64 executed_instructions() const { return executed_; }
  void reset_instruction_count() {
    executed_ = 0;
    per_function_.clear();
  }

  /// Guard against runaway programs (default: 2^40 instructions).
  void set_instruction_limit(u64 limit) { instruction_limit_ = limit; }

  /// Instructions attributed to one function's own body (callees excluded —
  /// a flat, not cumulative, profile). The monitoring layer uses this for
  /// hot-function detection without source instrumentation.
  u64 function_instructions(const std::string& name) const;

  bool has_function(const std::string& name) const;
  const CompiledFunction* generic_version(const std::string& name) const;

  /// Install (or clear, with nullptr) the dynamic-weaving call hook.
  void set_call_hook(CallHook hook) { call_hook_ = std::move(hook); }

 private:
  struct Entry {
    CompiledFunction generic;
    int specialize_param = -1;
    std::vector<std::pair<i64, CompiledFunction>> variants;
    DispatchStats stats;
  };

  Value execute(const CompiledFunction& f, std::vector<Value>& args);
  Value dispatch(const std::string& name, std::vector<Value>& args);

  std::unordered_map<std::string, Entry> functions_;
  std::unordered_map<std::string, HostFunction> host_;
  std::unordered_map<std::string, u64> per_function_;
  CallHook call_hook_;
  bool in_hook_ = false;
  u64 executed_ = 0;
  u64 instruction_limit_ = u64{1} << 40;
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 256;
};

}  // namespace antarex::vm
