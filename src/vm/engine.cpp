#include "vm/engine.hpp"

#include <cmath>

#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/compiler.hpp"

namespace antarex::vm {

namespace {

Value numeric_binop(Op op, const Value& a, const Value& b) {
  // Int op Int stays integral (C semantics); any float operand promotes.
  if (a.is_int() && b.is_int()) {
    const i64 x = a.as_int();
    const i64 y = b.as_int();
    switch (op) {
      case Op::Add: return Value::from_int(x + y);
      case Op::Sub: return Value::from_int(x - y);
      case Op::Mul: return Value::from_int(x * y);
      case Op::Div:
        if (y == 0) throw Error("vm: integer division by zero");
        return Value::from_int(x / y);
      case Op::Mod:
        if (y == 0) throw Error("vm: integer modulo by zero");
        return Value::from_int(x % y);
      case Op::Lt: return Value::from_int(x < y);
      case Op::Le: return Value::from_int(x <= y);
      case Op::Gt: return Value::from_int(x > y);
      case Op::Ge: return Value::from_int(x >= y);
      case Op::Eq: return Value::from_int(x == y);
      case Op::Ne: return Value::from_int(x != y);
      default: break;
    }
  } else {
    const double x = a.as_float();
    const double y = b.as_float();
    switch (op) {
      case Op::Add: return Value::from_float(x + y);
      case Op::Sub: return Value::from_float(x - y);
      case Op::Mul: return Value::from_float(x * y);
      case Op::Div: return Value::from_float(x / y);
      case Op::Mod: return Value::from_float(std::fmod(x, y));
      case Op::Lt: return Value::from_int(x < y);
      case Op::Le: return Value::from_int(x <= y);
      case Op::Gt: return Value::from_int(x > y);
      case Op::Ge: return Value::from_int(x >= y);
      case Op::Eq: return Value::from_int(x == y);
      case Op::Ne: return Value::from_int(x != y);
      default: break;
    }
  }
  ANTAREX_CHECK(false, "numeric_binop: unreachable op");
  return {};
}

}  // namespace

Engine::Engine() {
  // Math builtins, matching cir::is_builtin_callee.
  auto unary_math = [this](const std::string& name, double (*fn)(double)) {
    register_host(name, [fn, name](std::span<const Value> args) {
      ANTAREX_REQUIRE(args.size() == 1, "host " + name + ": expected 1 argument");
      return Value::from_float(fn(args[0].as_float()));
    });
  };
  unary_math("sqrt", std::sqrt);
  unary_math("fabs", std::fabs);
  unary_math("exp", std::exp);
  unary_math("log", std::log);
  unary_math("sin", std::sin);
  unary_math("cos", std::cos);
  unary_math("floor", std::floor);
  register_host("pow", [](std::span<const Value> args) {
    ANTAREX_REQUIRE(args.size() == 2, "host pow: expected 2 arguments");
    return Value::from_float(std::pow(args[0].as_float(), args[1].as_float()));
  });
  register_host("min", [](std::span<const Value> args) {
    ANTAREX_REQUIRE(args.size() == 2, "host min: expected 2 arguments");
    if (args[0].is_int() && args[1].is_int())
      return Value::from_int(std::min(args[0].as_int(), args[1].as_int()));
    return Value::from_float(std::min(args[0].as_float(), args[1].as_float()));
  });
  register_host("max", [](std::span<const Value> args) {
    ANTAREX_REQUIRE(args.size() == 2, "host max: expected 2 arguments");
    if (args[0].is_int() && args[1].is_int())
      return Value::from_int(std::max(args[0].as_int(), args[1].as_int()));
    return Value::from_float(std::max(args[0].as_float(), args[1].as_float()));
  });
  register_host("print_int", [](std::span<const Value> args) {
    ANTAREX_REQUIRE(args.size() == 1, "host print_int: expected 1 argument");
    std::printf("%lld\n", static_cast<long long>(args[0].as_int()));
    return Value::from_int(0);
  });
  register_host("print_float", [](std::span<const Value> args) {
    ANTAREX_REQUIRE(args.size() == 1, "host print_float: expected 1 argument");
    std::printf("%g\n", args[0].as_float());
    return Value::from_int(0);
  });
  // Instrumentation probes default to no-ops so woven code runs on any
  // engine; dsl::ProfileStore::install and friends override them with real
  // collectors.
  for (const char* probe :
       {"profile_args", "monitor_begin", "monitor_end", "antarex_probe"}) {
    register_host(probe,
                  [](std::span<const Value>) { return Value::from_int(0); });
  }
}

void Engine::load_module(const cir::Module& m) {
  for (const auto& f : m.functions) load_function(compile_function(*f));
}

void Engine::load_function(CompiledFunction f) {
  Entry e;
  e.generic = std::move(f);
  functions_[e.generic.name] = std::move(e);
}

void Engine::register_host(const std::string& name, HostFunction fn) {
  host_[name] = std::move(fn);
}

bool Engine::has_host(const std::string& name) const { return host_.contains(name); }

void Engine::prepare_specialize(const std::string& func, int param_index) {
  auto it = functions_.find(func);
  ANTAREX_REQUIRE(it != functions_.end(),
                  "prepare_specialize: unknown function '" + func + "'");
  ANTAREX_REQUIRE(param_index >= 0 &&
                      param_index < static_cast<int>(it->second.generic.num_params),
                  "prepare_specialize: parameter index out of range");
  it->second.specialize_param = param_index;
  it->second.variants.clear();
}

void Engine::add_version(const std::string& func, i64 guard_value,
                         CompiledFunction variant) {
  auto it = functions_.find(func);
  ANTAREX_REQUIRE(it != functions_.end(), "add_version: unknown function '" + func + "'");
  ANTAREX_REQUIRE(it->second.specialize_param >= 0,
                  "add_version: call prepare_specialize first for '" + func + "'");
  // Replace an existing variant with the same guard.
  for (auto& [guard, fn] : it->second.variants) {
    if (guard == guard_value) {
      fn = std::move(variant);
      return;
    }
  }
  it->second.variants.emplace_back(guard_value, std::move(variant));
}

std::size_t Engine::version_count(const std::string& func) const {
  auto it = functions_.find(func);
  return it == functions_.end() ? 0 : it->second.variants.size();
}

int Engine::specialize_param(const std::string& func) const {
  auto it = functions_.find(func);
  return it == functions_.end() ? -1 : it->second.specialize_param;
}

DispatchStats Engine::dispatch_stats(const std::string& func) const {
  auto it = functions_.find(func);
  return it == functions_.end() ? DispatchStats{} : it->second.stats;
}

bool Engine::has_function(const std::string& name) const {
  return functions_.contains(name);
}

const CompiledFunction* Engine::generic_version(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second.generic;
}

Value Engine::call(const std::string& func, std::vector<Value> args) {
  // One span per external entry; internal recursion stays span-free so hot
  // bytecode loops do not flood the trace buffer.
  TELEMETRY_SPAN("vm.call");
  return dispatch(func, args);
}

Value Engine::dispatch(const std::string& name, std::vector<Value>& args) {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    auto hit = host_.find(name);
    if (hit == host_.end())
      throw Error("vm: call to unknown function '" + name + "'");
    TELEMETRY_COUNT("vm.host_calls", 1);
    return hit->second(std::span<const Value>(args.data(), args.size()));
  }
  TELEMETRY_COUNT("vm.calls", 1);
  if (call_hook_ && !in_hook_) {
    // Guard against re-entrancy: actions triggered by the hook (e.g. probe
    // evaluation) must not re-trigger dynamic weaving.
    in_hook_ = true;
    try {
      call_hook_(name, args);
    } catch (...) {
      in_hook_ = false;
      throw;
    }
    in_hook_ = false;
    // The hook may have replaced the entry table (e.g. installed versions);
    // re-find to be safe against rehashing.
    it = functions_.find(name);
    ANTAREX_CHECK(it != functions_.end(), "vm: function vanished during call hook");
  }
  Entry& e = it->second;
  ++e.stats.calls;
  const CompiledFunction* target = &e.generic;
  if (e.specialize_param >= 0 &&
      static_cast<std::size_t>(e.specialize_param) < args.size() &&
      args[static_cast<std::size_t>(e.specialize_param)].is_int()) {
    const i64 v = args[static_cast<std::size_t>(e.specialize_param)].as_int();
    for (const auto& [guard, variant] : e.variants) {
      if (guard == v) {
        target = &variant;
        ++e.stats.specialized_hits;
        TELEMETRY_COUNT("vm.specialized_hits", 1);
        // Specialized variants produced by passes::specialize_function have
        // the guarded parameter bound and removed from the signature.
        if (variant.num_params + 1 == args.size())
          args.erase(args.begin() + e.specialize_param);
        break;
      }
    }
  }
  return execute(*target, args);
}

Value Engine::execute(const CompiledFunction& f, std::vector<Value>& args) {
  ANTAREX_REQUIRE(args.size() == f.num_params,
                  format("vm: '%s' called with %zu args, expected %u",
                         f.name.c_str(), args.size(), f.num_params));
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw Error("vm: call depth limit exceeded (possible infinite recursion)");
  }

  std::vector<Value> slots(f.num_slots);
  for (std::size_t i = 0; i < args.size(); ++i) slots[i] = std::move(args[i]);
  std::vector<Value> stack;
  stack.reserve(16);

  auto pop = [&stack]() {
    ANTAREX_CHECK(!stack.empty(), "vm: operand stack underflow");
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  Value result = Value::from_int(0);
  std::size_t pc = 0;
  const std::size_t n = f.code.size();
  u64 own_instructions = 0;  // flat count, attributed on exit
  try {
    while (pc < n) {
      ++own_instructions;
      if (++executed_ > instruction_limit_)
        throw Error("vm: instruction limit exceeded in '" + f.name + "'");
      const Instr& in = f.code[pc];
      ++pc;
      switch (in.op) {
        case Op::PushInt: stack.push_back(Value::from_int(in.imm_i)); break;
        case Op::PushFloat: stack.push_back(Value::from_float(in.imm_f)); break;
        case Op::PushStr:
          stack.push_back(Value::from_str(f.strings[static_cast<std::size_t>(in.a)]));
          break;
        case Op::Load: stack.push_back(slots[static_cast<std::size_t>(in.a)]); break;
        case Op::Store: slots[static_cast<std::size_t>(in.a)] = pop(); break;
        case Op::LoadIndex: {
          const Value idx = pop();
          const Value arr = pop();
          const i64 i = idx.as_int();
          if (arr.kind() == Value::Kind::IntArr) {
            auto& v = arr.int_array();
            ANTAREX_REQUIRE(i >= 0 && static_cast<std::size_t>(i) < v.size(),
                            "vm: int array index out of bounds");
            stack.push_back(Value::from_int(v[static_cast<std::size_t>(i)]));
          } else if (arr.kind() == Value::Kind::FloatArr) {
            auto& v = arr.float_array();
            ANTAREX_REQUIRE(i >= 0 && static_cast<std::size_t>(i) < v.size(),
                            "vm: float array index out of bounds");
            stack.push_back(Value::from_float(v[static_cast<std::size_t>(i)]));
          } else {
            throw Error("vm: subscript applied to non-array value");
          }
          break;
        }
        case Op::StoreIndex: {
          const Value val = pop();
          const Value idx = pop();
          const Value arr = pop();
          const i64 i = idx.as_int();
          if (arr.kind() == Value::Kind::IntArr) {
            auto& v = arr.int_array();
            ANTAREX_REQUIRE(i >= 0 && static_cast<std::size_t>(i) < v.size(),
                            "vm: int array index out of bounds");
            v[static_cast<std::size_t>(i)] = val.as_int();
          } else if (arr.kind() == Value::Kind::FloatArr) {
            auto& v = arr.float_array();
            ANTAREX_REQUIRE(i >= 0 && static_cast<std::size_t>(i) < v.size(),
                            "vm: float array index out of bounds");
            v[static_cast<std::size_t>(i)] = val.as_float();
          } else {
            throw Error("vm: subscript applied to non-array value");
          }
          break;
        }
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Div:
        case Op::Mod:
        case Op::Lt:
        case Op::Le:
        case Op::Gt:
        case Op::Ge:
        case Op::Eq:
        case Op::Ne: {
          const Value b = pop();
          const Value a = pop();
          stack.push_back(numeric_binop(in.op, a, b));
          break;
        }
        case Op::Neg: {
          const Value a = pop();
          stack.push_back(a.is_int() ? Value::from_int(-a.as_int())
                                     : Value::from_float(-a.as_float()));
          break;
        }
        case Op::Not:
          stack.push_back(Value::from_int(pop().truthy() ? 0 : 1));
          break;
        case Op::Jump:
          pc = static_cast<std::size_t>(in.a);
          break;
        case Op::JumpIfFalse:
          if (!pop().truthy()) pc = static_cast<std::size_t>(in.a);
          break;
        case Op::JumpIfTrue:
          if (pop().truthy()) pc = static_cast<std::size_t>(in.a);
          break;
        case Op::Dup:
          ANTAREX_CHECK(!stack.empty(), "vm: dup on empty stack");
          stack.push_back(stack.back());
          break;
        case Op::Pop:
          pop();
          break;
        case Op::Call: {
          const std::size_t argc = static_cast<std::size_t>(in.b);
          ANTAREX_CHECK(stack.size() >= argc, "vm: not enough call arguments on stack");
          std::vector<Value> call_args(argc);
          for (std::size_t i = argc; i > 0; --i) call_args[i - 1] = pop();
          stack.push_back(dispatch(f.names[static_cast<std::size_t>(in.a)], call_args));
          break;
        }
        case Op::Ret:
          result = pop();
          pc = n;
          break;
        case Op::RetVoid:
          result = Value::from_int(0);
          pc = n;
          break;
      }
    }
  } catch (...) {
    per_function_[f.name] += own_instructions;
    --call_depth_;
    throw;
  }
  per_function_[f.name] += own_instructions;
  --call_depth_;
  TELEMETRY_COUNT("vm.instructions", own_instructions);
  return result;
}

u64 Engine::function_instructions(const std::string& name) const {
  auto it = per_function_.find(name);
  return it == per_function_.end() ? 0 : it->second;
}

}  // namespace antarex::vm
