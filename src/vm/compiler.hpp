// Bytecode compiler: mini-C AST -> VM bytecode (the offline half of split
// compilation).
#pragma once

#include "cir/ast.hpp"
#include "vm/bytecode.hpp"

namespace antarex::vm {

/// Compiles one function. Throws antarex::Error on constructs the VM cannot
/// express (should not happen for parser-produced ASTs that pass
/// cir::check_module).
CompiledFunction compile_function(const cir::Function& f);

}  // namespace antarex::vm
