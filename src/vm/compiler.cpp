#include "vm/compiler.hpp"

#include <unordered_map>

#include "support/strings.hpp"

namespace antarex::vm {

namespace {

using namespace cir;

class FnCompiler {
 public:
  explicit FnCompiler(const Function& f) : fn_(f) {}

  CompiledFunction run() {
    out_.name = fn_.name;
    out_.num_params = static_cast<u32>(fn_.params.size());
    push_scope();
    for (const auto& p : fn_.params) declare(p.name);
    compile_block_inner(*fn_.body);
    pop_scope();
    // Implicit return for functions that fall off the end (void or not; the
    // checker rejects non-void fallthrough, but be safe at runtime).
    emit(Op::RetVoid);
    out_.num_slots = static_cast<u32>(max_slots_);
    return std::move(out_);
  }

 private:
  // --- slot management ------------------------------------------------------
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() {
    next_slot_ -= scopes_.back().size();
    scopes_.pop_back();
  }
  i32 declare(const std::string& name) {
    const i32 slot = static_cast<i32>(next_slot_++);
    scopes_.back()[name] = slot;
    if (next_slot_ > max_slots_) max_slots_ = next_slot_;
    return slot;
  }
  i32 lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    throw Error("bytecode compiler: undeclared variable '" + name + "' in " + fn_.name);
  }

  // --- emission -------------------------------------------------------------
  std::size_t emit(Op op, i32 a = 0, i32 b = 0) {
    out_.code.push_back(Instr{op, a, b, 0, 0.0});
    return out_.code.size() - 1;
  }
  void emit_int(i64 v) {
    Instr in{Op::PushInt, 0, 0, v, 0.0};
    out_.code.push_back(in);
  }
  void emit_float(double v) {
    Instr in{Op::PushFloat, 0, 0, 0, v};
    out_.code.push_back(in);
  }
  i32 intern_string(const std::string& s) {
    for (std::size_t i = 0; i < out_.strings.size(); ++i)
      if (out_.strings[i] == s) return static_cast<i32>(i);
    out_.strings.push_back(s);
    return static_cast<i32>(out_.strings.size() - 1);
  }
  i32 intern_name(const std::string& s) {
    for (std::size_t i = 0; i < out_.names.size(); ++i)
      if (out_.names[i] == s) return static_cast<i32>(i);
    out_.names.push_back(s);
    return static_cast<i32>(out_.names.size() - 1);
  }
  void patch(std::size_t at, i32 target) {
    out_.code[at].a = target;
  }
  i32 here() const { return static_cast<i32>(out_.code.size()); }

  // --- expressions ----------------------------------------------------------
  void compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        emit_int(static_cast<const IntLit&>(e).value);
        break;
      case ExprKind::FloatLit:
        emit_float(static_cast<const FloatLit&>(e).value);
        break;
      case ExprKind::StrLit:
        emit(Op::PushStr, intern_string(static_cast<const StrLit&>(e).value));
        break;
      case ExprKind::VarRef:
        emit(Op::Load, lookup(static_cast<const VarRef&>(e).name));
        break;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        compile_expr(*u.operand);
        emit(u.op == UnOp::Neg ? Op::Neg : Op::Not);
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op == BinOp::And || b.op == BinOp::Or) {
          // Short-circuit: evaluate lhs; on the decisive value, skip rhs and
          // keep a canonical 0/1 on the stack.
          compile_expr(*b.lhs);
          emit(Op::Dup);
          const std::size_t skip =
              emit(b.op == BinOp::And ? Op::JumpIfFalse : Op::JumpIfTrue);
          emit(Op::Pop);
          compile_expr(*b.rhs);
          patch(skip, here());
          // Normalize to 0/1 (x != 0).
          emit_int(0);
          emit(Op::Ne);
          break;
        }
        compile_expr(*b.lhs);
        compile_expr(*b.rhs);
        switch (b.op) {
          case BinOp::Add: emit(Op::Add); break;
          case BinOp::Sub: emit(Op::Sub); break;
          case BinOp::Mul: emit(Op::Mul); break;
          case BinOp::Div: emit(Op::Div); break;
          case BinOp::Mod: emit(Op::Mod); break;
          case BinOp::Lt: emit(Op::Lt); break;
          case BinOp::Le: emit(Op::Le); break;
          case BinOp::Gt: emit(Op::Gt); break;
          case BinOp::Ge: emit(Op::Ge); break;
          case BinOp::Eq: emit(Op::Eq); break;
          case BinOp::Ne: emit(Op::Ne); break;
          default: ANTAREX_CHECK(false, "unreachable binop");
        }
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        for (const auto& a : c.args) compile_expr(*a);
        emit(Op::Call, intern_name(c.callee), static_cast<i32>(c.args.size()));
        break;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        compile_expr(*ix.base);
        compile_expr(*ix.index);
        emit(Op::LoadIndex);
        break;
      }
    }
  }

  // --- statements -----------------------------------------------------------
  struct LoopCtx {
    std::vector<std::size_t> breaks;     ///< Jump instrs to patch to loop end
    i32 continue_target = 0;             ///< jump target for continue
    std::vector<std::size_t> continues;  ///< patched later for for-loops
  };

  void compile_block(const Block& b) {
    push_scope();
    compile_block_inner(b);
    pop_scope();
  }

  void compile_block_inner(const Block& b) {
    for (const auto& s : b.stmts) compile_stmt(*s);
  }

  void compile_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block:
        compile_block(static_cast<const Block&>(s));
        break;
      case StmtKind::ExprStmt:
        compile_expr(*static_cast<const ExprStmt&>(s).expr);
        emit(Op::Pop);
        break;
      case StmtKind::VarDecl: {
        const auto& d = static_cast<const VarDeclStmt&>(s);
        if (d.init)
          compile_expr(*d.init);
        else
          emit_int(0);  // default-initialize
        emit(Op::Store, declare(d.name));
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target->kind == ExprKind::VarRef) {
          compile_expr(*a.value);
          emit(Op::Store, lookup(static_cast<const VarRef&>(*a.target).name));
        } else if (a.target->kind == ExprKind::Index) {
          const auto& ix = static_cast<const IndexExpr&>(*a.target);
          compile_expr(*ix.base);
          compile_expr(*ix.index);
          compile_expr(*a.value);
          emit(Op::StoreIndex);
        } else {
          throw Error("bytecode compiler: invalid assignment target");
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        compile_expr(*i.cond);
        const std::size_t jz = emit(Op::JumpIfFalse);
        compile_block(*i.then_block);
        if (i.else_block) {
          const std::size_t jend = emit(Op::Jump);
          patch(jz, here());
          compile_block(*i.else_block);
          patch(jend, here());
        } else {
          patch(jz, here());
        }
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        const i32 top = here();
        compile_expr(*w.cond);
        const std::size_t jz = emit(Op::JumpIfFalse);
        loops_.push_back(LoopCtx{{}, top, {}});
        compile_block(*w.body);
        for (std::size_t c : loops_.back().continues) patch(c, top);
        emit(Op::Jump, top);
        patch(jz, here());
        for (std::size_t brk : loops_.back().breaks) patch(brk, here());
        loops_.pop_back();
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        push_scope();  // for-init scope
        if (f.init) compile_stmt(*f.init);
        const i32 top = here();
        std::size_t jz = 0;
        bool has_cond = false;
        if (f.cond) {
          compile_expr(*f.cond);
          jz = emit(Op::JumpIfFalse);
          has_cond = true;
        }
        loops_.push_back(LoopCtx{{}, 0, {}});
        compile_block(*f.body);
        const i32 step_pc = here();
        for (std::size_t c : loops_.back().continues) patch(c, step_pc);
        if (f.step) compile_stmt(*f.step);
        emit(Op::Jump, top);
        if (has_cond) patch(jz, here());
        for (std::size_t brk : loops_.back().breaks) patch(brk, here());
        loops_.pop_back();
        pop_scope();
        break;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) {
          compile_expr(*r.value);
          emit(Op::Ret);
        } else {
          emit(Op::RetVoid);
        }
        break;
      }
      case StmtKind::Break: {
        ANTAREX_REQUIRE(!loops_.empty(), "bytecode compiler: break outside loop");
        loops_.back().breaks.push_back(emit(Op::Jump));
        break;
      }
      case StmtKind::Continue: {
        ANTAREX_REQUIRE(!loops_.empty(), "bytecode compiler: continue outside loop");
        loops_.back().continues.push_back(emit(Op::Jump));
        break;
      }
    }
  }

  const Function& fn_;
  CompiledFunction out_;
  std::vector<std::unordered_map<std::string, i32>> scopes_;
  std::size_t next_slot_ = 0;
  std::size_t max_slots_ = 0;
  std::vector<LoopCtx> loops_;
};

}  // namespace

CompiledFunction compile_function(const cir::Function& f) {
  ANTAREX_REQUIRE(f.body != nullptr, "compile_function: function has no body");
  return FnCompiler(f).run();
}

}  // namespace antarex::vm
