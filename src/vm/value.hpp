// Runtime values for the split-compilation VM.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::vm {

/// Dynamically typed runtime value. Arrays are shared buffers so that host
/// code and mini-C code can exchange data without copies (the VM plays the
/// role of the "OpenCL host runtime" box in the paper's Figure 1: kernels get
/// handed buffers).
class Value {
 public:
  enum class Kind { Int, Float, Str, IntArr, FloatArr };

  Value() : kind_(Kind::Int), i_(0) {}
  static Value from_int(i64 v);
  static Value from_float(double v);
  static Value from_str(std::string v);
  static Value from_int_array(std::shared_ptr<std::vector<i64>> v);
  static Value from_float_array(std::shared_ptr<std::vector<double>> v);

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_float() const { return kind_ == Kind::Float; }
  bool is_numeric() const { return is_int() || is_float(); }
  bool is_str() const { return kind_ == Kind::Str; }
  bool is_array() const { return kind_ == Kind::IntArr || kind_ == Kind::FloatArr; }

  i64 as_int() const;
  double as_float() const;            ///< numeric coercion: int -> double
  const std::string& as_str() const;
  std::vector<i64>& int_array() const;
  std::vector<double>& float_array() const;

  /// Truthiness: nonzero numeric; arrays/strings are always true.
  bool truthy() const;

  std::string to_string() const;

 private:
  Kind kind_;
  i64 i_ = 0;
  double f_ = 0.0;
  std::shared_ptr<std::string> s_;
  std::shared_ptr<std::vector<i64>> ia_;
  std::shared_ptr<std::vector<double>> fa_;
};

}  // namespace antarex::vm
