// Bytecode for the ANTAREX split-compilation VM.
//
// The offline half of split compilation (paper Sec. III-B) lowers mini-C
// functions to this portable stack bytecode (standing in for "OpenCL kernels
// (SPIR bitcode)" in Figure 1); the online half — the JIT manager — picks or
// creates specialized versions at call time.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::vm {

enum class Op : u8 {
  // Constants
  PushInt,     // push imm_i
  PushFloat,   // push imm_f
  PushStr,     // push strings[a]
  // Locals
  Load,        // push slots[a]
  Store,       // slots[a] = pop
  // Arrays
  LoadIndex,   // idx = pop, arr = pop, push arr[idx]
  StoreIndex,  // val = pop, idx = pop, arr = pop, arr[idx] = val
  // Arithmetic / logic (operands popped right-then-left)
  Add, Sub, Mul, Div, Mod,
  Neg, Not,
  Lt, Le, Gt, Ge, Eq, Ne,
  // Control flow
  Jump,         // pc = a
  JumpIfFalse,  // if (!pop.truthy()) pc = a
  JumpIfTrue,   // if (pop.truthy()) pc = a
  Dup,          // duplicate top (short-circuit support)
  Pop,          // discard top
  // Calls
  Call,       // callee = names[a], argc = b; args popped left-to-right order
  Ret,        // return pop
  RetVoid,    // return no value
};

const char* op_name(Op op);

struct Instr {
  Op op;
  i32 a = 0;      ///< slot / jump target / pool index
  i32 b = 0;      ///< argc for Call
  i64 imm_i = 0;  ///< PushInt immediate
  double imm_f = 0.0;  ///< PushFloat immediate
};

/// One compiled function body. Immutable once built; versions produced by
/// runtime specialization are separate CompiledFunction objects.
struct CompiledFunction {
  std::string name;
  u32 num_params = 0;
  u32 num_slots = 0;  ///< params + locals
  std::vector<Instr> code;
  std::vector<std::string> strings;  ///< string literal pool
  std::vector<std::string> names;    ///< callee name pool

  /// Human-readable disassembly (tests, debugging, bench reports).
  std::string disassemble() const;
};

}  // namespace antarex::vm
