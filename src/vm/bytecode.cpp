#include "vm/bytecode.hpp"

#include "support/strings.hpp"

namespace antarex::vm {

const char* op_name(Op op) {
  switch (op) {
    case Op::PushInt: return "push.i";
    case Op::PushFloat: return "push.f";
    case Op::PushStr: return "push.s";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::LoadIndex: return "load.idx";
    case Op::StoreIndex: return "store.idx";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Mod: return "mod";
    case Op::Neg: return "neg";
    case Op::Not: return "not";
    case Op::Lt: return "lt";
    case Op::Le: return "le";
    case Op::Gt: return "gt";
    case Op::Ge: return "ge";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Jump: return "jmp";
    case Op::JumpIfFalse: return "jz";
    case Op::JumpIfTrue: return "jnz";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Call: return "call";
    case Op::Ret: return "ret";
    case Op::RetVoid: return "ret.void";
  }
  return "?";
}

std::string CompiledFunction::disassemble() const {
  std::string out = format("%s: params=%u slots=%u\n", name.c_str(), num_params, num_slots);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    out += format("  %4zu  %-10s", pc, op_name(in.op));
    switch (in.op) {
      case Op::PushInt:
        out += format(" %lld", static_cast<long long>(in.imm_i));
        break;
      case Op::PushFloat:
        out += format(" %g", in.imm_f);
        break;
      case Op::PushStr:
        out += format(" \"%s\"", strings[static_cast<std::size_t>(in.a)].c_str());
        break;
      case Op::Load:
      case Op::Store:
        out += format(" s%d", in.a);
        break;
      case Op::Jump:
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        out += format(" -> %d", in.a);
        break;
      case Op::Call:
        out += format(" %s/%d", names[static_cast<std::size_t>(in.a)].c_str(), in.b);
        break;
      default:
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace antarex::vm
