#include "vm/value.hpp"

#include "support/strings.hpp"

namespace antarex::vm {

Value Value::from_int(i64 v) {
  Value out;
  out.kind_ = Kind::Int;
  out.i_ = v;
  return out;
}

Value Value::from_float(double v) {
  Value out;
  out.kind_ = Kind::Float;
  out.f_ = v;
  return out;
}

Value Value::from_str(std::string v) {
  Value out;
  out.kind_ = Kind::Str;
  out.s_ = std::make_shared<std::string>(std::move(v));
  return out;
}

Value Value::from_int_array(std::shared_ptr<std::vector<i64>> v) {
  ANTAREX_REQUIRE(v != nullptr, "Value: null int array");
  Value out;
  out.kind_ = Kind::IntArr;
  out.ia_ = std::move(v);
  return out;
}

Value Value::from_float_array(std::shared_ptr<std::vector<double>> v) {
  ANTAREX_REQUIRE(v != nullptr, "Value: null float array");
  Value out;
  out.kind_ = Kind::FloatArr;
  out.fa_ = std::move(v);
  return out;
}

i64 Value::as_int() const {
  if (kind_ == Kind::Int) return i_;
  if (kind_ == Kind::Float) return static_cast<i64>(f_);
  throw Error("Value: not convertible to int: " + to_string());
}

double Value::as_float() const {
  if (kind_ == Kind::Float) return f_;
  if (kind_ == Kind::Int) return static_cast<double>(i_);
  throw Error("Value: not convertible to float: " + to_string());
}

const std::string& Value::as_str() const {
  ANTAREX_REQUIRE(kind_ == Kind::Str, "Value: not a string");
  return *s_;
}

std::vector<i64>& Value::int_array() const {
  ANTAREX_REQUIRE(kind_ == Kind::IntArr, "Value: not an int array");
  return *ia_;
}

std::vector<double>& Value::float_array() const {
  ANTAREX_REQUIRE(kind_ == Kind::FloatArr, "Value: not a float array");
  return *fa_;
}

bool Value::truthy() const {
  switch (kind_) {
    case Kind::Int: return i_ != 0;
    case Kind::Float: return f_ != 0.0;
    default: return true;
  }
}

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::Int: return format("%lld", static_cast<long long>(i_));
    case Kind::Float: return format("%g", f_);
    case Kind::Str: return *s_;
    case Kind::IntArr: return format("int[%zu]", ia_->size());
    case Kind::FloatArr: return format("double[%zu]", fa_->size());
  }
  return "?";
}

}  // namespace antarex::vm
