// Online learning: recursive least squares with a forgetting factor.
//
// The decision-making engine's "machine learning technique ... predicting the
// most promising set of parameter settings" (paper Sec. IV). The forgetting
// factor keeps the model tracking "the most recent operating conditions".
#pragma once

#include <vector>

#include "support/common.hpp"

namespace antarex::tuner {

class RlsModel {
 public:
  /// dims: number of input features (a bias term is added internally).
  /// lambda: forgetting factor in (0, 1]; smaller forgets faster.
  explicit RlsModel(std::size_t dims, double lambda = 0.99, double delta = 100.0);

  void update(const std::vector<double>& x, double y);
  double predict(const std::vector<double>& x) const;

  std::size_t updates() const { return updates_; }
  std::size_t dims() const { return dims_; }
  const std::vector<double>& weights() const { return w_; }
  void reset();

 private:
  std::vector<double> phi(const std::vector<double>& x) const;

  std::size_t dims_;
  double lambda_;
  double delta_;
  std::vector<double> w_;               ///< dims+1 weights (bias last)
  std::vector<std::vector<double>> p_;  ///< inverse covariance
  std::size_t updates_ = 0;
};

}  // namespace antarex::tuner
