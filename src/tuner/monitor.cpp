#include "tuner/monitor.hpp"

#include "support/common.hpp"

namespace antarex::tuner {

Monitor::Monitor(std::string metric, std::size_t window)
    : metric_(std::move(metric)),
      series_(&telemetry::Registry::global().series(metric_, window)) {
  // A freshly constructed monitor starts empty, even if a previous run
  // already registered this stream.
  series_->clear();
}

void Monitor::push(double sample) { series_->push(sample); }

double Monitor::last() const {
  ANTAREX_REQUIRE(!series_->empty(), "Monitor '" + metric_ + "': no samples");
  return series_->last();
}

double Monitor::window_mean() const {
  ANTAREX_REQUIRE(!series_->empty(), "Monitor '" + metric_ + "': no samples");
  return series_->window_mean();
}

double Monitor::window_percentile(double p) const {
  ANTAREX_REQUIRE(!series_->empty(), "Monitor '" + metric_ + "': no samples");
  return series_->window_percentile(p);
}

void Monitor::clear() { series_->clear(); }

}  // namespace antarex::tuner
