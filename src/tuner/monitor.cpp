#include "tuner/monitor.hpp"

#include "support/common.hpp"

namespace antarex::tuner {

Monitor::Monitor(std::string metric, std::size_t window)
    : metric_(std::move(metric)), window_(window), ewma_(0.25) {}

void Monitor::push(double sample) {
  window_.add(sample);
  ewma_.add(sample);
  last_ = sample;
  ++total_;
}

double Monitor::last() const {
  ANTAREX_REQUIRE(total_ > 0, "Monitor '" + metric_ + "': no samples");
  return last_;
}

double Monitor::window_mean() const {
  ANTAREX_REQUIRE(total_ > 0, "Monitor '" + metric_ + "': no samples");
  return window_.mean();
}

double Monitor::window_percentile(double p) const {
  ANTAREX_REQUIRE(total_ > 0, "Monitor '" + metric_ + "': no samples");
  return window_.percentile(p);
}

void Monitor::clear() {
  window_.clear();
  ewma_.clear();
  last_ = 0.0;
  total_ = 0;
}

}  // namespace antarex::tuner
