#include "tuner/learner.hpp"

namespace antarex::tuner {

RlsModel::RlsModel(std::size_t dims, double lambda, double delta)
    : dims_(dims), lambda_(lambda), delta_(delta) {
  ANTAREX_REQUIRE(dims_ > 0, "RlsModel: need at least one feature");
  ANTAREX_REQUIRE(lambda_ > 0.0 && lambda_ <= 1.0,
                  "RlsModel: lambda must be in (0, 1]");
  reset();
}

void RlsModel::reset() {
  const std::size_t n = dims_ + 1;
  w_.assign(n, 0.0);
  p_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) p_[i][i] = delta_;
  updates_ = 0;
}

std::vector<double> RlsModel::phi(const std::vector<double>& x) const {
  ANTAREX_REQUIRE(x.size() == dims_, "RlsModel: feature size mismatch");
  std::vector<double> f = x;
  f.push_back(1.0);  // bias
  return f;
}

void RlsModel::update(const std::vector<double>& x, double y) {
  const std::vector<double> f = phi(x);
  const std::size_t n = f.size();

  // k = P f / (lambda + f' P f)
  std::vector<double> pf(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) pf[i] += p_[i][j] * f[j];
  double denom = lambda_;
  for (std::size_t i = 0; i < n; ++i) denom += f[i] * pf[i];
  std::vector<double> k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = pf[i] / denom;

  // w += k (y - f' w)
  double err = y;
  for (std::size_t i = 0; i < n; ++i) err -= f[i] * w_[i];
  for (std::size_t i = 0; i < n; ++i) w_[i] += k[i] * err;

  // P = (P - k f' P) / lambda
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) p_[i][j] = (p_[i][j] - k[i] * pf[j]) / lambda_;

  ++updates_;
}

double RlsModel::predict(const std::vector<double>& x) const {
  const std::vector<double> f = phi(x);
  double y = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) y += f[i] * w_[i];
  return y;
}

}  // namespace antarex::tuner
