#include "tuner/knob.hpp"

#include "support/strings.hpp"

namespace antarex::tuner {

std::string config_key(const Configuration& c) {
  std::string key;
  for (std::size_t i : c) key += format("%zu,", i);
  return key;
}

void DesignSpace::add_knob(Knob k) {
  ANTAREX_REQUIRE(!k.name.empty(), "DesignSpace: knob needs a name");
  ANTAREX_REQUIRE(!k.values.empty(), "DesignSpace: knob needs at least one value");
  ANTAREX_REQUIRE(knob_index(k.name) < 0,
                  "DesignSpace: duplicate knob '" + k.name + "'");
  std::vector<std::size_t> all(k.values.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  knobs_.push_back(std::move(k));
  candidates_.push_back(std::move(all));
}

const Knob& DesignSpace::knob(std::size_t i) const {
  ANTAREX_REQUIRE(i < knobs_.size(), "DesignSpace: knob index out of range");
  return knobs_[i];
}

int DesignSpace::knob_index(const std::string& name) const {
  for (std::size_t i = 0; i < knobs_.size(); ++i)
    if (knobs_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::size_t DesignSpace::size() const {
  if (knobs_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& c : candidates_) n *= c.size();
  return n;
}

Configuration DesignSpace::at(std::size_t flat_index) const {
  ANTAREX_REQUIRE(flat_index < size(), "DesignSpace: flat index out of range");
  Configuration c(knobs_.size());
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const auto& cand = candidates_[i];
    c[i] = cand[flat_index % cand.size()];
    flat_index /= cand.size();
  }
  return c;
}

double DesignSpace::value(const Configuration& c, const std::string& knob_name) const {
  const int i = knob_index(knob_name);
  ANTAREX_REQUIRE(i >= 0, "DesignSpace: unknown knob '" + knob_name + "'");
  return value(c, static_cast<std::size_t>(i));
}

double DesignSpace::value(const Configuration& c, std::size_t ki) const {
  ANTAREX_REQUIRE(valid(c), "DesignSpace: invalid configuration");
  ANTAREX_REQUIRE(ki < knobs_.size(), "DesignSpace: knob index out of range");
  return knobs_[ki].values[c[ki]];
}

void DesignSpace::restrict_range(const std::string& knob_name, double lo, double hi) {
  const int i = knob_index(knob_name);
  ANTAREX_REQUIRE(i >= 0, "DesignSpace: unknown knob '" + knob_name + "'");
  ANTAREX_REQUIRE(lo <= hi, "DesignSpace: empty restriction range");
  std::vector<std::size_t> keep;
  const Knob& k = knobs_[static_cast<std::size_t>(i)];
  for (std::size_t vi = 0; vi < k.values.size(); ++vi)
    if (k.values[vi] >= lo && k.values[vi] <= hi) keep.push_back(vi);
  ANTAREX_REQUIRE(!keep.empty(),
                  "DesignSpace: restriction excludes every value of '" +
                      knob_name + "'");
  candidates_[static_cast<std::size_t>(i)] = std::move(keep);
}

void DesignSpace::clear_restrictions() {
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    std::vector<std::size_t> all(knobs_[i].values.size());
    for (std::size_t vi = 0; vi < all.size(); ++vi) all[vi] = vi;
    candidates_[i] = std::move(all);
  }
}

const std::vector<std::size_t>& DesignSpace::candidates(std::size_t knob_index) const {
  ANTAREX_REQUIRE(knob_index < candidates_.size(),
                  "DesignSpace: knob index out of range");
  return candidates_[knob_index];
}

bool DesignSpace::valid(const Configuration& c) const {
  if (c.size() != knobs_.size()) return false;
  for (std::size_t i = 0; i < c.size(); ++i)
    if (c[i] >= knobs_[i].values.size()) return false;
  return true;
}

}  // namespace antarex::tuner
