// The application autotuner: the collect-analyse-decide-act loop of paper
// Sec. II ("The application monitoring and autotuning will be supported by a
// runtime layer implementing an application level collect-analyse-decide-act
// loop") and Sec. IV.
//
// Usage pattern (one loop iteration of the managed application):
//   const Configuration& c = tuner.next_configuration();   // decide + act
//   ... run the computation with knob values from c ...
//   tuner.report({{"time_s", t}, {"energy_j", e}});        // collect+analyse
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "tuner/knowledge.hpp"
#include "tuner/monitor.hpp"
#include "tuner/strategy.hpp"

namespace antarex::tuner {

struct AutotunerConfig {
  std::string objective = "time_s";
  bool minimize = true;
  std::vector<Goal> goals;

  /// Phase-change detection: if the observed objective for an
  /// already-learned configuration deviates from its learned mean by more
  /// than this relative factor for `confirm` consecutive reports, the
  /// knowledge is stale — drop it and re-explore ("react promptly to changing
  /// workloads", Sec. IV).
  double phase_threshold = 0.5;
  int phase_confirm = 2;
  std::size_t min_samples_for_phase = 3;

  /// Discard measurements taken while a sensor glitch was live: if
  /// telemetry::poison_epoch() advanced between decide and report, the
  /// sample may embed a corrupted energy/power reading, so it is dropped
  /// instead of folded into the knowledge base (antarex::fault injects such
  /// glitches; tuner.samples_discarded counts the drops).
  bool discard_poisoned = true;
};

class Autotuner {
 public:
  Autotuner(DesignSpace space, std::unique_ptr<Strategy> strategy,
            AutotunerConfig config = {}, u64 seed = 1);

  /// Decide + act: the configuration the application should use now.
  const Configuration& next_configuration();

  /// Collect + analyse: report the metrics measured under the configuration
  /// returned by the latest next_configuration().
  void report(const std::map<std::string, double>& metrics);

  /// Decide + act for a batch: k configurations to evaluate concurrently
  /// (e.g. on an exec::ThreadPool). Strategies make k successive decisions
  /// against the same knowledge; FullSearch's cursor keeps them distinct
  /// while sweeping. Must be paired with report_batch().
  std::vector<Configuration> next_batch(std::size_t k);

  /// Collect + analyse for a batch: metrics[i] was measured under the i-th
  /// configuration of the preceding next_batch(). Observations fold in batch
  /// order regardless of which thread finished first, so the learned state
  /// is deterministic for any evaluation schedule.
  void report_batch(const std::vector<std::map<std::string, double>>& metrics);

  const DesignSpace& space() const { return space_; }
  DesignSpace& space() { return space_; }
  const Knowledge& knowledge() const { return knowledge_; }
  const AutotunerConfig& config() const { return config_; }
  const Strategy& strategy() const { return *strategy_; }

  /// Best configuration learned so far (goals honoured); nullopt if nothing
  /// measured yet or no configuration meets the goals.
  std::optional<Configuration> best() const;

  /// Warm start: merge a Knowledge::export_text() list produced at design
  /// time, so the first next_configuration() can already exploit
  /// (the tuner-level face of split compilation, paper Sec. III-B).
  /// Configurations that do not fit this design space are rejected.
  void seed_knowledge(const std::string& exported_text);

  std::size_t iterations() const { return iterations_; }
  std::size_t phase_changes() const { return phase_changes_; }
  /// Reports dropped because a sensor glitch poisoned the measurement window.
  std::size_t samples_discarded() const { return samples_discarded_; }

 private:
  /// The shared collect+analyse path behind report() and report_batch().
  void observe_one(const Configuration& config,
                   const std::map<std::string, double>& metrics);
  /// True if a sensor glitch fired between the decide and this report.
  bool measurement_poisoned() const;
  void discard_one();

  DesignSpace space_;
  std::unique_ptr<Strategy> strategy_;
  AutotunerConfig config_;
  Rng rng_;
  Knowledge knowledge_;

  Configuration current_;
  std::vector<Configuration> pending_batch_;
  bool awaiting_report_ = false;
  std::size_t iterations_ = 0;
  int phase_suspicion_ = 0;
  std::size_t phase_changes_ = 0;
  std::size_t samples_discarded_ = 0;
  u64 poison_epoch_at_decide_ = 0;
};

}  // namespace antarex::tuner
