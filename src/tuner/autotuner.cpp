#include "tuner/autotuner.hpp"

#include <cmath>

#include "telemetry/telemetry.hpp"

namespace antarex::tuner {

Autotuner::Autotuner(DesignSpace space, std::unique_ptr<Strategy> strategy,
                     AutotunerConfig config, u64 seed)
    : space_(std::move(space)),
      strategy_(std::move(strategy)),
      config_(std::move(config)),
      rng_(seed) {
  ANTAREX_REQUIRE(space_.knob_count() > 0, "Autotuner: empty design space");
  ANTAREX_REQUIRE(strategy_ != nullptr, "Autotuner: null strategy");
  ANTAREX_REQUIRE(!config_.objective.empty(), "Autotuner: objective unnamed");
}

const Configuration& Autotuner::next_configuration() {
  // Calling next twice without a report keeps the same decision: the decide
  // step is driven by new knowledge, and there is none yet.
  if (!awaiting_report_) {
    TELEMETRY_SPAN("tuner.decide");
    current_ = strategy_->next(space_, knowledge_, config_.objective,
                               config_.minimize, rng_);
    ANTAREX_CHECK(space_.valid(current_), "Autotuner: strategy produced an "
                                          "invalid configuration");
    awaiting_report_ = true;
    poison_epoch_at_decide_ = telemetry::poison_epoch();
  }
  return current_;
}

void Autotuner::report(const std::map<std::string, double>& metrics) {
  TELEMETRY_SPAN("tuner.report");
  ANTAREX_REQUIRE(awaiting_report_,
                  "Autotuner: report() without a preceding next_configuration()");
  awaiting_report_ = false;
  if (measurement_poisoned()) {
    discard_one();
    return;
  }
  observe_one(current_, metrics);
}

std::vector<Configuration> Autotuner::next_batch(std::size_t k) {
  ANTAREX_REQUIRE(k >= 1, "Autotuner: next_batch needs k >= 1");
  ANTAREX_REQUIRE(!awaiting_report_ && pending_batch_.empty(),
                  "Autotuner: next_batch() while a report is outstanding");
  TELEMETRY_SPAN("tuner.decide");
  pending_batch_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Configuration c = strategy_->next(space_, knowledge_, config_.objective,
                                      config_.minimize, rng_);
    ANTAREX_CHECK(space_.valid(c), "Autotuner: strategy produced an "
                                   "invalid configuration");
    pending_batch_.push_back(std::move(c));
  }
  poison_epoch_at_decide_ = telemetry::poison_epoch();
  return pending_batch_;
}

void Autotuner::report_batch(
    const std::vector<std::map<std::string, double>>& metrics) {
  TELEMETRY_SPAN("tuner.report");
  ANTAREX_REQUIRE(!pending_batch_.empty(),
                  "Autotuner: report_batch() without a preceding next_batch()");
  ANTAREX_REQUIRE(metrics.size() == pending_batch_.size(),
                  "Autotuner: report_batch() size does not match next_batch()");
  if (measurement_poisoned()) {
    // A glitch anywhere in the batch window taints the whole batch — the
    // measurements ran concurrently, so there is no telling which were hit.
    for (std::size_t i = 0; i < metrics.size(); ++i) discard_one();
  } else {
    for (std::size_t i = 0; i < metrics.size(); ++i)
      observe_one(pending_batch_[i], metrics[i]);
  }
  pending_batch_.clear();
}

bool Autotuner::measurement_poisoned() const {
  return config_.discard_poisoned &&
         telemetry::poison_epoch() != poison_epoch_at_decide_;
}

void Autotuner::discard_one() {
  ++samples_discarded_;
  TELEMETRY_COUNT("tuner.samples_discarded", 1);
}

void Autotuner::observe_one(const Configuration& config,
                            const std::map<std::string, double>& metrics) {
  auto it = metrics.find(config_.objective);
  ANTAREX_REQUIRE(it != metrics.end(),
                  "Autotuner: metrics missing objective '" + config_.objective + "'");
  const double y = it->second;
  TELEMETRY_COUNT("tuner.iterations", 1);
  TELEMETRY_GAUGE("tuner.objective", y);

  // Phase-change detection against learned knowledge.
  const auto learned = knowledge_.mean(config, config_.objective);
  if (learned) TELEMETRY_COUNT("tuner.kb_hits", 1);
  if (learned && knowledge_.samples(config) >= config_.min_samples_for_phase) {
    const double denom = std::max(1e-12, std::fabs(*learned));
    if (std::fabs(y - *learned) / denom > config_.phase_threshold) {
      if (++phase_suspicion_ >= config_.phase_confirm) {
        knowledge_.clear();
        strategy_->reset();
        ++phase_changes_;
        phase_suspicion_ = 0;
        TELEMETRY_COUNT("tuner.phase_changes", 1);
      }
    } else {
      phase_suspicion_ = 0;
    }
  }

  Measurement m;
  m.config = config;
  m.metrics = metrics;
  knowledge_.observe(m);
  strategy_->observe(space_, config, y);

  ++iterations_;
}

std::optional<Configuration> Autotuner::best() const {
  return knowledge_.best(config_.objective, config_.minimize, config_.goals);
}

void Autotuner::seed_knowledge(const std::string& exported_text) {
  Knowledge incoming;
  incoming.import_text(exported_text);
  for (const Configuration& c : incoming.configs())
    ANTAREX_REQUIRE(space_.valid(c),
                    "Autotuner::seed_knowledge: imported configuration does "
                    "not fit this design space");
  knowledge_.import_text(exported_text);
}

}  // namespace antarex::tuner
