// Exploration/exploitation strategies for the autotuner's decide step.
//
// The paper positions the framework between white-box (domain-knowledge
// surfing) and black-box (long convergence) approaches. Here:
//  - FullSearch ~ exhaustive black-box baseline
//  - EpsilonGreedy ~ bandit-style online black-box
//  - ModelGuided ~ learning-driven decision making (RLS surrogate)
// Grey-box behaviour comes from running any of these over an *annotated*
// (restricted) design space.
#pragma once

#include <memory>
#include <string>

#include "support/rng.hpp"
#include "tuner/knob.hpp"
#include "tuner/knowledge.hpp"
#include "tuner/learner.hpp"

namespace antarex::tuner {

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Decide the configuration to run next.
  virtual Configuration next(const DesignSpace& space, const Knowledge& knowledge,
                             const std::string& objective, bool minimize,
                             Rng& rng) = 0;

  /// Observe a fresh measurement (for learning strategies).
  virtual void observe(const DesignSpace& space, const Configuration& config,
                       double objective_value) {
    (void)space;
    (void)config;
    (void)objective_value;
  }

  /// Forget everything (phase change).
  virtual void reset() {}
};

/// Deterministic sweep of the (annotated) space; once every configuration has
/// at least one sample, exploits the best known.
class FullSearchStrategy final : public Strategy {
 public:
  std::string name() const override { return "full-search"; }
  Configuration next(const DesignSpace&, const Knowledge&, const std::string&,
                     bool, Rng&) override;
  void reset() override { cursor_ = 0; }

 private:
  std::size_t cursor_ = 0;
};

/// epsilon-greedy bandit: explore a uniformly random configuration with
/// probability epsilon (decaying), otherwise exploit the best known.
class EpsilonGreedyStrategy final : public Strategy {
 public:
  explicit EpsilonGreedyStrategy(double epsilon0 = 0.4, double decay = 0.98);
  std::string name() const override { return "epsilon-greedy"; }
  Configuration next(const DesignSpace&, const Knowledge&, const std::string&,
                     bool, Rng&) override;
  void reset() override { epsilon_ = epsilon0_; }
  double epsilon() const { return epsilon_; }

 private:
  double epsilon0_;
  double decay_;
  double epsilon_;
};

/// RLS-surrogate-guided search: predict the objective over the candidate
/// space and run the predicted best (with a small exploration rate); the
/// surrogate updates online from observe().
class ModelGuidedStrategy final : public Strategy {
 public:
  explicit ModelGuidedStrategy(double explore_rate = 0.15);
  std::string name() const override { return "model-guided"; }
  Configuration next(const DesignSpace&, const Knowledge&, const std::string&,
                     bool, Rng&) override;
  void observe(const DesignSpace&, const Configuration&, double) override;
  void reset() override { model_.reset(); }
  const RlsModel* model() const { return model_.updates() ? &model_ : nullptr; }

 private:
  std::vector<double> features(const DesignSpace& space,
                               const Configuration& c) const;

  double explore_rate_;
  RlsModel model_{1};
  bool model_sized_ = false;
};

/// Uniformly random configuration from the (annotated) space.
Configuration random_config(const DesignSpace& space, Rng& rng);

/// Factory over the built-in strategies: "flat" / "full-search",
/// "epsilon-greedy", "model-guided". Returns nullptr for names this module
/// does not own (antarex::search layers its "evolutionary" strategy on top
/// via search::make_strategy).
std::unique_ptr<Strategy> make_builtin_strategy(const std::string& name);

}  // namespace antarex::tuner
