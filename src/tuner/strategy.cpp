#include "tuner/strategy.hpp"

namespace antarex::tuner {

Configuration random_config(const DesignSpace& space, Rng& rng) {
  ANTAREX_REQUIRE(space.knob_count() > 0, "random_config: empty design space");
  Configuration c(space.knob_count());
  for (std::size_t i = 0; i < space.knob_count(); ++i) {
    const auto& cand = space.candidates(i);
    c[i] = cand[rng.index(cand.size())];
  }
  return c;
}

Configuration FullSearchStrategy::next(const DesignSpace& space,
                                       const Knowledge& knowledge,
                                       const std::string& objective,
                                       bool minimize, Rng&) {
  const std::size_t n = space.size();
  ANTAREX_REQUIRE(n > 0, "FullSearch: empty design space");
  // Sweep phase: propose the next never-seen configuration.
  while (cursor_ < n) {
    const Configuration c = space.at(cursor_);
    ++cursor_;
    if (!knowledge.has(c)) return c;
  }
  // Exploit phase.
  if (auto best = knowledge.best(objective, minimize)) return *best;
  cursor_ = 0;
  return space.at(0);
}

EpsilonGreedyStrategy::EpsilonGreedyStrategy(double epsilon0, double decay)
    : epsilon0_(epsilon0), decay_(decay), epsilon_(epsilon0) {
  ANTAREX_REQUIRE(epsilon0_ >= 0.0 && epsilon0_ <= 1.0,
                  "EpsilonGreedy: epsilon outside [0, 1]");
  ANTAREX_REQUIRE(decay_ > 0.0 && decay_ <= 1.0,
                  "EpsilonGreedy: decay outside (0, 1]");
}

Configuration EpsilonGreedyStrategy::next(const DesignSpace& space,
                                          const Knowledge& knowledge,
                                          const std::string& objective,
                                          bool minimize, Rng& rng) {
  const bool explore = rng.bernoulli(epsilon_);
  epsilon_ *= decay_;
  if (!explore) {
    if (auto best = knowledge.best(objective, minimize)) return *best;
  }
  return random_config(space, rng);
}

ModelGuidedStrategy::ModelGuidedStrategy(double explore_rate)
    : explore_rate_(explore_rate) {
  ANTAREX_REQUIRE(explore_rate_ >= 0.0 && explore_rate_ <= 1.0,
                  "ModelGuided: explore rate outside [0, 1]");
}

std::vector<double> ModelGuidedStrategy::features(const DesignSpace& space,
                                                  const Configuration& c) const {
  std::vector<double> f(space.knob_count());
  for (std::size_t i = 0; i < space.knob_count(); ++i) f[i] = space.value(c, i);
  return f;
}

void ModelGuidedStrategy::observe(const DesignSpace& space,
                                  const Configuration& config, double value) {
  if (!model_sized_) {
    model_ = RlsModel(space.knob_count());
    model_sized_ = true;
  }
  model_.update(features(space, config), value);
}

Configuration ModelGuidedStrategy::next(const DesignSpace& space,
                                        const Knowledge& knowledge,
                                        const std::string& objective,
                                        bool minimize, Rng& rng) {
  // Bootstrap / exploration: random samples until the surrogate has seen
  // enough points to be least-squares determined.
  const std::size_t warmup = space.knob_count() + 2;
  if (model_.updates() < warmup || rng.bernoulli(explore_rate_))
    return random_config(space, rng);

  // Score candidates by surrogate prediction. For tractability on huge
  // spaces, scan up to 4096 configurations (the full space when smaller,
  // otherwise a random sample).
  const std::size_t n = space.size();
  const std::size_t scan = std::min<std::size_t>(n, 4096);
  Configuration best;
  double best_pred = 0.0;
  for (std::size_t s = 0; s < scan; ++s) {
    const Configuration c =
        (n == scan) ? space.at(s) : random_config(space, rng);
    const double pred = model_.predict(features(space, c));
    if (best.empty() || (minimize ? pred < best_pred : pred > best_pred)) {
      best = c;
      best_pred = pred;
    }
  }
  // Fall back to knowledge if available and it beats the surrogate's pick
  // (guards against a badly fit linear model on non-linear landscapes).
  if (auto known = knowledge.best(objective, minimize)) {
    const auto known_mean = knowledge.mean(*known, objective);
    const auto best_mean = knowledge.mean(best, objective);
    if (known_mean && best_mean &&
        (minimize ? *known_mean < *best_mean : *known_mean > *best_mean))
      return *known;
  }
  return best;
}

std::unique_ptr<Strategy> make_builtin_strategy(const std::string& name) {
  if (name == "flat" || name == "full-search")
    return std::make_unique<FullSearchStrategy>();
  if (name == "epsilon-greedy") return std::make_unique<EpsilonGreedyStrategy>();
  if (name == "model-guided") return std::make_unique<ModelGuidedStrategy>();
  return nullptr;
}

}  // namespace antarex::tuner
