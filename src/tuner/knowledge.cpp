#include "tuner/knowledge.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "support/strings.hpp"

namespace antarex::tuner {

void Knowledge::observe(const Measurement& m) {
  ANTAREX_REQUIRE(!m.config.empty(), "Knowledge: empty configuration");
  Entry& e = table_[config_key(m.config)];
  if (e.config.empty()) e.config = m.config;
  for (const auto& [metric, value] : m.metrics) e.stats[metric].add(value);
  ++observations_;
}

bool Knowledge::has(const Configuration& c) const {
  return table_.contains(config_key(c));
}

std::optional<double> Knowledge::mean(const Configuration& c,
                                      const std::string& metric) const {
  auto it = table_.find(config_key(c));
  if (it == table_.end()) return std::nullopt;
  auto mit = it->second.stats.find(metric);
  if (mit == it->second.stats.end() || mit->second.count() == 0) return std::nullopt;
  return mit->second.mean();
}

std::vector<Configuration> Knowledge::configs() const {
  std::vector<Configuration> out;
  out.reserve(table_.size());
  for (const auto& [key, e] : table_) out.push_back(e.config);
  return out;
}

std::size_t Knowledge::samples(const Configuration& c) const {
  auto it = table_.find(config_key(c));
  if (it == table_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [metric, st] : it->second.stats) n = std::max(n, st.count());
  return n;
}

std::optional<Configuration> Knowledge::best(const std::string& objective,
                                             bool minimize,
                                             const std::vector<Goal>& goals) const {
  const Entry* best_entry = nullptr;
  double best_value = 0.0;
  for (const auto& [key, e] : table_) {
    auto oit = e.stats.find(objective);
    if (oit == e.stats.end() || oit->second.count() == 0) continue;
    bool ok = true;
    for (const Goal& g : goals) {
      auto git = e.stats.find(g.metric);
      if (git == e.stats.end() || git->second.count() == 0 ||
          !g.satisfied_by(git->second.mean())) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    const double v = oit->second.mean();
    if (!best_entry || (minimize ? v < best_value : v > best_value)) {
      best_entry = &e;
      best_value = v;
    }
  }
  if (!best_entry) return std::nullopt;
  return best_entry->config;
}

std::vector<Configuration> Knowledge::pareto_front(
    const std::string& metric_a, const std::string& metric_b) const {
  struct Point {
    const Entry* entry;
    double a, b;
  };
  std::vector<Point> points;
  for (const auto& [key, e] : table_) {
    const auto ait = e.stats.find(metric_a);
    const auto bit = e.stats.find(metric_b);
    if (ait == e.stats.end() || bit == e.stats.end()) continue;
    if (ait->second.count() == 0 || bit->second.count() == 0) continue;
    points.push_back({&e, ait->second.mean(), bit->second.mean()});
  }
  // Sort by a ascending, b ascending; sweep keeping strictly improving b.
  std::sort(points.begin(), points.end(), [](const Point& x, const Point& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  std::vector<Configuration> front;
  double best_b = std::numeric_limits<double>::infinity();
  for (const Point& p : points) {
    if (p.b < best_b) {
      front.push_back(p.entry->config);
      best_b = p.b;
    }
  }
  return front;
}

std::optional<Configuration> Knowledge::nearest(const Configuration& probe,
                                                const std::string& metric) const {
  ANTAREX_REQUIRE(!probe.empty(), "Knowledge::nearest: empty probe");
  const Entry* best = nullptr;
  double best_d = 0.0;
  for (const auto& [key, e] : table_) {
    if (e.config.size() != probe.size()) continue;
    if (!metric.empty()) {
      const auto mit = e.stats.find(metric);
      if (mit == e.stats.end() || mit->second.count() == 0) continue;
    }
    double d = 0.0;
    for (std::size_t i = 0; i < probe.size(); ++i) {
      const double diff = static_cast<double>(e.config[i]) -
                          static_cast<double>(probe[i]);
      d += diff * diff;
    }
    // table_ iterates in config_key order, so strict < is the tie-break.
    if (!best || d < best_d) {
      best = &e;
      best_d = d;
    }
  }
  if (!best) return std::nullopt;
  return best->config;
}

void Knowledge::clear() {
  table_.clear();
  observations_ = 0;
}

std::string Knowledge::export_text() const {
  std::string out;
  for (const auto& [key, e] : table_) {
    std::string cfg;
    for (std::size_t i = 0; i < e.config.size(); ++i) {
      if (i) cfg += ',';
      cfg += format("%zu", e.config[i]);
    }
    for (const auto& [metric, st] : e.stats) {
      if (st.count() == 0) continue;
      out += format("%s %s %zu %.17g\n", cfg.c_str(), metric.c_str(),
                    st.count(), st.mean());
    }
  }
  return out;
}

void Knowledge::import_text(const std::string& text) {
  for (const std::string& raw_line : split(text, '\n')) {
    const std::string line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, ' ');
    ANTAREX_REQUIRE(fields.size() == 4,
                    "Knowledge::import_text: expected 4 fields in '" + line + "'");
    Configuration config;
    for (const std::string& idx : split(fields[0], ',')) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(idx.c_str(), &end, 10);
      ANTAREX_REQUIRE(end && *end == '\0',
                      "Knowledge::import_text: bad config index '" + idx + "'");
      config.push_back(static_cast<std::size_t>(v));
    }
    char* end = nullptr;
    const unsigned long n = std::strtoul(fields[2].c_str(), &end, 10);
    ANTAREX_REQUIRE(end && *end == '\0' && n > 0,
                    "Knowledge::import_text: bad sample count in '" + line + "'");
    const double mean_value = std::strtod(fields[3].c_str(), &end);
    ANTAREX_REQUIRE(end && *end == '\0',
                    "Knowledge::import_text: bad mean in '" + line + "'");

    Entry& e = table_[config_key(config)];
    if (e.config.empty()) e.config = config;
    RunningStats& st = e.stats[fields[1]];
    for (unsigned long i = 0; i < n; ++i) st.add(mean_value);
    observations_ += n;
  }
}

}  // namespace antarex::tuner
