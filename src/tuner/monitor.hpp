// Monitors and goals — the "collect" and SLA sides of the autotuner's
// collect-analyse-decide-act loop (paper Sec. II & IV).
#pragma once

#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace antarex::tuner {

/// A named runtime metric stream with windowed statistics. The application
/// (or the instrumentation woven by the DSL) pushes samples; the autotuner
/// and the SLA checker read aggregates.
///
/// The rolling statistics live in a telemetry::Series owned by the global
/// telemetry registry, so every monitored stream is visible to the exporters
/// (metrics JSON, summary table) without extra plumbing, and there is a
/// single rolling-stats implementation in the codebase. Constructing a
/// Monitor claims (and resets) the registry stream of the same name; two
/// live monitors with the same metric name share one stream.
class Monitor {
 public:
  explicit Monitor(std::string metric, std::size_t window = 64);

  const std::string& metric() const { return metric_; }
  void push(double sample);

  std::size_t samples() const { return series_->count(); }
  bool empty() const { return series_->empty(); }
  double last() const;
  double window_mean() const;
  double window_percentile(double p) const;
  double ewma() const { return series_->ewma(); }
  void clear();

 private:
  std::string metric_;
  telemetry::Series* series_;  ///< owned by telemetry::Registry::global()
};

/// Service Level Agreement goal over one metric.
struct Goal {
  enum class Op { LessThan, GreaterThan };
  std::string metric;
  Op op = Op::LessThan;
  double bound = 0.0;

  bool satisfied_by(double value) const {
    return op == Op::LessThan ? value < bound : value > bound;
  }
};

}  // namespace antarex::tuner
