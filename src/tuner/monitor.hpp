// Monitors and goals — the "collect" and SLA sides of the autotuner's
// collect-analyse-decide-act loop (paper Sec. II & IV).
#pragma once

#include <string>
#include <vector>

#include "support/stats.hpp"

namespace antarex::tuner {

/// A named runtime metric stream with windowed statistics. The application
/// (or the instrumentation woven by the DSL) pushes samples; the autotuner
/// and the SLA checker read aggregates.
class Monitor {
 public:
  explicit Monitor(std::string metric, std::size_t window = 64);

  const std::string& metric() const { return metric_; }
  void push(double sample);

  std::size_t samples() const { return total_; }
  bool empty() const { return total_ == 0; }
  double last() const;
  double window_mean() const;
  double window_percentile(double p) const;
  double ewma() const { return ewma_.value(); }
  void clear();

 private:
  std::string metric_;
  SlidingWindow window_;
  Ewma ewma_;
  double last_ = 0.0;
  std::size_t total_ = 0;
};

/// Service Level Agreement goal over one metric.
struct Goal {
  enum class Op { LessThan, GreaterThan };
  std::string metric;
  Op op = Op::LessThan;
  double bound = 0.0;

  bool satisfied_by(double value) const {
    return op == Op::LessThan ? value < bound : value > bound;
  }
};

}  // namespace antarex::tuner
