// Software knobs and the design space (paper Sec. I: "tuning software knobs
// (including application parameters, code transformations and code
// variants)").
//
// Grey-box positioning (Sec. IV): the space supports *annotations* — range
// restrictions from code annotations — that shrink what the autotuner must
// explore, without requiring full domain knowledge.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::tuner {

/// One discrete tuning knob: an application parameter (tile size, batch
/// size), a code-variant selector, or a precision level.
struct Knob {
  std::string name;
  std::vector<double> values;
};

/// A point in the design space: one value index per knob.
using Configuration = std::vector<std::size_t>;

/// Stable dictionary key for a configuration.
std::string config_key(const Configuration& c);

class DesignSpace {
 public:
  void add_knob(Knob k);

  std::size_t knob_count() const { return knobs_.size(); }
  const Knob& knob(std::size_t i) const;
  int knob_index(const std::string& name) const;  ///< -1 if absent

  /// Total number of configurations (product of per-knob candidate counts,
  /// honoring annotations).
  std::size_t size() const;

  /// Decode a flat index in [0, size()) into a configuration.
  Configuration at(std::size_t flat_index) const;

  /// The actual knob value selected by a configuration.
  double value(const Configuration& c, const std::string& knob_name) const;
  double value(const Configuration& c, std::size_t knob_index) const;

  /// Grey-box annotation: restrict a knob to values within [lo, hi]. The
  /// excluded values stay in the knob definition but are never proposed.
  void restrict_range(const std::string& knob_name, double lo, double hi);
  /// Drop all annotations (back to the full space).
  void clear_restrictions();

  /// Candidate value-indices for a knob under current annotations.
  const std::vector<std::size_t>& candidates(std::size_t knob_index) const;

  /// Validity check for externally produced configurations.
  bool valid(const Configuration& c) const;

 private:
  std::vector<Knob> knobs_;
  std::vector<std::vector<std::size_t>> candidates_;  ///< per knob
};

}  // namespace antarex::tuner
