// Knowledge base: what the autotuner has learned about each configuration.
//
// "Continuous on-line learning techniques are adopted to update the knowledge
// from the data collected by the monitors" (paper Sec. IV): measurements are
// folded into per-configuration running statistics; queries filter by SLA
// goals and rank by the objective.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "tuner/knob.hpp"
#include "tuner/monitor.hpp"

namespace antarex::tuner {

struct Measurement {
  Configuration config;
  std::map<std::string, double> metrics;
};

class Knowledge {
 public:
  void observe(const Measurement& m);

  bool has(const Configuration& c) const;
  std::size_t distinct_configs() const { return table_.size(); }
  std::size_t observations() const { return observations_; }

  /// Mean of a metric for a configuration; nullopt if never observed.
  std::optional<double> mean(const Configuration& c, const std::string& metric) const;

  /// All configurations with at least one observation.
  std::vector<Configuration> configs() const;
  std::size_t samples(const Configuration& c) const;

  /// Best-known configuration for the objective among those whose *known
  /// means* satisfy every goal. Returns nullopt if nothing qualifies.
  std::optional<Configuration> best(const std::string& objective, bool minimize,
                                    const std::vector<Goal>& goals = {}) const;

  /// Non-dominated configurations for two objectives, both minimized
  /// (negate a metric at observe time to maximize it). This is the
  /// mARGOt-style multi-objective operating-point list — e.g. the
  /// time/energy front the RTRM picks from when the power budget changes.
  /// Sorted ascending by the first metric; configs missing either metric are
  /// excluded.
  std::vector<Configuration> pareto_front(const std::string& metric_a,
                                          const std::string& metric_b) const;

  /// Nearest observed configuration to `probe` by squared distance over the
  /// knob value-indices (same-arity entries only; ties break by config_key).
  /// With `metric` given, only entries with at least one observation of that
  /// metric qualify — the cross-run warm-start query: "which configuration
  /// that I have real numbers for sits closest to this point?". nullopt when
  /// nothing qualifies.
  std::optional<Configuration> nearest(const Configuration& probe,
                                       const std::string& metric = {}) const;

  void clear();

  /// Serialize to a line-oriented text format (mARGOt-style operating-point
  /// list: design-time exploration results shipped to deploy time, the
  /// "conveying the results to runtime optimizers" of paper Sec. III-B).
  /// Format, one line per (config, metric):  `<i0,i1,...> <metric> <n> <mean>`
  std::string export_text() const;

  /// Merge a previously exported list into this knowledge base. Each line
  /// re-observes the stored mean n times (variance is not preserved —
  /// deploy-time knowledge seeds the mean, runtime samples refine it).
  /// Throws antarex::Error on malformed input.
  void import_text(const std::string& text);

 private:
  struct Entry {
    Configuration config;
    std::map<std::string, RunningStats> stats;
  };

  std::map<std::string, Entry> table_;  ///< keyed by config_key
  std::size_t observations_ = 0;
};

}  // namespace antarex::tuner
