// antarex::fault — umbrella header.
//
// Deterministic fault injection for the simulated plant: seeded schedules of
// node crashes (Weibull MTBF), transient RAPL sensor glitches, forced thermal
// throttles, and slow-node degradation, injected into an rtrm::Cluster
// through its step-observer hook. Replays are bit-identical from the
// (seed, schedule) pair — see FaultInjector::replay_trace().
#pragma once

#include "fault/injector.hpp"
#include "fault/schedule.hpp"
