#include "fault/shard_driver.hpp"

#include <cstdio>

#include "telemetry/telemetry.hpp"

namespace antarex::fault {

ShardFaultDriver::ShardFaultDriver(rtrm::ShardedCluster& cluster,
                                   FaultSchedule schedule)
    : cluster_(cluster), schedule_(std::move(schedule)) {
  cluster_.add_step_observer([this](double now, double it_power, double dt) {
    on_step(now, it_power, dt);
  });
  cluster_.dispatcher().set_event_hook(
      [this](const char* kind, u64 job_id, double t) {
        char line[96];
        std::snprintf(line, sizeof(line), "%.17g %s job=%llu", t, kind,
                      static_cast<unsigned long long>(job_id));
        log_.emplace_back(line);
      });
}

void ShardFaultDriver::on_step(double now_s, double /*it_power_w*/,
                               double dt_s) {
  const std::size_t down = cluster_.nodes_down();
  if (down > 0) {
    stats_.time_under_fault_s += dt_s;
    stats_.node_downtime_s += static_cast<double>(down) * dt_s;
  }
  // Apply everything due by now: the same fixed quantization as the legacy
  // injector, so both engines see each event on the same step boundary.
  while (cursor_ < schedule_.events.size() &&
         schedule_.events[cursor_].at_s <= now_s + 1e-12) {
    apply(schedule_.events[cursor_]);
    ++cursor_;
  }
}

void ShardFaultDriver::apply(const FaultEvent& e) {
  TELEMETRY_SPAN("fault.inject");
  ANTAREX_REQUIRE(e.node < cluster_.node_count(),
                  "ShardFaultDriver: event for a node outside the cluster");

  switch (e.kind) {
    case FaultKind::NodeCrash:
      cluster_.fail_node(e.node);
      ++stats_.crashes;
      TELEMETRY_COUNT("fault.crashes", 1);
      break;
    case FaultKind::NodeRepair:
      cluster_.repair_node(e.node);
      ++stats_.repairs;
      TELEMETRY_COUNT("fault.repairs", 1);
      break;
    case FaultKind::SensorGlitch:
      ANTAREX_REQUIRE(e.device < cluster_.node_device_count(e.node),
                      "ShardFaultDriver: glitch for a missing device");
      cluster_.set_reading_offset_j(e.node, e.device, e.magnitude);
      telemetry::mark_samples_poisoned();
      ++stats_.glitches;
      TELEMETRY_COUNT("fault.glitches", 1);
      break;
    case FaultKind::GlitchClear:
      ANTAREX_REQUIRE(e.device < cluster_.node_device_count(e.node),
                      "ShardFaultDriver: glitch-clear for a missing device");
      cluster_.set_reading_offset_j(e.node, e.device, 0.0);
      telemetry::mark_samples_poisoned();
      break;
    case FaultKind::ThermalThrottle:
      ANTAREX_REQUIRE(e.device < cluster_.node_device_count(e.node),
                      "ShardFaultDriver: throttle for a missing device");
      cluster_.force_throttle(e.node, e.device, e.duration_s);
      ++stats_.throttles;
      TELEMETRY_COUNT("fault.throttles", 1);
      break;
    case FaultKind::SlowNode:
      cluster_.set_node_slowdown(e.node, e.magnitude);
      ++stats_.slowdowns;
      TELEMETRY_COUNT("fault.slowdowns", 1);
      break;
    case FaultKind::SlowNodeEnd:
      cluster_.set_node_slowdown(e.node, 1.0);
      break;
  }

  char line[160];
  std::snprintf(line, sizeof(line), "%.17g %s node=%u dev=%u mag=%.17g",
                e.at_s, fault_kind_name(e.kind), e.node, e.device, e.magnitude);
  log_.emplace_back(line);
}

std::string ShardFaultDriver::replay_trace() const {
  std::string out;
  out += schedule_.to_text();
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  const rtrm::ClusterTelemetry& t = cluster_.telemetry();
  char line[256];
  std::snprintf(line, sizeof(line),
                "final time=%.17g it_energy_j=%.17g completed=%llu "
                "failed=%llu requeued=%llu under_fault_s=%.17g\n",
                t.time_s, t.it_energy_j,
                static_cast<unsigned long long>(t.jobs_completed),
                static_cast<unsigned long long>(t.jobs_failed),
                static_cast<unsigned long long>(
                    cluster_.dispatcher().requeued_jobs()),
                stats_.time_under_fault_s);
  out += line;
  return out;
}

}  // namespace antarex::fault
