// antarex::fault — deterministic fault schedules.
//
// A FaultSchedule is a pre-generated, sorted list of timestamped events
// (node crashes/repairs, sensor glitches, thermal throttles, slow-node
// episodes) drawn from a FaultModel by per-(node, device, kind) RNG streams.
// The same (model, topology, horizon, seed) always yields the same schedule,
// and the schedule alone — not the generator — drives injection, so a run can
// be replayed bit-identically from its (seed, schedule) pair.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::fault {

enum class FaultKind {
  NodeCrash,        ///< node powers off; running jobs are interrupted
  NodeRepair,       ///< node rejoins the cluster
  SensorGlitch,     ///< a RAPL reading offset appears (magnitude joules)
  GlitchClear,      ///< the reading offset vanishes
  ThermalThrottle,  ///< device pinned to its lowest P-state for duration_s
  SlowNode,         ///< all devices on the node slow down by `magnitude`x
  SlowNodeEnd,      ///< the slowdown ends
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  double at_s = 0.0;    ///< virtual time the event fires
  FaultKind kind = FaultKind::NodeCrash;
  u32 node = 0;
  u32 device = 0;       ///< device index within the node (glitch/throttle)
  double magnitude = 0.0;  ///< joules (glitch) or slowdown factor (slow-node)
  double duration_s = 0.0; ///< informational; the paired end event is explicit
};

/// Stochastic fault environment. Every rate of 0 (the default) disables that
/// fault class, so a default-constructed model injects nothing.
struct FaultModel {
  // Node crashes: Weibull interarrival (shape > 1 = wear-out), lognormal
  // repair time. mtbf_s is the *scale* parameter of the interarrival.
  double crash_mtbf_s = 0.0;
  double crash_weibull_shape = 1.5;
  double repair_mean_s = 30.0;
  double repair_sigma = 0.25;

  // Transient sensor glitches on per-device RAPL counters: Poisson arrivals,
  // fixed offset magnitude, fixed visibility window.
  double glitch_rate_hz = 0.0;
  double glitch_magnitude_j = 50.0;
  double glitch_duration_s = 2.0;

  // Forced thermal throttles (firmware pinning a device to its lowest
  // P-state): Poisson arrivals per device.
  double throttle_rate_hz = 0.0;
  double throttle_duration_s = 5.0;

  // Slow-node degradation (failing fan, OS noise): Poisson arrivals per node,
  // all devices on the node run `slowdown_factor`x slower for the episode.
  double slowdown_rate_hz = 0.0;
  double slowdown_factor = 2.0;
  double slowdown_duration_s = 20.0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  ///< sorted by (at_s, node, device, kind)
  u64 seed = 0;
  double horizon_s = 0.0;

  /// Canonical one-line-per-event serialization (used by the golden replay
  /// fixtures and for debugging).
  std::string to_text() const;
};

/// Draw a schedule over [0, horizon_s) for a cluster of `nodes` nodes with
/// `devices_per_node` devices each. Per-(node, device, kind) generator
/// streams are derived from `seed` with SplitMix64, so adding a fault class
/// or a node never perturbs the other streams. Paired begin/end events are
/// generated sequentially on each timeline and therefore never overlap
/// themselves (a node is not re-crashed while down).
FaultSchedule generate_schedule(const FaultModel& model, std::size_t nodes,
                                std::size_t devices_per_node, double horizon_s,
                                u64 seed);

}  // namespace antarex::fault
