// antarex::fault — the fault injector.
//
// A FaultInjector binds a FaultSchedule to a live rtrm::Cluster: it attaches
// itself as a step observer (Cluster::add_step_observer) and, after every
// simulation step, applies all scheduled events whose timestamp has been
// reached. Events carry virtual timestamps, injection is driven purely by the
// schedule and the cluster's logical clock, and the dispatcher's lifecycle
// hook is folded into the same log — so a (seed, schedule) pair replays
// bit-identically, including across exec thread counts (see replay_trace()).
//
// Every injection and recovery is also emitted as telemetry (fault.* counters
// and the fault.inject span), so obs attribution and the HTML report can show
// time-under-fault alongside energy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "rtrm/cluster.hpp"

namespace antarex::fault {

struct InjectorStats {
  u64 crashes = 0;
  u64 repairs = 0;
  u64 glitches = 0;
  u64 throttles = 0;
  u64 slowdowns = 0;
  double time_under_fault_s = 0.0;  ///< integral of (any node down) over time
  double node_downtime_s = 0.0;     ///< integral of (#nodes down) * dt
};

class FaultInjector {
 public:
  /// Attaches to the cluster as an additional step observer. The injector
  /// must outlive the cluster's run calls (or the cluster must detach all
  /// observers first).
  FaultInjector(rtrm::Cluster& cluster, FaultSchedule schedule);

  const InjectorStats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }
  /// Events applied so far (monotone virtual timestamps).
  std::size_t applied() const { return cursor_; }

  /// The injector's replay log: one line per applied fault event and per
  /// dispatcher lifecycle event (dispatch/finish/requeue/fail), in virtual
  /// time order.
  const std::vector<std::string>& log() const { return log_; }

  /// Canonical trace of a completed faulted run: the replay log, the
  /// rtrm./fault./power. counters of the global telemetry registry (sorted by
  /// name; exec.* counters are excluded — they legitimately vary with thread
  /// count), and the cluster's final scalars, all at full precision. Two runs
  /// are replays of each other iff these strings are byte-identical.
  std::string replay_trace() const;

 private:
  void on_step(double now_s, double it_power_w, double dt_s);
  void apply(const FaultEvent& e);

  rtrm::Cluster& cluster_;
  FaultSchedule schedule_;
  std::size_t cursor_ = 0;
  InjectorStats stats_;
  std::vector<std::string> log_;
};

}  // namespace antarex::fault
