#include "fault/injector.hpp"

#include <cstdio>

#include "telemetry/telemetry.hpp"

namespace antarex::fault {

FaultInjector::FaultInjector(rtrm::Cluster& cluster, FaultSchedule schedule)
    : cluster_(cluster), schedule_(std::move(schedule)) {
  cluster_.add_step_observer(
      [this](double now, double it_power, double dt) {
        on_step(now, it_power, dt);
      });
  cluster_.dispatcher().set_event_hook(
      [this](const char* kind, u64 job_id, double t) {
        char line[96];
        std::snprintf(line, sizeof(line), "%.17g %s job=%llu", t, kind,
                      static_cast<unsigned long long>(job_id));
        log_.emplace_back(line);
      });
}

void FaultInjector::on_step(double now_s, double /*it_power_w*/, double dt_s) {
  // Fault-time accounting for the step that just landed.
  const std::size_t down = cluster_.nodes_down();
  if (down > 0) {
    stats_.time_under_fault_s += dt_s;
    stats_.node_downtime_s += static_cast<double>(down) * dt_s;
  }
  // Apply everything due by now. Events land at the first step boundary at or
  // after their timestamp — a fixed quantization, identical in every replay.
  while (cursor_ < schedule_.events.size() &&
         schedule_.events[cursor_].at_s <= now_s + 1e-12) {
    apply(schedule_.events[cursor_]);
    ++cursor_;
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  TELEMETRY_SPAN("fault.inject");
  ANTAREX_REQUIRE(e.node < cluster_.nodes().size(),
                  "FaultInjector: event for a node outside the cluster");
  rtrm::Node& node = cluster_.nodes()[e.node];

  switch (e.kind) {
    case FaultKind::NodeCrash:
      cluster_.fail_node(e.node);
      ++stats_.crashes;
      TELEMETRY_COUNT("fault.crashes", 1);
      break;
    case FaultKind::NodeRepair:
      cluster_.repair_node(e.node);
      ++stats_.repairs;
      TELEMETRY_COUNT("fault.repairs", 1);
      break;
    case FaultKind::SensorGlitch:
      ANTAREX_REQUIRE(e.device < node.device_count(),
                      "FaultInjector: glitch for a missing device");
      node.device(e.device).rapl().set_reading_offset_j(e.magnitude);
      telemetry::mark_samples_poisoned();
      ++stats_.glitches;
      TELEMETRY_COUNT("fault.glitches", 1);
      break;
    case FaultKind::GlitchClear:
      ANTAREX_REQUIRE(e.device < node.device_count(),
                      "FaultInjector: glitch-clear for a missing device");
      node.device(e.device).rapl().set_reading_offset_j(0.0);
      // The clear also poisons: a tuner sample spanning it saw a mid-window
      // reading jump, same as at onset.
      telemetry::mark_samples_poisoned();
      break;
    case FaultKind::ThermalThrottle:
      ANTAREX_REQUIRE(e.device < node.device_count(),
                      "FaultInjector: throttle for a missing device");
      node.device(e.device).force_throttle(e.duration_s);
      ++stats_.throttles;
      TELEMETRY_COUNT("fault.throttles", 1);
      break;
    case FaultKind::SlowNode:
      for (auto& d : node.devices()) d.set_slowdown(e.magnitude);
      ++stats_.slowdowns;
      TELEMETRY_COUNT("fault.slowdowns", 1);
      break;
    case FaultKind::SlowNodeEnd:
      for (auto& d : node.devices()) d.set_slowdown(1.0);
      break;
  }

  char line[160];
  std::snprintf(line, sizeof(line), "%.17g %s node=%u dev=%u mag=%.17g",
                e.at_s, fault_kind_name(e.kind), e.node, e.device, e.magnitude);
  log_.emplace_back(line);
}

std::string FaultInjector::replay_trace() const {
  std::string out;
  out += schedule_.to_text();
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  // Registry counters: only the simulation-side prefixes. exec.* (tasks,
  // steals, retries) legitimately differ across thread counts; the simulated
  // plant must not.
  const auto counters = telemetry::Registry::global().counters();
  for (const auto& [name, c] : counters) {
    if (name.rfind("rtrm.", 0) != 0 && name.rfind("fault.", 0) != 0 &&
        name.rfind("power.", 0) != 0)
      continue;
    // A zero counter only tells us the instrument object exists, which
    // depends on what else ran in this process before the replay — skip so
    // the trace reflects the run alone.
    if (c->value() == 0) continue;
    char line[160];
    std::snprintf(line, sizeof(line), "counter %s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  const rtrm::ClusterTelemetry& t = cluster_.telemetry();
  char line[256];
  std::snprintf(line, sizeof(line),
                "final time=%.17g it_energy_j=%.17g completed=%llu "
                "failed=%llu requeued=%llu under_fault_s=%.17g\n",
                t.time_s, t.it_energy_j,
                static_cast<unsigned long long>(t.jobs_completed),
                static_cast<unsigned long long>(t.jobs_failed),
                static_cast<unsigned long long>(
                    cluster_.dispatcher().requeued_jobs()),
                stats_.time_under_fault_s);
  out += line;
  return out;
}

}  // namespace antarex::fault
