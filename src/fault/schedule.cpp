#include "fault/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/rng.hpp"

namespace antarex::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::NodeCrash: return "crash";
    case FaultKind::NodeRepair: return "repair";
    case FaultKind::SensorGlitch: return "glitch";
    case FaultKind::GlitchClear: return "glitch-clear";
    case FaultKind::ThermalThrottle: return "throttle";
    case FaultKind::SlowNode: return "slow";
    case FaultKind::SlowNodeEnd: return "slow-end";
  }
  return "?";
}

std::string FaultSchedule::to_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "schedule seed=%llu horizon=%.17g n=%zu\n",
                static_cast<unsigned long long>(seed), horizon_s,
                events.size());
  out += line;
  for (const FaultEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "%.17g %s node=%u dev=%u mag=%.17g dur=%.17g\n", e.at_s,
                  fault_kind_name(e.kind), e.node, e.device, e.magnitude,
                  e.duration_s);
    out += line;
  }
  return out;
}

namespace {

/// One generator per (seed, node, device, kind): streams stay independent
/// when the topology or the enabled fault classes change.
Rng stream(u64 seed, std::size_t node, std::size_t device, FaultKind kind) {
  SplitMix64 mix(seed);
  u64 s = mix.next() ^ (0x9e3779b97f4a7c15ULL * (static_cast<u64>(node) + 1));
  s ^= 0xbf58476d1ce4e5b9ULL * (static_cast<u64>(device) + 1);
  s ^= 0x94d049bb133111ebULL * (static_cast<u64>(kind) + 1);
  return Rng(SplitMix64(s).next());
}

/// Sequential begin/end timeline: interarrival from `next_gap`, episode
/// length from `next_len`; the next gap starts after the episode ends, so
/// episodes on one timeline never overlap.
template <typename Gap, typename Len, typename Emit>
void timeline(double horizon_s, Gap next_gap, Len next_len, Emit emit) {
  double t = 0.0;
  while (true) {
    t += next_gap();
    if (t >= horizon_s) return;
    const double len = next_len();
    emit(t, len);
    t += len;
  }
}

}  // namespace

FaultSchedule generate_schedule(const FaultModel& model, std::size_t nodes,
                                std::size_t devices_per_node, double horizon_s,
                                u64 seed) {
  ANTAREX_REQUIRE(horizon_s > 0.0, "generate_schedule: non-positive horizon");
  ANTAREX_REQUIRE(nodes > 0, "generate_schedule: no nodes");
  FaultSchedule out;
  out.seed = seed;
  out.horizon_s = horizon_s;

  auto push = [&](double t, FaultKind kind, std::size_t node,
                  std::size_t device, double mag, double dur) {
    FaultEvent e;
    e.at_s = t;
    e.kind = kind;
    e.node = static_cast<u32>(node);
    e.device = static_cast<u32>(device);
    e.magnitude = mag;
    e.duration_s = dur;
    out.events.push_back(e);
  };

  for (std::size_t n = 0; n < nodes; ++n) {
    if (model.crash_mtbf_s > 0.0) {
      Rng rng = stream(seed, n, 0, FaultKind::NodeCrash);
      timeline(
          horizon_s,
          [&] { return rng.weibull(model.crash_weibull_shape, model.crash_mtbf_s); },
          [&] {
            const double mu = std::log(std::max(1e-9, model.repair_mean_s)) -
                              0.5 * model.repair_sigma * model.repair_sigma;
            return rng.lognormal(mu, model.repair_sigma);
          },
          [&](double t, double len) {
            push(t, FaultKind::NodeCrash, n, 0, 0.0, len);
            push(t + len, FaultKind::NodeRepair, n, 0, 0.0, 0.0);
          });
    }
    if (model.slowdown_rate_hz > 0.0) {
      Rng rng = stream(seed, n, 0, FaultKind::SlowNode);
      timeline(
          horizon_s, [&] { return rng.exponential(model.slowdown_rate_hz); },
          [&] { return model.slowdown_duration_s; },
          [&](double t, double len) {
            push(t, FaultKind::SlowNode, n, 0, model.slowdown_factor, len);
            push(t + len, FaultKind::SlowNodeEnd, n, 0, 1.0, 0.0);
          });
    }
    for (std::size_t d = 0; d < devices_per_node; ++d) {
      if (model.glitch_rate_hz > 0.0) {
        Rng rng = stream(seed, n, d, FaultKind::SensorGlitch);
        timeline(
            horizon_s, [&] { return rng.exponential(model.glitch_rate_hz); },
            [&] { return model.glitch_duration_s; },
            [&](double t, double len) {
              // Signed offset: glitches read high or low with equal odds.
              const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
              push(t, FaultKind::SensorGlitch, n, d,
                   sign * model.glitch_magnitude_j, len);
              push(t + len, FaultKind::GlitchClear, n, d, 0.0, 0.0);
            });
      }
      if (model.throttle_rate_hz > 0.0) {
        Rng rng = stream(seed, n, d, FaultKind::ThermalThrottle);
        timeline(
            horizon_s, [&] { return rng.exponential(model.throttle_rate_hz); },
            [&] { return model.throttle_duration_s; },
            [&](double t, double len) {
              push(t, FaultKind::ThermalThrottle, n, d, 0.0, len);
            });
      }
    }
  }

  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at_s != b.at_s) return a.at_s < b.at_s;
                     if (a.node != b.node) return a.node < b.node;
                     if (a.device != b.device) return a.device < b.device;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return out;
}

}  // namespace antarex::fault
