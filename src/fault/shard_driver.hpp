// Fault replay against the SoA engine (rtrm::ShardedCluster).
//
// ShardFaultDriver is the FaultInjector's exact counterpart for the sharded
// plant: the same step-boundary quantization (events land at the first step
// whose time is >= at_s - 1e-12), the same per-event log lines, and the same
// stats — so a (seed, schedule) pair applied to a legacy Cluster and to a
// ShardedCluster produces the same plant trajectory and the same replay log,
// which is exactly what the differential suite asserts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "rtrm/sharded_cluster.hpp"

namespace antarex::fault {

class ShardFaultDriver {
 public:
  /// Attaches to the cluster as an additional step observer and folds the
  /// dispatcher's lifecycle events into the same log. Must outlive the
  /// cluster's run calls.
  ShardFaultDriver(rtrm::ShardedCluster& cluster, FaultSchedule schedule);

  const InjectorStats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }
  std::size_t applied() const { return cursor_; }
  const std::vector<std::string>& log() const { return log_; }

  /// Replay log + final cluster scalars at full precision. Unlike
  /// FaultInjector::replay_trace this omits the global telemetry counters:
  /// the SoA engine batches RAPL accounting (no per-accumulate power.*
  /// counter traffic), so registry counts are not comparable across engines —
  /// the differential tests compare plant state instead.
  std::string replay_trace() const;

 private:
  void on_step(double now_s, double it_power_w, double dt_s);
  void apply(const FaultEvent& e);

  rtrm::ShardedCluster& cluster_;
  FaultSchedule schedule_;
  std::size_t cursor_ = 0;
  InjectorStats stats_;
  std::vector<std::string> log_;
};

}  // namespace antarex::fault
