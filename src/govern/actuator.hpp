// antarex::govern actuators — the "act" edge of the observe-decide-act loop.
//
// An Actuator is a stepped restriction knob over some part of the stack: each
// restrict() moves it one notch away from nominal (less power / parallelism /
// admission), each relax() moves it one notch back. Steps are discrete and
// bounded, so an actuating policy or the CapCoordinator can walk the ladder
// without knowing what lies behind it, and level() reports where on the
// ladder the knob currently sits.
//
// Concrete actuators:
//  - DvfsActuator      global P-state step-down on an rtrm::Cluster (one
//                      notch = every device clamped one more P-state below
//                      its top; the classical power knob of paper Sec. V)
//  - ExecActuator      exec::ThreadPool throttle: first parks workers down
//                      to a floor, then doubles the parallel_for grain —
//                      fewer active cores, then fewer scheduling points
//  - NavActuator       halves nav::NavServer's admission window per notch —
//                      the server trades throughput for draw under a cap
//
// All actuators mutate their target deterministically and synchronously on
// the caller's thread; none of them touches an RNG.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "support/common.hpp"

namespace antarex::rtrm {
class Cluster;
}
namespace antarex::exec {
class ThreadPool;
}
namespace antarex::nav {
class NavServer;
}

namespace antarex::govern {

class Actuator {
 public:
  virtual ~Actuator() = default;

  virtual const std::string& name() const = 0;

  /// One notch toward maximum restriction. Returns false when already at the
  /// bottom of the ladder (no state changed).
  virtual bool restrict() = 0;
  /// One notch back toward nominal. Returns false at nominal.
  virtual bool relax() = 0;

  /// Notches currently applied, in [0, max_steps()].
  virtual std::size_t steps() const = 0;
  virtual std::size_t max_steps() const = 0;

  /// 1 = nominal, 0 = maximally restricted.
  double level() const {
    const std::size_t m = max_steps();
    return m == 0 ? 1.0
                  : 1.0 - static_cast<double>(steps()) / static_cast<double>(m);
  }

  /// Back to nominal (relax everything).
  void reset() {
    while (relax()) {
    }
  }
};

/// Cluster-wide DVFS stepping via rtrm::Cluster::set_op_step_down. max_steps
/// is the deepest DVFS table across the cluster's devices minus one, frozen
/// at construction.
class DvfsActuator final : public Actuator {
 public:
  explicit DvfsActuator(rtrm::Cluster& cluster);

  const std::string& name() const override { return name_; }
  bool restrict() override;
  bool relax() override;
  std::size_t steps() const override { return steps_; }
  std::size_t max_steps() const override { return max_steps_; }

 private:
  std::string name_ = "dvfs";
  rtrm::Cluster& cluster_;
  std::size_t steps_ = 0;
  std::size_t max_steps_;
};

/// exec::ThreadPool throttle. The ladder first steps the worker limit from
/// size() down to min_workers (one worker per notch), then doubles the grain
/// scale per notch up to max_grain_scale. relax() walks back in reverse.
class ExecActuator final : public Actuator {
 public:
  explicit ExecActuator(exec::ThreadPool& pool, int min_workers = 1,
                        double max_grain_scale = 8.0);

  const std::string& name() const override { return name_; }
  bool restrict() override;
  bool relax() override;
  std::size_t steps() const override { return steps_; }
  std::size_t max_steps() const override { return max_steps_; }

 private:
  void apply() const;  ///< push the ladder position into the pool

  std::string name_ = "exec";
  exec::ThreadPool& pool_;
  int min_workers_;
  std::size_t worker_steps_;  ///< notches that remove a worker
  std::size_t grain_steps_;   ///< notches that double the grain
  std::size_t max_steps_;
  std::size_t steps_ = 0;
};

/// nav::NavServer admission shrink: each notch halves the window (floor
/// min_window), relax doubles it back toward nominal_window.
class NavActuator final : public Actuator {
 public:
  NavActuator(nav::NavServer& server, std::size_t nominal_window,
              std::size_t min_window = 1);

  const std::string& name() const override { return name_; }
  bool restrict() override;
  bool relax() override;
  std::size_t steps() const override { return steps_; }
  std::size_t max_steps() const override { return max_steps_; }

  std::size_t window() const;  ///< current admission window

 private:
  void apply() const;

  std::string name_ = "nav";
  nav::NavServer& server_;
  std::size_t nominal_;
  std::size_t min_;
  std::size_t max_steps_;
  std::size_t steps_ = 0;
};

}  // namespace antarex::govern
