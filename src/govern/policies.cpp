#include "govern/policies.hpp"

#include <utility>

namespace antarex::govern {

namespace {

bool gauge_above(const obs::PolicyContext& ctx, const char* name,
                 double threshold) {
  const telemetry::Gauge& g = ctx.registry->gauge(name);
  return g.updates() > 0 && g.last() > threshold;
}

bool gauge_below(const obs::PolicyContext& ctx, const char* name,
                 double threshold) {
  const telemetry::Gauge& g = ctx.registry->gauge(name);
  return g.updates() > 0 && g.last() < threshold;
}

}  // namespace

InstalledPolicies install_actuating_policies(
    obs::PolicyEngine& engine, std::vector<std::shared_ptr<Actuator>> ladder,
    std::shared_ptr<Actuator> thermal, std::shared_ptr<Actuator> nav,
    ActuatingPolicyConfig cfg) {
  InstalledPolicies out;
  obs::PolicyOptions opts;
  opts.cooldown_s = cfg.cooldown_s;

  if (cfg.power_cap_w > 0.0 && !ladder.empty()) {
    auto shared = std::make_shared<std::vector<std::shared_ptr<Actuator>>>(
        std::move(ladder));
    out.power_restrict = engine.add_actuating(
        "govern.power_restrict",
        [cap = cfg.power_cap_w](const obs::PolicyContext& ctx) {
          return gauge_above(ctx, "rtrm.power_draw_w", cap);
        },
        [shared](const obs::PolicyContext&) {
          for (auto& a : *shared)
            if (a->restrict()) return obs::PolicyAction::Restrict;
          return obs::PolicyAction::None;  // ladder exhausted
        },
        opts);
    out.power_relax = engine.add_actuating(
        "govern.power_relax",
        [relax_at = cfg.power_cap_w * cfg.relax_fraction](
            const obs::PolicyContext& ctx) {
          return gauge_below(ctx, "rtrm.power_draw_w", relax_at);
        },
        [shared](const obs::PolicyContext&) {
          for (auto it = shared->rbegin(); it != shared->rend(); ++it)
            if ((*it)->relax()) return obs::PolicyAction::Relax;
          return obs::PolicyAction::None;  // already nominal
        },
        opts);
  }

  if (thermal) {
    out.thermal = engine.add_actuating(
        "govern.thermal_restrict",
        [margin = cfg.thermal_headroom_c](const obs::PolicyContext& ctx) {
          return gauge_below(ctx, "rtrm.thermal_headroom_c", margin);
        },
        [thermal](const obs::PolicyContext&) {
          return thermal->restrict() ? obs::PolicyAction::Restrict
                                     : obs::PolicyAction::None;
        },
        opts);
  }

  if (nav) {
    out.nav = engine.add_actuating(
        "govern.nav_shed",
        [limit = cfg.nav_queue_limit](const obs::PolicyContext& ctx) {
          const telemetry::Gauge& g = ctx.registry->gauge("nav.queue_depth");
          return g.updates() > 0 && g.last() >= limit;
        },
        [nav](const obs::PolicyContext&) {
          return nav->restrict() ? obs::PolicyAction::Restrict
                                 : obs::PolicyAction::None;
        },
        opts);
  }

  return out;
}

}  // namespace antarex::govern
