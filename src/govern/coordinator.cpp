#include "govern/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "causal/ledger.hpp"
#include "rtrm/dispatcher.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::govern {

CapCoordinator::CapCoordinator(rtrm::Cluster& cluster, CapCoordinatorConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  ANTAREX_REQUIRE(cfg_.cluster_cap_w > 0.0,
                  "CapCoordinator: non-positive cluster cap");
  ANTAREX_REQUIRE(cfg_.epoch_s > 0.0, "CapCoordinator: non-positive epoch");
  ANTAREX_REQUIRE(cfg_.guard_fraction >= 0.0 && cfg_.guard_fraction < 1.0,
                  "CapCoordinator: guard_fraction must be in [0, 1)");
  ANTAREX_REQUIRE(cfg_.fairness_alpha >= 0.0,
                  "CapCoordinator: negative fairness_alpha");
  ANTAREX_REQUIRE(cfg_.actuator_patience_epochs >= 1,
                  "CapCoordinator: patience must be >= 1");
  ANTAREX_REQUIRE(cfg_.actuator_cooldown_s >= 0.0,
                  "CapCoordinator: negative cooldown");
  ANTAREX_REQUIRE(cfg_.relax_margin > 0.0 && cfg_.relax_margin < 1.0,
                  "CapCoordinator: relax_margin must be in (0, 1)");
}

void CapCoordinator::add_actuator(std::shared_ptr<Actuator> actuator) {
  ANTAREX_REQUIRE(actuator != nullptr, "CapCoordinator: null actuator");
  actuators_.push_back(std::move(actuator));
}

double CapCoordinator::node_floor_w(const rtrm::Node& node) const {
  // The node's draw with every device idle at its lowest P-state: the budget
  // below which a controller cannot help (same floor the built-in
  // ClusterPowerManager guarantees).
  double f = node.base_power_w();
  for (const auto& d : node.devices())
    f += d.power_model().idle_power_w(d.spec().dvfs.lowest(),
                                      d.temperature_c());
  return f;
}

void CapCoordinator::attach() {
  ANTAREX_REQUIRE(!attached_, "CapCoordinator: already attached");
  const std::size_t n = cluster_.nodes().size();
  ANTAREX_REQUIRE(n > 0, "CapCoordinator: cluster has no nodes");
  while (node_ctl_.size() < n) node_ctl_.emplace_back(1.0);
  node_epoch_j_.assign(n, 0.0);
  budgets_w_.assign(n, 0.0);
  epoch_j_ = 0.0;
  epoch_t_ = 0.0;
  over_streak_ = under_streak_ = 0;
  attach_s_ = cluster_.now_s();
  last_alive_ = n - cluster_.nodes_down();
  device_index_.clear();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < cluster_.nodes()[i].device_count(); ++d)
      device_index_.emplace(cluster_.nodes()[i].device(d).name(),
                            std::make_pair(i, d));
  attached_ = true;
  renegotiate();  // initial budgets from floors (no demand observed yet)

  cluster_.set_control_hook(
      [this](std::vector<rtrm::Node>& nodes, double now_s) {
        if (attached_) on_control(nodes, now_s);
      });
  // Cluster observers are not removable, so install exactly one across the
  // coordinator's lifetime — a re-attach after detach() must not end up with
  // two live observers double-counting every step.
  if (!observer_installed_) {
    observer_installed_ = true;
    cluster_.add_step_observer([this](double now_s, double p_w, double dt_s) {
      if (attached_) on_step(now_s, p_w, dt_s);
    });
  }
}

void CapCoordinator::detach() {
  if (!attached_) return;
  if (epoch_t_ > 0.0) close_epoch(cluster_.now_s());  // partial final epoch
  attached_ = false;
  cluster_.set_control_hook(nullptr);
}

void CapCoordinator::on_control(std::vector<rtrm::Node>& nodes, double now_s) {
  last_now_s_ = now_s;
  maybe_redistribute();
  // Victim ordering by job priority: devices running high-priority jobs are
  // clamped last. The running set is committed serially on this thread.
  std::map<std::string, double> prio_by_device;
  if (cfg_.use_priority) {
    for (const auto& job : cluster_.dispatcher().running_jobs())
      if (job.priority > 0.0) prio_by_device[job.device_name] = job.priority;
  }

  for (std::size_t i = 0; i < nodes.size() && i < node_ctl_.size(); ++i) {
    rtrm::Node& node = nodes[i];
    if (node.failed() || budgets_w_[i] <= 0.0) continue;

    if (cfg_.use_priority) {
      std::vector<double> w(node.device_count(), 1.0);
      for (std::size_t d = 0; d < node.device_count(); ++d) {
        const auto hit = prio_by_device.find(node.device(d).name());
        if (hit != prio_by_device.end()) w[d] = hit->second;
      }
      node_ctl_[i].set_device_weights(std::move(w));
    }

    node_ctl_[i].set_budget_w(std::max(budgets_w_[i], 1.0));
    // One regular step (may raise under headroom), then keep lowering while
    // the node still sits over its budget — unlike the one-notch-per-period
    // manager, the cap coordinator must hold the line *before* the next
    // plant step draws power. The loop is bounded by the total notch count.
    node_ctl_[i].step(node);
    std::size_t notches = 0;
    for (const auto& d : node.devices()) notches += d.num_ops();
    while (notches-- > 0 && node.power_w() > budgets_w_[i] &&
           node_ctl_[i].step(node)) {
    }
  }
}

// React to crashes/repairs immediately, not at the epoch boundary: a dead
// node's share must flow to survivors before the next control step, and a
// repaired node needs a (floor) budget before it is allowed to draw. Called
// from on_control (ahead of the clamp, so no unbudgeted power is ever drawn)
// and from on_step (covering faults applied mid-plant-step).
void CapCoordinator::maybe_redistribute() {
  const std::size_t alive = cluster_.nodes().size() - cluster_.nodes_down();
  if (alive == last_alive_) return;
  ++stats_.redistributions;
  TELEMETRY_COUNT("govern.redistributions", 1);

  causal::DecisionRecord rec;
  rec.t_s = last_now_s_;
  rec.actor = "govern.coordinator";
  rec.action = "renegotiate";
  rec.cause = format("alive set changed %zu -> %zu", last_alive_, alive);
  rec.cause_value = static_cast<double>(alive);
  const u64 seq = causal::DecisionLedger::global().record(std::move(rec));

  last_alive_ = alive;
  renegotiate();

  double budget_sum = 0.0;
  for (double b : budgets_w_) budget_sum += b;
  causal::DecisionLedger::global().note_effect(
      seq, format("budgets resplit: %.1f W across %zu nodes", budget_sum,
                  alive),
      budget_sum);
}

void CapCoordinator::on_step(double now_s, double it_power_w, double dt_s) {
  last_now_s_ = now_s;
  maybe_redistribute();

  stats_.consumed_j += it_power_w * dt_s;
  epoch_j_ += it_power_w * dt_s;
  epoch_t_ += dt_s;

  const auto& nodes = cluster_.nodes();
  if (node_epoch_j_.size() < nodes.size())
    node_epoch_j_.resize(nodes.size(), 0.0);
  // Reuse the powers the stepper just committed instead of re-walking every
  // device model; nothing moved between the commit and this observer, so the
  // values are the ones power_w() would recompute.
  const auto& node_power = cluster_.last_node_power_w();
  if (node_power.size() == nodes.size()) {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      node_epoch_j_[i] += node_power[i] * dt_s;
  } else {  // before the first step (attach-time callbacks)
    for (std::size_t i = 0; i < nodes.size(); ++i)
      node_epoch_j_[i] += nodes[i].power_w() * dt_s;
  }

  // Per-job ledger: each busy device's draw goes to the job it is running.
  // (Node base power stays unattributed — it is not any job's doing.)
  // Each running job names its device, so walking the running set costs
  // O(jobs) per tick; per-job sums land in the same order as the legacy
  // every-device scan (one add per job per step, table ordered by key).
  for (const auto& job : cluster_.dispatcher().running_jobs()) {
    const auto hit = device_index_.find(job.device_name);
    if (hit == device_index_.end()) continue;
    const auto [ni, di] = hit->second;
    const rtrm::Node& node = nodes[ni];
    if (node.failed()) continue;
    const rtrm::Device& dev = node.device(di);
    if (dev.running_job() != std::optional<u64>(job.id)) continue;
    job_energy_.add(job.name, dev.power_w() * dt_s, dt_s);
  }

  if (epoch_t_ + 1e-9 >= cfg_.epoch_s) close_epoch(now_s);
}

void CapCoordinator::close_epoch(double now_s) {
  const double mean_w = epoch_t_ > 0.0 ? epoch_j_ / epoch_t_ : 0.0;
  last_epoch_mean_w_ = mean_w;
  ++stats_.epochs;

  // The observed effect of the previous epoch's ladder move is this epoch's
  // mean power — close that decision's loop in the provenance ledger.
  if (pending_decision_seq_ != 0) {
    causal::DecisionLedger::global().note_effect(
        pending_decision_seq_, format("next epoch mean %.1f W", mean_w),
        mean_w);
    pending_decision_seq_ = 0;
  }

  if (mean_w > cfg_.cluster_cap_w + 1e-9) {
    ++stats_.violations;
    stats_.worst_overshoot_w =
        std::max(stats_.worst_overshoot_w, mean_w - cfg_.cluster_cap_w);
    TELEMETRY_COUNT("govern.cap_violations", 1);
  }
  TELEMETRY_GAUGE("govern.epoch_mean_w", mean_w);
  TELEMETRY_GAUGE("govern.cap_headroom_w", cfg_.cluster_cap_w - mean_w);

  renegotiate();

  // Escalation ladder: budgets failing to keep the mean under the effective
  // cap for `patience` consecutive epochs means the plant needs a coarser
  // knob. Ample headroom walks back in reverse order.
  const double eff_cap = cfg_.cluster_cap_w * (1.0 - cfg_.guard_fraction);
  if (mean_w > eff_cap) {
    ++over_streak_;
    under_streak_ = 0;
  } else if (mean_w < cfg_.cluster_cap_w * (1.0 - cfg_.relax_margin)) {
    ++under_streak_;
    over_streak_ = 0;
  } else {
    over_streak_ = under_streak_ = 0;
  }
  const bool cooled = now_s - last_actuation_s_ >= cfg_.actuator_cooldown_s;
  if (over_streak_ >= cfg_.actuator_patience_epochs && cooled) {
    for (auto& a : actuators_)
      if (a->restrict()) {
        ++stats_.restricts;
        causal::DecisionRecord rec;
        rec.t_s = now_s;
        rec.actor = "govern.coordinator";
        rec.action = format("restrict:%s", a->name().c_str());
        rec.cause = format(
            "epoch mean %.1f W > effective cap %.1f W for %d epochs", mean_w,
            eff_cap, over_streak_);
        rec.cause_value = mean_w;
        pending_decision_seq_ =
            causal::DecisionLedger::global().record(std::move(rec));
        last_actuation_s_ = now_s;
        over_streak_ = 0;
        break;
      }
  } else if (under_streak_ >= cfg_.actuator_patience_epochs && cooled) {
    for (auto it = actuators_.rbegin(); it != actuators_.rend(); ++it)
      if ((*it)->relax()) {
        ++stats_.relaxes;
        causal::DecisionRecord rec;
        rec.t_s = now_s;
        rec.actor = "govern.coordinator";
        rec.action = format("relax:%s", (*it)->name().c_str());
        rec.cause = format(
            "epoch mean %.1f W under %.1f W (relax margin) for %d epochs",
            mean_w, cfg_.cluster_cap_w * (1.0 - cfg_.relax_margin),
            under_streak_);
        rec.cause_value = mean_w;
        pending_decision_seq_ =
            causal::DecisionLedger::global().record(std::move(rec));
        last_actuation_s_ = now_s;
        under_streak_ = 0;
        break;
      }
  }

  epoch_j_ = 0.0;
  epoch_t_ = 0.0;
  std::fill(node_epoch_j_.begin(), node_epoch_j_.end(), 0.0);
}

void CapCoordinator::set_node_weight(std::size_t i, double weight) {
  ANTAREX_REQUIRE(i < cluster_.nodes().size(),
                  "CapCoordinator: node weight index out of range");
  ANTAREX_REQUIRE(weight > 0.0, "CapCoordinator: node weight must be > 0");
  if (ext_weight_.size() < cluster_.nodes().size())
    ext_weight_.resize(cluster_.nodes().size(), 1.0);
  ext_weight_[i] = weight;
}

double CapCoordinator::node_weight(std::size_t i) const {
  return i < ext_weight_.size() ? ext_weight_[i] : 1.0;
}

void CapCoordinator::renegotiate() {
  const auto& nodes = cluster_.nodes();
  budgets_w_.assign(nodes.size(), 0.0);
  const double eff_cap = cfg_.cluster_cap_w * (1.0 - cfg_.guard_fraction);

  // Node priority weight: the heaviest-priority job currently on the node.
  std::vector<double> prio(nodes.size(), 1.0);
  if (cfg_.use_priority) {
    for (const auto& job : cluster_.dispatcher().running_jobs()) {
      if (job.priority <= 0.0) continue;
      for (std::size_t i = 0; i < nodes.size(); ++i)
        for (const auto& dev : nodes[i].devices())
          if (dev.name() == job.device_name)
            prio[i] = std::max(prio[i], job.priority);
    }
  }

  std::vector<double> floor_w(nodes.size(), 0.0);
  std::vector<double> weight(nodes.size(), 0.0);
  double floor_total = 0.0;
  double weight_total = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].failed()) continue;  // dead: zero budget, share to survivors
    floor_w[i] = node_floor_w(nodes[i]);
    const double mean =
        epoch_t_ > 0.0 ? node_epoch_j_[i] / epoch_t_ : floor_w[i];
    const double demand = std::max(mean, floor_w[i]);
    weight[i] = std::pow(demand, cfg_.fairness_alpha) * prio[i] *
                (i < ext_weight_.size() ? ext_weight_[i] : 1.0);
    floor_total += floor_w[i];
    weight_total += weight[i];
  }
  if (floor_total <= 0.0) return;  // every node down: nothing draws power

  if (eff_cap <= floor_total) {
    // Infeasible even at idle: scale the floors. Budgets still sum to the
    // effective cap (conservation), controllers pin everything to P-state 0.
    for (std::size_t i = 0; i < nodes.size(); ++i)
      budgets_w_[i] = eff_cap * floor_w[i] / floor_total;
  } else {
    const double distributable = eff_cap - floor_total;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].failed()) continue;
      const double share = weight_total > 0.0
                               ? weight[i] / weight_total
                               : 1.0 / static_cast<double>(last_alive_);
      budgets_w_[i] = floor_w[i] + distributable * share;
    }
  }
}

std::string CapCoordinator::json() const {
  std::ostringstream os;
  os << "{\"schema\":\"antarex.govern.capreport/v1\"";
  os << ",\"cap_w\":" << cfg_.cluster_cap_w;
  os << ",\"epoch_s\":" << cfg_.epoch_s;
  os << ",\"guard_fraction\":" << cfg_.guard_fraction;
  os << ",\"epochs\":" << stats_.epochs;
  os << ",\"violations\":" << stats_.violations;
  os << ",\"worst_overshoot_w\":" << stats_.worst_overshoot_w;
  os << ",\"budget_j\":" << cfg_.cluster_cap_w * (cluster_.now_s() - attach_s_);
  os << ",\"consumed_j\":" << stats_.consumed_j;
  os << ",\"restricts\":" << stats_.restricts;
  os << ",\"relaxes\":" << stats_.relaxes;
  os << ",\"redistributions\":" << stats_.redistributions;
  os << ",\"node_budgets_w\":[";
  for (std::size_t i = 0; i < budgets_w_.size(); ++i)
    os << (i ? "," : "") << budgets_w_[i];
  os << "],\"actuators\":[";
  for (std::size_t i = 0; i < actuators_.size(); ++i) {
    const auto& a = *actuators_[i];
    os << (i ? "," : "") << "{\"name\":" << json_quote(a.name())
       << ",\"steps\":" << a.steps() << ",\"max_steps\":" << a.max_steps()
       << ",\"level\":" << a.level() << "}";
  }
  os << "],\"job_energy\":[";
  const auto rows = job_energy_.rows();
  for (std::size_t i = 0; i < rows.size(); ++i)
    os << (i ? "," : "") << "{\"job\":" << json_quote(rows[i].key)
       << ",\"joules\":" << rows[i].joules
       << ",\"seconds\":" << rows[i].seconds << "}";
  os << "]}";
  return os.str();
}

}  // namespace antarex::govern
