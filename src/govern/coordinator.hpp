// The hierarchical power-cap coordinator: the govern layer's closed loop.
//
// CapCoordinator takes one cluster-level power budget (the facility cap the
// site negotiated, paper Sec. V) and makes it hold from the top down:
//
//   cluster cap ──epoch──▶ per-node budgets ──control──▶ per-device ceilings
//
//  - Every simulation step it integrates cluster and per-node energy and
//    keeps a per-job ledger (device power attributed to the job running on
//    it, weighted by wall time — the obs::AttributionTable idiom).
//  - Every epoch (cfg.epoch_s of simulated time, RAPL-window semantics) it
//    closes the books: a *violation* is an epoch whose mean IT power exceeds
//    the cap. It then renegotiates node budgets from the epoch's measured
//    demand — proportional share with a configurable fairness exponent and
//    job-priority weighting — always conserving: alive budgets sum to
//    cap * (1 - guard_fraction), the guard band absorbing intra-epoch
//    transients. Dead nodes get zero; their share flows to survivors. A
//    change in the alive set (antarex::fault crashing or repairing a node)
//    triggers an immediate renegotiation on the very step it is observed —
//    crash mid-epoch = automatic redistribution, cap still holds.
//  - Every control period (the Cluster's own cadence) its per-node
//    controllers clamp device ceilings to the current budgets, *after* the
//    governor proposals — the coordinator has the last word before any power
//    is drawn. With control_period_s == dt_s this yields zero violations by
//    construction.
//  - When budgets alone leave the cluster over the effective cap for
//    `actuator_patience_epochs` in a row, it walks an escalation ladder of
//    Actuators (DVFS step-down, exec throttle, nav admission) one notch per
//    cooldown; ample headroom walks the ladder back in reverse.
//
// Determinism: every callback runs on the simulation thread from serially
// committed state; the job ledger is an ordered map. The whole loop is
// byte-identical across 1/2/8 pool workers.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "govern/actuator.hpp"
#include "obs/attribution.hpp"
#include "rtrm/cluster.hpp"
#include "support/common.hpp"

namespace antarex::govern {

struct CapCoordinatorConfig {
  double cluster_cap_w = 0.0;  ///< required > 0: the budget to enforce
  double epoch_s = 1.0;        ///< accounting/renegotiation window
  /// Slice of the cap withheld from node budgets; transients (temperature
  /// drift, placement between control steps) eat the guard, not the cap.
  double guard_fraction = 0.08;
  /// Exponent on measured demand in the proportional split: 1 = classic
  /// demand-proportional, 0 = equal shares, >1 favours heavy nodes.
  double fairness_alpha = 1.0;
  /// Weight node shares and device victim order by running jobs' priority.
  bool use_priority = true;
  int actuator_patience_epochs = 2;   ///< over-cap epochs before escalating
  double actuator_cooldown_s = 4.0;   ///< min seconds between ladder moves
  /// Relax when the epoch mean sits below cap * (1 - relax_margin).
  double relax_margin = 0.25;
};

struct CapStats {
  u64 epochs = 0;
  u64 violations = 0;           ///< epochs with mean power > cap
  double worst_overshoot_w = 0.0;
  double budget_j = 0.0;        ///< cap * attached simulated seconds
  double consumed_j = 0.0;      ///< integrated IT energy while attached
  u64 restricts = 0;            ///< actuator ladder escalations
  u64 relaxes = 0;
  u64 redistributions = 0;      ///< epochs whose alive set changed
};

class CapCoordinator {
 public:
  CapCoordinator(rtrm::Cluster& cluster, CapCoordinatorConfig cfg);

  /// Escalation ladder, walked in add order on restrict and reverse on relax.
  void add_actuator(std::shared_ptr<Actuator> actuator);
  const std::vector<std::shared_ptr<Actuator>>& actuators() const {
    return actuators_;
  }

  /// Install the control hook and a step observer on the cluster. The
  /// coordinator must outlive the cluster's run after attach().
  void attach();
  /// Stop acting and observing (the step observer stays registered but goes
  /// inert; Cluster observers are not individually removable).
  void detach();
  bool attached() const { return attached_; }

  const CapStats& stats() const { return stats_; }
  const CapCoordinatorConfig& config() const { return cfg_; }
  /// Current per-node budgets (W); 0 for nodes considered dead.
  const std::vector<double>& node_budgets_w() const { return budgets_w_; }
  /// External share multiplier applied to node i at the next renegotiation
  /// (default 1.0). antarex::monitor shaves a flagged node's share while an
  /// anomaly episode is open — a throttled or slow node cannot use its
  /// budget, so the headroom flows to healthy nodes. Values clamp to > 0.
  void set_node_weight(std::size_t i, double weight);
  double node_weight(std::size_t i) const;
  /// Per-job energy ledger (key = job name), conserved to device energy.
  const obs::AttributionTable& job_energy() const { return job_energy_; }
  /// Mean IT power of the last closed epoch (0 before the first).
  double last_epoch_mean_w() const { return last_epoch_mean_w_; }

  /// JSON report, schema "antarex.govern.capreport/v1".
  std::string json() const;

 private:
  void on_step(double now_s, double it_power_w, double dt_s);
  void on_control(std::vector<rtrm::Node>& nodes, double now_s);
  void close_epoch(double now_s);
  void maybe_redistribute();   ///< renegotiate when the alive set changed
  void renegotiate();          ///< node budgets from the last epoch's demand
  double node_floor_w(const rtrm::Node& node) const;

  rtrm::Cluster& cluster_;
  CapCoordinatorConfig cfg_;
  std::vector<std::shared_ptr<Actuator>> actuators_;
  std::vector<rtrm::NodePowerController> node_ctl_;
  std::vector<double> budgets_w_;
  std::vector<double> ext_weight_;  ///< set_node_weight multipliers
  obs::AttributionTable job_energy_;
  /// Device name -> (node, device) indices, built at attach(): the per-step
  /// job-energy ledger walks the running set (O(jobs)) instead of every
  /// device in the cluster (O(devices)) per tick.
  std::unordered_map<std::string, std::pair<std::size_t, std::size_t>>
      device_index_;
  CapStats stats_;

  bool attached_ = false;
  bool observer_installed_ = false;  ///< one observer per lifetime
  double attach_s_ = 0.0;      ///< sim time of the last attach()
  double epoch_j_ = 0.0;       ///< cluster energy this epoch
  double epoch_t_ = 0.0;       ///< elapsed time this epoch
  std::vector<double> node_epoch_j_;
  double last_epoch_mean_w_ = 0.0;
  std::size_t last_alive_ = 0;
  int over_streak_ = 0;
  int under_streak_ = 0;
  double last_actuation_s_ = -1e300;
  double last_now_s_ = 0.0;  ///< most recent sim time seen by any callback
  /// Ledger record of the last ladder move, awaiting its observed effect
  /// (the next epoch's mean power) — see causal::DecisionLedger.
  u64 pending_decision_seq_ = 0;
};

}  // namespace antarex::govern
