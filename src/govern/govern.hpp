// antarex::govern — closed-loop hierarchical power-cap governance.
//
// The layer that turns the stack's observables (antarex::obs) into actions
// on its knobs: DVFS step-down (rtrm), worker/grain throttling (exec),
// admission shrinking (nav). Two entry points:
//
//  - CapCoordinator (coordinator.hpp): a cluster joule/watt budget enforced
//    top-down — per-node budgets renegotiated every epoch from measured
//    demand, per-device ceilings clamped every control period, an actuator
//    escalation ladder for when budgets are not enough. Fault-aware: node
//    crashes redistribute the budget to survivors.
//  - install_actuating_policies (policies.hpp): threshold-triggered knob
//    walking through the obs::PolicyEngine, for plants that need reflexes
//    rather than accounting.
//
// Both act through the same Actuator interface (actuator.hpp).
#pragma once

#include "govern/actuator.hpp"     // IWYU pragma: export
#include "govern/coordinator.hpp"  // IWYU pragma: export
#include "govern/policies.hpp"     // IWYU pragma: export
