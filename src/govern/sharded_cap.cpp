#include "govern/sharded_cap.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace antarex::govern {

ShardedCapCoordinator::ShardedCapCoordinator(rtrm::ShardedCluster& cluster,
                                             ShardedCapConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  ANTAREX_REQUIRE(cfg_.cluster_cap_w > 0.0,
                  "ShardedCapCoordinator: non-positive cluster cap");
  ANTAREX_REQUIRE(cfg_.epoch_s > 0.0,
                  "ShardedCapCoordinator: non-positive epoch");
  ANTAREX_REQUIRE(cfg_.guard_fraction >= 0.0 && cfg_.guard_fraction < 1.0,
                  "ShardedCapCoordinator: guard_fraction must be in [0, 1)");
  ANTAREX_REQUIRE(cfg_.fairness_alpha >= 0.0,
                  "ShardedCapCoordinator: negative fairness_alpha");
}

void ShardedCapCoordinator::attach() {
  ANTAREX_REQUIRE(!attached_, "ShardedCapCoordinator: already attached");
  const std::size_t n = cluster_.node_count();
  ANTAREX_REQUIRE(n > 0, "ShardedCapCoordinator: cluster has no nodes");
  budgets_w_.assign(n, 0.0);
  node_energy_mark_.assign(n, 0.0);
  node_demand_w_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    node_energy_mark_[i] = cluster_.node_energy_j(i);
  epoch_j_ = 0.0;
  epoch_t_ = 0.0;
  last_alive_ = n - cluster_.nodes_down();
  attached_ = true;
  renegotiate();  // initial budgets from floors (no demand observed yet)

  cluster_.set_control_hook([this](rtrm::ShardedCluster&, double now_s) {
    if (attached_) on_control(now_s);
  });
  // Observers are not removable; install exactly one across the lifetime.
  if (!observer_installed_) {
    observer_installed_ = true;
    cluster_.add_step_observer([this](double now_s, double p_w, double dt_s) {
      if (attached_) on_step(now_s, p_w, dt_s);
    });
  }
}

void ShardedCapCoordinator::detach() {
  if (!attached_) return;
  if (epoch_t_ > 0.0) close_epoch();  // partial final epoch
  attached_ = false;
  cluster_.set_control_hook(nullptr);
}

void ShardedCapCoordinator::on_step(double /*now_s*/, double it_power_w,
                                    double dt_s) {
  // A crash/repair must redistribute before the next control step: the dead
  // node's share flows to survivors, a repaired node regains a floor budget.
  const std::size_t alive = cluster_.node_count() - cluster_.nodes_down();
  if (alive != last_alive_) {
    last_alive_ = alive;
    ++stats_.redistributions;
    TELEMETRY_COUNT("govern.redistributions", 1);
    renegotiate();
  }
  stats_.consumed_j += it_power_w * dt_s;
  epoch_j_ += it_power_w * dt_s;
  epoch_t_ += dt_s;
  if (epoch_t_ + 1e-9 >= cfg_.epoch_s) close_epoch();
}

void ShardedCapCoordinator::on_control(double /*now_s*/) {
  for (std::size_t i = 0; i < budgets_w_.size(); ++i) {
    if (cluster_.node_failed(i) || budgets_w_[i] <= 0.0) continue;
    cluster_.apply_node_budget(i, budgets_w_[i]);
  }
}

void ShardedCapCoordinator::close_epoch() {
  const double mean_w = epoch_t_ > 0.0 ? epoch_j_ / epoch_t_ : 0.0;
  last_epoch_mean_w_ = mean_w;
  ++stats_.epochs;
  if (mean_w > cfg_.cluster_cap_w + 1e-9) {
    ++stats_.violations;
    stats_.worst_overshoot_w =
        std::max(stats_.worst_overshoot_w, mean_w - cfg_.cluster_cap_w);
    TELEMETRY_COUNT("govern.cap_violations", 1);
  }
  TELEMETRY_GAUGE("govern.epoch_mean_w", mean_w);
  TELEMETRY_GAUGE("govern.cap_headroom_w", cfg_.cluster_cap_w - mean_w);

  // Per-node demand from the engine's batched energy counters: one read per
  // node per *epoch*, the only place the coordinator touches every node.
  for (std::size_t i = 0; i < budgets_w_.size(); ++i) {
    const double e = cluster_.node_energy_j(i);
    node_demand_w_[i] =
        epoch_t_ > 0.0 ? (e - node_energy_mark_[i]) / epoch_t_ : 0.0;
    node_energy_mark_[i] = e;
  }
  renegotiate();
  epoch_j_ = 0.0;
  epoch_t_ = 0.0;
}

void ShardedCapCoordinator::renegotiate() {
  const std::size_t n = cluster_.node_count();
  const std::size_t n_shards = cluster_.shard_count();
  budgets_w_.assign(n, 0.0);
  shard_budget_w_.assign(n_shards, 0.0);
  const double eff_cap = cfg_.cluster_cap_w * (1.0 - cfg_.guard_fraction);

  // Pass 1: per-node floors and demand weights, aggregated per shard.
  std::vector<double> floor_w(n, 0.0);
  std::vector<double> weight(n, 0.0);
  std::vector<double> shard_floor(n_shards, 0.0);
  std::vector<double> shard_weight(n_shards, 0.0);
  double floor_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_.node_failed(i)) continue;  // dead: zero budget
    floor_w[i] = cluster_.node_floor_w(i);
    const double demand = std::max(node_demand_w_[i], floor_w[i]);
    weight[i] = std::pow(demand, cfg_.fairness_alpha);
    const std::size_t s = cluster_.shard_of_node(i);
    shard_floor[s] += floor_w[i];
    shard_weight[s] += weight[i];
    floor_total += floor_w[i];
  }
  if (floor_total <= 0.0) return;  // every node down: nothing draws power

  if (eff_cap <= floor_total) {
    // Infeasible even at idle: scale the floors; controllers pin P-state 0.
    for (std::size_t i = 0; i < n; ++i)
      budgets_w_[i] = eff_cap * floor_w[i] / floor_total;
    for (std::size_t s = 0; s < n_shards; ++s)
      shard_budget_w_[s] = eff_cap * shard_floor[s] / floor_total;
    return;
  }

  // Pass 2: split the distributable slice across shards by aggregate demand
  // weight, then within each shard across its alive nodes the same way.
  const double distributable = eff_cap - floor_total;
  double weight_total = 0.0;
  for (std::size_t s = 0; s < n_shards; ++s) weight_total += shard_weight[s];
  for (std::size_t s = 0; s < n_shards; ++s) {
    const double share =
        weight_total > 0.0 ? shard_weight[s] / weight_total
                           : 1.0 / static_cast<double>(n_shards);
    const double shard_slice = distributable * share;
    shard_budget_w_[s] = shard_floor[s] + shard_slice;
    const auto [first, last] = cluster_.shard_node_range(s);
    for (std::size_t i = first; i < last; ++i) {
      if (cluster_.node_failed(i)) continue;
      const double node_share =
          shard_weight[s] > 0.0
              ? weight[i] / shard_weight[s]
              : (last > first ? 1.0 / static_cast<double>(last - first) : 0.0);
      budgets_w_[i] = floor_w[i] + shard_slice * node_share;
    }
  }
}

}  // namespace antarex::govern
