#include "govern/actuator.hpp"

#include <algorithm>
#include <cmath>

#include "exec/pool.hpp"
#include "nav/server.hpp"
#include "rtrm/cluster.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::govern {

namespace {

void note(const std::string& name, bool restricting, double level) {
  // Two call sites on purpose: TELEMETRY_COUNT caches the counter per site.
  if (restricting) {
    TELEMETRY_COUNT("govern.actuator_restricts", 1);
  } else {
    TELEMETRY_COUNT("govern.actuator_relaxes", 1);
  }
  telemetry::Registry::global().gauge("govern.level." + name).set(level);
}

}  // namespace

// ---------------------------------------------------------------- DvfsActuator

DvfsActuator::DvfsActuator(rtrm::Cluster& cluster) : cluster_(cluster) {
  std::size_t deepest = 1;
  for (const auto& node : cluster_.nodes())
    for (const auto& dev : node.devices())
      deepest = std::max(deepest, dev.num_ops());
  max_steps_ = deepest - 1;
  steps_ = std::min(cluster_.op_step_down(), max_steps_);
}

bool DvfsActuator::restrict() {
  if (steps_ >= max_steps_) return false;
  cluster_.set_op_step_down(++steps_);
  note(name_, true, level());
  return true;
}

bool DvfsActuator::relax() {
  if (steps_ == 0) return false;
  cluster_.set_op_step_down(--steps_);
  note(name_, false, level());
  return true;
}

// ---------------------------------------------------------------- ExecActuator

ExecActuator::ExecActuator(exec::ThreadPool& pool, int min_workers,
                           double max_grain_scale)
    : pool_(pool), min_workers_(std::max(1, min_workers)) {
  min_workers_ = std::min(min_workers_, pool_.size());
  worker_steps_ = static_cast<std::size_t>(pool_.size() - min_workers_);
  // Grain doublings available before exceeding max_grain_scale.
  grain_steps_ = 0;
  for (double s = 2.0; s <= max_grain_scale + 1e-9; s *= 2.0) ++grain_steps_;
  max_steps_ = worker_steps_ + grain_steps_;
}

void ExecActuator::apply() const {
  const std::size_t w = std::min(steps_, worker_steps_);
  const std::size_t g = steps_ > worker_steps_ ? steps_ - worker_steps_ : 0;
  pool_.set_worker_limit(pool_.size() - static_cast<int>(w));
  pool_.set_grain_scale(std::pow(2.0, static_cast<double>(g)));
}

bool ExecActuator::restrict() {
  if (steps_ >= max_steps_) return false;
  ++steps_;
  apply();
  note(name_, true, level());
  return true;
}

bool ExecActuator::relax() {
  if (steps_ == 0) return false;
  --steps_;
  apply();
  note(name_, false, level());
  return true;
}

// ----------------------------------------------------------------- NavActuator

NavActuator::NavActuator(nav::NavServer& server, std::size_t nominal_window,
                         std::size_t min_window)
    : server_(server),
      nominal_(std::max<std::size_t>(1, nominal_window)),
      min_(std::max<std::size_t>(1, min_window)) {
  min_ = std::min(min_, nominal_);
  max_steps_ = 0;
  for (std::size_t w = nominal_; w > min_; w = std::max(min_, w / 2))
    ++max_steps_;
  server_.set_admission_cap(nominal_);
}

std::size_t NavActuator::window() const {
  std::size_t w = nominal_;
  for (std::size_t i = 0; i < steps_; ++i) w = std::max(min_, w / 2);
  return w;
}

void NavActuator::apply() const { server_.set_admission_cap(window()); }

bool NavActuator::restrict() {
  if (steps_ >= max_steps_) return false;
  ++steps_;
  apply();
  note(name_, true, level());
  return true;
}

bool NavActuator::relax() {
  if (steps_ == 0) return false;
  --steps_;
  apply();
  note(name_, false, level());
  return true;
}

}  // namespace antarex::govern
