// Facility power-cap governance over the SoA engine (rtrm::ShardedCluster).
//
// ShardedCapCoordinator splits one facility cap hierarchically:
//
//   facility cap ──epoch──▶ per-shard budgets ──epoch──▶ per-node budgets
//                                             ──control──▶ device ceilings
//
// Per-shard sub-coordinators make the negotiation scale: each epoch the
// facility budget is split across shards in proportion to their measured
// demand (sum of node energy over the epoch, read once per epoch from the
// engine's batched per-node energy counters — no per-tick all-nodes walk),
// then each shard splits its slice across its own alive nodes the same way.
// Budgets conserve: alive-node budgets always sum to cap*(1-guard_fraction).
// At every control step the coordinator actuates through
// ShardedCluster::apply_node_budget, which drives the node's persistent
// power controller with the legacy CapCoordinator's clamp loop.
//
// Crash/repair reaction matches the legacy coordinator: a change in the
// alive set triggers an immediate renegotiation on the very step it is
// observed, so a dead shard's share flows to survivors before the next
// control step.
#pragma once

#include <string>
#include <vector>

#include "rtrm/sharded_cluster.hpp"
#include "support/common.hpp"

namespace antarex::govern {

struct ShardedCapConfig {
  double cluster_cap_w = 0.0;  ///< required > 0: the budget to enforce
  double epoch_s = 1.0;        ///< accounting/renegotiation window
  double guard_fraction = 0.08;
  /// Exponent on measured demand in the proportional split (shards and
  /// nodes alike): 1 = demand-proportional, 0 = equal shares.
  double fairness_alpha = 1.0;
};

struct ShardedCapStats {
  u64 epochs = 0;
  u64 violations = 0;  ///< epochs with mean IT power > cap
  double worst_overshoot_w = 0.0;
  double consumed_j = 0.0;
  u64 redistributions = 0;  ///< renegotiations forced by alive-set changes
};

class ShardedCapCoordinator {
 public:
  ShardedCapCoordinator(rtrm::ShardedCluster& cluster, ShardedCapConfig cfg);

  /// Install the control hook and a step observer. The coordinator claims
  /// the cluster's control hook (the legacy coordinator idiom) and must
  /// outlive its run calls.
  void attach();
  void detach();
  bool attached() const { return attached_; }

  const ShardedCapStats& stats() const { return stats_; }
  const ShardedCapConfig& config() const { return cfg_; }
  /// Current per-shard budget slices (W); they sum to the effective cap.
  const std::vector<double>& shard_budgets_w() const { return shard_budget_w_; }
  /// Budget of one node (W); 0 while the node is down.
  double node_budget_w(std::size_t node) const { return budgets_w_[node]; }
  double last_epoch_mean_w() const { return last_epoch_mean_w_; }

 private:
  void on_step(double now_s, double it_power_w, double dt_s);
  void on_control(double now_s);
  void close_epoch();
  void renegotiate();

  rtrm::ShardedCluster& cluster_;
  ShardedCapConfig cfg_;
  ShardedCapStats stats_;
  std::vector<double> budgets_w_;        ///< per node
  std::vector<double> shard_budget_w_;   ///< per shard
  std::vector<double> node_energy_mark_; ///< energy at the last epoch close
  std::vector<double> node_demand_w_;    ///< mean draw over the last epoch
  double epoch_j_ = 0.0;
  double epoch_t_ = 0.0;
  double last_epoch_mean_w_ = 0.0;
  std::size_t last_alive_ = 0;
  bool attached_ = false;
  bool observer_installed_ = false;
};

}  // namespace antarex::govern
