// Actuating policies: the glue between the obs::PolicyEngine (observe +
// decide) and the govern actuators (act).
//
// install_actuating_policies wires the stack's published gauges to an
// actuator ladder through the engine's edge/cooldown trigger shaping, so the
// same machinery that raises alerts also closes the loop:
//
//   rtrm.power_draw_w  > cap           -> restrict the ladder (in order)
//   rtrm.power_draw_w  < relax point   -> relax the ladder (reverse order)
//   rtrm.thermal_headroom_c < margin   -> restrict the thermal actuator
//   nav.queue_depth >= shed threshold  -> restrict the nav actuator
//
// Each policy carries a cooldown so a persistent violation keeps producing
// one corrective notch per interval instead of either a single fire or a
// notch per tick — exactly the PolicyOptions::cooldown_s semantics.
//
// This is the lightweight alternative to the CapCoordinator: no budgets, no
// per-node controllers, just gauge thresholds driving knobs. The two compose
// (the coordinator holds the cap; the policies handle thermal/backpressure).
#pragma once

#include <memory>
#include <vector>

#include "govern/actuator.hpp"
#include "obs/policy.hpp"

namespace antarex::govern {

struct ActuatingPolicyConfig {
  double power_cap_w = 0.0;      ///< restrict above this draw (0 disables)
  double relax_fraction = 0.7;   ///< relax below relax_fraction * cap
  double cooldown_s = 4.0;       ///< per-policy re-fire interval
  double thermal_headroom_c = 5.0;  ///< restrict below this headroom
  double nav_queue_limit = 48.0;    ///< restrict nav at/above this backlog
};

/// Handles of the installed policies (for fires()/restricts() queries);
/// -1 where the corresponding policy was not installed.
struct InstalledPolicies {
  int power_restrict = -1;
  int power_relax = -1;
  int thermal = -1;
  int nav = -1;
};

/// Install up to four actuating policies on `engine`. `ladder` is walked in
/// order on restrict and in reverse on relax (may be empty: the power
/// policies are skipped). `thermal` / `nav` may be null to skip those.
/// The actuators must outlive the engine registrations.
InstalledPolicies install_actuating_policies(
    obs::PolicyEngine& engine, std::vector<std::shared_ptr<Actuator>> ladder,
    std::shared_ptr<Actuator> thermal, std::shared_ptr<Actuator> nav,
    ActuatingPolicyConfig cfg);

}  // namespace antarex::govern
