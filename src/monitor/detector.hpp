// antarex::monitor — online anomaly detection over the metric stream.
//
// Per-(shard, metric) robust baselines: an EWMA of the level and an
// exponentially-weighted MAD of the deviation. A sample's z-score is
//
//   z = (x - ewma) / max(1.4826 * mad, rel_floor * |ewma|, abs_floor)
//
// (1.4826 scales MAD to a standard deviation under normality; the floors
// keep z finite on quiet streams). Baselines learn only from unflagged busy
// samples, so an anomaly cannot teach the detector that it is normal. Taught
// samples are additionally winsorized to m +- clip_z scale units: during the
// warmup window z-flags cannot veto yet, and one wild sample (a RAPL counter
// wrap, say) must not be allowed to poison the level and MAD for the tens of
// samples an EWMA needs to forget it.
//
// Four anomaly kinds map onto the fault model:
//   ThermalRunaway  temperature z above threshold
//   PowerSpike      power z above threshold (RAPL sensor glitches show up
//                   here: the sampler reads counter deltas, so a glitch
//                   offset lands in exactly one sample)
//   Throttle        progress drop with a matching power drop (a device
//                   pinned to its lowest P-state does less and draws less)
//   SlowNode        progress drop at normal power (same work rate per busy
//                   second, just slower — e.g. a degraded node)
//
// Hysteresis turns per-sample flags into episodes: open after `open_after`
// consecutive flagged samples (1 for PowerSpike — glitches are one sample),
// close after `quiet_close` consecutive quiet ones. Idle nodes (util below
// min_util) are never judged; their samples count as quiet.
//
// Memory: baselines are O(shards * metrics); per-node state exists only for
// currently-flagged nodes, capped at max_tracked (overflow counted). Closed
// episodes are retained up to max_closed for ground-truth evaluation.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "monitor/topic.hpp"
#include "support/common.hpp"

namespace antarex::monitor {

enum class AnomalyKind : u8 { ThermalRunaway, PowerSpike, Throttle, SlowNode };
constexpr std::size_t kAnomalyKindCount = 4;
const char* anomaly_kind_name(AnomalyKind k);

struct DetectorConfig {
  double z_open = 4.0;        ///< |z| that flags a sample
  double power_drop_z = 2.0;  ///< power z below -this => Throttle, else Slow
  u32 open_after = 2;         ///< consecutive flags to open an episode
  u32 spike_open_after = 1;   ///< PowerSpike opens immediately (one-sample)
  u32 quiet_close = 3;        ///< consecutive quiet samples to close
  u64 warmup_samples = 8;     ///< baseline samples before judging a stream
  double min_util = 0.5;      ///< only judge nodes at least this busy
  double ewma_alpha = 0.05;
  double mad_beta = 0.05;
  double rel_floor = 0.04;    ///< scale floor as a fraction of the level
  double clip_z = 8.0;        ///< winsorize taught samples at this many scales
  double abs_floor_power_w = 2.0;
  double abs_floor_temp_c = 1.5;
  double abs_floor_progress = 0.02;
  std::size_t max_tracked = 1024;  ///< concurrently tracked flagged nodes
  std::size_t max_closed = 65536;  ///< retained closed episodes
};

/// One contiguous anomaly on one node.
struct Episode {
  u32 node = 0;
  u16 shard = 0;
  AnomalyKind kind = AnomalyKind::ThermalRunaway;
  double open_t_s = 0.0;
  double close_t_s = 0.0;  ///< == open_t_s while still open
  double peak_z = 0.0;
  u32 samples = 0;  ///< flagged samples inside the episode
  bool open = false;
};

class AnomalyDetector {
 public:
  /// Called on every episode transition: opened=true right after the episode
  /// opens, opened=false right after it closes. Runs on the sim thread.
  using Hook = std::function<void(const Episode&, bool opened)>;

  AnomalyDetector(std::size_t shards, DetectorConfig cfg = {});

  const DetectorConfig& config() const { return cfg_; }
  void set_hook(Hook hook) { hook_ = std::move(hook); }

  /// Ingest one frame (subscribe to the broker's `#`).
  void observe(const MetricFrame& frame);

  /// Episodes closed so far, in close order.
  const std::vector<Episode>& closed() const { return closed_; }
  /// Closed + still-open episodes (open ones last, node order).
  std::vector<Episode> episodes() const;
  std::size_t active() const { return active_; }
  u64 flagged_samples() const { return flagged_samples_; }
  u64 tracked_overflow() const { return tracked_overflow_; }
  u64 closed_overflow() const { return closed_overflow_; }

  std::size_t approx_bytes() const;
  void clear();

 private:
  struct Baseline {
    double m = 0.0;
    double mad = 0.0;
    u64 n = 0;
  };
  struct KindState {
    u32 run = 0;    ///< consecutive flagged samples
    u32 quiet = 0;  ///< consecutive quiet samples while open
    bool open = false;
    Episode episode;
    u64 ledger_seq = 0;  ///< causal::DecisionLedger record awaiting close
  };
  struct NodeTrack {
    KindState kinds[kAnomalyKindCount];
  };

  Baseline& baseline(u16 shard, Metric m) {
    return baselines_[static_cast<std::size_t>(shard) * kMetricCount +
                      static_cast<std::size_t>(m)];
  }
  double scale_for(const Baseline& b, Metric m) const;
  double z_for(const Baseline& b, Metric m, double x) const;
  void update_baseline(Baseline& b, Metric m, double x);
  void step_kind(NodeTrack& track, AnomalyKind kind, bool flagged, double z,
                 const MetricFrame& frame);
  void open_episode(KindState& ks, AnomalyKind kind, double z,
                    const MetricFrame& frame);
  void close_episode(KindState& ks, double t_s);

  std::size_t shards_;
  DetectorConfig cfg_;
  Hook hook_;
  std::vector<Baseline> baselines_;  ///< shards * metrics
  std::map<u32, NodeTrack> tracked_;
  std::vector<Episode> closed_;
  std::size_t active_ = 0;
  u64 flagged_samples_ = 0;
  u64 tracked_overflow_ = 0;
  u64 closed_overflow_ = 0;
};

}  // namespace antarex::monitor
