#include "monitor/eval.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace antarex::monitor {

namespace {

/// Closed-interval overlap with symmetric slack.
bool overlaps(double a1, double a2, double b1, double b2, double slack) {
  return a1 - slack <= b2 && b1 - slack <= a2;
}

/// Sampling instants (multiples of the period) strictly inside [a, b].
u64 samples_inside(double a, double b, double period) {
  if (b <= a) return 0;
  const auto lo = static_cast<i64>(std::floor(a / period));
  const auto hi = static_cast<i64>(std::floor(b / period));
  return static_cast<u64>(std::max<i64>(0, hi - lo));
}

}  // namespace

std::vector<GroundTruthEpisode> ground_truth(const fault::FaultSchedule& sched,
                                             const EvalConfig& cfg) {
  ANTAREX_REQUIRE(cfg.horizon_s > 0.0, "monitor::ground_truth: horizon not set");
  ANTAREX_REQUIRE(cfg.sample_period_s > 0.0,
                  "monitor::ground_truth: sample period must be positive");
  std::vector<GroundTruthEpisode> out;
  std::map<u32, double> open_slow;                  // node -> start
  std::map<std::pair<u32, u32>, double> open_glitch;  // (node, dev) -> start

  for (const fault::FaultEvent& e : sched.events) {
    switch (e.kind) {
      case fault::FaultKind::ThermalThrottle:
        out.push_back(GroundTruthEpisode{
            e.node, AnomalyKind::Throttle, e.at_s,
            std::min(e.at_s + e.duration_s, cfg.horizon_s), false});
        break;
      case fault::FaultKind::SlowNode:
        open_slow[e.node] = e.at_s;
        break;
      case fault::FaultKind::SlowNodeEnd: {
        const auto it = open_slow.find(e.node);
        if (it == open_slow.end()) break;
        out.push_back(GroundTruthEpisode{e.node, AnomalyKind::SlowNode,
                                         it->second, e.at_s, false});
        open_slow.erase(it);
        break;
      }
      case fault::FaultKind::SensorGlitch:
        open_glitch[{e.node, e.device}] = e.at_s;
        break;
      case fault::FaultKind::GlitchClear: {
        const auto it = open_glitch.find({e.node, e.device});
        if (it == open_glitch.end()) break;
        out.push_back(GroundTruthEpisode{e.node, AnomalyKind::PowerSpike,
                                         it->second, e.at_s, false});
        open_glitch.erase(it);
        break;
      }
      default:
        break;  // crash/repair: a dead node goes silent, not anomalous
    }
  }
  for (const auto& [node, start] : open_slow)
    out.push_back(GroundTruthEpisode{node, AnomalyKind::SlowNode, start,
                                     cfg.horizon_s, false});
  for (const auto& [key, start] : open_glitch)
    out.push_back(GroundTruthEpisode{key.first, AnomalyKind::PowerSpike, start,
                                     cfg.horizon_s, false});

  for (GroundTruthEpisode& g : out) {
    g.qualifies =
        g.start_s >= cfg.warmup_end_s &&
        samples_inside(g.start_s, std::min(g.end_s, cfg.horizon_s),
                       cfg.sample_period_s) >= cfg.min_samples;
  }
  std::sort(out.begin(), out.end(),
            [](const GroundTruthEpisode& a, const GroundTruthEpisode& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              return a.node < b.node;
            });
  return out;
}

EvalResult evaluate(const std::vector<GroundTruthEpisode>& truth,
                    const std::vector<Episode>& detections,
                    const EvalConfig& cfg) {
  EvalResult result;
  const double slack = cfg.match_slack_s;

  for (const GroundTruthEpisode& g : truth) {
    KindScore& score = result.kinds[static_cast<std::size_t>(g.kind)];
    ++score.gt_total;
    if (g.qualifies) ++score.gt_qualifying;
  }
  for (const Episode& d : detections)
    ++result.kinds[static_cast<std::size_t>(d.kind)].detected;

  // A throttle and a slowdown co-occurring on one node blend their power
  // signatures, so a drop-kind detection there may legitimately carry either
  // label: cross-kind matches are allowed exactly when the matched GT
  // overlaps a GT of the detection's own kind on the same node.
  const auto cross_ok = [&](const Episode& d, const GroundTruthEpisode& g) {
    const bool drop_pair =
        (d.kind == AnomalyKind::Throttle && g.kind == AnomalyKind::SlowNode) ||
        (d.kind == AnomalyKind::SlowNode && g.kind == AnomalyKind::Throttle);
    if (!drop_pair) return false;
    for (const GroundTruthEpisode& other : truth)
      if (other.node == g.node && other.kind == d.kind &&
          overlaps(other.start_s, other.end_s, g.start_s, g.end_s, 0.0))
        return true;
    return false;
  };

  std::vector<bool> gt_hit(truth.size(), false);
  for (const Episode& d : detections) {
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const GroundTruthEpisode& g = truth[i];
      if (g.node != d.node) continue;
      if (!overlaps(d.open_t_s, d.close_t_s, g.start_s, g.end_s, slack))
        continue;
      if (g.kind != d.kind && !cross_ok(d, g)) continue;
      matched = true;
      gt_hit[i] = true;
    }
    if (matched)
      ++result.kinds[static_cast<std::size_t>(d.kind)].true_positives;
  }
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (gt_hit[i] && truth[i].qualifies)
      ++result.kinds[static_cast<std::size_t>(truth[i].kind)].gt_matched;

  return result;
}

fault::FaultSchedule strip_warmup_faults(fault::FaultSchedule sched,
                                         double quiet_s) {
  std::vector<fault::FaultEvent> kept;
  std::vector<std::pair<u32, u32>> open_glitch;  // dropped, awaiting clears
  std::vector<u32> open_slow;
  for (const fault::FaultEvent& e : sched.events) {
    bool drop = false;
    switch (e.kind) {
      case fault::FaultKind::SensorGlitch:
        if (e.at_s < quiet_s) {
          drop = true;
          open_glitch.emplace_back(e.node, e.device);
        }
        break;
      case fault::FaultKind::GlitchClear: {
        const auto it = std::find(open_glitch.begin(), open_glitch.end(),
                                  std::make_pair(e.node, e.device));
        if (it != open_glitch.end()) {
          drop = true;
          open_glitch.erase(it);
        }
        break;
      }
      case fault::FaultKind::SlowNode:
        if (e.at_s < quiet_s) {
          drop = true;
          open_slow.push_back(e.node);
        }
        break;
      case fault::FaultKind::SlowNodeEnd: {
        const auto it = std::find(open_slow.begin(), open_slow.end(), e.node);
        if (it != open_slow.end()) {
          drop = true;
          open_slow.erase(it);
        }
        break;
      }
      default:  // throttle is self-contained; crash/repair produce no GT
        drop = e.at_s < quiet_s;
        break;
    }
    if (!drop) kept.push_back(e);
  }
  sched.events = std::move(kept);
  return sched;
}

}  // namespace antarex::monitor
