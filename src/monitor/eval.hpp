// antarex::monitor — detector evaluation against fault ground truth.
//
// antarex::fault knows exactly which node was throttled, slowed, or glitched
// and when, so the anomaly detector can be scored like a classifier instead
// of eyeballed. The pipeline:
//
//   FaultSchedule ──▶ ground_truth()  (paired events -> labeled intervals)
//   AnomalyDetector::episodes() ──▶ evaluate()  (interval matching)
//
// Recall counts only *qualifying* ground-truth episodes: ones starting after
// the detector's warmup window with at least min_samples sampling instants
// inside the run — an episode the detector never got a judged sample of is
// not a miss, it is unobservable. Precision counts a detection as a true
// positive when it overlaps (with match_slack_s of grace on both sides) a
// same-kind episode on the same node; where a throttle and a slowdown
// overlap on one node the power signature is genuinely ambiguous, so either
// kind matches there.
#pragma once

#include <vector>

#include "fault/schedule.hpp"
#include "monitor/detector.hpp"

namespace antarex::monitor {

struct GroundTruthEpisode {
  u32 node = 0;
  AnomalyKind kind = AnomalyKind::Throttle;
  double start_s = 0.0;
  double end_s = 0.0;
  bool qualifies = false;  ///< counts toward the recall denominator
};

struct EvalConfig {
  double sample_period_s = 1.0;  ///< the fabric's sampling cadence
  double warmup_end_s = 12.0;    ///< GT starting earlier never qualifies
  double horizon_s = 0.0;        ///< run end (required by ground_truth)
  u32 min_samples = 3;           ///< sampling instants inside a qualifying GT
  double match_slack_s = 3.0;    ///< overlap grace (hysteresis + cadence lag)
};

struct KindScore {
  u64 gt_total = 0;       ///< ground-truth episodes of this kind
  u64 gt_qualifying = 0;  ///< ... that qualify for recall
  u64 gt_matched = 0;     ///< qualifying GT with >= 1 matching detection
  u64 detected = 0;       ///< detector episodes of this kind
  u64 true_positives = 0; ///< ... matching some GT (ambiguity-aware)

  /// 1.0 when nothing was detected (no claims, none wrong).
  double precision() const {
    return detected ? static_cast<double>(true_positives) /
                          static_cast<double>(detected)
                    : 1.0;
  }
  /// 1.0 when nothing qualified (nothing observable to find).
  double recall() const {
    return gt_qualifying ? static_cast<double>(gt_matched) /
                               static_cast<double>(gt_qualifying)
                         : 1.0;
  }
};

struct EvalResult {
  KindScore kinds[kAnomalyKindCount];
  const KindScore& of(AnomalyKind k) const {
    return kinds[static_cast<std::size_t>(k)];
  }
};

/// Fold a schedule's paired events into labeled intervals:
/// ThermalThrottle (+duration_s) -> Throttle, SlowNode/SlowNodeEnd ->
/// SlowNode, SensorGlitch/GlitchClear -> PowerSpike (the glitch offset shows
/// up as a one-sample spike at both edges). Crash/repair produce no episode —
/// a dead node stops publishing rather than looking anomalous. Unended
/// episodes run to the horizon.
std::vector<GroundTruthEpisode> ground_truth(const fault::FaultSchedule& sched,
                                             const EvalConfig& cfg);

/// Score detector episodes against the ground truth.
EvalResult evaluate(const std::vector<GroundTruthEpisode>& truth,
                    const std::vector<Episode>& detections,
                    const EvalConfig& cfg);

/// Drop fault episodes that begin before `quiet_s` (paired end events of
/// dropped openers go with them; throttles carry their own duration). The
/// detector's quality bounds are steady-state properties: baselines must
/// warm on healthy traffic before z-flags can veto contaminated samples,
/// and a throttle that spans the cold-start window is indistinguishable
/// from normal load to a fresh baseline. Scenario builders (the property
/// suite, bench_monitor) use this to keep bootstrap out of the scored
/// window, matching the eval's refusal to judge detections there.
fault::FaultSchedule strip_warmup_faults(fault::FaultSchedule sched,
                                         double quiet_s);

}  // namespace antarex::monitor
