#include "monitor/detector.hpp"

#include <algorithm>
#include <cmath>

#include "causal/ledger.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::monitor {

const char* anomaly_kind_name(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::ThermalRunaway: return "thermal_runaway";
    case AnomalyKind::PowerSpike: return "power_spike";
    case AnomalyKind::Throttle: return "throttle";
    default: return "slow_node";
  }
}

AnomalyDetector::AnomalyDetector(std::size_t shards, DetectorConfig cfg)
    : shards_(shards), cfg_(cfg) {
  ANTAREX_REQUIRE(shards > 0, "AnomalyDetector: need at least one shard");
  ANTAREX_REQUIRE(cfg_.max_tracked > 0, "AnomalyDetector: max_tracked == 0");
  baselines_.resize(shards_ * kMetricCount);
}

double AnomalyDetector::scale_for(const Baseline& b, Metric m) const {
  double abs_floor = cfg_.abs_floor_progress;
  switch (m) {
    case Metric::PowerW: abs_floor = cfg_.abs_floor_power_w; break;
    case Metric::TempC: abs_floor = cfg_.abs_floor_temp_c; break;
    default: break;
  }
  return std::max({1.4826 * b.mad, cfg_.rel_floor * std::abs(b.m), abs_floor});
}

double AnomalyDetector::z_for(const Baseline& b, Metric m, double x) const {
  if (b.n < cfg_.warmup_samples) return 0.0;
  return (x - b.m) / scale_for(b, m);
}

void AnomalyDetector::update_baseline(Baseline& b, Metric m, double x) {
  if (b.n == 0) {
    b.m = x;
    b.mad = 0.0;
  } else {
    // Winsorize: a wild sample may pull the level by at most
    // alpha * clip_z * scale per step, not alpha * (x - m).
    const double lim = cfg_.clip_z * scale_for(b, m);
    const double v = std::clamp(x, b.m - lim, b.m + lim);
    b.m += cfg_.ewma_alpha * (v - b.m);
    b.mad += cfg_.mad_beta * (std::abs(v - b.m) - b.mad);
  }
  ++b.n;
}

void AnomalyDetector::observe(const MetricFrame& frame) {
  ANTAREX_REQUIRE(frame.shard < shards_, "AnomalyDetector: shard out of range");
  const bool busy = frame.util >= static_cast<float>(cfg_.min_util);

  bool flags[kAnomalyKindCount] = {false, false, false, false};
  double zs[kAnomalyKindCount] = {0.0, 0.0, 0.0, 0.0};
  bool any = false;
  if (busy) {
    Baseline& bp = baseline(frame.shard, Metric::PowerW);
    Baseline& bt = baseline(frame.shard, Metric::TempC);
    Baseline& bg = baseline(frame.shard, Metric::ProgressUps);
    const double zp = z_for(bp, Metric::PowerW, frame.power_w);
    const double zt = z_for(bt, Metric::TempC, frame.temp_c);
    const double zg = z_for(bg, Metric::ProgressUps, frame.progress_ups);

    if (zt > cfg_.z_open) {
      flags[static_cast<std::size_t>(AnomalyKind::ThermalRunaway)] = true;
      zs[static_cast<std::size_t>(AnomalyKind::ThermalRunaway)] = zt;
    }
    if (zp > cfg_.z_open) {
      flags[static_cast<std::size_t>(AnomalyKind::PowerSpike)] = true;
      zs[static_cast<std::size_t>(AnomalyKind::PowerSpike)] = zp;
    }
    if (-zg > cfg_.z_open) {
      // Progress fell off the shard baseline; the power signature says how.
      const auto kind = zp < -cfg_.power_drop_z ? AnomalyKind::Throttle
                                                : AnomalyKind::SlowNode;
      flags[static_cast<std::size_t>(kind)] = true;
      zs[static_cast<std::size_t>(kind)] = -zg;
    }
    any = flags[0] || flags[1] || flags[2] || flags[3];
    if (any) ++flagged_samples_;

    // Anomalous samples must not teach the baseline (a stuck throttle would
    // become "normal" within 1/alpha samples otherwise).
    if (!flags[static_cast<std::size_t>(AnomalyKind::PowerSpike)] &&
        !flags[static_cast<std::size_t>(AnomalyKind::Throttle)])
      update_baseline(bp, Metric::PowerW, frame.power_w);
    if (!flags[static_cast<std::size_t>(AnomalyKind::ThermalRunaway)])
      update_baseline(bt, Metric::TempC, frame.temp_c);
    if (!flags[static_cast<std::size_t>(AnomalyKind::Throttle)] &&
        !flags[static_cast<std::size_t>(AnomalyKind::SlowNode)])
      update_baseline(bg, Metric::ProgressUps, frame.progress_ups);
  }

  auto it = tracked_.find(frame.node);
  if (it == tracked_.end()) {
    if (!any) return;  // healthy untracked node: nothing to do
    if (tracked_.size() >= cfg_.max_tracked) {
      ++tracked_overflow_;
      TELEMETRY_COUNT("monitor.detector.tracked_overflow", 1);
      return;
    }
    it = tracked_.emplace(frame.node, NodeTrack{}).first;
  }

  NodeTrack& track = it->second;
  for (std::size_t k = 0; k < kAnomalyKindCount; ++k)
    step_kind(track, static_cast<AnomalyKind>(k), flags[k], zs[k], frame);

  // Drop the node's tracking state once it is fully healthy again.
  bool live = false;
  for (const KindState& ks : track.kinds)
    if (ks.open || ks.run > 0) live = true;
  if (!live) tracked_.erase(it);
}

void AnomalyDetector::step_kind(NodeTrack& track, AnomalyKind kind,
                                bool flagged, double z,
                                const MetricFrame& frame) {
  KindState& ks = track.kinds[static_cast<std::size_t>(kind)];
  if (flagged) {
    ++ks.run;
    ks.quiet = 0;
    const u32 open_after = kind == AnomalyKind::PowerSpike
                               ? cfg_.spike_open_after
                               : cfg_.open_after;
    if (!ks.open && ks.run >= open_after) open_episode(ks, kind, z, frame);
    if (ks.open) {
      ks.episode.peak_z = std::max(ks.episode.peak_z, z);
      ++ks.episode.samples;
      ks.episode.close_t_s = frame.t_s;
    }
    return;
  }
  ks.run = 0;
  if (ks.open && ++ks.quiet >= cfg_.quiet_close) close_episode(ks, frame.t_s);
}

void AnomalyDetector::open_episode(KindState& ks, AnomalyKind kind, double z,
                                   const MetricFrame& frame) {
  ks.open = true;
  ks.episode = Episode{frame.node, frame.shard,  kind, frame.t_s,
                       frame.t_s,  z,            0,    true};
  ++active_;
  // Dynamic metric name (one per kind): cold path, so the uncached registry
  // lookup is fine — the cached TELEMETRY_COUNT macro needs a constant name.
  telemetry::Registry::global()
      .counter(format("monitor.anomaly.open.%s", anomaly_kind_name(kind)))
      .add(1);
  TELEMETRY_GAUGE("monitor.anomaly_active", static_cast<double>(active_));
  // Decision provenance: an episode opening is the detector deciding the
  // node is anomalous; the observed effect lands when the episode closes.
  causal::DecisionRecord rec;
  rec.t_s = frame.t_s;
  rec.actor = "monitor.detector";
  rec.action = format("episode_open:%s", anomaly_kind_name(kind));
  rec.cause = format("node %u shard %u z=%.2f", frame.node, frame.shard, z);
  rec.cause_value = z;
  ks.ledger_seq = causal::DecisionLedger::global().record(std::move(rec));
  if (hook_) hook_(ks.episode, true);
}

void AnomalyDetector::close_episode(KindState& ks, double t_s) {
  ks.open = false;
  ks.quiet = 0;
  ks.episode.open = false;
  (void)t_s;  // close time is the last flagged sample, already recorded
  --active_;
  TELEMETRY_GAUGE("monitor.anomaly_active", static_cast<double>(active_));
  if (ks.ledger_seq != 0) {
    causal::DecisionLedger::global().note_effect(
        ks.ledger_seq,
        format("closed after %.2fs, %u samples, peak z=%.2f",
               ks.episode.close_t_s - ks.episode.open_t_s, ks.episode.samples,
               ks.episode.peak_z),
        ks.episode.peak_z);
    ks.ledger_seq = 0;
  }
  if (hook_) hook_(ks.episode, false);
  if (closed_.size() >= cfg_.max_closed) {
    ++closed_overflow_;
    TELEMETRY_COUNT("monitor.detector.closed_overflow", 1);
    return;
  }
  closed_.push_back(ks.episode);
}

std::vector<Episode> AnomalyDetector::episodes() const {
  std::vector<Episode> out = closed_;
  for (const auto& [node, track] : tracked_)
    for (const KindState& ks : track.kinds)
      if (ks.open) out.push_back(ks.episode);
  return out;
}

std::size_t AnomalyDetector::approx_bytes() const {
  return sizeof(*this) + baselines_.size() * sizeof(Baseline) +
         tracked_.size() * (sizeof(NodeTrack) + sizeof(u32) + 48) +
         closed_.capacity() * sizeof(Episode);
}

void AnomalyDetector::clear() {
  std::fill(baselines_.begin(), baselines_.end(), Baseline{});
  tracked_.clear();
  closed_.clear();
  active_ = 0;
  flagged_samples_ = 0;
  tracked_overflow_ = 0;
  closed_overflow_ = 0;
}

}  // namespace antarex::monitor
