// antarex::monitor — space-saving top-K heavy hitters.
//
// Metwally/Agrawal/El Abbadi's SpaceSaving sketch over node ids: K counters
// total, O(1) offer, and a guarantee that any node whose true weight exceeds
// total/K is present in the summary. The fabric uses one instance to keep the
// K most anomalous / hottest nodes visible without per-node state — the "K"
// in the aggregator's O(shards + K) memory bound.
//
// Counts are monotone weights (anomaly flags, degree-seconds over threshold),
// offered from the simulation thread only; no locking.
#pragma once

#include <algorithm>
#include <vector>

#include "support/common.hpp"

namespace antarex::monitor {

class TopK {
 public:
  struct Entry {
    u32 key = 0;
    double weight = 0.0;  ///< upper bound on the true weight
    double error = 0.0;   ///< overestimation bound (weight - error <= true)
  };

  explicit TopK(std::size_t k);

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return entries_.size(); }
  double total_weight() const { return total_; }

  /// Add `weight` to `key`'s counter. When the summary is full and `key` is
  /// absent, the minimum entry is evicted and its count inherited (the
  /// classic SpaceSaving replacement, with the inherited part recorded as
  /// `error`).
  void offer(u32 key, double weight = 1.0);

  /// Entries sorted by weight descending, ties by key ascending — a
  /// deterministic ranking for reports and digests.
  std::vector<Entry> ranked() const;

  /// True weight lower bound for `key` (0 when absent).
  double guaranteed_weight(u32 key) const;

  void clear();

  std::size_t approx_bytes() const {
    return sizeof(*this) + k_ * sizeof(Entry);
  }

 private:
  std::size_t find(u32 key) const;  ///< index in entries_, or size() if absent

  std::size_t k_;
  std::vector<Entry> entries_;  ///< unordered; scanned (K is small)
  double total_ = 0.0;
};

}  // namespace antarex::monitor
