#include "monitor/broker.hpp"

#include <numeric>

#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::monitor {

Broker::Broker(std::size_t shards, BrokerConfig cfg) : cfg_(cfg) {
  ANTAREX_REQUIRE(shards > 0, "Broker: need at least one shard");
  ANTAREX_REQUIRE(cfg_.queue_capacity > 0, "Broker: zero queue capacity");
  queues_.resize(shards);
  dropped_.assign(shards, 0);
  for (auto& q : queues_) q.reserve(cfg_.queue_capacity);
}

int Broker::subscribe(const std::string& pattern, Handler fn) {
  ANTAREX_REQUIRE(fn != nullptr, "Broker: null subscription handler");
  subs_.push_back(Subscription{parse_topic_filter(pattern), std::move(fn)});
  return static_cast<int>(subs_.size()) - 1;
}

void Broker::publish(const MetricFrame& frame) {
  ANTAREX_REQUIRE(frame.shard < queues_.size(),
                  "Broker: frame addressed to a missing shard");
  ++published_;
  std::vector<MetricFrame>& q = queues_[frame.shard];
  if (q.size() >= cfg_.queue_capacity) {
    ++dropped_[frame.shard];
    // Saturation must be observable from outside the process too: mirror the
    // per-shard count into a telemetry drop counter (the metrics-JSON
    // exporter surfaces all of them under "drops").
    telemetry::Registry::global()
        .drop_counter(format("monitor.broker.dropped.cluster/%u",
                             static_cast<unsigned>(frame.shard)))
        .add(1);
    return;
  }
  q.push_back(frame);
}

std::size_t Broker::drain() {
  std::size_t n = 0;
  for (std::vector<MetricFrame>& q : queues_) {
    for (const MetricFrame& frame : q) {
      for (const Subscription& sub : subs_)
        if (sub.filter.matches(frame.shard, frame.node)) sub.fn(frame);
      ++n;
    }
    q.clear();
  }
  delivered_ += n;
  last_drain_ = n;
  return n;
}

u64 Broker::dropped(std::size_t shard) const {
  ANTAREX_REQUIRE(shard < dropped_.size(), "Broker: shard out of range");
  return dropped_[shard];
}

u64 Broker::total_dropped() const {
  return std::accumulate(dropped_.begin(), dropped_.end(), u64{0});
}

std::size_t Broker::approx_bytes() const {
  return queues_.size() *
             (cfg_.queue_capacity * sizeof(MetricFrame) + sizeof(queues_[0])) +
         dropped_.size() * sizeof(u64) + subs_.size() * sizeof(Subscription);
}

}  // namespace antarex::monitor
