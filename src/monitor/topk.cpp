#include "monitor/topk.hpp"

namespace antarex::monitor {

TopK::TopK(std::size_t k) : k_(k) {
  ANTAREX_REQUIRE(k > 0, "TopK: need at least one slot");
  entries_.reserve(k);
}

std::size_t TopK::find(u32 key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].key == key) return i;
  return entries_.size();
}

void TopK::offer(u32 key, double weight) {
  ANTAREX_REQUIRE(weight >= 0.0, "TopK: negative weight");
  total_ += weight;
  const std::size_t i = find(key);
  if (i < entries_.size()) {
    entries_[i].weight += weight;
    return;
  }
  if (entries_.size() < k_) {
    entries_.push_back(Entry{key, weight, 0.0});
    return;
  }
  // Evict the minimum (ties broken by highest key, so the survivor set is
  // deterministic) and let the newcomer inherit its count as error bound.
  std::size_t victim = 0;
  for (std::size_t j = 1; j < entries_.size(); ++j) {
    const Entry& e = entries_[j];
    const Entry& v = entries_[victim];
    if (e.weight < v.weight || (e.weight == v.weight && e.key > v.key))
      victim = j;
  }
  Entry& slot = entries_[victim];
  slot.error = slot.weight;
  slot.weight += weight;
  slot.key = key;
}

std::vector<TopK::Entry> TopK::ranked() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.key < b.key;
  });
  return out;
}

double TopK::guaranteed_weight(u32 key) const {
  const std::size_t i = find(key);
  if (i == entries_.size()) return 0.0;
  return entries_[i].weight - entries_[i].error;
}

void TopK::clear() {
  entries_.clear();
  total_ = 0.0;
}

}  // namespace antarex::monitor
