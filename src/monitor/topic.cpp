#include "monitor/topic.hpp"

#include <vector>

#include "support/strings.hpp"

namespace antarex::monitor {

namespace {

std::vector<std::string> split_levels(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == '/') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// Level -> id: literal number, `+`/`#` -> kAny. Throws on anything else.
u32 parse_id_level(const std::string& level, const char* what) {
  if (level == "+" || level == "#") return TopicFilter::kAny;
  ANTAREX_REQUIRE(!level.empty(), std::string("monitor: empty ") + what +
                                      " level in topic pattern");
  u64 v = 0;
  for (const char c : level) {
    ANTAREX_REQUIRE(c >= '0' && c <= '9',
                    std::string("monitor: non-numeric ") + what +
                        " level '" + level + "' in topic pattern");
    v = v * 10 + static_cast<u64>(c - '0');
    ANTAREX_REQUIRE(v < TopicFilter::kAny,
                    std::string("monitor: ") + what + " id out of range");
  }
  return static_cast<u32>(v);
}

u32 parse_metric_level(const std::string& level) {
  if (level == "+" || level == "#") return TopicFilter::kAny;
  for (std::size_t i = 0; i < kMetricCount; ++i)
    if (level == metric_name(static_cast<Metric>(i))) return static_cast<u32>(i);
  throw Error("monitor: unknown metric '" + level + "' in topic pattern");
}

}  // namespace

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::PowerW: return "power_w";
    case Metric::TempC: return "temp_c";
    case Metric::Utilization: return "util";
    default: return "progress_ups";
  }
}

std::string topic_for(u16 shard, u32 node, Metric m) {
  return format("cluster/%u/node/%u/%s", static_cast<unsigned>(shard),
                static_cast<unsigned>(node), metric_name(m));
}

TopicFilter parse_topic_filter(const std::string& pattern) {
  const std::vector<std::string> levels = split_levels(pattern);
  TopicFilter f;
  // `#` swallows everything from its level on; a bare "#" matches all.
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::string& level = levels[i];
    const bool is_hash = level == "#";
    ANTAREX_REQUIRE(!is_hash || i + 1 == levels.size(),
                    "monitor: '#' must be the last topic level");
    switch (i) {
      case 0:
        if (is_hash) return f;
        ANTAREX_REQUIRE(level == "cluster" || level == "+",
                        "monitor: topic pattern must start with 'cluster'");
        break;
      case 1:
        if (is_hash) return f;
        f.shard = parse_id_level(level, "shard");
        break;
      case 2:
        if (is_hash) return f;
        ANTAREX_REQUIRE(level == "node" || level == "+",
                        "monitor: third topic level must be 'node'");
        break;
      case 3:
        if (is_hash) return f;
        f.node = parse_id_level(level, "node");
        break;
      case 4:
        f.metric = is_hash ? TopicFilter::kAny : parse_metric_level(level);
        break;
      default:
        throw Error("monitor: topic pattern '" + pattern + "' is too deep");
    }
  }
  // A pattern truncated without `#` ("cluster/3") subscribes the subtree,
  // same as MQTT's "cluster/3/#".
  return f;
}

bool topic_matches(const std::string& pattern, const std::string& topic) {
  const std::vector<std::string> p = split_levels(pattern);
  const std::vector<std::string> t = split_levels(topic);
  std::size_t i = 0;
  for (; i < p.size(); ++i) {
    if (p[i] == "#") return true;  // matches the remainder, even empty
    if (i >= t.size()) return false;
    if (p[i] != "+" && p[i] != t[i]) return false;
  }
  return i == t.size();
}

}  // namespace antarex::monitor
