// antarex::monitor — bounded-memory streaming aggregation.
//
// The site-level half of the Examon model: node samples fan into per-shard
// aggregates whose footprint is a function of configuration, never of node
// count. Three pieces compose:
//
//   StreamStat      count/sum/min/max over one (shard, metric) stream
//   QuantileSketch  fixed-bin histogram over a configured value range;
//                   approx_quantile() interpolates inside the bin, so the
//                   error is bounded by one bin width
//   RetentionRing   RRD-style multi-resolution history: three rings at 1x,
//                   10x, and 100x step resolution. Every step pushes into the
//                   fine ring; every 10th (100th) completed group folds its
//                   mean into the coarser ring. Old data ages into coarser
//                   resolution instead of growing memory.
//
// ShardAggregator owns one StreamStat + QuantileSketch per (shard, metric)
// and one RetentionRing per metric at cluster scope, plus a TopK of outlier
// nodes — total memory O(shards * metrics + K).
//
// All updates happen on the simulation thread (broker drain); determinism
// follows from delivery order.
#pragma once

#include <array>
#include <vector>

#include "monitor/topic.hpp"
#include "monitor/topk.hpp"
#include "support/common.hpp"

namespace antarex::monitor {

/// Streaming count/sum/min/max. Mean is exact; everything is mergeable.
struct StreamStat {
  u64 count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x) {
    if (count == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    ++count;
    sum += x;
  }
  void merge(const StreamStat& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  void clear() { *this = StreamStat{}; }
};

/// Fixed-bin quantile sketch: values clamp to [lo, hi], quantiles interpolate
/// within the owning bin. Single-writer (sim thread), so plain u64 bins.
class QuantileSketch {
 public:
  QuantileSketch(double lo, double hi, std::size_t bins);

  void add(double x);
  u64 count() const { return count_; }
  /// q in [0,1]; 0 with no samples. Error bound: one bin width.
  double approx_quantile(double q) const;
  void merge(const QuantileSketch& o);
  void clear();
  std::size_t approx_bytes() const {
    return sizeof(*this) + bins_.size() * sizeof(u64);
  }

 private:
  double lo_, hi_;
  std::vector<u64> bins_;
  u64 count_ = 0;
};

/// One fixed-capacity ring of (mean, min, max) cells.
struct RingCell {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Multi-resolution retention: level 0 holds the last `capacity` raw pushes,
/// level 1 the last `capacity` means-of-10, level 2 means-of-100. ~3*capacity
/// cells cover 111x the fine window — the RRD trade: recent history sharp,
/// old history coarse, memory constant.
class RetentionRing {
 public:
  static constexpr std::size_t kLevels = 3;
  static constexpr std::size_t kFold = 10;  ///< pushes folded per level step

  explicit RetentionRing(std::size_t capacity = 128);

  void push(double value);
  u64 pushes() const { return pushes_; }

  /// Most-recent-last cells of `level` (0 = raw steps, 1 = 10-step means,
  /// 2 = 100-step means). At most `capacity` cells.
  std::vector<RingCell> history(std::size_t level) const;
  std::size_t capacity() const { return capacity_; }

  void clear();
  std::size_t approx_bytes() const {
    return sizeof(*this) + kLevels * capacity_ * sizeof(RingCell);
  }

 private:
  struct Level {
    std::vector<RingCell> cells;  ///< ring storage, capacity_ cells
    std::size_t head = 0;         ///< next write index
    std::size_t size = 0;
    StreamStat fold;  ///< accumulates kFold entries for the next level
    u64 folded = 0;   ///< entries currently in `fold`
    double pend_min = 0.0;  ///< min/max envelope of the open fold group
    double pend_max = 0.0;
  };

  void push_level(std::size_t level, const RingCell& cell);

  std::size_t capacity_;
  std::array<Level, kLevels> levels_;
  u64 pushes_ = 0;
};

struct AggregatorConfig {
  std::size_t sketch_bins = 64;
  std::size_t ring_capacity = 128;
  std::size_t top_k = 16;
  /// Sketch value ranges per metric (clamped beyond them).
  double power_hi_w = 1000.0;
  double temp_hi_c = 150.0;
  double progress_hi_ups = 50.0;
};

/// Per-shard + cluster-level rollup of every frame the broker delivers.
class ShardAggregator {
 public:
  ShardAggregator(std::size_t shards, AggregatorConfig cfg = {});

  std::size_t shards() const { return shards_; }
  const AggregatorConfig& config() const { return cfg_; }

  /// Ingest one frame (subscribed to the broker's `#`).
  void ingest(const MetricFrame& frame);
  /// Close the current step: fold per-step cluster means into the retention
  /// rings. Call once per sampling step, after the drain.
  void roll_step();

  u64 frames() const { return frames_; }
  const StreamStat& shard_stat(std::size_t shard, Metric m) const;
  const QuantileSketch& shard_sketch(std::size_t shard, Metric m) const;
  StreamStat cluster_stat(Metric m) const;  ///< merged over shards
  double cluster_quantile(Metric m, double q) const;
  const RetentionRing& ring(Metric m) const;
  const TopK& hot_nodes() const { return hot_nodes_; }

  /// Node-count-independent memory bound of everything this object owns.
  std::size_t approx_bytes() const;

  void clear();

 private:
  struct Cell {
    StreamStat stat;
    QuantileSketch sketch;
    Cell(double lo, double hi, std::size_t bins) : sketch(lo, hi, bins) {}
  };
  Cell& cell(std::size_t shard, Metric m) {
    return cells_[shard * kMetricCount + static_cast<std::size_t>(m)];
  }
  const Cell& cell(std::size_t shard, Metric m) const {
    return cells_[shard * kMetricCount + static_cast<std::size_t>(m)];
  }

  std::size_t shards_;
  AggregatorConfig cfg_;
  std::vector<Cell> cells_;  ///< shards * kMetricCount
  std::vector<RetentionRing> rings_;  ///< one per metric, cluster scope
  std::vector<StreamStat> step_;      ///< per-metric stats of the open step
  TopK hot_nodes_;                    ///< hottest nodes by degree-seconds
  u64 frames_ = 0;
};

}  // namespace antarex::monitor
