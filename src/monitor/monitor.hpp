// antarex::monitor — Examon-style cluster monitoring fabric.
//
// The site-wide monitoring plane between the simulated plant (rtrm) and the
// layers that act on it (obs policies, govern power caps): per-node sampling
// onto an MQTT-like topic hierarchy, a topic-sharded in-process broker,
// bounded-memory streaming aggregation with RRD-style retention, and online
// anomaly detection scored against antarex::fault ground truth. See
// DESIGN.md "Cluster monitoring" and the fabric.hpp header for the wiring.
#pragma once

#include "monitor/aggregate.hpp"
#include "monitor/broker.hpp"
#include "monitor/detector.hpp"
#include "monitor/eval.hpp"
#include "monitor/fabric.hpp"
#include "monitor/topic.hpp"
#include "monitor/topk.hpp"
