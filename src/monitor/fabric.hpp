// antarex::monitor — the assembled monitoring fabric.
//
// MonitorFabric wires the Examon pipeline onto a live rtrm::Cluster:
//
//   Sampler ──frames──▶ Broker ──drain──▶ ShardAggregator
//                                    └──▶ AnomalyDetector ──episodes──▶ hooks
//
// attach() installs one step observer. Every sample_period_s of simulated
// time it samples all alive nodes — power from RAPL counter *deltas* (what a
// real out-of-band sampler reads, glitches included), hottest-device
// temperature, utilization, and the observable progress rate — publishes one
// MetricFrame per node, drains the broker, and rolls the aggregation step.
// Everything runs on the simulation thread; results are byte-identical at
// any exec worker count.
//
// Memory split: the Sampler keeps one previous RAPL reading per device (edge
// state, it lives with the node in the real system); the fabric core —
// broker + aggregator + detector — is O(shards + K), independent of node
// count, which approx_bytes() reports and bench_monitor gates.
//
// feed_governance() and install_anomaly_policies() close the loop into
// govern/obs so detection drives actuation, not just dashboards.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/aggregate.hpp"
#include "monitor/broker.hpp"
#include "monitor/detector.hpp"
#include "rtrm/cluster.hpp"

namespace antarex::obs {
class PolicyEngine;
}
namespace antarex::govern {
class CapCoordinator;
}
namespace antarex::rtrm {
class ShardedCluster;
}

namespace antarex::monitor {

struct FabricConfig {
  u16 shards = 8;               ///< topic shards (node -> node % shards)
  double sample_period_s = 1.0; ///< min simulated seconds between samples
  bool time_self = true;        ///< measure the fabric's own wall time
  BrokerConfig broker;
  AggregatorConfig aggregator;
  DetectorConfig detector;
};

class MonitorFabric {
 public:
  using EpisodeListener = std::function<void(const Episode&, bool opened)>;

  explicit MonitorFabric(FabricConfig cfg = {});

  /// Install the sampling step observer on `cluster` and subscribe the
  /// aggregator and detector to the broker. The fabric must outlive the
  /// cluster's run. Call once.
  void attach(rtrm::Cluster& cluster);

  /// Same fabric over the SoA engine: sampling reads the ShardedCluster's
  /// batched per-device counters (a read catches parked state up without
  /// waking it, so monitoring never perturbs the plant or its parking).
  void attach(rtrm::ShardedCluster& cluster);

  const FabricConfig& config() const { return cfg_; }
  u16 shard_of(std::size_t node) const {
    return static_cast<u16>(node % cfg_.shards);
  }

  Broker& broker() { return broker_; }
  const Broker& broker() const { return broker_; }
  ShardAggregator& aggregator() { return aggregator_; }
  const ShardAggregator& aggregator() const { return aggregator_; }
  AnomalyDetector& detector() { return detector_; }
  const AnomalyDetector& detector() const { return detector_; }

  /// Episode open/close fan-out (the detector's single hook, multiplexed).
  void add_episode_listener(EpisodeListener fn);

  u64 samples() const { return samples_; }  ///< sampling sweeps taken
  /// Wall-clock seconds spent inside the fabric's observer (sampling,
  /// publishing, draining, detection) when config().time_self — the
  /// numerator of bench_monitor's overhead figure.
  double self_seconds() const { return self_s_; }

  /// Fabric-core memory bound: broker + aggregator + detector. Excludes the
  /// per-device sampler edge state, reported separately.
  std::size_t approx_bytes() const;
  std::size_t sampler_bytes() const;

  /// Cluster-health JSON, schema "antarex.monitor.health/v1": per-metric
  /// cluster stats and quantiles, per-shard means, retention-ring history,
  /// hot nodes, and anomaly episodes. The report tool renders this as the
  /// shard heatmap + anomaly timeline.
  std::string health_json() const;

 private:
  void on_step(rtrm::Cluster& cluster, double now_s);
  void sample(rtrm::Cluster& cluster, double now_s, double elapsed_s);
  void on_step_sharded(rtrm::ShardedCluster& cluster, double now_s);
  void sample_sharded(rtrm::ShardedCluster& cluster, double now_s,
                      double elapsed_s);
  void prime_sharded(rtrm::ShardedCluster& cluster);

  FabricConfig cfg_;
  Broker broker_;
  ShardAggregator aggregator_;
  AnomalyDetector detector_;
  std::vector<EpisodeListener> listeners_;

  bool attached_ = false;
  bool primed_ = false;          ///< first sweep only primes RAPL readings
  double next_sample_s_ = 0.0;
  double last_sample_s_ = 0.0;
  std::vector<u32> prev_uj_;     ///< per-device previous RAPL reading
  std::vector<std::size_t> dev_base_;  ///< node -> first index in prev_uj_
  u64 samples_ = 0;
  double self_s_ = 0.0;
};

/// While an anomaly episode is open on a node, multiply its budget share in
/// `coordinator` by `penalty` (< 1); restore 1.0 on close. Registers an
/// episode listener — call after constructing both, before the run.
void feed_governance(MonitorFabric& fabric, govern::CapCoordinator& coordinator,
                     double penalty = 0.25);

/// Thresholds for the monitor-driven obs policies.
struct AnomalyPolicyConfig {
  double active_alert = 1.0;   ///< monitor.anomaly_active >= this fires
  double cooldown_s = 5.0;
};

/// Install monitor policies on `engine`:
///  - monitor.anomaly_alert  (counts obs.alerts.anomaly while any episode is
///    open, re-firing every cooldown_s)
void install_anomaly_policies(obs::PolicyEngine& engine,
                              AnomalyPolicyConfig config = {});

}  // namespace antarex::monitor
