#include "monitor/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "govern/coordinator.hpp"
#include "obs/policy.hpp"
#include "rtrm/sharded_cluster.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::monitor {

MonitorFabric::MonitorFabric(FabricConfig cfg)
    : cfg_(cfg),
      broker_(cfg.shards, cfg.broker),
      aggregator_(cfg.shards, cfg.aggregator),
      detector_(cfg.shards, cfg.detector) {
  ANTAREX_REQUIRE(cfg_.shards > 0, "MonitorFabric: need at least one shard");
  ANTAREX_REQUIRE(cfg_.sample_period_s > 0.0,
                  "MonitorFabric: sample period must be positive");
  detector_.set_hook([this](const Episode& e, bool opened) {
    for (const EpisodeListener& fn : listeners_) fn(e, opened);
  });
}

void MonitorFabric::attach(rtrm::Cluster& cluster) {
  ANTAREX_REQUIRE(!attached_, "MonitorFabric: attach() called twice");
  attached_ = true;

  dev_base_.clear();
  std::size_t devices = 0;
  for (const rtrm::Node& node : cluster.nodes()) {
    dev_base_.push_back(devices);
    devices += node.device_count();
  }
  prev_uj_.assign(devices, 0);

  // Registration order fixes delivery order: aggregate, then detect.
  broker_.subscribe("#", [this](const MetricFrame& f) { aggregator_.ingest(f); });
  broker_.subscribe("#", [this](const MetricFrame& f) { detector_.observe(f); });

  cluster.add_step_observer(
      [this, &cluster](double now_s, double /*it_power_w*/, double /*dt_s*/) {
        on_step(cluster, now_s);
      });
}

void MonitorFabric::attach(rtrm::ShardedCluster& cluster) {
  ANTAREX_REQUIRE(!attached_, "MonitorFabric: attach() called twice");
  attached_ = true;

  dev_base_.clear();
  std::size_t devices = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    dev_base_.push_back(devices);
    devices += cluster.node_device_count(i);
  }
  prev_uj_.assign(devices, 0);

  // Registration order fixes delivery order: aggregate, then detect.
  broker_.subscribe("#", [this](const MetricFrame& f) { aggregator_.ingest(f); });
  broker_.subscribe("#", [this](const MetricFrame& f) { detector_.observe(f); });

  cluster.add_step_observer(
      [this, &cluster](double now_s, double /*it_power_w*/, double /*dt_s*/) {
        on_step_sharded(cluster, now_s);
      });
}

void MonitorFabric::prime_sharded(rtrm::ShardedCluster& cluster) {
  for (std::size_t i = 0; i < cluster.node_count(); ++i)
    for (std::size_t d = 0; d < cluster.node_device_count(i); ++d)
      prev_uj_[dev_base_[i] + d] = cluster.device_counter_uj(i, d);
}

void MonitorFabric::on_step_sharded(rtrm::ShardedCluster& cluster,
                                    double now_s) {
  if (now_s + 1e-9 < next_sample_s_) return;
  const auto t0 = std::chrono::steady_clock::now();

  if (!primed_) {
    // First sweep: record RAPL readings only; a delta needs two of them.
    prime_sharded(cluster);
    primed_ = true;
  } else {
    sample_sharded(cluster, now_s, now_s - last_sample_s_);
  }
  last_sample_s_ = now_s;
  while (next_sample_s_ <= now_s + 1e-9) next_sample_s_ += cfg_.sample_period_s;

  if (cfg_.time_self) {
    self_s_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  }
}

void MonitorFabric::sample_sharded(rtrm::ShardedCluster& cluster, double now_s,
                                   double elapsed_s) {
  ANTAREX_REQUIRE(elapsed_s > 0.0, "MonitorFabric: non-advancing sample clock");
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const std::size_t n_dev = cluster.node_device_count(i);
    double energy_j = 0.0;
    double temp_c = 0.0;
    double progress = 0.0;
    u16 busy = 0;
    for (std::size_t d = 0; d < n_dev; ++d) {
      const u32 cur = cluster.device_counter_uj(i, d);
      u32& prev = prev_uj_[dev_base_[i] + d];
      energy_j += power::RaplDomain::delta_j(prev, cur);
      prev = cur;
      temp_c = std::max(temp_c, cluster.device_temperature_c(i, d));
      progress += cluster.device_progress_rate_ups(i, d);
      if (cluster.device_busy(i, d)) ++busy;
    }
    // A downed node's sampler is down with it: readings refreshed (above),
    // nothing published.
    if (cluster.node_failed(i)) continue;

    MetricFrame frame;
    frame.t_s = now_s;
    frame.node = static_cast<u32>(i);
    frame.shard = shard_of(i);
    frame.busy_devices = busy;
    frame.power_w =
        static_cast<float>(energy_j / elapsed_s + cluster.node_base_power_w(i));
    frame.temp_c = static_cast<float>(temp_c);
    frame.util = n_dev ? static_cast<float>(busy) / static_cast<float>(n_dev)
                       : 0.0f;
    frame.progress_ups = static_cast<float>(progress);
    broker_.publish(frame);
  }
  broker_.drain();
  aggregator_.roll_step();
  ++samples_;
  TELEMETRY_COUNT("monitor.samples", 1);
  TELEMETRY_GAUGE("monitor.frames_published",
                  static_cast<double>(broker_.published()));
}

void MonitorFabric::add_episode_listener(EpisodeListener fn) {
  ANTAREX_REQUIRE(fn != nullptr, "MonitorFabric: null episode listener");
  listeners_.push_back(std::move(fn));
}

void MonitorFabric::on_step(rtrm::Cluster& cluster, double now_s) {
  if (now_s + 1e-9 < next_sample_s_) return;
  const auto t0 = std::chrono::steady_clock::now();

  if (!primed_) {
    // First sweep: record RAPL readings only; a delta needs two of them.
    for (std::size_t i = 0; i < cluster.nodes().size(); ++i) {
      const rtrm::Node& node = cluster.nodes()[i];
      for (std::size_t d = 0; d < node.device_count(); ++d)
        prev_uj_[dev_base_[i] + d] = node.device(d).rapl().counter_uj();
    }
    primed_ = true;
  } else {
    sample(cluster, now_s, now_s - last_sample_s_);
  }
  last_sample_s_ = now_s;
  while (next_sample_s_ <= now_s + 1e-9) next_sample_s_ += cfg_.sample_period_s;

  if (cfg_.time_self) {
    self_s_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  }
}

void MonitorFabric::sample(rtrm::Cluster& cluster, double now_s,
                           double elapsed_s) {
  ANTAREX_REQUIRE(elapsed_s > 0.0, "MonitorFabric: non-advancing sample clock");
  for (std::size_t i = 0; i < cluster.nodes().size(); ++i) {
    const rtrm::Node& node = cluster.nodes()[i];
    double energy_j = 0.0;
    double temp_c = 0.0;
    double progress = 0.0;
    u16 busy = 0;
    for (std::size_t d = 0; d < node.device_count(); ++d) {
      const rtrm::Device& dev = node.device(d);
      const u32 cur = dev.rapl().counter_uj();
      u32& prev = prev_uj_[dev_base_[i] + d];
      energy_j += power::RaplDomain::delta_j(prev, cur);
      prev = cur;
      temp_c = std::max(temp_c, dev.temperature_c());
      progress += dev.progress_rate_ups();
      if (dev.busy()) ++busy;
    }
    // A downed node's sampler is down with it: readings refreshed (above),
    // nothing published.
    if (node.failed()) continue;

    MetricFrame frame;
    frame.t_s = now_s;
    frame.node = static_cast<u32>(i);
    frame.shard = shard_of(i);
    frame.busy_devices = busy;
    frame.power_w =
        static_cast<float>(energy_j / elapsed_s + node.base_power_w());
    frame.temp_c = static_cast<float>(temp_c);
    frame.util = node.device_count()
                     ? static_cast<float>(busy) /
                           static_cast<float>(node.device_count())
                     : 0.0f;
    frame.progress_ups = static_cast<float>(progress);
    broker_.publish(frame);
  }
  broker_.drain();
  aggregator_.roll_step();
  ++samples_;
  TELEMETRY_COUNT("monitor.samples", 1);
  TELEMETRY_GAUGE("monitor.frames_published",
                  static_cast<double>(broker_.published()));
}

std::size_t MonitorFabric::approx_bytes() const {
  return broker_.approx_bytes() + aggregator_.approx_bytes() +
         detector_.approx_bytes();
}

std::size_t MonitorFabric::sampler_bytes() const {
  return prev_uj_.size() * sizeof(u32) + dev_base_.size() * sizeof(std::size_t);
}

std::string MonitorFabric::health_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"antarex.monitor.health/v1\"";
  os << ",\"shards\":" << cfg_.shards;
  os << ",\"samples\":" << samples_;
  os << ",\"frames\":" << aggregator_.frames();
  os << ",\"published\":" << broker_.published();
  os << ",\"dropped\":" << broker_.total_dropped();
  os << ",\"fabric_bytes\":" << approx_bytes();

  os << ",\"metrics\":{";
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const auto metric = static_cast<Metric>(m);
    const StreamStat s = aggregator_.cluster_stat(metric);
    os << (m ? "," : "") << json_quote(metric_name(metric)) << ":{";
    os << "\"count\":" << s.count;
    os << ",\"mean\":" << s.mean();
    os << ",\"min\":" << s.min;
    os << ",\"max\":" << s.max;
    os << ",\"p50\":" << aggregator_.cluster_quantile(metric, 0.5);
    os << ",\"p95\":" << aggregator_.cluster_quantile(metric, 0.95);
    os << "}";
  }
  os << "}";

  os << ",\"shard_mean\":{";
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const auto metric = static_cast<Metric>(m);
    os << (m ? "," : "") << json_quote(metric_name(metric)) << ":[";
    for (std::size_t s = 0; s < aggregator_.shards(); ++s)
      os << (s ? "," : "") << aggregator_.shard_stat(s, metric).mean();
    os << "]";
  }
  os << "}";

  // Retention-ring means, finest first — the downsampled time axis a
  // dashboard would plot.
  os << ",\"ring\":{";
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const auto metric = static_cast<Metric>(m);
    os << (m ? "," : "") << json_quote(metric_name(metric)) << ":[";
    for (std::size_t level = 0; level < RetentionRing::kLevels; ++level) {
      const auto cells = aggregator_.ring(metric).history(level);
      os << (level ? "," : "") << "[";
      for (std::size_t c = 0; c < cells.size(); ++c)
        os << (c ? "," : "") << cells[c].mean;
      os << "]";
    }
    os << "]";
  }
  os << "}";

  os << ",\"hot_nodes\":[";
  const auto ranked = aggregator_.hot_nodes().ranked();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    os << (i ? "," : "") << "{\"node\":" << ranked[i].key
       << ",\"weight\":" << ranked[i].weight
       << ",\"error\":" << ranked[i].error << "}";
  }
  os << "]";

  os << ",\"episodes\":[";
  const auto episodes = detector_.episodes();
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const Episode& e = episodes[i];
    os << (i ? "," : "") << "{\"node\":" << e.node << ",\"shard\":" << e.shard
       << ",\"kind\":" << json_quote(anomaly_kind_name(e.kind))
       << ",\"open_s\":" << e.open_t_s << ",\"close_s\":" << e.close_t_s
       << ",\"peak_z\":" << e.peak_z << ",\"samples\":" << e.samples
       << ",\"open\":" << (e.open ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

void feed_governance(MonitorFabric& fabric, govern::CapCoordinator& coordinator,
                     double penalty) {
  ANTAREX_REQUIRE(penalty > 0.0 && penalty <= 1.0,
                  "feed_governance: penalty outside (0, 1]");
  fabric.add_episode_listener(
      [&coordinator, penalty](const Episode& e, bool opened) {
        // Sensor glitches corrupt a reading, not the node: reweighting on
        // them would shave budget off a healthy machine.
        if (e.kind == AnomalyKind::PowerSpike) return;
        coordinator.set_node_weight(e.node, opened ? penalty : 1.0);
      });
}

void install_anomaly_policies(obs::PolicyEngine& engine,
                              AnomalyPolicyConfig config) {
  obs::PolicyOptions opts;
  opts.cooldown_s = config.cooldown_s;
  engine.add(
      "monitor.anomaly_alert",
      [config](const obs::PolicyContext& ctx) {
        return ctx.registry->gauge("monitor.anomaly_active").last() >=
               config.active_alert;
      },
      [](const obs::PolicyContext& ctx) {
        ctx.registry->counter("obs.alerts.anomaly").inc();
      },
      nullptr, opts);
}

}  // namespace antarex::monitor
