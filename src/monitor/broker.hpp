// antarex::monitor — the in-process topic-sharded broker.
//
// Examon runs MQTT brokers between node-level samplers and site-level
// consumers; this is the same decoupling point inside one process. The topic
// space is split into `shards` (one per `cluster/<shard>` subtree); every
// shard owns a bounded FIFO queue. publish() enqueues a frame on its shard
// (or drops it, counted per shard, when the queue is full); drain() delivers
// everything queued to the matching subscriptions.
//
// Determinism: publishes happen on the simulation thread in node-index
// order (the Cluster commits node state serially regardless of the exec
// worker count), and drain() walks shards in index order, each queue FIFO,
// delivering to subscriptions in registration order — so the delivery
// sequence is a pure function of the published sequence at any `--threads`.
//
// Memory: O(shards * queue_capacity) for the queues plus O(subscriptions);
// independent of node count. Saturation is visible, never silent: per-shard
// drop counts are kept internally, mirrored to telemetry drop counters
// (monitor.broker.dropped.cluster/<shard>), and exported in the metrics
// JSON "drops" section.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/topic.hpp"
#include "support/common.hpp"

namespace antarex::monitor {

struct BrokerConfig {
  /// Frames one shard queue holds between drains. Sized so a full shard's
  /// per-step traffic fits: nodes_per_shard <= queue_capacity means no drops.
  std::size_t queue_capacity = 4096;
};

class Broker {
 public:
  using Handler = std::function<void(const MetricFrame&)>;

  Broker(std::size_t shards, BrokerConfig cfg = {});

  std::size_t shards() const { return queues_.size(); }

  /// Register a subscription; `pattern` uses the MQTT grammar of topic.hpp.
  /// Returns the subscription handle. Handlers run on the draining thread.
  int subscribe(const std::string& pattern, Handler fn);

  /// Enqueue on the frame's shard; a full queue drops the frame (counted).
  void publish(const MetricFrame& frame);

  /// Deliver every queued frame (shard order, FIFO, subscription order) and
  /// empty the queues. Returns the number of frames delivered.
  std::size_t delivered_last_drain() const { return last_drain_; }
  std::size_t drain();

  u64 published() const { return published_; }
  u64 delivered() const { return delivered_; }
  u64 dropped(std::size_t shard) const;
  u64 total_dropped() const;

  /// Approximate resident bytes of queues + subscriptions (capacity-based,
  /// so the figure is load-independent — the bound, not the high-water mark).
  std::size_t approx_bytes() const;

 private:
  struct Subscription {
    TopicFilter filter;
    Handler fn;
  };

  BrokerConfig cfg_;
  std::vector<std::vector<MetricFrame>> queues_;  ///< one bounded FIFO/shard
  std::vector<u64> dropped_;
  std::vector<Subscription> subs_;
  u64 published_ = 0;
  u64 delivered_ = 0;
  std::size_t last_drain_ = 0;
};

}  // namespace antarex::monitor
