// antarex::monitor — Examon-style topic hierarchy.
//
// Every sample the fabric moves is addressed by an MQTT-like topic
//
//   cluster/<shard>/node/<id>/<metric>
//
// exactly the scheme ANTAREX's Examon uses to ship per-node sensor streams
// over MQTT brokers. Subscriptions use the MQTT wildcards: `+` matches one
// level, `#` matches the rest of the topic. The hot path never materializes
// topic strings — frames carry (shard, node) ids and a filter is precompiled
// into integer comparisons — but the string grammar is the public contract
// (health reports, drop counters, and tests all speak it).
#pragma once

#include <string>

#include "support/common.hpp"

namespace antarex::monitor {

/// The per-node signals a Sampler publishes. One MetricFrame carries all of
/// them; the metric level of a topic selects which one a subscriber reads.
enum class Metric : u8 {
  PowerW,       ///< sensor-read node power (RAPL counter deltas)
  TempC,        ///< hottest device temperature
  Utilization,  ///< busy devices / device count
  ProgressUps,  ///< observed work progress rate (units/s)
};

constexpr std::size_t kMetricCount = 4;

const char* metric_name(Metric m);  ///< "power_w", "temp_c", ...

/// One compact sample from one node at one sampling instant. 32 bytes; this
/// is the fabric's unit of traffic and the published bytes/node figure.
struct MetricFrame {
  double t_s = 0.0;       ///< virtual sampling time
  u32 node = 0;
  u16 shard = 0;
  u16 busy_devices = 0;
  float power_w = 0.0f;
  float temp_c = 0.0f;
  float util = 0.0f;
  float progress_ups = 0.0f;

  float value(Metric m) const {
    switch (m) {
      case Metric::PowerW: return power_w;
      case Metric::TempC: return temp_c;
      case Metric::Utilization: return util;
      default: return progress_ups;
    }
  }
};

/// Canonical topic string for one (shard, node, metric) stream.
std::string topic_for(u16 shard, u32 node, Metric m);

/// Precompiled subscription filter over the topic hierarchy. kAny matches
/// every value at that level (the `+` / `#` wildcards).
struct TopicFilter {
  static constexpr u32 kAny = 0xffffffffu;
  u32 shard = kAny;
  u32 node = kAny;
  u32 metric = kAny;  ///< index into Metric, or kAny

  bool matches(u16 frame_shard, u32 frame_node) const {
    return (shard == kAny || shard == frame_shard) &&
           (node == kAny || node == frame_node);
  }
};

/// Parse an MQTT-style pattern ("cluster/+/node/+/power_w", "cluster/3/#",
/// "#") into a filter. Throws antarex::Error on patterns outside the
/// cluster/<shard>/node/<id>/<metric> grammar.
TopicFilter parse_topic_filter(const std::string& pattern);

/// Pure string-level MQTT matcher (`+` one level, `#` rest); the reference
/// semantics parse_topic_filter compiles down from. Exposed for tests and
/// for tools that carry topics as strings.
bool topic_matches(const std::string& pattern, const std::string& topic);

}  // namespace antarex::monitor
