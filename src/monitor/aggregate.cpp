#include "monitor/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace antarex::monitor {

// --- QuantileSketch ---------------------------------------------------------

QuantileSketch::QuantileSketch(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  ANTAREX_REQUIRE(bins > 0, "QuantileSketch: need at least one bin");
  ANTAREX_REQUIRE(hi > lo, "QuantileSketch: empty value range");
}

void QuantileSketch::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(frac * static_cast<double>(bins_.size())));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++count_;
}

double QuantileSketch::approx_quantile(double q) const {
  ANTAREX_REQUIRE(q >= 0.0 && q <= 1.0, "QuantileSketch: q outside [0,1]");
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(q * static_cast<double>(count_), 0.0, static_cast<double>(count_));
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double c = static_cast<double>(bins_[i]);
    if (c <= 0.0) continue;
    if (cum + c >= target) {
      const double frac = std::clamp((target - cum) / c, 0.0, 1.0);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cum += c;
  }
  return hi_;
}

void QuantileSketch::merge(const QuantileSketch& o) {
  ANTAREX_REQUIRE(o.bins_.size() == bins_.size() && o.lo_ == lo_ && o.hi_ == hi_,
                  "QuantileSketch: merging incompatible sketches");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  count_ += o.count_;
}

void QuantileSketch::clear() {
  std::fill(bins_.begin(), bins_.end(), u64{0});
  count_ = 0;
}

// --- RetentionRing ----------------------------------------------------------

RetentionRing::RetentionRing(std::size_t capacity) : capacity_(capacity) {
  ANTAREX_REQUIRE(capacity > 0, "RetentionRing: need at least one cell");
  for (Level& l : levels_) l.cells.resize(capacity_);
}

void RetentionRing::push(double value) {
  ++pushes_;
  push_level(0, RingCell{value, value, value});
}

void RetentionRing::push_level(std::size_t level, const RingCell& cell) {
  Level& l = levels_[level];
  l.cells[l.head] = cell;
  l.head = (l.head + 1) % capacity_;
  if (l.size < capacity_) ++l.size;
  if (level + 1 >= kLevels) return;
  // Fold into the coarser level: every kFold cells become one cell carrying
  // the group's mean-of-means and min/max envelope.
  l.fold.add(cell.mean);
  if (l.folded == 0) {
    l.pend_min = cell.min;
    l.pend_max = cell.max;
  } else {
    l.pend_min = std::min(l.pend_min, cell.min);
    l.pend_max = std::max(l.pend_max, cell.max);
  }
  if (++l.folded == kFold) {
    const RingCell folded{l.fold.mean(), l.pend_min, l.pend_max};
    l.fold.clear();
    l.folded = 0;
    push_level(level + 1, folded);
  }
}

std::vector<RingCell> RetentionRing::history(std::size_t level) const {
  ANTAREX_REQUIRE(level < kLevels, "RetentionRing: level out of range");
  const Level& l = levels_[level];
  std::vector<RingCell> out;
  out.reserve(l.size);
  // Oldest first: the ring wraps at head.
  const std::size_t start = (l.head + capacity_ - l.size) % capacity_;
  for (std::size_t i = 0; i < l.size; ++i)
    out.push_back(l.cells[(start + i) % capacity_]);
  return out;
}

void RetentionRing::clear() {
  for (Level& l : levels_) {
    std::fill(l.cells.begin(), l.cells.end(), RingCell{});
    l.head = l.size = 0;
    l.fold.clear();
    l.folded = 0;
    l.pend_min = l.pend_max = 0.0;
  }
  pushes_ = 0;
}

// --- ShardAggregator --------------------------------------------------------

namespace {
double metric_hi(const AggregatorConfig& cfg, Metric m) {
  switch (m) {
    case Metric::PowerW: return cfg.power_hi_w;
    case Metric::TempC: return cfg.temp_hi_c;
    case Metric::Utilization: return 1.0;
    default: return cfg.progress_hi_ups;
  }
}
}  // namespace

ShardAggregator::ShardAggregator(std::size_t shards, AggregatorConfig cfg)
    : shards_(shards), cfg_(cfg), hot_nodes_(cfg.top_k) {
  ANTAREX_REQUIRE(shards > 0, "ShardAggregator: need at least one shard");
  cells_.reserve(shards_ * kMetricCount);
  for (std::size_t s = 0; s < shards_; ++s)
    for (std::size_t m = 0; m < kMetricCount; ++m)
      cells_.emplace_back(0.0, metric_hi(cfg_, static_cast<Metric>(m)),
                          cfg_.sketch_bins);
  rings_.resize(kMetricCount, RetentionRing(cfg_.ring_capacity));
  step_.resize(kMetricCount);
}

void ShardAggregator::ingest(const MetricFrame& frame) {
  ANTAREX_REQUIRE(frame.shard < shards_, "ShardAggregator: shard out of range");
  ++frames_;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const auto metric = static_cast<Metric>(m);
    const double v = frame.value(metric);
    Cell& c = cell(frame.shard, metric);
    c.stat.add(v);
    c.sketch.add(v);
    step_[m].add(v);
  }
  // Degree-seconds over a soft thermal mark rank the "hot nodes" summary;
  // the weight is monotone, which SpaceSaving needs.
  constexpr double kHotMarkC = 70.0;
  if (frame.temp_c > kHotMarkC)
    hot_nodes_.offer(frame.node, static_cast<double>(frame.temp_c) - kHotMarkC);
}

void ShardAggregator::roll_step() {
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    if (step_[m].count > 0)
      rings_[m].push(step_[m].mean());
    step_[m].clear();
  }
}

const StreamStat& ShardAggregator::shard_stat(std::size_t shard,
                                              Metric m) const {
  ANTAREX_REQUIRE(shard < shards_, "ShardAggregator: shard out of range");
  return cell(shard, m).stat;
}

const QuantileSketch& ShardAggregator::shard_sketch(std::size_t shard,
                                                    Metric m) const {
  ANTAREX_REQUIRE(shard < shards_, "ShardAggregator: shard out of range");
  return cell(shard, m).sketch;
}

StreamStat ShardAggregator::cluster_stat(Metric m) const {
  StreamStat out;
  for (std::size_t s = 0; s < shards_; ++s) out.merge(cell(s, m).stat);
  return out;
}

double ShardAggregator::cluster_quantile(Metric m, double q) const {
  QuantileSketch merged(0.0, metric_hi(cfg_, m), cfg_.sketch_bins);
  for (std::size_t s = 0; s < shards_; ++s) merged.merge(cell(s, m).sketch);
  return merged.approx_quantile(q);
}

const RetentionRing& ShardAggregator::ring(Metric m) const {
  return rings_[static_cast<std::size_t>(m)];
}

std::size_t ShardAggregator::approx_bytes() const {
  std::size_t b = sizeof(*this) + hot_nodes_.approx_bytes();
  for (const Cell& c : cells_) b += sizeof(Cell) + c.sketch.approx_bytes();
  for (const RetentionRing& r : rings_) b += r.approx_bytes();
  b += step_.size() * sizeof(StreamStat);
  return b;
}

void ShardAggregator::clear() {
  for (Cell& c : cells_) {
    c.stat.clear();
    c.sketch.clear();
  }
  for (RetentionRing& r : rings_) r.clear();
  for (StreamStat& s : step_) s.clear();
  hot_nodes_.clear();
  frames_ = 0;
}

}  // namespace antarex::monitor
