#include "telemetry/context.hpp"

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace antarex::telemetry {

TraceContext fork_context() {
  detail::ContextFrame* top = detail::context_top();
  if (top == nullptr || !enabled()) return TraceContext{};
  const TraceContext ctx = top->ctx.child_task(top->next_child++);
  Registry::global().trace().push("sched", 'S', ctx.trace_id, ctx.span_id,
                                  ctx.parent_id);
  return ctx;
}

void mark_scheduled(const TraceContext& ctx) {
  if (!ctx.active() || !enabled()) return;
  Registry::global().trace().push("sched", 'S', ctx.trace_id, ctx.span_id,
                                  ctx.parent_id);
}

ContextScope::ContextScope(const TraceContext& ctx) {
  if (!ctx.active() || !enabled()) return;
  frame_.ctx = ctx;
  detail::push_context_frame(&frame_);
  installed_ = true;
  Registry::global().trace().push("sched", 'F', ctx.trace_id, ctx.span_id,
                                  ctx.parent_id);
}

ContextScope::~ContextScope() {
  if (installed_) detail::pop_context_frame(&frame_);
}

}  // namespace antarex::telemetry
