// Causal trace contexts: the identity layer under antarex::causal.
//
// A TraceContext names one node in a request's causal tree:
// {trace_id, span_id, parent_id}. The ids are *derived*, never drawn from a
// shared counter: child ids mix the parent's span id with a per-parent slot
// number (SplitMix64 finalizer, the same generator family as
// exec::stream_seed), and slots are allocated from a thread-local frame that
// only the owning thread touches. Because every fork point runs on exactly
// one thread, the id tree is a pure function of program structure — it is
// byte-identical across thread counts and runs, which is what lets the
// causal analyzer compare traces structurally (DESIGN.md decision 5 extended
// to identity).
//
// Propagation protocol (exec::ThreadPool implements it; anything that moves
// work across threads can):
//  - the submitter calls fork_context() — allocates a child slot under the
//    current frame and emits a flow-start ('S') mark;
//  - the wrapped task installs a ContextScope on the executing thread —
//    emits a flow-finish ('F') mark and makes the context current, so spans
//    opened inside parent correctly even when the task was stolen.
// The S→F pair is both the Chrome-trace flow arrow and the measured
// submit-to-start queue wait of that hop.
#pragma once

#include "support/common.hpp"
#include "telemetry/enable.hpp"

namespace antarex::telemetry {

namespace detail {

/// SplitMix64 finalizer over (parent id, slot key) — the id derivation used
/// for every child context. Pure arithmetic: deterministic on any platform.
inline u64 causal_mix(u64 parent, u64 key) {
  u64 z = parent + (key + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// One node of a causal tree. trace_id == 0 means "no context" (inactive);
/// all operations on an inactive context are no-ops, so instrumentation
/// sites never need to branch on whether tracing is on.
struct TraceContext {
  u64 trace_id = 0;   ///< the request/epoch this work belongs to
  u64 span_id = 0;    ///< this node
  u64 parent_id = 0;  ///< the node that caused it (0 = tree root)

  bool active() const { return trace_id != 0; }

  /// Root context of a new tree. trace_id must be nonzero and unique per
  /// request (nav uses request index + 1).
  static TraceContext root(u64 trace_id) {
    return TraceContext{trace_id, detail::causal_mix(trace_id, 0), 0};
  }

  /// Child for a nested span (slot = per-parent ordinal). Span children and
  /// task children use disjoint key spaces so a span and a fork with the
  /// same slot never collide.
  TraceContext child(u64 slot) const {
    return TraceContext{trace_id, detail::causal_mix(span_id, 2 * slot + 1),
                        span_id};
  }

  /// Child for work forked to another thread (pool task, parallel_for chunk).
  TraceContext child_task(u64 slot) const {
    return TraceContext{trace_id, detail::causal_mix(span_id, 2 * slot + 2),
                        span_id};
  }
};

namespace detail {

/// Stack frame of the current context, linked through the thread-local top.
/// Frames live inside ScopedSpan/ContextScope objects — no allocation.
struct ContextFrame {
  TraceContext ctx;
  u64 next_child = 0;  ///< slot counter for children of this node
  ContextFrame* prev = nullptr;
};

inline thread_local ContextFrame* t_context_top = nullptr;

inline ContextFrame* context_top() { return t_context_top; }

inline void push_context_frame(ContextFrame* f) {
  f->next_child = 0;
  f->prev = t_context_top;
  t_context_top = f;
}

inline void pop_context_frame(ContextFrame* f) { t_context_top = f->prev; }

}  // namespace detail

/// The context of the innermost open span/scope on this thread (inactive
/// when none).
inline TraceContext current_context() {
  const detail::ContextFrame* top = detail::context_top();
  return top ? top->ctx : TraceContext{};
}

/// Allocate a child context for work about to be handed to another thread
/// and emit its flow-start ('S') mark. Inactive (and mark-free) when this
/// thread has no current context or telemetry is disabled.
TraceContext fork_context();

/// Emit the flow-start ('S') mark for an externally created context (e.g. a
/// nav request root at admission time). No-op when ctx is inactive or
/// telemetry is disabled.
void mark_scheduled(const TraceContext& ctx);

/// Adopt a context on the executing thread: emits the flow-finish ('F') mark
/// and installs the context as current for the scope's lifetime. Inert when
/// ctx is inactive or telemetry is disabled at construction.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  detail::ContextFrame frame_;
  bool installed_ = false;
};

}  // namespace antarex::telemetry
