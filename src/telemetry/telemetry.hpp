// antarex::telemetry — unified metrics, tracing, and profiling.
//
// The measurement substrate behind the paper's Fig. 1 feedback arrows: the
// autotuner, RTRM, power models, nav server, and VM all report what they did
// through this one registry, and the exporters turn a run into a Chrome
// trace (chrome://tracing / Perfetto), a metrics JSON dump, or a summary
// table. See DESIGN.md "Observability".
//
// Cost contract:
//  - runtime-disabled (the default): every macro is one relaxed atomic load
//    and a predictable branch;
//  - compiled out (-DANTAREX_TELEMETRY_COMPILED=0): the macros vanish.
//
// Usage:
//   TELEMETRY_SPAN("rtrm.dispatch");            // RAII trace span
//   TELEMETRY_COUNT("vm.calls", 1);             // cached counter add
//   TELEMETRY_GAUGE("rtrm.queue_depth", q);     // cached gauge set
//   auto& h = telemetry::Registry::global().histogram("nav.latency_s", 0, 2, 40);
//   h.add(latency_s);
#pragma once

#include "telemetry/enable.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

#define ANTAREX_TELEMETRY_CAT2(a, b) a##b
#define ANTAREX_TELEMETRY_CAT(a, b) ANTAREX_TELEMETRY_CAT2(a, b)

#if ANTAREX_TELEMETRY_COMPILED

/// Trace the enclosing scope as a span named `name` (string literal).
#define TELEMETRY_SPAN(name)                     \
  ::antarex::telemetry::ScopedSpan ANTAREX_TELEMETRY_CAT( \
      antarex_telemetry_span_, __LINE__)(name)

/// Add `n` to the counter `name`. The registry lookup happens once per call
/// site (function-local static); `name` must be constant across calls.
#define TELEMETRY_COUNT(name, n)                                         \
  do {                                                                   \
    static ::antarex::telemetry::Counter& antarex_telemetry_counter_ =   \
        ::antarex::telemetry::Registry::global().counter(name);          \
    antarex_telemetry_counter_.add(n);                                   \
  } while (false)

/// Set the gauge `name` to `v`, with the same cached-lookup contract.
#define TELEMETRY_GAUGE(name, v)                                         \
  do {                                                                   \
    static ::antarex::telemetry::Gauge& antarex_telemetry_gauge_ =       \
        ::antarex::telemetry::Registry::global().gauge(name);            \
    antarex_telemetry_gauge_.set(v);                                     \
  } while (false)

#else  // telemetry compiled out

#define TELEMETRY_SPAN(name) \
  do {                       \
  } while (false)
#define TELEMETRY_COUNT(name, n) \
  do {                           \
    (void)(n);                   \
  } while (false)
#define TELEMETRY_GAUGE(name, v) \
  do {                           \
    (void)(v);                   \
  } while (false)

#endif  // ANTAREX_TELEMETRY_COMPILED
