#include "telemetry/export.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace antarex::telemetry {

namespace {

std::string num(double v) { return format("%.9g", v); }

std::string num(u64 v) {
  return format("%llu", static_cast<unsigned long long>(v));
}

/// Comma-separated accumulation helper for JSON object/array bodies.
class Joiner {
 public:
  void add(const std::string& piece) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += piece;
  }
  const std::string& str() const { return out_; }

 private:
  std::string out_;
  bool first_ = true;
};

std::string trace_event(const char* name, char phase, double ts_us) {
  return format(
      "{\"name\":\"%s\",\"cat\":\"antarex\",\"ph\":\"%c\",\"pid\":1,"
      "\"tid\":1,\"ts\":%.3f}",
      json_escape(name).c_str(), phase, ts_us);
}

// 'B' event carrying causal identity. Ids are decimal *strings*: they are
// full 64-bit values and JSON numbers lose integer precision past 2^53.
std::string trace_event_ids(const TraceEvent& e, double ts_us) {
  return format(
      "{\"name\":\"%s\",\"cat\":\"antarex\",\"ph\":\"%c\",\"pid\":1,"
      "\"tid\":1,\"ts\":%.3f,\"args\":{\"trace_id\":\"%llu\","
      "\"span_id\":\"%llu\",\"parent_id\":\"%llu\"}}",
      json_escape(e.name).c_str(), e.phase, ts_us,
      static_cast<unsigned long long>(e.trace_id),
      static_cast<unsigned long long>(e.span_id),
      static_cast<unsigned long long>(e.parent_id));
}

// 'S'/'F' causal marks become Chrome flow start/finish events, the arrows
// that stitch a stolen task back to its submitter in the timeline view.
// "bp":"e" binds the finish to the enclosing slice.
std::string flow_event(const TraceEvent& e, double ts_us) {
  if (e.phase == 'S')
    return format(
        "{\"name\":\"%s\",\"cat\":\"antarex\",\"ph\":\"s\",\"id\":\"%llx\","
        "\"pid\":1,\"tid\":1,\"ts\":%.3f}",
        json_escape(e.name).c_str(),
        static_cast<unsigned long long>(e.span_id), ts_us);
  return format(
      "{\"name\":\"%s\",\"cat\":\"antarex\",\"ph\":\"f\",\"bp\":\"e\","
      "\"id\":\"%llx\",\"pid\":1,\"tid\":1,\"ts\":%.3f}",
      json_escape(e.name).c_str(), static_cast<unsigned long long>(e.span_id),
      ts_us);
}

}  // namespace

std::string chrome_trace_json(const Registry& registry) {
  const TraceBuffer& buf = registry.trace();
  // snapshot(), not events(): exporting may race with pool workers still
  // emitting spans.
  const std::vector<TraceEvent> events = buf.snapshot();
  const u64 t0 = events.empty() ? 0 : events.front().ts_ns;

  Joiner body;
  std::vector<const char*> open;  // names of not-yet-closed 'B' events
  double last_ts_us = 0.0;
  for (const TraceEvent& e : events) {
    const double ts_us = static_cast<double>(e.ts_ns - t0) / 1000.0;
    last_ts_us = ts_us;
    if (e.phase == 'S' || e.phase == 'F') {
      // Causal flow marks: exported as flow events, never part of the
      // begin/end balancing below.
      body.add(flow_event(e, ts_us));
    } else if (e.trace_id != 0) {
      // Id-carrying spans pair by span_id, not by stack position — correct
      // even when workers interleave events from several requests.
      body.add(trace_event_ids(e, ts_us));
    } else if (e.phase == 'B') {
      body.add(trace_event(e.name, 'B', ts_us));
      open.push_back(e.name);
    } else if (!open.empty()) {
      // Well-nested by RAII construction; a mismatch can only come from
      // events dropped at capacity, in which case we close what is open.
      body.add(trace_event(open.back(), 'E', ts_us));
      open.pop_back();
    }
    // Orphan 'E' with nothing open: its 'B' was dropped — skip it.
  }
  while (!open.empty()) {
    body.add(trace_event(open.back(), 'E', last_ts_us));
    open.pop_back();
  }

  return "{\"traceEvents\":[" + body.str() +
         "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":" +
         num(static_cast<u64>(events.size())) +
         ",\"dropped\":" + num(buf.dropped()) + "}}";
}

std::string metrics_json(const Registry& registry) {
  Joiner counters;
  for (const auto& [name, c] : registry.counters())
    counters.add("\"" + json_escape(name) + "\":" + num(c->value()));

  Joiner gauges;
  for (const auto& [name, g] : registry.gauges())
    gauges.add("\"" + json_escape(name) + "\":{\"last\":" + num(g->last()) +
               ",\"min\":" + num(g->min()) + ",\"max\":" + num(g->max()) +
               ",\"updates\":" + num(g->updates()) + "}");

  Joiner histograms;
  for (const auto& [name, h] : registry.histograms()) {
    Joiner buckets;
    for (std::size_t i = 0; i < h->bins(); ++i) buckets.add(num(h->bucket(i)));
    histograms.add("\"" + json_escape(name) + "\":{\"lo\":" + num(h->lo()) +
                   ",\"hi\":" + num(h->hi()) + ",\"count\":" + num(h->count()) +
                   ",\"sum\":" + num(h->sum()) + ",\"mean\":" + num(h->mean()) +
                   ",\"p50\":" + num(h->approx_quantile(0.50)) +
                   ",\"p95\":" + num(h->approx_quantile(0.95)) +
                   ",\"p99\":" + num(h->approx_quantile(0.99)) +
                   ",\"buckets\":[" + buckets.str() + "]}");
  }

  Joiner series;
  for (const auto& [name, s] : registry.all_series()) {
    const bool has = !s->empty();
    series.add("\"" + json_escape(name) +
               "\":{\"count\":" + num(static_cast<u64>(s->count())) +
               ",\"last\":" + num(has ? s->last() : 0.0) +
               ",\"mean\":" + num(has ? s->window_mean() : 0.0) +
               ",\"p50\":" + num(has ? s->window_percentile(50) : 0.0) +
               ",\"p95\":" + num(has ? s->window_percentile(95) : 0.0) +
               ",\"p99\":" + num(has ? s->window_percentile(99) : 0.0) +
               ",\"ewma\":" + num(has ? s->ewma() : 0.0) + "}");
  }

  // v3: a consolidated "drops" section — every bounded buffer that discarded
  // data (trace ring, broker shard queues, detector caps) in one place, so
  // silent saturation is diagnosable from any bench report.
  const TraceBuffer& buf = registry.trace();
  Joiner drops;
  u64 drops_total = buf.dropped();
  drops.add("\"trace_buffer\":" + num(buf.dropped()));
  for (const auto& [name, c] : registry.drop_counters()) {
    drops.add("\"" + json_escape(name) + "\":" + num(c->value()));
    drops_total += c->value();
  }

  return "{\"schema\":\"antarex.telemetry.metrics/v3\",\"counters\":{" +
         counters.str() + "},\"gauges\":{" + gauges.str() +
         "},\"histograms\":{" + histograms.str() + "},\"series\":{" +
         series.str() + "},\"drops\":{" + drops.str() +
         "},\"drops_total\":" + num(drops_total) +
         ",\"trace\":{\"events\":" + num(static_cast<u64>(buf.size())) +
         ",\"dropped\":" + num(buf.dropped()) + "}}";
}

Table summary_table(const Registry& registry) {
  Table t({"metric", "kind", "count", "value", "mean", "p50", "p95", "p99"});
  for (const auto& [name, c] : registry.counters())
    t.add_row({name, "counter", num(c->value()), num(c->value()), "-", "-",
               "-", "-"});
  for (const auto& [name, g] : registry.gauges())
    t.add_row({name, "gauge", num(g->updates()), format("%.4g", g->last()),
               "-", "-", format("max %.4g", g->max()), "-"});
  for (const auto& [name, h] : registry.histograms())
    t.add_row({name, "histogram", num(h->count()), format("%.4g", h->sum()),
               format("%.4g", h->mean()),
               format("%.4g", h->approx_quantile(0.50)),
               format("%.4g", h->approx_quantile(0.95)),
               format("%.4g", h->approx_quantile(0.99))});
  for (const auto& [name, s] : registry.all_series()) {
    const bool has = !s->empty();
    t.add_row({name, "series", num(static_cast<u64>(s->count())),
               format("%.4g", has ? s->last() : 0.0),
               format("%.4g", has ? s->window_mean() : 0.0),
               format("%.4g", has ? s->window_percentile(50) : 0.0),
               format("%.4g", has ? s->window_percentile(95) : 0.0),
               format("%.4g", has ? s->window_percentile(99) : 0.0)});
  }
  return t;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ANTAREX_REQUIRE(f != nullptr, "telemetry: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  ANTAREX_REQUIRE(written == content.size() && close_rc == 0,
                  "telemetry: short write to '" + path + "'");
}

}  // namespace antarex::telemetry
