// Exporters: Chrome-trace JSON (chrome://tracing / Perfetto), a flat metrics
// JSON dump with a stable schema, and a human-readable summary table.
#pragma once

#include <string>

#include "support/table.hpp"
#include "telemetry/registry.hpp"

namespace antarex::telemetry {

/// Chrome trace-event JSON ("JSON object format"): one B/E pair per span,
/// timestamps in microseconds relative to the first event. Unbalanced tails
/// (possible when the buffer dropped events) are repaired: orphan 'E' events
/// are skipped and still-open 'B' events are closed at the last timestamp,
/// so the output always loads in Perfetto. The drop counter is exported under
/// "otherData".
std::string chrome_trace_json(const Registry& registry = Registry::global());

/// Flat metrics dump, schema "antarex.telemetry.metrics/v3":
///   { "schema": ..., "counters": {name: int},
///     "gauges": {name: {last,min,max,updates}},
///     "histograms": {name: {lo,hi,count,sum,mean,p50,p95,p99,buckets:[...]}},
///     "series": {name: {count,last,mean,p50,p95,p99,ewma}},
///     "drops": {"trace_buffer": int, <drop counter name>: int, ...},
///     "drops_total": int,
///     "trace": {events,dropped} }
/// v3 adds the "drops" section: the trace ring's drop count plus every
/// counter registered through Registry::drop_counter(), so any bounded
/// buffer that silently discarded data shows up in one place.
/// Histogram quantiles are approx_quantile() estimates (interpolated);
/// series quantiles are exact over the rolling window. Keys are emitted in
/// sorted order, so the layout is deterministic.
std::string metrics_json(const Registry& registry = Registry::global());

/// One row per metric (name, kind, count, value, mean, p50, p95, p99) via
/// support/table.
Table summary_table(const Registry& registry = Registry::global());

/// Write a string to a file; throws antarex::Error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace antarex::telemetry
