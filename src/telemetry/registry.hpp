// The process-wide metric registry: named counters, gauges, fixed-bucket
// histograms, windowed series, and the trace buffer.
//
// Hot-path contract: instrument sites cache the reference returned by
// counter()/gauge()/histogram() (the TELEMETRY_* macros do this with a
// function-local static), so the map lookup happens once per site and each
// update is an enabled() branch plus a handful of relaxed atomic ops.
//
// Concurrency contract (hardened for the antarex::exec worker pool): every
// registry operation is safe from any thread. Registration/first-touch is
// mutex-guarded (and the macros' function-local statics are C++ magic
// statics, so concurrent first-touch of one site initializes exactly once);
// Counter/Gauge/Histogram updates are lock-free atomics; Series and the
// trace buffer take a private mutex (they hold non-trivial state). reset()
// zeroes metrics in place and never destroys them, so cached references stay
// valid even when reset() races with updates — a racing update may land
// before or after the zeroing, but never corrupts.
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "support/stats.hpp"
#include "telemetry/enable.hpp"
#include "telemetry/trace.hpp"

namespace antarex::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-value metric with min/max envelope (queue depths, power draw,
/// per-worker busy time, ...). Concurrent set() keeps the envelope exact via
/// CAS; "last" is whichever store won.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    last_.store(v, std::memory_order_relaxed);
    cas_min(min_, v);
    cas_max(max_, v);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
  double last() const { return last_.load(std::memory_order_relaxed); }
  double min() const { return updates() ? min_.load(std::memory_order_relaxed) : 0.0; }
  double max() const { return updates() ? max_.load(std::memory_order_relaxed) : 0.0; }
  u64 updates() const { return updates_.load(std::memory_order_relaxed); }
  void reset() {
    last_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    updates_.store(0, std::memory_order_relaxed);
  }

 private:
  static void cas_min(std::atomic<double>& slot, double v) {
    double cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void cas_max(std::atomic<double>& slot, double v) {
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> last_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<u64> updates_{0};
};

/// Fixed-range, fixed-bucket histogram (out-of-range values clamp to the
/// edge buckets). Tracks sum/count for exact means; percentiles are bucket
/// approximations (nearest-rank over bucket midpoints). Buckets and totals
/// are atomics, so concurrent add() never tears; a snapshot taken mid-add
/// may see the bucket before the total (observability skew, not corruption).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  u64 bucket(std::size_t i) const;
  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const u64 n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Approximate percentile in [0,100]: midpoint of the nearest-rank bucket.
  double approx_percentile(double p) const;
  /// Approximate quantile in [0,1] with linear interpolation inside the
  /// bucket (finer than approx_percentile for coarse histograms). This is
  /// what the exporters publish as p50/p95/p99.
  double approx_quantile(double q) const;
  void reset();

 private:
  double lo_, hi_;
  std::vector<std::atomic<u64>> counts_;
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A named sample stream with windowed statistics — the registry-resident
/// backend of tuner::Monitor. NOT gated by enabled(): monitors feed the
/// autotuner's control loop, so dropping samples would change behaviour,
/// not just visibility. Built on the single rolling-stats implementation in
/// support/stats (SlidingWindow + Ewma), guarded by a private mutex because
/// the window holds non-trivial state.
class Series {
 public:
  explicit Series(std::size_t window = 64, double ewma_alpha = 0.25);

  void push(double sample);

  std::size_t count() const;
  bool empty() const { return count() == 0; }
  double last() const;
  double window_mean() const;
  double window_percentile(double p) const;
  double ewma() const;
  std::size_t window_capacity() const;

  void clear();
  /// Re-shape the rolling window in place (clears held samples). Keeps the
  /// Series object's address stable — cached pointers stay valid.
  void reset_window(std::size_t window);

 private:
  mutable std::mutex mu_;
  SlidingWindow window_;
  Ewma ewma_;
  double last_ = 0.0;
  std::size_t total_ = 0;
};

class Registry {
 public:
  Registry();

  /// The process-wide registry every TELEMETRY_* macro and monitor uses.
  /// Intentionally leaked: spans may fire during static destruction.
  static Registry& global();

  // Get-or-create by name, from any thread. References/pointers remain valid
  // for the life of the registry (node-based storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// A counter that additionally registers `name` as a *drop* counter: a
  /// count of data discarded at a bounded buffer (trace ring, broker shard
  /// queue, ...). The metrics-JSON exporter collects every drop counter into
  /// a dedicated "drops" section so saturation is never silent.
  Counter& drop_counter(const std::string& name);
  /// lo/hi/bins apply on first creation only.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);
  /// `window` reshapes an existing series when it differs (in place).
  Series& series(const std::string& name, std::size_t window = 64);

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  // Sorted snapshots for the exporters (cold path).
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<std::pair<std::string, const Series*>> all_series() const;
  /// Drop counters only (a subset of counters()), for the "drops" section.
  std::vector<std::pair<std::string, const Counter*>> drop_counters() const;

  /// Zero every metric and clear the trace buffer (test isolation). Metric
  /// objects stay alive — cached references remain valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::set<std::string> drop_names_;  ///< counters_ keys that count drops
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  TraceBuffer trace_;
};

}  // namespace antarex::telemetry
