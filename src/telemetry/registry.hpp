// The process-wide metric registry: named counters, gauges, fixed-bucket
// histograms, windowed series, and the trace buffer.
//
// Hot-path contract: instrument sites cache the reference returned by
// counter()/gauge()/histogram() (the TELEMETRY_* macros do this with a
// function-local static), so the map lookup happens once per site and each
// update is an enabled() branch plus one store/add. Registration is
// mutex-guarded; updates are not (the simulators are single-threaded by
// design — see support/sim_clock.hpp), except counters, which are relaxed
// atomics so concurrent readers (exporters) never tear.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "support/stats.hpp"
#include "telemetry/enable.hpp"
#include "telemetry/trace.hpp"

namespace antarex::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-value metric with min/max envelope (queue depths, power draw, ...).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    last_ = v;
    if (updates_ == 0 || v < min_) min_ = v;
    if (updates_ == 0 || v > max_) max_ = v;
    ++updates_;
  }
  double last() const { return last_; }
  double min() const { return min_; }
  double max() const { return max_; }
  u64 updates() const { return updates_; }
  void reset() { last_ = min_ = max_ = 0.0; updates_ = 0; }

 private:
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  u64 updates_ = 0;
};

/// Fixed-range, fixed-bucket histogram (out-of-range values clamp to the
/// edge buckets). Tracks sum/count for exact means; percentiles are bucket
/// approximations (nearest-rank over bucket midpoints).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  u64 bucket(std::size_t i) const { return counts_.at(i); }
  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Approximate percentile in [0,100]: midpoint of the nearest-rank bucket.
  double approx_percentile(double p) const;
  void reset();

 private:
  double lo_, hi_;
  std::vector<u64> counts_;
  u64 count_ = 0;
  double sum_ = 0.0;
};

/// A named sample stream with windowed statistics — the registry-resident
/// backend of tuner::Monitor. NOT gated by enabled(): monitors feed the
/// autotuner's control loop, so dropping samples would change behaviour,
/// not just visibility. Built on the single rolling-stats implementation in
/// support/stats (SlidingWindow + Ewma).
class Series {
 public:
  explicit Series(std::size_t window = 64, double ewma_alpha = 0.25);

  void push(double sample);

  std::size_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  double last() const { return last_; }
  double window_mean() const { return window_.mean(); }
  double window_percentile(double p) const { return window_.percentile(p); }
  double ewma() const { return ewma_.value(); }
  std::size_t window_capacity() const { return window_.capacity(); }

  void clear();
  /// Re-shape the rolling window in place (clears held samples). Keeps the
  /// Series object's address stable — cached pointers stay valid.
  void reset_window(std::size_t window);

 private:
  SlidingWindow window_;
  Ewma ewma_;
  double last_ = 0.0;
  std::size_t total_ = 0;
};

class Registry {
 public:
  Registry();

  /// The process-wide registry every TELEMETRY_* macro and monitor uses.
  /// Intentionally leaked: spans may fire during static destruction.
  static Registry& global();

  // Get-or-create by name. References/pointers remain valid for the life of
  // the registry (node-based storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// lo/hi/bins apply on first creation only.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);
  /// `window` reshapes an existing series when it differs (in place).
  Series& series(const std::string& name, std::size_t window = 64);

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  // Sorted snapshots for the exporters (cold path).
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<std::pair<std::string, const Series*>> all_series() const;

  /// Zero every metric and clear the trace buffer (test isolation). Metric
  /// objects stay alive — cached references remain valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  TraceBuffer trace_;
};

}  // namespace antarex::telemetry
