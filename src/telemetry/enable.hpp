// Global on/off switch for the telemetry subsystem.
//
// Two layers, per the cost contract in DESIGN.md ("Observability"):
//  - compile time: build with -DANTAREX_TELEMETRY_COMPILED=0 and every
//    TELEMETRY_* macro expands to nothing;
//  - runtime: telemetry::set_enabled(false) (the default) reduces every
//    instrumentation site to a single relaxed atomic load + branch.
//
// Monitors (telemetry::Series) are deliberately NOT gated: they are the data
// plane of the autotuner's collect-analyse-decide-act loop, not observability.
#pragma once

#include <atomic>
#include <cstdint>

#ifndef ANTAREX_TELEMETRY_COMPILED
#define ANTAREX_TELEMETRY_COMPILED 1
#endif

namespace antarex::telemetry {

namespace detail {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<std::uint64_t> g_poison_epoch{0};
}  // namespace detail

/// Is observability collection active right now? One relaxed load.
inline bool enabled() {
#if ANTAREX_TELEMETRY_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Sample-poison epoch: bumped by the fault injector whenever it perturbs a
/// sensor reading (e.g. a RaplDomain glitch). Consumers that measure across a
/// window — the autotuner's decide→report interval — snapshot the epoch at
/// the start and discard the sample when it moved. Like Series, this is
/// control-plane state, NOT gated by enabled(): dropping the flag would change
/// tuner behaviour, not just visibility.
inline std::uint64_t poison_epoch() {
  return detail::g_poison_epoch.load(std::memory_order_relaxed);
}

inline void mark_samples_poisoned() {
  detail::g_poison_epoch.fetch_add(1, std::memory_order_relaxed);
}

/// RAII enable/disable for tests and scoped measurement windows.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace antarex::telemetry
