// Global on/off switch for the telemetry subsystem.
//
// Two layers, per the cost contract in DESIGN.md ("Observability"):
//  - compile time: build with -DANTAREX_TELEMETRY_COMPILED=0 and every
//    TELEMETRY_* macro expands to nothing;
//  - runtime: telemetry::set_enabled(false) (the default) reduces every
//    instrumentation site to a single relaxed atomic load + branch.
//
// Monitors (telemetry::Series) are deliberately NOT gated: they are the data
// plane of the autotuner's collect-analyse-decide-act loop, not observability.
#pragma once

#include <atomic>

#ifndef ANTAREX_TELEMETRY_COMPILED
#define ANTAREX_TELEMETRY_COMPILED 1
#endif

namespace antarex::telemetry {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is observability collection active right now? One relaxed load.
inline bool enabled() {
#if ANTAREX_TELEMETRY_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// RAII enable/disable for tests and scoped measurement windows.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace antarex::telemetry
