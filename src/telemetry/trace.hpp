// Trace spans: hierarchical begin/end events in a bounded buffer.
//
// A ScopedSpan pushes a 'B' event at construction and an 'E' event at
// destruction, so each thread's events are chronologically ordered and
// properly nested by construction (RAII). When the buffer is full, new events
// are dropped and counted — the exporter and the metrics dump both report the
// drop counter, so a truncated trace is never mistaken for a complete one.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "support/common.hpp"
#include "telemetry/context.hpp"
#include "telemetry/enable.hpp"

namespace antarex::telemetry {

class Histogram;

struct TraceEvent {
  const char* name;  ///< must outlive the buffer (string literal or interned)
  u64 ts_ns;         ///< monotonic timestamp
  char phase;        ///< 'B'/'E' span, 'S'/'F' causal flow start/finish
  // Causal identity (0 = span opened outside any context; see context.hpp).
  u64 trace_id = 0;
  u64 span_id = 0;
  u64 parent_id = 0;
};

/// Bounded event buffer with drop accounting. Safe for concurrent writers
/// (exec pool workers emit task spans): push/clear/size take a private mutex,
/// exporters read through snapshot(). events() returns the raw vector without
/// locking — valid only when no other thread is pushing (tests, post-run
/// inspection); concurrent readers must use snapshot().
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void push(const char* name, char phase);
  /// Push with causal identity (ScopedSpan under a context, flow marks).
  void push(const char* name, char phase, u64 trace_id, u64 span_id,
            u64 parent_id);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Locked copy of the buffer — the only safe read while writers are live.
  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  u64 dropped() const;
  void clear();

  /// Shrink/grow the bound (clears the buffer; tests use tiny capacities).
  void set_capacity(std::size_t capacity);

  /// Timestamp source, swappable for deterministic golden-file tests.
  /// Default: std::chrono::steady_clock in nanoseconds.
  using NowFn = u64 (*)();
  void set_now_fn(NowFn fn);
  u64 now_ns() const { return now_fn_(); }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  u64 dropped_ = 0;
  NowFn now_fn_;
};

/// Span lifecycle hooks, the attachment point for profiling layers that need
/// to know what is open *right now* (antarex::obs energy attribution, the
/// policy engine's span-exit evaluation). Global process-wide function
/// pointers held in atomics: install before the instrumented region runs,
/// uninstall (nullptr) after it quiesces. Hooks fire only for spans that were
/// active at construction (telemetry enabled), on the thread running the
/// span. The exit hook receives the span's start/end timestamps from the
/// trace clock; timestamps are sampled only while an exit hook is installed,
/// so hook-free runs take no extra clock reads.
using SpanEnterHook = void (*)(const char* name);
using SpanExitHook = void (*)(const char* name, u64 start_ns, u64 end_ns);
void set_span_enter_hook(SpanEnterHook fn);
void set_span_exit_hook(SpanExitHook fn);
SpanEnterHook span_enter_hook();
SpanExitHook span_exit_hook();

/// RAII trace span. Use via TELEMETRY_SPAN("subsystem.operation"); the name
/// must be a string literal (stored by pointer, never copied).
///
/// When a causal context is current on this thread (ContextScope or an
/// enclosing ScopedSpan installed one), the span allocates the next child
/// slot of that context, stamps its B/E events with the derived ids, and
/// becomes the current context itself — so nesting and cross-thread
/// adoption compose into one deterministic id tree. Outside any context the
/// events carry zero ids, exactly as before contexts existed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The span's causal identity (inactive when opened outside a context).
  const TraceContext& context() const { return frame_.ctx; }

 private:
  const char* name_;
  bool active_;
  bool framed_ = false;  ///< true when this span installed a context frame
  u64 start_ns_ = 0;     ///< sampled only when an exit hook is installed
  detail::ContextFrame frame_;
};

/// RAII timer recording its elapsed seconds into a telemetry Histogram on
/// destruction. Gated at construction: when telemetry is disabled the object
/// is inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;  ///< null when constructed disabled
  u64 start_ns_ = 0;
};

}  // namespace antarex::telemetry
