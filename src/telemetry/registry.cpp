#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>

namespace antarex::telemetry {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins) {
  ANTAREX_REQUIRE(bins > 0, "telemetry::Histogram: need at least one bucket");
  ANTAREX_REQUIRE(hi > lo, "telemetry::Histogram: empty value range");
}

void Histogram::add(double x) {
  if (!enabled()) return;
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(frac * static_cast<double>(counts_.size())));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop: fetch_add on atomic<double> needs C++20 library support that
  // not every baked-in toolchain ships; this is portable and contention here
  // is low (histograms sit behind the enabled() gate).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

u64 Histogram::bucket(std::size_t i) const {
  ANTAREX_REQUIRE(i < counts_.size(), "telemetry::Histogram: bucket out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::approx_percentile(double p) const {
  ANTAREX_REQUIRE(p >= 0.0 && p <= 100.0,
                  "telemetry::Histogram: percentile outside [0,100]");
  const u64 n = count();
  if (n == 0) return 0.0;
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(p / 100.0 * static_cast<double>(n))));
  u64 seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
  }
  return hi_;
}

double Histogram::approx_quantile(double q) const {
  ANTAREX_REQUIRE(q >= 0.0 && q <= 1.0,
                  "telemetry::Histogram: quantile outside [0,1]");
  const u64 n = count();
  if (n == 0) return 0.0;
  const double target =
      std::clamp(q * static_cast<double>(n), 0.0, static_cast<double>(n));
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c =
        static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    if (c <= 0.0) continue;
    if (cum + c >= target) {
      // Linear interpolation inside the bucket: the bucket's mass is assumed
      // uniformly spread over its value range.
      const double frac = std::clamp((target - cum) / c, 0.0, 1.0);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cum += c;
  }
  return hi_;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Series -----------------------------------------------------------------

Series::Series(std::size_t window, double ewma_alpha)
    : window_(window), ewma_(ewma_alpha) {}

void Series::push(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  window_.add(sample);
  ewma_.add(sample);
  last_ = sample;
  ++total_;
}

std::size_t Series::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double Series::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

double Series::window_mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.mean();
}

double Series::window_percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.percentile(p);
}

double Series::ewma() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_.value();
}

std::size_t Series::window_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.capacity();
}

void Series::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  window_.clear();
  ewma_.clear();
  last_ = 0.0;
  total_ = 0;
}

void Series::reset_window(std::size_t window) {
  std::lock_guard<std::mutex> lock(mu_);
  window_ = SlidingWindow(window);
  ewma_.clear();
  last_ = 0.0;
  total_ = 0;
}

// --- Registry ---------------------------------------------------------------

Registry::Registry() = default;

Registry& Registry::global() {
  static Registry* g = new Registry();  // leaked on purpose, see header
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Counter& Registry::drop_counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_names_.insert(name);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, bins);
  return *slot;
}

Series& Registry::series(const std::string& name, std::size_t window) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot)
    slot = std::make_unique<Series>(window);
  else if (window != 0 && slot->window_capacity() != window)
    slot->reset_window(window);
  return *slot;
}

template <typename Map, typename Ptr>
static std::vector<std::pair<std::string, Ptr>> snapshot(const Map& map) {
  std::vector<std::pair<std::string, Ptr>> out;
  out.reserve(map.size());
  for (const auto& [name, item] : map) out.emplace_back(name, item.get());
  return out;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot<decltype(counters_), const Counter*>(counters_);
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot<decltype(gauges_), const Gauge*>(gauges_);
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot<decltype(histograms_), const Histogram*>(histograms_);
}

std::vector<std::pair<std::string, const Series*>> Registry::all_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot<decltype(series_), const Series*>(series_);
}

std::vector<std::pair<std::string, const Counter*>> Registry::drop_counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(drop_names_.size());
  for (const std::string& name : drop_names_) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) out.emplace_back(name, it->second.get());
  }
  return out;
}

void Registry::reset() {
  // Zero in place rather than erase: instrument sites cache references to
  // these objects (function-local statics), so the objects must live as long
  // as the registry.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->clear();
  trace_.clear();
}

}  // namespace antarex::telemetry
