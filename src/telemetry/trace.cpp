#include "telemetry/trace.hpp"

#include <chrono>

#include "telemetry/registry.hpp"

namespace antarex::telemetry {

namespace {

u64 steady_now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity), now_fn_(&steady_now_ns) {
  ANTAREX_REQUIRE(capacity_ > 0, "TraceBuffer: need a positive capacity");
  events_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceBuffer::push(const char* name, char phase) {
  // Stamp outside the lock: timestamps come from the (possibly swapped)
  // now_fn_, and holding the mutex across it would serialize clock reads.
  const u64 ts = now_fn_();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, ts, phase});
}

void TraceBuffer::push(const char* name, char phase, u64 trace_id, u64 span_id,
                       u64 parent_id) {
  const u64 ts = now_fn_();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, ts, phase, trace_id, span_id, parent_id});
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

u64 TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  ANTAREX_REQUIRE(capacity > 0, "TraceBuffer: need a positive capacity");
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  events_.clear();
  dropped_ = 0;
}

void TraceBuffer::set_now_fn(NowFn fn) {
  now_fn_ = fn ? fn : &steady_now_ns;
}

namespace {
std::atomic<SpanEnterHook> g_enter_hook{nullptr};
std::atomic<SpanExitHook> g_exit_hook{nullptr};
}  // namespace

void set_span_enter_hook(SpanEnterHook fn) {
  g_enter_hook.store(fn, std::memory_order_release);
}

void set_span_exit_hook(SpanExitHook fn) {
  g_exit_hook.store(fn, std::memory_order_release);
}

SpanEnterHook span_enter_hook() {
  return g_enter_hook.load(std::memory_order_acquire);
}

SpanExitHook span_exit_hook() {
  return g_exit_hook.load(std::memory_order_acquire);
}

ScopedSpan::ScopedSpan(const char* name) : name_(name), active_(enabled()) {
  if (!active_) return;
  TraceBuffer& buf = Registry::global().trace();
  if (detail::ContextFrame* parent = detail::context_top()) {
    frame_.ctx = parent->ctx.child(parent->next_child++);
    detail::push_context_frame(&frame_);
    framed_ = true;
    buf.push(name_, 'B', frame_.ctx.trace_id, frame_.ctx.span_id,
             frame_.ctx.parent_id);
  } else {
    buf.push(name_, 'B');
  }
  if (SpanEnterHook hook = span_enter_hook()) hook(name_);
  if (span_exit_hook()) start_ns_ = buf.now_ns();
}

ScopedSpan::~ScopedSpan() {
  // Close the span even if telemetry was switched off mid-flight, so the
  // buffer stays balanced.
  if (!active_) return;
  TraceBuffer& buf = Registry::global().trace();
  if (framed_) {
    buf.push(name_, 'E', frame_.ctx.trace_id, frame_.ctx.span_id,
             frame_.ctx.parent_id);
    detail::pop_context_frame(&frame_);
  } else {
    buf.push(name_, 'E');
  }
  if (SpanExitHook hook = span_exit_hook())
    hook(name_, start_ns_, buf.now_ns());
}

ScopedTimer::ScopedTimer(Histogram& sink)
    : sink_(enabled() ? &sink : nullptr) {
  if (sink_) start_ns_ = Registry::global().trace().now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!sink_) return;
  const u64 end_ns = Registry::global().trace().now_ns();
  sink_->add(static_cast<double>(end_ns - start_ns_) * 1e-9);
}

}  // namespace antarex::telemetry
