// Decision provenance: every control-plane action, with its cause and its
// observed effect, in one bounded queryable ledger.
//
// The closed loop (monitor -> decide -> actuate) makes decisions in four
// places — obs::PolicyEngine firings, govern actuator restrict/relax steps,
// CapCoordinator budget renegotiations, and monitor::AnomalyDetector episode
// transitions. Each records a DecisionRecord at decision time (cause +
// action, with the metric reading that triggered it) and later attaches the
// *observed* effect via note_effect() — e.g. the next epoch's power mean
// after a restrict, or the episode duration at close. The result is an
// "explain" timeline: for any governor action in a run, the ledger answers
// what it saw, what it did, and what happened next.
//
// Bounded like the trace buffer: at capacity new records are dropped and
// counted (causal.ledger.dropped), so a saturated ledger is never mistaken
// for a complete one. Thread-safe; decisions are rare (edge-triggered), so
// a mutex is fine.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::causal {

struct DecisionRecord {
  u64 seq = 0;       ///< assigned by the ledger, 1-based, monotonic
  double t_s = 0.0;  ///< decision time on the caller's clock
  std::string actor;   ///< who decided ("policy.nav.slo_guard", "govern.coordinator", ...)
  std::string action;  ///< what was done ("restrict:exec.worker_limit", ...)
  std::string cause;   ///< what triggered it ("nav.queue_depth=15 > 12", ...)
  double cause_value = 0.0;
  std::string effect;  ///< observed outcome, attached later via note_effect()
  double effect_value = 0.0;
  bool has_effect = false;
  u64 trace_id = 0;  ///< request tree the decision belongs to (0 = run-wide)
};

class DecisionLedger {
 public:
  explicit DecisionLedger(std::size_t capacity = 4096);

  /// The process-wide ledger the control-plane hooks record into.
  static DecisionLedger& global();

  /// Record a decision (seq is assigned); returns its seq, or 0 when the
  /// ledger is full (the drop is counted).
  u64 record(DecisionRecord r);

  /// Attach the observed effect to an earlier decision. Unknown seq (e.g. a
  /// dropped record) is ignored.
  void note_effect(u64 seq, const std::string& effect, double effect_value);

  std::vector<DecisionRecord> snapshot() const;
  std::size_t size() const;
  u64 dropped() const;
  void clear();

  /// JSON dump (schema antarex.causal.decisions/v1) for antarex-report.
  std::string json() const;

  /// Human-readable explain timeline, one line per decision.
  std::string timeline() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<DecisionRecord> records_;
  u64 next_seq_ = 1;
  u64 dropped_ = 0;
};

}  // namespace antarex::causal
