#include "causal/ledger.hpp"

#include <algorithm>

#include "support/json.hpp"
#include "support/strings.hpp"
#include "telemetry/registry.hpp"

namespace antarex::causal {

DecisionLedger::DecisionLedger(std::size_t capacity) : capacity_(capacity) {
  ANTAREX_REQUIRE(capacity_ > 0, "DecisionLedger: need a positive capacity");
}

DecisionLedger& DecisionLedger::global() {
  static DecisionLedger* ledger = new DecisionLedger();  // leaked singleton
  return *ledger;
}

u64 DecisionLedger::record(DecisionRecord r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    telemetry::Registry::global().drop_counter("causal.ledger.dropped").add(1);
    return 0;
  }
  r.seq = next_seq_++;
  records_.push_back(std::move(r));
  return records_.back().seq;
}

void DecisionLedger::note_effect(u64 seq, const std::string& effect,
                                 double effect_value) {
  if (seq == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Effects land on recent decisions; search from the back.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->seq != seq) continue;
    it->effect = effect;
    it->effect_value = effect_value;
    it->has_effect = true;
    return;
  }
}

std::vector<DecisionRecord> DecisionLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t DecisionLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

u64 DecisionLedger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void DecisionLedger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  next_seq_ = 1;
  dropped_ = 0;
}

std::string DecisionLedger::json() const {
  const std::vector<DecisionRecord> records = snapshot();
  std::string body;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const DecisionRecord& r = records[i];
    if (i > 0) body += ',';
    body += format(
        "{\"seq\":%llu,\"t_s\":%.6f,\"actor\":\"%s\",\"action\":\"%s\","
        "\"cause\":\"%s\",\"cause_value\":%.9g",
        static_cast<unsigned long long>(r.seq), r.t_s,
        json_escape(r.actor).c_str(), json_escape(r.action).c_str(),
        json_escape(r.cause).c_str(), r.cause_value);
    if (r.has_effect)
      body += format(",\"effect\":\"%s\",\"effect_value\":%.9g",
                     json_escape(r.effect).c_str(), r.effect_value);
    if (r.trace_id != 0)
      body += format(",\"trace_id\":\"%llu\"",
                     static_cast<unsigned long long>(r.trace_id));
    body += '}';
  }
  return format(
             "{\"schema\":\"antarex.causal.decisions/v1\",\"decisions\":[") +
         body +
         format("],\"dropped\":%llu}",
                static_cast<unsigned long long>(dropped()));
}

std::string DecisionLedger::timeline() const {
  std::string out;
  for (const DecisionRecord& r : snapshot()) {
    out += format("#%llu t=%.3fs [%s] %s — cause: %s",
                  static_cast<unsigned long long>(r.seq), r.t_s,
                  r.actor.c_str(), r.action.c_str(), r.cause.c_str());
    if (r.has_effect)
      out += format(" → effect: %s", r.effect.c_str());
    else
      out += " → effect: (pending)";
    out += '\n';
  }
  return out;
}

}  // namespace antarex::causal
