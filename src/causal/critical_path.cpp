#include "causal/critical_path.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "support/strings.hpp"
#include "telemetry/registry.hpp"

namespace antarex::causal {

namespace {

/// Category of one span's self time, by name convention.
enum class Category { kCompute, kCacheHit, kDegraded, kOther };

Category classify(const char* name, bool leaf) {
  if (std::strstr(name, "stale") || std::strstr(name, "cache"))
    return Category::kCacheHit;
  if (std::strstr(name, "shed") || std::strstr(name, "degraded"))
    return Category::kDegraded;
  if (std::strstr(name, "compute")) return Category::kCompute;
  return leaf ? Category::kCompute : Category::kOther;
}

/// A context mark ('S' or 'F'): links an id to its parent without a span.
struct Mark {
  u64 parent_id = 0;
  u64 ts_ns = 0;
  bool present = false;
};

struct TraceAccum {
  std::map<u64, SpanNode> spans;        // span_id -> node (B/E matched here)
  std::map<u64, Mark> sched;            // 'S' marks by span_id
  std::map<u64, Mark> adopt;            // 'F' marks by span_id
};

RequestTree link_tree(u64 trace_id, TraceAccum& acc) {
  RequestTree tree;
  tree.trace_id = trace_id;
  tree.spans.reserve(acc.spans.size());
  std::map<u64, std::size_t> index;  // span_id -> tree.spans index
  for (auto& [id, node] : acc.spans) {
    index.emplace(id, tree.spans.size());
    tree.spans.push_back(node);
  }

  // Root context marks: the id whose parent is 0 and which is not itself a
  // span (it was created by TraceContext::root and only ever adopted).
  for (const auto& [id, mark] : acc.sched)
    if (mark.parent_id == 0 && index.find(id) == index.end() &&
        (tree.sched_ns == 0 || mark.ts_ns < tree.sched_ns))
      tree.sched_ns = mark.ts_ns;
  for (const auto& [id, mark] : acc.adopt)
    if (mark.parent_id == 0 && index.find(id) == index.end() &&
        (tree.adopt_ns == 0 || mark.ts_ns < tree.adopt_ns))
      tree.adopt_ns = mark.ts_ns;

  // Resolve each span's parent: chase the id chain through fork marks until
  // it lands on another span (nesting parent), reaches 0 (top level), or
  // breaks (orphan). Chains are short — one hop per pool boundary.
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    SpanNode& node = tree.spans[i];
    u64 pid = node.parent_id;
    for (int hops = 0; hops < 64; ++hops) {
      if (pid == 0) break;  // reached the tree root: top-level span
      const auto parent_it = index.find(pid);
      if (parent_it != index.end()) {
        node.parent = parent_it->second;
        break;
      }
      const auto s_it = acc.sched.find(pid);
      const auto f_it = acc.adopt.find(pid);
      if (s_it != acc.sched.end()) {
        pid = s_it->second.parent_id;
      } else if (f_it != acc.adopt.end()) {
        pid = f_it->second.parent_id;
      } else {
        node.orphan = true;  // parent id never recorded anywhere
        break;
      }
    }
    if (node.orphan) ++tree.orphans;
  }

  // Children lists come out sorted by span_id because spans are iterated in
  // span_id order.
  std::size_t top_spans = 0;
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    const SpanNode& node = tree.spans[i];
    if (node.orphan) continue;
    if (node.parent == SIZE_MAX) {
      ++top_spans;
      tree.root = i;
    } else {
      tree.spans[node.parent].children.push_back(i);
    }
  }
  if (top_spans != 1) tree.root = SIZE_MAX;
  return tree;
}

}  // namespace

bool RequestTree::complete() const {
  if (orphans != 0 || spans.empty()) return false;
  for (const SpanNode& s : spans)
    if (!s.closed) return false;
  return true;
}

u64 RequestTree::begin_ns() const {
  u64 t = sched_ns;
  for (const SpanNode& s : spans)
    if (t == 0 || s.begin_ns < t) t = s.begin_ns;
  return t;
}

u64 RequestTree::end_ns() const {
  u64 t = 0;
  for (const SpanNode& s : spans) t = std::max(t, s.end_ns);
  return t;
}

TraceForest TraceForest::from_events(
    const std::vector<telemetry::TraceEvent>& events) {
  std::map<u64, TraceAccum> by_trace;
  for (const telemetry::TraceEvent& e : events) {
    if (e.trace_id == 0) continue;  // span outside any causal context
    TraceAccum& acc = by_trace[e.trace_id];
    if (e.phase == 'B') {
      SpanNode& node = acc.spans[e.span_id];
      node.name = e.name;
      node.span_id = e.span_id;
      node.parent_id = e.parent_id;
      node.begin_ns = e.ts_ns;
    } else if (e.phase == 'E') {
      const auto it = acc.spans.find(e.span_id);
      if (it == acc.spans.end()) continue;  // its 'B' was dropped
      it->second.end_ns = e.ts_ns;
      it->second.closed = true;
    } else if (e.phase == 'S') {
      Mark& m = acc.sched[e.span_id];
      if (!m.present) m = Mark{e.parent_id, e.ts_ns, true};
    } else if (e.phase == 'F') {
      Mark& m = acc.adopt[e.span_id];
      if (!m.present) m = Mark{e.parent_id, e.ts_ns, true};
    }
  }

  TraceForest forest;
  forest.trees_.reserve(by_trace.size());
  for (auto& [trace_id, acc] : by_trace)
    forest.trees_.push_back(link_tree(trace_id, acc));
  return forest;
}

TraceForest TraceForest::from_registry() {
  return from_events(telemetry::Registry::global().trace().snapshot());
}

std::size_t TraceForest::total_spans() const {
  std::size_t n = 0;
  for (const RequestTree& t : trees_) n += t.spans.size();
  return n;
}

std::size_t TraceForest::total_orphans() const {
  std::size_t n = 0;
  for (const RequestTree& t : trees_) n += t.orphans;
  return n;
}

bool TraceForest::complete() const {
  if (trees_.empty()) return false;
  for (const RequestTree& t : trees_)
    if (!t.complete()) return false;
  return true;
}

std::string TraceForest::structure() const {
  std::string out;
  for (const RequestTree& tree : trees_) {
    out += format("trace %llu\n",
                  static_cast<unsigned long long>(tree.trace_id));
    // Depth-first from the top-level spans, children already in span_id
    // order — no timestamps, so the bytes depend only on program structure.
    struct Item {
      std::size_t index;
      int depth;
    };
    std::vector<Item> stack;
    for (std::size_t i = tree.spans.size(); i-- > 0;) {
      const SpanNode& s = tree.spans[i];
      if (!s.orphan && s.parent == SIZE_MAX) stack.push_back({i, 1});
    }
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      const SpanNode& s = tree.spans[item.index];
      out.append(static_cast<std::size_t>(2 * item.depth), ' ');
      out += format("%s#%llx%s\n", s.name,
                    static_cast<unsigned long long>(s.span_id),
                    s.closed ? "" : "!");
      for (std::size_t c = s.children.size(); c-- > 0;)
        stack.push_back({s.children[c], item.depth + 1});
    }
    for (const SpanNode& s : tree.spans)
      if (s.orphan)
        out += format("  orphan %s#%llx parent=%llx\n", s.name,
                      static_cast<unsigned long long>(s.span_id),
                      static_cast<unsigned long long>(s.parent_id));
  }
  return out;
}

double critical_path_s(const RequestTree& tree) {
  if (tree.root == SIZE_MAX) return 0.0;
  // Recursive longest chain; explicit stack to be depth-safe.
  struct Visit {
    std::size_t index;
    bool expanded;
  };
  std::vector<double> cp(tree.spans.size(), 0.0);
  std::vector<Visit> stack{{tree.root, false}};
  while (!stack.empty()) {
    Visit& v = stack.back();
    const SpanNode& s = tree.spans[v.index];
    if (!v.expanded) {
      v.expanded = true;
      for (std::size_t c : s.children) stack.push_back({c, false});
      continue;
    }
    double best = s.end_ns > s.begin_ns
                      ? static_cast<double>(s.end_ns - s.begin_ns) * 1e-9
                      : 0.0;
    for (std::size_t c : s.children) {
      const SpanNode& child = tree.spans[c];
      const double offset =
          child.begin_ns > s.begin_ns
              ? static_cast<double>(child.begin_ns - s.begin_ns) * 1e-9
              : 0.0;
      best = std::max(best, offset + cp[c]);
    }
    cp[v.index] = best;
    stack.pop_back();
  }
  return cp[tree.root];
}

Decomposition decompose(const RequestTree& tree) {
  ANTAREX_REQUIRE(tree.root != SIZE_MAX,
                  "decompose: tree has no unique root span");
  const SpanNode& root = tree.spans[tree.root];
  const u64 start = tree.sched_ns != 0 ? std::min(tree.sched_ns, root.begin_ns)
                                       : root.begin_ns;
  const u64 root_end = std::max(root.end_ns, root.begin_ns);  // unclosed: 0
  Decomposition d;
  d.total_s = static_cast<double>(root_end - start) * 1e-9;
  d.queue_wait_s = static_cast<double>(root.begin_ns - start) * 1e-9;

  // Per-span self time: the span's interval minus the merged union of its
  // children's intervals (clipped to the span). For well-nested trees the
  // self times plus the queue wait reconstruct the wall time exactly.
  std::vector<std::size_t> order{tree.root};
  for (std::size_t i = 0; i < order.size(); ++i)
    for (std::size_t c : tree.spans[order[i]].children) order.push_back(c);

  for (std::size_t i : order) {
    const SpanNode& s = tree.spans[i];
    std::vector<std::pair<u64, u64>> ivals;
    ivals.reserve(s.children.size());
    for (std::size_t c : s.children) {
      const SpanNode& child = tree.spans[c];
      const u64 b = std::max(child.begin_ns, s.begin_ns);
      const u64 e = std::min(child.end_ns, s.end_ns);
      if (e > b) ivals.emplace_back(b, e);
    }
    std::sort(ivals.begin(), ivals.end());
    u64 covered = 0, cursor = s.begin_ns;
    for (const auto& [b, e] : ivals) {
      const u64 from = std::max(b, cursor);
      if (e > from) covered += e - from;
      cursor = std::max(cursor, e);
    }
    const u64 dur = s.end_ns > s.begin_ns ? s.end_ns - s.begin_ns : 0;
    const double self_s =
        covered < dur ? static_cast<double>(dur - covered) * 1e-9 : 0.0;
    switch (classify(s.name, s.children.empty())) {
      case Category::kCompute: d.compute_s += self_s; break;
      case Category::kCacheHit: d.cache_hit_s += self_s; break;
      case Category::kDegraded: d.degraded_s += self_s; break;
      case Category::kOther: d.other_s += self_s; break;
    }
  }
  return d;
}

}  // namespace antarex::causal
