#include "causal/slo.hpp"

#include "telemetry/enable.hpp"
#include "telemetry/registry.hpp"

namespace antarex::causal {

SloTracker::SloTracker(std::vector<SloTier> tiers, std::size_t window)
    : tiers_(std::move(tiers)), states_(tiers_.size()), window_(window) {
  ANTAREX_REQUIRE(!tiers_.empty(), "SloTracker: need at least one tier");
  ANTAREX_REQUIRE(window_ > 0, "SloTracker: need a positive window");
  for (const SloTier& t : tiers_) {
    ANTAREX_REQUIRE(t.target_latency_s > 0.0,
                    "SloTracker: target latency must be positive");
    ANTAREX_REQUIRE(t.allowed_violation_fraction > 0.0 &&
                        t.allowed_violation_fraction <= 1.0,
                    "SloTracker: allowed violation fraction must be in (0,1]");
  }
}

std::size_t SloTracker::tier_index(const std::string& name) const {
  for (std::size_t i = 0; i < tiers_.size(); ++i)
    if (tiers_[i].name == name) return i;
  return SIZE_MAX;
}

void SloTracker::observe(std::size_t tier_index, double latency_s) {
  ANTAREX_REQUIRE(tier_index < tiers_.size(), "SloTracker: bad tier index");
  State& st = states_[tier_index];
  const bool violation = latency_s > tiers_[tier_index].target_latency_s;
  ++st.total;
  if (violation) ++st.violations;
  st.window.push_back(violation);
  if (violation) ++st.window_violations;
  if (st.window.size() > window_) {
    if (st.window.front()) --st.window_violations;
    st.window.pop_front();
  }
}

TierStatus SloTracker::status(std::size_t tier_index) const {
  ANTAREX_REQUIRE(tier_index < tiers_.size(), "SloTracker: bad tier index");
  const State& st = states_[tier_index];
  const SloTier& tier = tiers_[tier_index];
  TierStatus out;
  out.total = st.total;
  out.violations = st.violations;
  if (st.total > 0) {
    const double frac =
        static_cast<double>(st.violations) / static_cast<double>(st.total);
    out.attainment = 1.0 - frac;
    out.budget_remaining = 1.0 - frac / tier.allowed_violation_fraction;
  }
  if (!st.window.empty()) {
    const double wfrac = static_cast<double>(st.window_violations) /
                         static_cast<double>(st.window.size());
    out.burn_rate = wfrac / tier.allowed_violation_fraction;
  }
  out.burning = out.burn_rate > 1.0;
  return out;
}

void SloTracker::publish() {
  if (!telemetry::enabled()) return;
  telemetry::Registry& reg = telemetry::Registry::global();
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    const TierStatus st = status(i);
    const std::string prefix = "causal.slo." + tiers_[i].name;
    reg.gauge(prefix + ".attainment").set(st.attainment);
    reg.gauge(prefix + ".budget_remaining").set(st.budget_remaining);
    reg.gauge(prefix + ".burn_rate").set(st.burn_rate);
    if (st.burning && !states_[i].alerting)
      reg.counter("causal.slo.alerts").add(1);
    states_[i].alerting = st.burning;
  }
}

}  // namespace antarex::causal
