// Per-tier latency SLOs with rolling error budgets.
//
// Each tier declares a latency objective and the fraction of requests
// allowed to miss it (the error budget). observe() classifies one request;
// status() reports cumulative attainment, remaining budget, and the *burn
// rate* — the windowed violation fraction divided by the allowed fraction,
// so burn_rate > 1 means the tier is currently eating budget faster than it
// accrues (the standard SRE alerting signal). publish() mirrors everything
// into causal.slo.<tier>.* telemetry gauges, where obs::PolicyEngine
// predicates can act on it, and counts transitions into burn as
// causal.slo.alerts.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::causal {

struct SloTier {
  std::string name;
  double target_latency_s = 0.1;
  /// Error budget: fraction of requests allowed over target (e.g. 0.01).
  double allowed_violation_fraction = 0.01;
};

struct TierStatus {
  u64 total = 0;
  u64 violations = 0;
  double attainment = 1.0;        ///< 1 - violations/total
  double budget_remaining = 1.0;  ///< 1 - (violation fraction / allowed)
  double burn_rate = 0.0;         ///< windowed violation fraction / allowed
  bool burning = false;           ///< burn_rate > 1
};

class SloTracker {
 public:
  /// window: number of recent requests the burn rate is computed over.
  explicit SloTracker(std::vector<SloTier> tiers, std::size_t window = 64);

  std::size_t tier_count() const { return tiers_.size(); }
  const SloTier& tier(std::size_t i) const { return tiers_[i]; }
  /// Index of a tier by name; SIZE_MAX when unknown.
  std::size_t tier_index(const std::string& name) const;

  void observe(std::size_t tier_index, double latency_s);

  TierStatus status(std::size_t tier_index) const;

  /// Publish causal.slo.<tier>.{attainment,budget_remaining,burn_rate}
  /// gauges and count newly burning tiers into causal.slo.alerts.
  void publish();

 private:
  struct State {
    u64 total = 0;
    u64 violations = 0;
    std::deque<bool> window;  ///< recent outcomes (true = violation)
    u64 window_violations = 0;
    bool alerting = false;  ///< burning as of the last publish()
  };

  std::vector<SloTier> tiers_;
  std::vector<State> states_;
  std::size_t window_;
};

}  // namespace antarex::causal
