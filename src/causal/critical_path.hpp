// Per-request causal tree reconstruction and critical-path analysis.
//
// Input: the raw telemetry::TraceBuffer events of a run. Every event that
// carries a nonzero trace_id belongs to some request's causal tree: 'B'/'E'
// pairs (matched by span_id, so interleaving across workers is harmless)
// become SpanNodes, 'S'/'F' flow marks become schedule/adopt edges. The
// output is one RequestTree per trace_id with:
//  - parent links resolved through both span nesting and cross-thread fork
//    hops (a span whose parent is a forked task context still chains to the
//    span that forked it);
//  - orphan accounting: a span whose parent chain does not reach the root
//    context is counted, never silently attached;
//  - a timestamp-free structure() serialization — because ids are derived
//    deterministically (telemetry/context.hpp), the serialization is
//    byte-identical across thread counts, which is how tests assert that
//    work stolen across workers still parents correctly.
//
// critical_path_s() is the longest begin-ordered chain through the tree
// (>= the root's own duration, <= the tree's wall time); decompose() splits
// a request's wall time into queue-wait / compute / cache-hit / degraded /
// other segments that sum to the wall time by construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "telemetry/trace.hpp"

namespace antarex::causal {

/// One reconstructed span occurrence inside a request tree.
struct SpanNode {
  const char* name = "";
  u64 span_id = 0;
  u64 parent_id = 0;
  u64 begin_ns = 0;
  u64 end_ns = 0;
  bool closed = false;               ///< saw the matching 'E'
  bool orphan = false;               ///< parent chain does not reach the root
  std::size_t parent = SIZE_MAX;     ///< parent SpanNode index (SIZE_MAX = top)
  std::vector<std::size_t> children;  ///< indices, sorted by span_id
};

/// All spans of one trace_id, linked into a tree.
struct RequestTree {
  u64 trace_id = 0;
  std::vector<SpanNode> spans;  ///< sorted by span_id
  /// The unique top-level span (parent chain reaches the root context
  /// without passing another span); SIZE_MAX when absent or ambiguous.
  std::size_t root = SIZE_MAX;
  u64 sched_ns = 0;  ///< root context 'S' mark (0 = none recorded)
  u64 adopt_ns = 0;  ///< root context 'F' mark (0 = none recorded)
  std::size_t orphans = 0;  ///< spans whose parent chain is broken

  bool complete() const;  ///< no orphans and every span closed
  u64 begin_ns() const;   ///< min over sched mark and span begins
  u64 end_ns() const;     ///< max over span ends
  double wall_s() const { return static_cast<double>(end_ns() - begin_ns()) * 1e-9; }
};

/// Where one slice of a request's wall time went. queue_wait is the
/// admission('S') -> first span gap plus, transitively, nothing else; the
/// category buckets hold per-span *self* time (child intervals subtracted),
/// classified by span name: *.compute -> compute, *.stale/cache -> cache_hit,
/// *.shed/degraded -> degraded, interior/unclassified -> other.
struct Decomposition {
  double queue_wait_s = 0.0;
  double compute_s = 0.0;
  double cache_hit_s = 0.0;
  double degraded_s = 0.0;
  double other_s = 0.0;
  double total_s = 0.0;  ///< sched (or root begin) to root end

  double sum() const {
    return queue_wait_s + compute_s + cache_hit_s + degraded_s + other_s;
  }
};

/// Every request tree reconstructable from a trace snapshot.
class TraceForest {
 public:
  /// Build from raw events (any order; id-less events are ignored).
  static TraceForest from_events(
      const std::vector<telemetry::TraceEvent>& events);
  /// Build from a snapshot of the global trace buffer.
  static TraceForest from_registry();

  const std::vector<RequestTree>& trees() const { return trees_; }
  std::size_t total_spans() const;
  std::size_t total_orphans() const;
  /// Causally complete: at least one tree, no orphans, all spans closed.
  bool complete() const;

  /// Timestamp-free serialization of every tree (names, derived ids, parent
  /// structure). Byte-identical across runs and thread counts when the
  /// traced program is deterministic.
  std::string structure() const;

 private:
  std::vector<RequestTree> trees_;  ///< sorted by trace_id
};

/// Longest causal chain through the tree, in seconds: for each span,
/// max(own duration, max over children of (child.begin - begin) + cp(child)).
/// 0 when the tree has no root span. Always <= tree wall time.
double critical_path_s(const RequestTree& tree);

/// Latency decomposition of one request; requires tree.root != SIZE_MAX.
Decomposition decompose(const RequestTree& tree);

}  // namespace antarex::causal
