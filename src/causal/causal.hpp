// antarex::causal — request-scoped causal analysis over the telemetry layer.
//
// Three pieces (see DESIGN.md "Causal tracing & decision provenance"):
//  - critical_path.hpp: reconstruct per-request trees from trace events,
//    find the critical path, decompose latency into queue-wait / compute /
//    cache-hit / degraded segments;
//  - slo.hpp: per-tier latency objectives with rolling error budgets and
//    burn-rate alerts (causal.slo.* telemetry);
//  - ledger.hpp: the decision provenance ledger every control-plane actor
//    (policy engine, governor, anomaly detector) records into.
//
// The identity layer itself — TraceContext, ContextScope, fork_context —
// lives in telemetry/context.hpp so that telemetry and exec can use it
// without depending on this library; causal depends only on telemetry.
#pragma once

#include "causal/critical_path.hpp"  // IWYU pragma: export
#include "causal/ledger.hpp"         // IWYU pragma: export
#include "causal/slo.hpp"            // IWYU pragma: export
