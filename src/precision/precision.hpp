// Precision autotuning (paper Sec. IV, "Precision Autotuning"): customized
// precision trades quality for power/performance when the application can
// tolerate some loss.
//
// Reduced precision is *emulated*: doubles are re-rounded to a configurable
// number of mantissa bits after every operation of interest. The cost model
// maps mantissa width to relative energy/time per operation (narrower
// multipliers and smaller operand traffic), calibrated to the usual
// fp64/fp32/fp16 ratios.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::precision {

/// Round `x` to `mantissa_bits` of fraction (1..52). 52 is a no-op (IEEE
/// double). Uses round-to-nearest-even via ldexp arithmetic; handles
/// zero/inf/nan transparently.
double quantize(double x, int mantissa_bits);

void quantize_inplace(std::vector<double>& xs, int mantissa_bits);

/// |ref - approx| / max(|ref|, eps).
double relative_error(double ref, double approx);

/// Root-mean-square error between two equally sized vectors.
double rmse(const std::vector<double>& ref, const std::vector<double>& approx);

double max_abs_error(const std::vector<double>& ref,
                     const std::vector<double>& approx);

/// One selectable precision level with its cost model.
struct PrecisionLevel {
  std::string name;
  int mantissa_bits;
  double energy_per_op = 1.0;  ///< relative to fp64
  double time_per_op = 1.0;    ///< relative to fp64
};

/// fp64 / fp32 / fp21 / bf16-like / fp8-like ladder.
std::vector<PrecisionLevel> standard_levels();

/// Result of a precision sweep.
struct PrecisionChoice {
  PrecisionLevel level;
  double observed_error = 0.0;
  double energy_saving = 0.0;  ///< vs fp64, fraction in [0, 1)
};

/// Pick the cheapest level whose observed error (as computed by `error_of`,
/// typically an application-quality metric vs the fp64 reference) stays
/// within `tolerance`. Falls back to the widest level if nothing qualifies.
PrecisionChoice tune_precision(
    const std::function<double(const PrecisionLevel&)>& error_of,
    double tolerance, const std::vector<PrecisionLevel>& levels = standard_levels());

}  // namespace antarex::precision
