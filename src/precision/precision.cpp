#include "precision/precision.hpp"

#include <cmath>

namespace antarex::precision {

double quantize(double x, int mantissa_bits) {
  ANTAREX_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
                  "quantize: mantissa bits must be in [1, 52]");
  if (mantissa_bits == 52 || x == 0.0 || !std::isfinite(x)) return x;
  int exp = 0;
  const double mant = std::frexp(x, &exp);  // mant in [0.5, 1)
  const double scale = std::ldexp(1.0, mantissa_bits + 1);
  // round-half-to-even on the scaled mantissa
  const double scaled = mant * scale;
  const double rounded = std::nearbyint(scaled);
  return std::ldexp(rounded / scale, exp);
}

void quantize_inplace(std::vector<double>& xs, int mantissa_bits) {
  for (double& x : xs) x = quantize(x, mantissa_bits);
}

double relative_error(double ref, double approx) {
  const double denom = std::max(std::fabs(ref), 1e-300);
  return std::fabs(ref - approx) / denom;
}

double rmse(const std::vector<double>& ref, const std::vector<double>& approx) {
  ANTAREX_REQUIRE(ref.size() == approx.size() && !ref.empty(),
                  "rmse: size mismatch or empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = ref[i] - approx[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(ref.size()));
}

double max_abs_error(const std::vector<double>& ref,
                     const std::vector<double>& approx) {
  ANTAREX_REQUIRE(ref.size() == approx.size() && !ref.empty(),
                  "max_abs_error: size mismatch or empty input");
  double m = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    m = std::max(m, std::fabs(ref[i] - approx[i]));
  return m;
}

std::vector<PrecisionLevel> standard_levels() {
  // Energy/time per op calibrated to published multiplier-energy scaling:
  // roughly quadratic in mantissa width for multiply-dominated kernels, with
  // a floor from operand movement.
  return {
      {"fp64", 52, 1.00, 1.00},
      {"fp32", 23, 0.42, 0.55},
      {"fp21", 12, 0.28, 0.45},
      {"bf16-like", 7, 0.20, 0.40},
      {"fp8-like", 3, 0.15, 0.35},
  };
}

PrecisionChoice tune_precision(
    const std::function<double(const PrecisionLevel&)>& error_of,
    double tolerance, const std::vector<PrecisionLevel>& levels) {
  ANTAREX_REQUIRE(!levels.empty(), "tune_precision: no levels");
  ANTAREX_REQUIRE(tolerance >= 0.0, "tune_precision: negative tolerance");

  const PrecisionLevel* widest = &levels.front();
  for (const auto& l : levels)
    if (l.mantissa_bits > widest->mantissa_bits) widest = &l;

  const PrecisionLevel* best = nullptr;
  double best_error = 0.0;
  for (const auto& l : levels) {
    const double err = error_of(l);
    if (err <= tolerance) {
      if (!best || l.energy_per_op < best->energy_per_op) {
        best = &l;
        best_error = err;
      }
    }
  }
  PrecisionChoice choice;
  if (best) {
    choice.level = *best;
    choice.observed_error = best_error;
  } else {
    choice.level = *widest;
    choice.observed_error = error_of(*widest);
  }
  choice.energy_saving = 1.0 - choice.level.energy_per_op / widest->energy_per_op;
  return choice;
}

}  // namespace antarex::precision
