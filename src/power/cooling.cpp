#include "power/cooling.hpp"

#include <algorithm>

namespace antarex::power {

CoolingModel::CoolingModel(Params p) : p_(p) {
  ANTAREX_REQUIRE(p_.cop_ref > 0.0 && p_.cop_min > 0.0 && p_.cop_slope >= 0.0,
                  "CoolingModel: invalid parameters");
}

double CoolingModel::cop(double ambient_c) const {
  const double degraded =
      p_.cop_ref - p_.cop_slope * std::max(0.0, ambient_c - p_.ambient_ref_c);
  return std::max(p_.cop_min, degraded);
}

double CoolingModel::cooling_power_w(double it_power_w, double ambient_c) const {
  ANTAREX_REQUIRE(it_power_w >= 0.0, "CoolingModel: negative IT power");
  return it_power_w / cop(ambient_c);
}

double CoolingModel::pue(double it_power_w, double ambient_c) const {
  if (it_power_w <= 0.0) return 1.0;
  const double total = it_power_w + cooling_power_w(it_power_w, ambient_c) +
                       p_.fixed_overhead * it_power_w;
  return total / it_power_w;
}

}  // namespace antarex::power
