#include "power/thermal.hpp"

#include <cmath>

namespace antarex::power {

ThermalModel::ThermalModel(double r_th_c_per_w, double tau_s, double initial_c)
    : r_th_(r_th_c_per_w), tau_s_(tau_s), temp_c_(initial_c) {
  ANTAREX_REQUIRE(r_th_ > 0.0 && tau_s_ > 0.0, "ThermalModel: bad constants");
}

void ThermalModel::step(double power_w, double ambient_c, double dt_s) {
  temp_c_ = stepped_c(temp_c_, power_w, ambient_c, dt_s, r_th_, tau_s_);
}

double ThermalModel::stepped_c(double temp_c, double power_w, double ambient_c,
                               double dt_s, double r_th_c_per_w,
                               double tau_s) {
  ANTAREX_REQUIRE(dt_s >= 0.0, "ThermalModel: negative time step");
  const double target = ambient_c + power_w * r_th_c_per_w;
  // Exact exponential integration — stable for any dt.
  const double alpha = 1.0 - std::exp(-dt_s / tau_s);
  temp_c += (target - temp_c) * alpha;
  return temp_c;
}

double ThermalModel::steady_state_c(double power_w, double ambient_c) const {
  return ambient_c + power_w * r_th_;
}

}  // namespace antarex::power
