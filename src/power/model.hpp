// CMOS power model, per-instance manufacturing variability, and the
// frequency-dependent execution-time model.
//
// Together these reproduce the physics behind the paper's Sec. V claims:
//  - "different instances of the same nominal component execute the same
//     application with 15% of variation in the energy-consumption"
//  - "optimal selection of operating points can save from 18% to 50% of node
//     energy with respect to the default frequency selection of the Linux OS
//     power governor"
#pragma once

#include "power/dvfs.hpp"
#include "support/rng.hpp"

namespace antarex::power {

/// Per-instance silicon variability: multipliers on leakage and switched
/// capacitance drawn at "manufacturing time". Sampled lognormally so the
/// distribution is positive and right-skewed like real process variation.
struct Variability {
  double leak_mult = 1.0;
  double ceff_mult = 1.0;

  /// sigma is the lognormal shape parameter; leakage varies ~3x more than
  /// dynamic capacitance, matching silicon measurements (leakage is
  /// exponential in threshold-voltage variation).
  static Variability sample(Rng& rng, double sigma);
};

/// Analytic device power model:
///   P_dyn    = C_eff * V^2 * f * activity
///   P_static = leak_ref * (V / V_nom) * exp(k * (T - 50C))
class PowerModel {
 public:
  explicit PowerModel(DeviceSpec spec, Variability var = {});

  double dynamic_power_w(const OperatingPoint& op, double activity) const;
  double static_power_w(const OperatingPoint& op, double temp_c) const;
  double total_power_w(const OperatingPoint& op, double activity,
                       double temp_c) const;
  double idle_power_w(const OperatingPoint& op, double temp_c) const;

  /// Stateless cores of the instance methods above. The SoA cluster engine
  /// (rtrm::ShardedCluster) evaluates these directly so both simulation paths
  /// execute the *same machine code* and stay bit-identical; the instance
  /// methods delegate here.
  static double dynamic_power_w(const DeviceSpec& spec, const Variability& var,
                                const OperatingPoint& op, double activity);
  static double static_power_w(const DeviceSpec& spec, const Variability& var,
                               double v_nom, const OperatingPoint& op,
                               double temp_c);
  static double total_power_w(const DeviceSpec& spec, const Variability& var,
                              double v_nom, const OperatingPoint& op,
                              double activity, double temp_c);
  static double idle_power_w(const DeviceSpec& spec, const Variability& var,
                             double v_nom, const OperatingPoint& op,
                             double temp_c);

  const DeviceSpec& spec() const { return spec_; }
  const Variability& variability() const { return var_; }
  double v_nom() const { return v_nom_; }

 private:
  DeviceSpec spec_;
  Variability var_;
  double v_nom_;  ///< highest-P-state voltage, reference for leakage scaling
};

/// Frequency-dependent execution time of a work unit:
///   t(f) = cpu_cycles / (f * cores_used) + mem_seconds
/// cpu_cycles scale with frequency; memory stalls do not — the split is what
/// makes low-frequency operation profitable for memory-bound codes.
struct WorkloadModel {
  double cpu_gcycles = 1.0;   ///< giga-cycles of compute per unit of work
  double mem_seconds = 0.0;   ///< frequency-invariant stall time per unit
  double activity = 0.9;      ///< switching activity while running
  int cores_used = 1;

  double execution_time_s(const OperatingPoint& op) const;

  /// Fraction of time stalled on memory at the given frequency (0..1).
  double memory_boundedness(const OperatingPoint& op) const;
};

/// Energy to run `units` of a workload at a fixed operating point and
/// temperature (temperature feedback is handled by rtrm::Node; this is the
/// building block).
double energy_j(const PowerModel& pm, const WorkloadModel& w,
                const OperatingPoint& op, double units, double temp_c);

/// Stateless form of energy_j for callers that keep (spec, variability)
/// out-of-line instead of owning a PowerModel (the SoA cluster engine).
/// The PowerModel overload delegates here.
double energy_j(const DeviceSpec& spec, const Variability& var, double v_nom,
                const WorkloadModel& w, const OperatingPoint& op, double units,
                double temp_c);

/// The operating point of the table minimizing energy_j (the paper's
/// "optimal selection of operating points"); ties broken toward higher
/// frequency.
const OperatingPoint& energy_optimal_op(const PowerModel& pm,
                                        const WorkloadModel& w, double temp_c);

/// Node-level energy-to-solution: device power with leakage at the
/// *steady-state* temperature of each operating point (hot at high
/// frequency, cool at low — the thermal feedback that gives compute-bound
/// codes an interior energy optimum) plus node base power (board, memory,
/// NIC) drawn for the whole runtime.
///
/// This is the quantity behind the paper's "18% to 50% of node energy"
/// claim: the optimum of this curve vs its value at the highest P-state
/// (where a busy ondemand governor sits).
class NodeEnergyModel {
 public:
  NodeEnergyModel(PowerModel pm, double base_power_w = 30.0,
                  double r_th_c_per_w = 0.30, double ambient_c = 22.0);

  double steady_temp_c(const OperatingPoint& op, double activity) const;
  double energy_to_solution_j(const WorkloadModel& w, const OperatingPoint& op,
                              double units) const;
  /// P-state index minimizing energy-to-solution.
  std::size_t optimal_op_index(const WorkloadModel& w) const;
  /// Savings of the optimal P-state vs the highest one, in [0, 1).
  double savings_vs_highest(const WorkloadModel& w) const;

  const PowerModel& power_model() const { return pm_; }
  double base_power_w() const { return base_w_; }

 private:
  PowerModel pm_;
  double base_w_;
  double r_th_;
  double ambient_c_;
};

}  // namespace antarex::power
