#include "power/model.hpp"

#include <cmath>

namespace antarex::power {

Variability Variability::sample(Rng& rng, double sigma) {
  ANTAREX_REQUIRE(sigma >= 0.0, "Variability: sigma must be >= 0");
  Variability v;
  // mu = -sigma^2/2 keeps the mean multiplier at 1.0.
  const double leak_sigma = 3.0 * sigma;
  v.leak_mult = rng.lognormal(-leak_sigma * leak_sigma / 2.0, leak_sigma);
  v.ceff_mult = rng.lognormal(-sigma * sigma / 2.0, sigma);
  return v;
}

PowerModel::PowerModel(DeviceSpec spec, Variability var)
    : spec_(std::move(spec)), var_(var) {
  ANTAREX_REQUIRE(spec_.dvfs.size() > 0, "PowerModel: device has no P-states");
  v_nom_ = spec_.dvfs.highest().voltage_v;
}

double PowerModel::dynamic_power_w(const DeviceSpec& spec,
                                   const Variability& var,
                                   const OperatingPoint& op, double activity) {
  ANTAREX_REQUIRE(activity >= 0.0 && activity <= 1.0,
                  "PowerModel: activity outside [0, 1]");
  // C [nF] * V^2 [V^2] * f [GHz] -> nF * GHz = 1, so the product is in watts.
  return spec.c_eff_nf * var.ceff_mult * op.voltage_v * op.voltage_v *
         op.freq_ghz * activity;
}

double PowerModel::static_power_w(const DeviceSpec& spec,
                                  const Variability& var, double v_nom,
                                  const OperatingPoint& op, double temp_c) {
  return spec.leak_w_ref * var.leak_mult * (op.voltage_v / v_nom) *
         std::exp(spec.leak_temp_coeff * (temp_c - 50.0));
}

double PowerModel::total_power_w(const DeviceSpec& spec, const Variability& var,
                                 double v_nom, const OperatingPoint& op,
                                 double activity, double temp_c) {
  return dynamic_power_w(spec, var, op, activity) +
         static_power_w(spec, var, v_nom, op, temp_c);
}

double PowerModel::idle_power_w(const DeviceSpec& spec, const Variability& var,
                                double v_nom, const OperatingPoint& op,
                                double temp_c) {
  return total_power_w(spec, var, v_nom, op, spec.idle_activity, temp_c);
}

double PowerModel::dynamic_power_w(const OperatingPoint& op, double activity) const {
  return dynamic_power_w(spec_, var_, op, activity);
}

double PowerModel::static_power_w(const OperatingPoint& op, double temp_c) const {
  return static_power_w(spec_, var_, v_nom_, op, temp_c);
}

double PowerModel::total_power_w(const OperatingPoint& op, double activity,
                                 double temp_c) const {
  return total_power_w(spec_, var_, v_nom_, op, activity, temp_c);
}

double PowerModel::idle_power_w(const OperatingPoint& op, double temp_c) const {
  return idle_power_w(spec_, var_, v_nom_, op, temp_c);
}

double WorkloadModel::execution_time_s(const OperatingPoint& op) const {
  ANTAREX_REQUIRE(op.freq_ghz > 0.0, "WorkloadModel: zero frequency");
  ANTAREX_REQUIRE(cores_used >= 1, "WorkloadModel: cores_used must be >= 1");
  return cpu_gcycles / (op.freq_ghz * static_cast<double>(cores_used)) +
         mem_seconds;
}

double WorkloadModel::memory_boundedness(const OperatingPoint& op) const {
  const double t = execution_time_s(op);
  return t > 0.0 ? mem_seconds / t : 0.0;
}

double energy_j(const DeviceSpec& spec, const Variability& var, double v_nom,
                const WorkloadModel& w, const OperatingPoint& op, double units,
                double temp_c) {
  ANTAREX_REQUIRE(units >= 0.0, "energy_j: negative work");
  const double t = w.execution_time_s(op) * units;
  // During memory stalls the core switches less; blend activity accordingly.
  const double mem_frac = w.memory_boundedness(op);
  const double eff_activity =
      w.activity * (1.0 - mem_frac) + 0.25 * w.activity * mem_frac;
  return PowerModel::total_power_w(spec, var, v_nom, op, eff_activity, temp_c) *
         t;
}

double energy_j(const PowerModel& pm, const WorkloadModel& w,
                const OperatingPoint& op, double units, double temp_c) {
  return energy_j(pm.spec(), pm.variability(), pm.v_nom(), w, op, units,
                  temp_c);
}

NodeEnergyModel::NodeEnergyModel(PowerModel pm, double base_power_w,
                                 double r_th_c_per_w, double ambient_c)
    : pm_(std::move(pm)), base_w_(base_power_w), r_th_(r_th_c_per_w),
      ambient_c_(ambient_c) {
  ANTAREX_REQUIRE(base_w_ >= 0.0 && r_th_ > 0.0,
                  "NodeEnergyModel: invalid parameters");
}

double NodeEnergyModel::steady_temp_c(const OperatingPoint& op,
                                      double activity) const {
  // Fixed point of T = ambient + R_th * P(T); converges fast because the
  // leakage derivative times R_th is well below 1 for sane parameters.
  double t = ambient_c_ + 20.0;
  for (int i = 0; i < 24; ++i)
    t = ambient_c_ + r_th_ * pm_.total_power_w(op, activity, t);
  return t;
}

double NodeEnergyModel::energy_to_solution_j(const WorkloadModel& w,
                                             const OperatingPoint& op,
                                             double units) const {
  const double mem_frac = w.memory_boundedness(op);
  const double act =
      w.activity * (1.0 - mem_frac) + 0.25 * w.activity * mem_frac;
  const double temp = steady_temp_c(op, act);
  const double t = w.execution_time_s(op) * units;
  return (pm_.total_power_w(op, act, temp) + base_w_) * t;
}

std::size_t NodeEnergyModel::optimal_op_index(const WorkloadModel& w) const {
  const auto& pts = pm_.spec().dvfs.points();
  std::size_t best = 0;
  double best_e = energy_to_solution_j(w, pts[0], 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double e = energy_to_solution_j(w, pts[i], 1.0);
    if (e <= best_e) {
      best_e = e;
      best = i;
    }
  }
  return best;
}

double NodeEnergyModel::savings_vs_highest(const WorkloadModel& w) const {
  const auto& dvfs = pm_.spec().dvfs;
  const double e_default = energy_to_solution_j(w, dvfs.highest(), 1.0);
  const double e_opt =
      energy_to_solution_j(w, dvfs.at(optimal_op_index(w)), 1.0);
  return 1.0 - e_opt / e_default;
}

const OperatingPoint& energy_optimal_op(const PowerModel& pm,
                                        const WorkloadModel& w, double temp_c) {
  const auto& pts = pm.spec().dvfs.points();
  const OperatingPoint* best = &pts.front();
  double best_e = energy_j(pm, w, pts.front(), 1.0, temp_c);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double e = energy_j(pm, w, pts[i], 1.0, temp_c);
    if (e <= best_e) {  // <=: prefer the faster point on ties
      best_e = e;
      best = &pts[i];
    }
  }
  return *best;
}

}  // namespace antarex::power
