#include "power/dvfs.hpp"

namespace antarex::power {

DvfsTable::DvfsTable(std::vector<OperatingPoint> points) : points_(std::move(points)) {
  ANTAREX_REQUIRE(!points_.empty(), "DvfsTable: empty P-state table");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    ANTAREX_REQUIRE(points_[i].freq_ghz > points_[i - 1].freq_ghz,
                    "DvfsTable: P-states must be ascending in frequency");
    ANTAREX_REQUIRE(points_[i].voltage_v >= points_[i - 1].voltage_v,
                    "DvfsTable: voltage must be non-decreasing with frequency");
  }
}

const OperatingPoint& DvfsTable::at(std::size_t i) const {
  ANTAREX_REQUIRE(i < points_.size(), "DvfsTable: P-state index out of range");
  return points_[i];
}

const OperatingPoint& DvfsTable::at_least(double freq_ghz) const {
  ANTAREX_REQUIRE(!points_.empty(), "DvfsTable: empty table");
  for (const auto& op : points_)
    if (op.freq_ghz >= freq_ghz) return op;
  return points_.back();
}

DvfsTable DvfsTable::linear(double f_lo, double f_hi, double v_lo, double v_hi,
                            std::size_t n) {
  ANTAREX_REQUIRE(n >= 2, "DvfsTable::linear: need at least 2 points");
  ANTAREX_REQUIRE(f_hi > f_lo && v_hi >= v_lo, "DvfsTable::linear: bad ranges");
  std::vector<OperatingPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    pts.push_back({f_lo + t * (f_hi - f_lo), v_lo + t * (v_hi - v_lo)});
  }
  return DvfsTable(std::move(pts));
}

const char* device_type_name(DeviceType t) {
  switch (t) {
    case DeviceType::Cpu: return "cpu";
    case DeviceType::Mic: return "mic";
    case DeviceType::Gpu: return "gpu";
  }
  return "?";
}

double DeviceSpec::peak_gflops(const OperatingPoint& op) const {
  return op.freq_ghz * flops_per_cycle_per_core * static_cast<double>(cores);
}

DeviceSpec DeviceSpec::xeon_haswell() {
  DeviceSpec s;
  s.type = DeviceType::Cpu;
  s.name = "xeon-haswell-12c";
  s.cores = 12;
  s.flops_per_cycle_per_core = 16.0;  // 2x AVX2 FMA
  s.c_eff_nf = 32.0;
  s.leak_w_ref = 18.0;
  s.leak_temp_coeff = 0.02;
  s.idle_activity = 0.06;
  s.mem_bw_gbs = 68.0;
  s.dvfs = DvfsTable::linear(1.2, 3.6, 0.75, 1.25, 13);
  return s;
}

DeviceSpec DeviceSpec::xeon_phi() {
  DeviceSpec s;
  s.type = DeviceType::Mic;
  s.name = "xeon-phi-61c";
  s.cores = 61;
  s.flops_per_cycle_per_core = 16.0;  // 512-bit vector FMA
  s.c_eff_nf = 180.0;
  s.leak_w_ref = 40.0;
  s.leak_temp_coeff = 0.02;
  s.idle_activity = 0.08;
  s.mem_bw_gbs = 180.0;
  s.dvfs = DvfsTable::linear(0.8, 1.2, 0.85, 1.00, 5);
  return s;
}

DeviceSpec DeviceSpec::gpgpu() {
  DeviceSpec s;
  s.type = DeviceType::Gpu;
  s.name = "gpgpu-dp";
  s.cores = 2496;                     // DP lanes
  s.flops_per_cycle_per_core = 1.0;   // 1 DP FMA-equivalent flop/cycle/lane
  s.c_eff_nf = 200.0;
  s.leak_w_ref = 45.0;
  s.leak_temp_coeff = 0.02;
  s.idle_activity = 0.05;
  s.mem_bw_gbs = 240.0;
  s.dvfs = DvfsTable::linear(0.56, 0.88, 0.85, 1.00, 5);
  return s;
}

}  // namespace antarex::power
