// Datacenter cooling plant and PUE model.
//
// Reproduces the paper's Sec. V claim that "ambient temperature can
// significantly change the overall cooling efficiency of a supercomputer,
// causing more than 10% PUE loss when transitioning from winter to summer"
// (citing the MS3 scheduler work [23]).
//
// The plant is a chiller whose coefficient of performance (COP) degrades as
// outdoor ambient rises (smaller temperature lift available for free
// cooling), plus a fixed facility overhead (lighting, UPS losses, pumps).
#pragma once

#include "support/common.hpp"

namespace antarex::power {

class CoolingModel {
 public:
  struct Params {
    double cop_ref = 6.0;        ///< chiller COP at ambient_ref
    double ambient_ref_c = 5.0;  ///< reference (winter) outdoor temperature
    double cop_slope = 0.10;     ///< COP lost per degree C above reference
    double cop_min = 1.5;        ///< floor (chiller never better than this)
    double fixed_overhead = 0.06;///< facility overhead as fraction of IT power
  };

  CoolingModel() : CoolingModel(Params{}) {}
  explicit CoolingModel(Params p);

  double cop(double ambient_c) const;
  double cooling_power_w(double it_power_w, double ambient_c) const;

  /// Power Usage Effectiveness: (IT + cooling + overhead) / IT.
  double pue(double it_power_w, double ambient_c) const;

  const Params& params() const { return p_; }

 private:
  Params p_;
};

}  // namespace antarex::power
