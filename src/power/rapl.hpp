// Simulated RAPL energy counters.
//
// Substitution note (DESIGN.md): the original ANTAREX stack reads Intel RAPL
// MSRs; everything above the counter (monitors, autotuner, RTRM) only
// consumes (energy, time) samples. This class reproduces the RAPL interface
// quirks that client code must handle: a 32-bit counter in micro-joule-scale
// units that wraps around, sampled by difference.
#pragma once

#include <string>

#include "support/common.hpp"

namespace antarex::power {

class RaplDomain {
 public:
  explicit RaplDomain(std::string name = "package-0");

  /// Integrate power over an interval (called by the node simulation).
  void accumulate(double power_w, double dt_s);

  /// Raw wrapping counter in micro-joules (32-bit, like MSR_PKG_ENERGY_STATUS
  /// at the default 15.3 uJ unit scaled to 1 uJ for simplicity).
  u32 counter_uj() const;

  /// Wrap-aware difference between two counter reads, in joules.
  static double delta_j(u32 before, u32 after);

  /// Non-wrapping total (ground truth for tests/benches).
  double total_j() const { return total_j_; }

  /// Transient sensor glitch: offsets counter_uj() readings by `joules`
  /// until cleared (0 restores honest readings). Ground truth (total_j) is
  /// untouched — a glitch corrupts what consumers *see*, never the plant's
  /// energy books, so conservation invariants survive injection. Installed by
  /// antarex::fault; injectors must also call
  /// telemetry::mark_samples_poisoned() so measuring consumers can discard.
  void set_reading_offset_j(double joules) { reading_offset_j_ = joules; }
  double reading_offset_j() const { return reading_offset_j_; }

  const std::string& name() const { return name_; }
  void reset();

 private:
  std::string name_;
  double total_j_ = 0.0;
  double reading_offset_j_ = 0.0;
};

/// Convenience sampler: read-before / read-after energy measurement, the
/// idiom every RAPL consumer uses.
class EnergySample {
 public:
  explicit EnergySample(const RaplDomain& domain);
  /// Joules accumulated since construction (wrap-aware).
  double elapsed_j() const;

 private:
  const RaplDomain& domain_;
  u32 start_;
};

}  // namespace antarex::power
