// DVFS operating points and device specifications.
//
// Models the paper's target platforms (Sec. VI): Xeon Haswell CPUs, Xeon Phi
// (MIC) accelerators, and GPGPUs, each with a table of P-states
// (frequency/voltage pairs) the runtime power manager can select — the
// "classical performance/energy control knob" of Sec. V.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::power {

/// One P-state: the knob value the RTRM's DVFS controller selects.
struct OperatingPoint {
  double freq_ghz = 0.0;
  double voltage_v = 0.0;
};

/// Ordered (ascending frequency) table of available P-states.
class DvfsTable {
 public:
  DvfsTable() = default;
  explicit DvfsTable(std::vector<OperatingPoint> points);

  std::size_t size() const { return points_.size(); }
  const OperatingPoint& at(std::size_t i) const;
  const OperatingPoint& lowest() const { return at(0); }
  const OperatingPoint& highest() const { return at(points_.size() - 1); }
  const std::vector<OperatingPoint>& points() const { return points_; }

  /// Closest P-state with frequency >= f (highest if none).
  const OperatingPoint& at_least(double freq_ghz) const;

  /// Linear V/f ladder: n points from (f_lo, v_lo) to (f_hi, v_hi).
  static DvfsTable linear(double f_lo, double f_hi, double v_lo, double v_hi,
                          std::size_t n);

 private:
  std::vector<OperatingPoint> points_;
};

enum class DeviceType { Cpu, Mic, Gpu };

const char* device_type_name(DeviceType t);

/// Static description of one device SKU (nominal, before per-instance
/// variability). The numeric defaults below are calibrated so that the
/// claim-level benches reproduce the paper's motivating figures — they model
/// device *classes*, not any specific part number.
struct DeviceSpec {
  DeviceType type = DeviceType::Cpu;
  std::string name;
  int cores = 1;
  double flops_per_cycle_per_core = 2.0;
  double c_eff_nf = 30.0;        ///< effective switched capacitance [nF]
  double leak_w_ref = 15.0;      ///< leakage power at T_ref = 50C, nominal V
  double leak_temp_coeff = 0.02; ///< exponential leakage growth per degree C
  double idle_activity = 0.05;   ///< dynamic activity factor when idle
  double mem_bw_gbs = 60.0;      ///< sustained memory bandwidth [GB/s]
  DvfsTable dvfs;

  double peak_gflops(const OperatingPoint& op) const;

  /// Nominal SKUs used across examples, tests and benches.
  static DeviceSpec xeon_haswell();  ///< 12-core host CPU socket
  static DeviceSpec xeon_phi();      ///< MIC accelerator (Salomon-style)
  static DeviceSpec gpgpu();         ///< discrete GPU accelerator
};

}  // namespace antarex::power
