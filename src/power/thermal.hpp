// First-order RC thermal model of a device + heatsink.
//
// The RTRM's "distributed optimal thermal management controller" (Sec. V)
// needs a plant to control: temperature rises toward ambient + P*R_th with
// time constant tau, and leakage feeds back through PowerModel.
#pragma once

#include "support/common.hpp"

namespace antarex::power {

class ThermalModel {
 public:
  /// Defaults shared with the SoA cluster engine, which stores temperatures
  /// in flat arrays instead of owning ThermalModel instances.
  static constexpr double kDefaultRth = 0.25;
  static constexpr double kDefaultTau = 12.0;
  static constexpr double kDefaultInitialC = 40.0;

  /// r_th: steady-state C/W above ambient; tau: thermal time constant.
  ThermalModel(double r_th_c_per_w = kDefaultRth, double tau_s = kDefaultTau,
               double initial_c = kDefaultInitialC);

  /// Advance by dt with the given dissipated power and ambient temperature.
  void step(double power_w, double ambient_c, double dt_s);

  /// Stateless core of step(): the temperature after one dt. Shared with the
  /// SoA cluster engine so both paths run identical machine code; the
  /// instance method delegates here.
  static double stepped_c(double temp_c, double power_w, double ambient_c,
                          double dt_s, double r_th_c_per_w = kDefaultRth,
                          double tau_s = kDefaultTau);

  double temperature_c() const { return temp_c_; }
  void reset(double temp_c) { temp_c_ = temp_c; }

  /// Temperature the model converges to under constant conditions.
  double steady_state_c(double power_w, double ambient_c) const;

 private:
  double r_th_;
  double tau_s_;
  double temp_c_;
};

}  // namespace antarex::power
