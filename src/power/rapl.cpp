#include "power/rapl.hpp"

#include <cmath>

#include "telemetry/telemetry.hpp"

namespace antarex::power {

RaplDomain::RaplDomain(std::string name) : name_(std::move(name)) {}

void RaplDomain::accumulate(double power_w, double dt_s) {
  ANTAREX_REQUIRE(power_w >= 0.0, "RaplDomain: negative power");
  ANTAREX_REQUIRE(dt_s >= 0.0, "RaplDomain: negative interval");
  const double joules = power_w * dt_s;
  total_j_ += joules;
  // Mirror the RAPL sampling cadence: one counter update per integration
  // step, energy accumulated in the MSR's micro-joule scale.
  TELEMETRY_COUNT("power.rapl_samples", 1);
  TELEMETRY_COUNT("power.energy_uj", static_cast<u64>(joules * 1e6));
}

u32 RaplDomain::counter_uj() const {
  const double uj = (total_j_ + reading_offset_j_) * 1e6;
  // Wraps every 2^32 uJ (~4295 J), as the real 32-bit MSR does. A negative
  // glitched reading folds into the wrap, exactly as MSR arithmetic would.
  const double wrapped = std::fmod(std::fmod(uj, 4294967296.0) + 4294967296.0,
                                   4294967296.0);
  return static_cast<u32>(wrapped);
}

double RaplDomain::delta_j(u32 before, u32 after) {
  const u32 delta = after - before;  // unsigned arithmetic handles the wrap
  return static_cast<double>(delta) * 1e-6;
}

void RaplDomain::reset() {
  total_j_ = 0.0;
  reading_offset_j_ = 0.0;
}

EnergySample::EnergySample(const RaplDomain& domain)
    : domain_(domain), start_(domain.counter_uj()) {}

double EnergySample::elapsed_j() const {
  return RaplDomain::delta_j(start_, domain_.counter_uj());
}

}  // namespace antarex::power
