#include "rtrm/cluster.hpp"

#include <algorithm>

#include "exec/pool.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      dispatcher_(config.placement, config.backfill),
      thermal_guard_(config.t_crit_c) {
  ANTAREX_REQUIRE(config_.control_period_s > 0.0,
                  "Cluster: non-positive control period");
  if (config_.facility_cap_w)
    power_manager_.emplace(*config_.facility_cap_w);
}

Node& Cluster::add_node(Node node) {
  nodes_.push_back(std::move(node));
  return nodes_.back();
}

void Cluster::fail_node(std::size_t i) {
  ANTAREX_REQUIRE(i < nodes_.size(), "Cluster: node index out of range");
  if (nodes_[i].failed()) return;
  dispatcher_.on_node_failed(nodes_[i].fail(), clock_.now());
  ++down_count_;
  TELEMETRY_COUNT("rtrm.node_crashes", 1);
  TELEMETRY_GAUGE("rtrm.nodes_down", static_cast<double>(nodes_down()));
}

void Cluster::repair_node(std::size_t i) {
  ANTAREX_REQUIRE(i < nodes_.size(), "Cluster: node index out of range");
  if (!nodes_[i].failed()) return;
  nodes_[i].repair();
  --down_count_;
  TELEMETRY_COUNT("rtrm.node_repairs", 1);
  TELEMETRY_GAUGE("rtrm.nodes_down", static_cast<double>(nodes_down()));
}

void Cluster::control_step() {
  TELEMETRY_SPAN("rtrm.control_step");
  for (auto& node : nodes_) {
    if (node.failed()) continue;  // no governor/guard action on a dead node
    const double base_share =
        node.device_count() > 0
            ? node.base_power_w() / static_cast<double>(node.device_count())
            : 0.0;
    for (auto& d : node.devices()) {
      apply_governor(d, config_.governor, base_share);
      if (config_.thermal_guard) thermal_guard_.step(d);
    }
  }
  if (power_manager_) power_manager_->step(nodes_);
  if (op_step_down_ > 0) {
    for (auto& node : nodes_) {
      if (node.failed()) continue;
      for (auto& d : node.devices()) {
        const std::size_t ceiling =
            d.num_ops() > op_step_down_ ? d.num_ops() - 1 - op_step_down_ : 0;
        if (d.op_index() > ceiling) d.set_op_index(ceiling);
      }
    }
  }
  // Last word: the govern layer's cap clamp overrides every proposal above.
  if (control_hook_) control_hook_(nodes_, clock_.now());
}

void Cluster::run_for(double duration_s, double dt_s) {
  ANTAREX_REQUIRE(duration_s >= 0.0 && dt_s > 0.0, "Cluster: bad run parameters");
  const double end = clock_.now() + duration_s;
  std::vector<std::vector<u64>> finished(nodes_.size());
  std::vector<double>& node_power = last_node_power_w_;
  node_power.resize(nodes_.size(), 0.0);
  while (clock_.now() < end - 1e-12) {
    const double step = std::min(dt_s, end - clock_.now());

    dispatcher_.place(nodes_, clock_.now());
    if (clock_.now() + 1e-12 >= next_control_s_) {
      control_step();
      next_control_s_ = clock_.now() + config_.control_period_s;
    }

    // Node state is disjoint, so nodes step independently — in parallel when
    // a pool is attached. Completions and power are committed serially in
    // node-index order either way, keeping the run bit-identical across pool
    // sizes (and to the serial path).
    finished.resize(nodes_.size());
    node_power.resize(nodes_.size());
    const auto step_node = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        finished[i] = nodes_[i].step(step, config_.ambient_c);
        node_power[i] = nodes_[i].power_w();
      }
    };
    if (pool_ && nodes_.size() > 1) {
      pool_->parallel_for(nodes_.size(), 1, step_node);
    } else {
      step_node(0, nodes_.size());
    }
    double it_power = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      for (u64 id : finished[i]) dispatcher_.on_finished(id, clock_.now() + step);
      it_power += node_power[i];
    }

    clock_.advance(step);

    TELEMETRY_GAUGE("rtrm.it_power_w", it_power);
    // The signal the govern power-cap policies watch (same value, stable
    // name independent of the internal it_power naming).
    TELEMETRY_GAUGE("rtrm.power_draw_w", it_power);
    if (trace_node_power_ && telemetry::enabled()) {
      for (std::size_t i = 0; i < nodes_.size(); ++i)
        telemetry::Registry::global()
            .series("rtrm.node_power_w." + nodes_[i].name())
            .push(node_power[i]);
    }
    telemetry_.time_s = clock_.now();
    telemetry_.it_energy_j += it_power * step;
    telemetry_.facility_energy_j +=
        it_power * step * cooling_.pue(it_power, config_.ambient_c);
    telemetry_.peak_it_power_w = std::max(telemetry_.peak_it_power_w, it_power);
    double step_max_c = config_.ambient_c;
    for (const auto& node : nodes_)
      for (const auto& d : node.devices())
        step_max_c = std::max(step_max_c, d.temperature_c());
    telemetry_.max_temperature_c =
        std::max(telemetry_.max_temperature_c, step_max_c);
    TELEMETRY_GAUGE("rtrm.max_temp_c", telemetry_.max_temperature_c);
    // Instantaneous headroom to the critical temperature — the signal the
    // obs thermal.throttle_alert policy watches.
    TELEMETRY_GAUGE("rtrm.thermal_headroom_c", config_.t_crit_c - step_max_c);
    telemetry_.jobs_completed = dispatcher_.completed();
    telemetry_.jobs_failed = dispatcher_.failed();
    for (auto& obs : step_observers_) obs(clock_.now(), it_power, step);
  }
}

bool Cluster::run_until_idle(double max_s, double dt_s) {
  const double deadline = clock_.now() + max_s;
  while (clock_.now() < deadline) {
    run_for(std::min(16.0 * dt_s, deadline - clock_.now()), dt_s);
    bool any_busy = dispatcher_.queued() > 0 || dispatcher_.running() > 0;
    if (!any_busy) return true;
  }
  return dispatcher_.queued() == 0 && dispatcher_.running() == 0;
}

double Cluster::it_power_w() const {
  double p = 0.0;
  for (const auto& node : nodes_) p += node.power_w();
  return p;
}

double Cluster::pue() const { return cooling_.pue(it_power_w(), config_.ambient_c); }

}  // namespace antarex::rtrm
