#include "rtrm/cluster.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      dispatcher_(config.placement, config.backfill),
      thermal_guard_(config.t_crit_c) {
  ANTAREX_REQUIRE(config_.control_period_s > 0.0,
                  "Cluster: non-positive control period");
  if (config_.facility_cap_w)
    power_manager_.emplace(*config_.facility_cap_w);
}

Node& Cluster::add_node(Node node) {
  nodes_.push_back(std::move(node));
  return nodes_.back();
}

void Cluster::control_step() {
  TELEMETRY_SPAN("rtrm.control_step");
  for (auto& node : nodes_) {
    const double base_share =
        node.device_count() > 0
            ? node.base_power_w() / static_cast<double>(node.device_count())
            : 0.0;
    for (auto& d : node.devices()) {
      apply_governor(d, config_.governor, base_share);
      if (config_.thermal_guard) thermal_guard_.step(d);
    }
  }
  if (power_manager_) power_manager_->step(nodes_);
}

void Cluster::run_for(double duration_s, double dt_s) {
  ANTAREX_REQUIRE(duration_s >= 0.0 && dt_s > 0.0, "Cluster: bad run parameters");
  const double end = clock_.now() + duration_s;
  while (clock_.now() < end - 1e-12) {
    const double step = std::min(dt_s, end - clock_.now());

    dispatcher_.place(nodes_, clock_.now());
    if (clock_.now() + 1e-12 >= next_control_s_) {
      control_step();
      next_control_s_ = clock_.now() + config_.control_period_s;
    }

    double it_power = 0.0;
    for (auto& node : nodes_) {
      for (u64 id : node.step(step, config_.ambient_c))
        dispatcher_.on_finished(id, clock_.now() + step);
      it_power += node.power_w();
    }

    clock_.advance(step);

    TELEMETRY_GAUGE("rtrm.it_power_w", it_power);
    telemetry_.time_s = clock_.now();
    telemetry_.it_energy_j += it_power * step;
    telemetry_.facility_energy_j +=
        it_power * step * cooling_.pue(it_power, config_.ambient_c);
    telemetry_.peak_it_power_w = std::max(telemetry_.peak_it_power_w, it_power);
    double step_max_c = config_.ambient_c;
    for (const auto& node : nodes_)
      for (const auto& d : node.devices())
        step_max_c = std::max(step_max_c, d.temperature_c());
    telemetry_.max_temperature_c =
        std::max(telemetry_.max_temperature_c, step_max_c);
    TELEMETRY_GAUGE("rtrm.max_temp_c", telemetry_.max_temperature_c);
    // Instantaneous headroom to the critical temperature — the signal the
    // obs thermal.throttle_alert policy watches.
    TELEMETRY_GAUGE("rtrm.thermal_headroom_c", config_.t_crit_c - step_max_c);
    telemetry_.jobs_completed = dispatcher_.completed();
    if (step_observer_) step_observer_(clock_.now(), it_power, step);
  }
}

bool Cluster::run_until_idle(double max_s, double dt_s) {
  const double deadline = clock_.now() + max_s;
  while (clock_.now() < deadline) {
    run_for(std::min(16.0 * dt_s, deadline - clock_.now()), dt_s);
    bool any_busy = dispatcher_.queued() > 0 || dispatcher_.running() > 0;
    if (!any_busy) return true;
  }
  return dispatcher_.queued() == 0 && dispatcher_.running() == 0;
}

double Cluster::it_power_w() const {
  double p = 0.0;
  for (const auto& node : nodes_) p += node.power_w();
  return p;
}

double Cluster::pue() const { return cooling_.pue(it_power_w(), config_.ambient_c); }

}  // namespace antarex::rtrm
