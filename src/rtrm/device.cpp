#include "rtrm/device.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

Device::Device(std::string instance_name, power::DeviceSpec spec,
               power::Variability var)
    : name_(std::move(instance_name)),
      model_(std::move(spec), var),
      rapl_(name_) {
  // Boot at the highest P-state, as firmware typically does.
  op_index_ = model_.spec().dvfs.size() - 1;
}

void Device::set_op_index(std::size_t i) {
  ANTAREX_REQUIRE(i < spec().dvfs.size(), "Device: P-state index out of range");
  if (i != op_index_) TELEMETRY_COUNT("rtrm.dvfs_transitions", 1);
  op_index_ = i;
}

void Device::assign(power::WorkloadModel w, double units, u64 job_id) {
  ANTAREX_REQUIRE(!busy(), "Device: already executing a job");
  ANTAREX_REQUIRE(units > 0.0, "Device: job with no work");
  workload_ = w;
  units_remaining_ = units;
  job_id_ = job_id;
}

std::optional<u64> Device::running_job() const {
  if (!busy()) return std::nullopt;
  return job_id_;
}

void Device::force_throttle(double duration_s) {
  ANTAREX_REQUIRE(duration_s >= 0.0, "Device: negative throttle duration");
  throttle_hold_s_ = std::max(throttle_hold_s_, duration_s);
  TELEMETRY_COUNT("rtrm.forced_throttles", 1);
}

void Device::set_slowdown(double factor) {
  ANTAREX_REQUIRE(factor >= 1.0, "Device: slowdown factor must be >= 1");
  slowdown_ = factor;
}

std::optional<std::pair<u64, double>> Device::interrupt() {
  if (!busy()) return std::nullopt;
  const std::pair<u64, double> lost{job_id_, units_remaining_};
  units_remaining_ = 0.0;
  ++interrupted_;
  TELEMETRY_COUNT("rtrm.jobs.interrupted", 1);
  return lost;
}

void Device::step_offline(double dt_s, double ambient_c) {
  ANTAREX_REQUIRE(dt_s > 0.0, "Device: non-positive time step");
  ANTAREX_CHECK(!busy(), "Device: offline step with a job still assigned");
  throttle_hold_s_ = std::max(0.0, throttle_hold_s_ - dt_s);
  rapl_.accumulate(0.0, dt_s);
  thermal_.step(0.0, ambient_c, dt_s);
}

std::optional<u64> Device::step(double dt_s, double ambient_c) {
  ANTAREX_REQUIRE(dt_s > 0.0, "Device: non-positive time step");
  std::optional<u64> finished;

  double active_s = 0.0;
  if (busy()) {
    const double unit_time = workload_.execution_time_s(op()) * slowdown_;
    const double progress = dt_s / unit_time;
    if (progress >= units_remaining_) {
      active_s = units_remaining_ * unit_time;
      units_remaining_ = 0.0;
      finished = job_id_;
      ++completed_;
    } else {
      units_remaining_ -= progress;
      active_s = dt_s;
    }
  }
  busy_seconds_ += active_s;

  // Power during the active and idle fractions of the step.
  const double temp = thermal_.temperature_c();
  double energy = 0.0;
  if (active_s > 0.0) {
    const double mem_frac = workload_.memory_boundedness(op());
    const double act = workload_.activity * (1.0 - mem_frac) +
                       0.25 * workload_.activity * mem_frac;
    energy += model_.total_power_w(op(), act, temp) * active_s;
  }
  const double idle_s = dt_s - active_s;
  if (idle_s > 0.0) energy += model_.idle_power_w(op(), temp) * idle_s;

  rapl_.accumulate(energy / dt_s, dt_s);
  thermal_.step(energy / dt_s, ambient_c, dt_s);
  throttle_hold_s_ = std::max(0.0, throttle_hold_s_ - dt_s);
  return finished;
}

double Device::power_w(double) const {
  const double temp = thermal_.temperature_c();
  if (!busy()) return model_.idle_power_w(op(), temp);
  const double mem_frac = workload_.memory_boundedness(op());
  const double act = workload_.activity * (1.0 - mem_frac) +
                     0.25 * workload_.activity * mem_frac;
  return model_.total_power_w(op(), act, temp);
}

}  // namespace antarex::rtrm
