#include "rtrm/sharded_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "power/thermal.hpp"
#include "support/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

namespace {
constexpr double kNoParkedTemp = std::numeric_limits<double>::lowest();
}

// ---------------------------------------------------------------------------
// ShardedDispatcher
// ---------------------------------------------------------------------------

void ShardedDispatcher::submit(Job job) {
  ANTAREX_REQUIRE(!job.profiles.empty(),
                  "Dispatcher: job with no device profiles");
  job.state = JobState::Queued;
  min_not_before_ = std::min(min_not_before_, job.not_before_s);
  queue_.push_back(std::move(job));
  TELEMETRY_COUNT("rtrm.jobs.submitted", 1);
}

u32 ShardedDispatcher::device_of(u64 job_id) const {
  const auto it = device_by_job_.find(job_id);
  return it == device_by_job_.end() ? kInvalidDevice : it->second;
}

u32 ShardedDispatcher::choose_device(const Job& job) const {
  const ShardedCluster& c = *c_;
  // Merge-iterate the compatible types' free sets in ascending global device
  // index — the exact visit order of the legacy all-nodes scan.
  struct Cursor {
    std::set<u32>::const_iterator it, end;
    const power::WorkloadModel* w;
  };
  std::array<Cursor, 3> cur;
  std::size_t n_cur = 0;
  for (const auto& [type, w] : job.profiles) {
    const auto& s = c.free_by_type_[static_cast<std::size_t>(type)];
    if (!s.empty()) cur[n_cur++] = {s.begin(), s.end(), &w};
  }
  u32 best = kInvalidDevice;
  double best_score = 0.0;
  while (true) {
    std::size_t pick = n_cur;
    for (std::size_t k = 0; k < n_cur; ++k) {
      if (cur[k].it == cur[k].end) continue;
      if (pick == n_cur || *cur[k].it < *cur[pick].it) pick = k;
    }
    if (pick == n_cur) break;
    const u32 d = *cur[pick].it;
    ++cur[pick].it;
    if (policy_ == PlacementPolicy::FirstFit) return d;
    const power::WorkloadModel& w = *cur[pick].w;
    double score = 0.0;
    if (policy_ == PlacementPolicy::FastestFirst) {
      score = w.execution_time_s(c.eff_op(d)) * c.dev_slowdown_[d] *
              job.units_remaining();
    } else {  // EnergyAware
      score = power::energy_j(c.specs_[c.dev_spec_[d]], c.dev_var_[d],
                              c.spec_vnom_[c.dev_spec_[d]], w, c.eff_op(d),
                              job.units_remaining(), c.dev_temp_[d]);
    }
    if (best == kInvalidDevice || score < best_score) {
      best = d;
      best_score = score;
    }
  }
  return best;
}

void ShardedDispatcher::start(Job job, u32 device, double now_s) {
  ShardedCluster& c = *c_;
  const u32 node = c.dev_node_[device];
  job.state = JobState::Running;
  job.start_time_s = now_s;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "n%u.d%u", node,
                device - c.node_dev_begin_[node]);
  job.device_name = buf;
  const auto type = c.specs_[c.dev_spec_[device]].type;
  // Resume from the last checkpoint: only the unfinished units are assigned.
  c.assign_device(device, job.profile(type), job.units_remaining(), job.id);
  c.free_erase(device);
  emit("dispatch", job.id, now_s);
  device_by_job_[job.id] = device;
  running_pos_[job.id] = running_.size();
  running_.push_back(std::move(job));
  TELEMETRY_COUNT("rtrm.jobs.dispatched", 1);
}

void ShardedDispatcher::erase_running(std::size_t pos) {
  running_pos_.erase(running_[pos].id);
  if (pos + 1 != running_.size()) {
    running_[pos] = std::move(running_.back());
    running_pos_[running_[pos].id] = pos;
  }
  running_.pop_back();
}

void ShardedDispatcher::place(double now_s) {
  TELEMETRY_SPAN("rtrm.dispatch");
  // Fast path: every queued job is still in crash backoff (min_not_before_
  // is a stale-low lower bound, so a positive answer here is always sound).
  if (!queue_.empty() && min_not_before_ > now_s) {
    TELEMETRY_GAUGE("rtrm.queue_depth", static_cast<double>(queue_.size()));
    return;
  }
  auto first_eligible = [&]() {
    return std::find_if(queue_.begin(), queue_.end(), [&](const Job& j) {
      return j.not_before_s <= now_s;
    });
  };
  while (true) {
    auto head_it = first_eligible();
    if (head_it == queue_.end()) {
      // No job is eligible: tighten the bound so the fast path holds until
      // the earliest backoff expires.
      double m = std::numeric_limits<double>::infinity();
      for (const Job& j : queue_) m = std::min(m, j.not_before_s);
      min_not_before_ = m;
      break;
    }
    Job& head = *head_it;
    const u32 d = choose_device(head);
    if (d != kInvalidDevice) {
      start(std::move(head), d, now_s);
      queue_.erase(head_it);
      continue;
    }
    if (!backfill_) break;  // plain FCFS: head blocks

    // EASY backfill: reserve for the head the busy compatible device with
    // the shortest predicted remaining time (all compatible devices on alive
    // nodes are busy here, or choose_device would have succeeded).
    const ShardedCluster& c = *c_;
    u32 reserved = kInvalidDevice;
    double reservation_s = 0.0;
    {
      struct Cursor {
        std::vector<u32>::const_iterator it, end;
      };
      std::array<Cursor, 3> cur;
      std::size_t n_cur = 0;
      for (const auto& [type, w] : head.profiles) {
        (void)w;
        const auto& v = c.devices_of_type_[static_cast<std::size_t>(type)];
        if (!v.empty()) cur[n_cur++] = {v.begin(), v.end()};
      }
      while (true) {
        std::size_t pick = n_cur;
        for (std::size_t k = 0; k < n_cur; ++k) {
          if (cur[k].it == cur[k].end) continue;
          if (pick == n_cur || *cur[k].it < *cur[pick].it) pick = k;
        }
        if (pick == n_cur) break;
        const u32 dev = *cur[pick].it;
        ++cur[pick].it;
        if (c.node_failed_[c.dev_node_[dev]]) continue;
        double rem = 0.0;
        if (c.dev_units_[dev] > 0.0)
          rem = c.dev_units_[dev] *
                c.dev_wl_[dev].execution_time_s(c.eff_op(dev)) *
                c.dev_slowdown_[dev];
        if (reserved == kInvalidDevice || rem < reservation_s) {
          reserved = dev;
          reservation_s = rem;
        }
      }
    }
    if (reserved == kInvalidDevice) break;  // no compatible device exists

    bool placed_any = false;
    for (auto it = std::next(head_it); it != queue_.end(); ++it) {
      if (it->not_before_s > now_s) continue;  // backoff: not eligible yet
      const u32 fit = choose_device(*it);
      if (fit == kInvalidDevice || fit == reserved) continue;
      start(std::move(*it), fit, now_s);
      queue_.erase(it);
      ++backfilled_;
      TELEMETRY_COUNT("rtrm.jobs.backfilled", 1);
      placed_any = true;
      break;  // re-evaluate from the head after each placement
    }
    if (!placed_any) break;
  }
  TELEMETRY_GAUGE("rtrm.queue_depth", static_cast<double>(queue_.size()));
}

void ShardedDispatcher::on_finished(u64 job_id, double now_s) {
  const auto it = running_pos_.find(job_id);
  ANTAREX_REQUIRE(it != running_pos_.end(),
                  "Dispatcher: completion for a job that is not running");
  const std::size_t pos = it->second;
  Job& job = running_[pos];
  job.state = JobState::Done;
  job.finish_time_s = now_s;
  job.units_done = job.units;
  TELEMETRY_COUNT("rtrm.jobs.completed", 1);
  emit("finish", job_id, now_s);
  device_by_job_.erase(job_id);
  done_.push_back(std::move(job));
  erase_running(pos);
}

void ShardedDispatcher::on_node_failed(
    const std::vector<std::pair<u64, double>>& interrupted, double now_s) {
  for (const auto& [job_id, units_unfinished] : interrupted) {
    const auto it = running_pos_.find(job_id);
    ANTAREX_REQUIRE(it != running_pos_.end(),
                    "Dispatcher: crash report for a job that is not running");
    const std::size_t pos = it->second;
    Job job = std::move(running_[pos]);
    erase_running(pos);
    device_by_job_.erase(job_id);

    // Roll progress back to the last durable checkpoint.
    const double assigned = job.units_remaining();
    const double progressed = std::max(0.0, assigned - units_unfinished);
    if (job.checkpoint_units > 0.0)
      job.units_done +=
          std::floor(progressed / job.checkpoint_units) * job.checkpoint_units;

    ++job.attempts;
    if (job.attempts > job.max_attempts) {
      job.state = JobState::Failed;
      job.finish_time_s = now_s;
      TELEMETRY_COUNT("rtrm.jobs.failed", 1);
      emit("fail", job_id, now_s);
      failed_.push_back(std::move(job));
      continue;
    }
    job.state = JobState::Queued;
    job.device_name.clear();
    job.not_before_s =
        now_s + backoff_base_s_ * std::ldexp(1.0, job.attempts - 1);
    min_not_before_ = std::min(min_not_before_, job.not_before_s);
    ++requeued_;
    TELEMETRY_COUNT("rtrm.jobs.requeued", 1);
    emit("requeue", job_id, now_s);
    queue_.push_back(std::move(job));
  }
}

// ---------------------------------------------------------------------------
// ShardedCluster: topology
// ---------------------------------------------------------------------------

ShardedCluster::ShardedCluster(ShardedClusterConfig config) : config_(config) {
  ANTAREX_REQUIRE(config_.base.control_period_s > 0.0,
                  "ShardedCluster: non-positive control period");
  ANTAREX_REQUIRE(config_.shards > 0, "ShardedCluster: zero shards");
  dispatcher_.c_ = this;
  dispatcher_.policy_ = config_.base.placement;
  dispatcher_.backfill_ = config_.base.backfill;
}

u32 ShardedCluster::add_spec(power::DeviceSpec spec) {
  ANTAREX_REQUIRE(!finalized_, "ShardedCluster: topology frozen after run");
  ANTAREX_REQUIRE(spec.dvfs.size() > 0, "ShardedCluster: spec has no P-states");
  spec_vnom_.push_back(spec.dvfs.highest().voltage_v);
  specs_.push_back(std::move(spec));
  return static_cast<u32>(specs_.size() - 1);
}

std::size_t ShardedCluster::add_node(
    double base_power_w,
    const std::vector<std::pair<u32, power::Variability>>& devices) {
  ANTAREX_REQUIRE(!finalized_, "ShardedCluster: topology frozen after run");
  ANTAREX_REQUIRE(base_power_w >= 0.0, "ShardedCluster: negative base power");
  const std::size_t node = node_count();
  node_base_w_.push_back(base_power_w);
  node_dev_begin_.push_back(static_cast<u32>(device_count()));
  node_dev_count_.push_back(static_cast<u32>(devices.size()));
  node_failed_.push_back(0);
  node_crashes_.push_back(0);
  node_downtime_s_.push_back(0.0);
  node_energy_j_.push_back(0.0);
  node_power_.push_back(0.0);
  node_budget_w_.push_back(1.0);
  node_parked_.push_back(0);
  node_quiet_.push_back(0);
  node_upto_.push_back(0);
  node_shard_.push_back(0);
  for (const auto& [sid, var] : devices) {
    ANTAREX_REQUIRE(sid < specs_.size(), "ShardedCluster: unknown spec id");
    const std::size_t num_ops = specs_[sid].dvfs.size();
    dev_spec_.push_back(sid);
    dev_var_.push_back(var);
    dev_node_.push_back(static_cast<u32>(node));
    dev_op_.push_back(static_cast<u32>(num_ops - 1));  // boot at the top
    dev_temp_.push_back(power::ThermalModel::kDefaultInitialC);
    dev_energy_j_.push_back(0.0);
    dev_offset_j_.push_back(0.0);
    dev_units_.push_back(0.0);
    dev_job_.push_back(0);
    dev_wl_.push_back(power::WorkloadModel{});
    dev_busy_s_.push_back(0.0);
    dev_done_.push_back(0);
    dev_interrupted_.push_back(0);
    dev_throttle_s_.push_back(0.0);
    dev_slowdown_.push_back(1.0);
    dev_guard_ceil_.push_back(static_cast<u32>(num_ops - 1));
    dev_pm_ceil_.push_back(static_cast<u32>(num_ops - 1));
    dev_power_.push_back(0.0);
    dev_parked_.push_back(0);
    dev_upto_.push_back(0);
  }
  return node;
}

void ShardedCluster::finalize() {
  if (finalized_) return;
  finalized_ = true;
  const std::size_t n = node_count();
  std::size_t s_count = std::min(config_.shards, std::max<std::size_t>(n, 1));
  if (s_count == 0) s_count = 1;
  config_.shards = s_count;
  shards_.resize(s_count);
  const std::size_t per = n == 0 ? 1 : (n + s_count - 1) / s_count;
  for (std::size_t s = 0; s < s_count; ++s) {
    Shard& sh = shards_[s];
    sh.begin_node = static_cast<u32>(std::min(n, s * per));
    sh.end_node = static_cast<u32>(std::min(n, (s + 1) * per));
    sh.parked_max_c = kNoParkedTemp;
    sh.step_max_c = kNoParkedTemp;
    sh.active.reserve(sh.end_node - sh.begin_node);
    for (u32 i = sh.begin_node; i < sh.end_node; ++i) {
      sh.active.push_back(i);
      node_shard_[i] = static_cast<u32>(s);
    }
  }
  for (u32 d = 0; d < device_count(); ++d) {
    const std::size_t t = static_cast<std::size_t>(specs_[dev_spec_[d]].type);
    devices_of_type_[t].push_back(d);
    free_by_type_[t].insert(free_by_type_[t].end(), d);
  }
}

std::pair<std::size_t, std::size_t> ShardedCluster::shard_node_range(
    std::size_t s) const {
  ANTAREX_REQUIRE(s < shards_.size(), "ShardedCluster: shard out of range");
  return {shards_[s].begin_node, shards_[s].end_node};
}

void ShardedCluster::free_insert(u32 d) {
  free_by_type_[static_cast<std::size_t>(specs_[dev_spec_[d]].type)].insert(d);
}

void ShardedCluster::free_erase(u32 d) {
  free_by_type_[static_cast<std::size_t>(specs_[dev_spec_[d]].type)].erase(d);
}

// ---------------------------------------------------------------------------
// Power evaluation (shared static helpers => bit-identical to the legacy path)
// ---------------------------------------------------------------------------

double ShardedCluster::fresh_device_power_w(u32 d) const {
  const power::DeviceSpec& spec = specs_[dev_spec_[d]];
  const double v_nom = spec_vnom_[dev_spec_[d]];
  const power::OperatingPoint& op = eff_op(d);
  const double temp = dev_temp_[d];
  if (!(dev_units_[d] > 0.0))
    return power::PowerModel::idle_power_w(spec, dev_var_[d], v_nom, op, temp);
  const power::WorkloadModel& w = dev_wl_[d];
  const double mem_frac = w.memory_boundedness(op);
  const double act =
      w.activity * (1.0 - mem_frac) + 0.25 * w.activity * mem_frac;
  return power::PowerModel::total_power_w(spec, dev_var_[d], v_nom, op, act,
                                          temp);
}

double ShardedCluster::fresh_node_power_w(std::size_t node) const {
  if (node_failed_[node]) return 0.0;
  double p = node_base_w_[node];
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) p += fresh_device_power_w(d);
  return p;
}

double ShardedCluster::node_floor_w(std::size_t node) const {
  double f = node_base_w_[node];
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) {
    const power::DeviceSpec& spec = specs_[dev_spec_[d]];
    f += power::PowerModel::idle_power_w(spec, dev_var_[d],
                                         spec_vnom_[dev_spec_[d]],
                                         spec.dvfs.lowest(), dev_temp_[d]);
  }
  return f;
}

// ---------------------------------------------------------------------------
// Parking / catch-up
// ---------------------------------------------------------------------------

void ShardedCluster::catch_up_device(u32 d) {
  u64 k = steps_done_ - dev_upto_[d];
  if (k == 0) return;
  dev_upto_[d] = steps_done_;
  // Offline parked devices accumulate exact zeros (rapl.accumulate(0, dt)).
  if (node_failed_[dev_node_[d]]) return;
  // One skipped idle step added (energy/dt)*dt with energy = idle_power*dt;
  // the parked temperature (and hence idle power) was constant, so the
  // addend is the same double every step — replay the additions verbatim.
  const double e = dev_power_[d] * sync_dt_;
  const double add = (e / sync_dt_) * sync_dt_;
  if (add == 0.0) return;
  for (; k > 0; --k) dev_energy_j_[d] += add;
}

void ShardedCluster::catch_up_node(std::size_t node) {
  u64 k = steps_done_ - node_upto_[node];
  if (k == 0) return;
  node_upto_[node] = steps_done_;
  if (node_failed_[node]) {
    for (; k > 0; --k) node_downtime_s_[node] += sync_dt_;
    return;  // node rapl.accumulate(0, dt): exact no-op
  }
  const double add = node_power_[node] * sync_dt_;
  if (add == 0.0) return;
  for (; k > 0; --k) node_energy_j_[node] += add;
}

void ShardedCluster::touch_device(u32 d) {
  const std::size_t node = dev_node_[d];
  catch_up_node(node);
  catch_up_device(d);
  node_quiet_[node] = 0;
  dev_parked_[d] = 0;
  if (node_parked_[node]) {
    node_parked_[node] = 0;
    Shard& sh = shards_[node_shard_[node]];
    const u32 ni = static_cast<u32>(node);
    sh.active.insert(std::lower_bound(sh.active.begin(), sh.active.end(), ni),
                     ni);
  }
}

void ShardedCluster::touch_node(std::size_t node) {
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) touch_device(d);
  catch_up_node(node);
  node_quiet_[node] = 0;
  if (node_parked_[node]) {
    node_parked_[node] = 0;
    Shard& sh = shards_[node_shard_[node]];
    const u32 ni = static_cast<u32>(node);
    sh.active.insert(std::lower_bound(sh.active.begin(), sh.active.end(), ni),
                     ni);
  }
}

void ShardedCluster::global_sync() {
  for (std::size_t i = 0; i < node_count(); ++i) catch_up_node(i);
  for (u32 d = 0; d < device_count(); ++d) catch_up_device(d);
}

void ShardedCluster::unpark_all() {
  global_sync();
  std::fill(dev_parked_.begin(), dev_parked_.end(), u8{0});
  std::fill(node_parked_.begin(), node_parked_.end(), u8{0});
  std::fill(node_quiet_.begin(), node_quiet_.end(), u8{0});
  for (Shard& sh : shards_) {
    sh.active.clear();
    for (u32 i = sh.begin_node; i < sh.end_node; ++i) sh.active.push_back(i);
    // parked_max_c stays: it only feeds the *monotone* max-temperature
    // telemetry, where a past real temperature is always sound.
  }
}

void ShardedCluster::set_ambient_c(double c) {
  if (c == config_.base.ambient_c) return;
  config_.base.ambient_c = c;
  if (finalized_) unpark_all();  // every parked thermal fixed point is stale
}

void ShardedCluster::set_governor(GovernorPolicy g) {
  if (g == config_.base.governor) return;
  config_.base.governor = g;
  std::fill(node_quiet_.begin(), node_quiet_.end(), u8{0});
}

void ShardedCluster::set_op_step_down(std::size_t steps) {
  op_step_down_ = steps;
  std::fill(node_quiet_.begin(), node_quiet_.end(), u8{0});
}

// ---------------------------------------------------------------------------
// Mutations (serial, between plant steps)
// ---------------------------------------------------------------------------

void ShardedCluster::set_dev_op(u32 d, std::size_t op) {
  ANTAREX_REQUIRE(op < specs_[dev_spec_[d]].dvfs.size(),
                  "ShardedCluster: P-state index out of range");
  if (op == dev_op_[d]) return;
  touch_device(d);
  dev_op_[d] = static_cast<u32>(op);
  TELEMETRY_COUNT("rtrm.dvfs_transitions", 1);
}

void ShardedCluster::assign_device(u32 d, const power::WorkloadModel& w,
                                   double units, u64 job_id) {
  ANTAREX_REQUIRE(!(dev_units_[d] > 0.0), "Device: already executing a job");
  ANTAREX_REQUIRE(units > 0.0, "Device: job with no work");
  touch_device(d);
  dev_wl_[d] = w;
  dev_units_[d] = units;
  dev_job_[d] = job_id;
}

void ShardedCluster::fail_node(std::size_t node) {
  ANTAREX_REQUIRE(node < node_count(), "Cluster: node index out of range");
  if (node_failed_[node]) return;
  touch_node(node);
  std::vector<std::pair<u64, double>> interrupted;
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) {
    if (dev_units_[d] > 0.0) {
      interrupted.emplace_back(dev_job_[d], dev_units_[d]);
      dev_units_[d] = 0.0;
      ++dev_interrupted_[d];
      TELEMETRY_COUNT("rtrm.jobs.interrupted", 1);
    } else {
      free_erase(d);
    }
    dev_power_[d] = 0.0;
  }
  node_failed_[node] = 1;
  ++node_crashes_[node];
  ++down_count_;
  node_power_[node] = 0.0;
  it_dirty_ = true;
  dispatcher_.on_node_failed(interrupted, clock_.now());
  TELEMETRY_COUNT("rtrm.node_crashes", 1);
  TELEMETRY_GAUGE("rtrm.nodes_down", static_cast<double>(down_count_));
}

void ShardedCluster::repair_node(std::size_t node) {
  ANTAREX_REQUIRE(node < node_count(), "Cluster: node index out of range");
  if (!node_failed_[node]) return;
  touch_node(node);  // bank the remaining downtime while still failed
  node_failed_[node] = 0;
  --down_count_;
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) free_insert(d);
  TELEMETRY_COUNT("rtrm.node_repairs", 1);
  TELEMETRY_GAUGE("rtrm.nodes_down", static_cast<double>(down_count_));
}

void ShardedCluster::force_throttle(std::size_t node, std::size_t dev,
                                    double duration_s) {
  ANTAREX_REQUIRE(duration_s >= 0.0, "Device: negative throttle duration");
  const u32 d = dev_index(node, dev);
  touch_device(d);
  dev_throttle_s_[d] = std::max(dev_throttle_s_[d], duration_s);
  TELEMETRY_COUNT("rtrm.forced_throttles", 1);
}

void ShardedCluster::set_node_slowdown(std::size_t node, double factor) {
  ANTAREX_REQUIRE(factor >= 1.0, "Device: slowdown factor must be >= 1");
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) {
    touch_device(d);
    dev_slowdown_[d] = factor;
  }
}

void ShardedCluster::set_reading_offset_j(std::size_t node, std::size_t dev,
                                          double joules) {
  // A glitch corrupts readings, never the plant — no wake-up needed.
  dev_offset_j_[dev_index(node, dev)] = joules;
}

// ---------------------------------------------------------------------------
// Control loops (transliterated from governor.cpp / controllers.cpp)
// ---------------------------------------------------------------------------

void ShardedCluster::governor_step(u32 d, GovernorPolicy policy,
                                   double base_share) {
  const power::DeviceSpec& spec = specs_[dev_spec_[d]];
  const std::size_t top = spec.dvfs.size() - 1;
  const bool busy = dev_units_[d] > 0.0;
  switch (policy) {
    case GovernorPolicy::Performance:
      set_dev_op(d, top);
      break;
    case GovernorPolicy::Powersave:
      set_dev_op(d, 0);
      break;
    case GovernorPolicy::Ondemand:
      set_dev_op(d, busy ? top : 0);
      break;
    case GovernorPolicy::EnergyAware: {
      if (!busy) {
        set_dev_op(d, 0);
        return;
      }
      const power::WorkloadModel& w = dev_wl_[d];
      std::size_t best = top;
      double best_e = 0.0;
      for (std::size_t i = 0; i < spec.dvfs.size(); ++i) {
        const auto& op = spec.dvfs.at(i);
        const double e =
            power::energy_j(spec, dev_var_[d], spec_vnom_[dev_spec_[d]], w, op,
                            1.0, dev_temp_[d]) +
            base_share * w.execution_time_s(op);
        if (i == 0 || e <= best_e) {
          best_e = e;
          best = i;
        }
      }
      set_dev_op(d, best);
      break;
    }
  }
}

void ShardedCluster::guard_step(u32 d) {
  u32& ceil = dev_guard_ceil_[d];
  const double t = dev_temp_[d];
  const std::size_t num_ops = specs_[dev_spec_[d]].dvfs.size();
  if (t > config_.base.t_crit_c && ceil > 0) {
    --ceil;
    TELEMETRY_COUNT("rtrm.thermal_throttles", 1);
  } else if (t < config_.base.t_crit_c - 5.0 && ceil + 1 < num_ops) {
    ++ceil;
  }
  if (dev_op_[d] > ceil) set_dev_op(d, ceil);
}

void ShardedCluster::pm_clamp(std::size_t node) {
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d)
    if (dev_op_[d] > dev_pm_ceil_[d]) set_dev_op(d, dev_pm_ceil_[d]);
}

bool ShardedCluster::node_controller_step(std::size_t node) {
  pm_clamp(node);
  const double p = fresh_node_power_w(node);
  const double budget = node_budget_w_[node];
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  bool changed = false;
  if (p > budget) {
    // Over budget: lower the ceiling of the hungriest device with room.
    u32 victim = ShardedDispatcher::kInvalidDevice;
    double worst = 0.0;
    for (u32 d = begin; d < end; ++d) {
      if (dev_pm_ceil_[d] == 0) continue;
      const double dp = fresh_device_power_w(d);
      if (dp > worst) {
        worst = dp;
        victim = d;
      }
    }
    if (victim != ShardedDispatcher::kInvalidDevice) {
      --dev_pm_ceil_[victim];
      changed = true;
    }
  } else {
    // Headroom: raise the cheapest constrained busy device, 5% guard band.
    u32 candidate = ShardedDispatcher::kInvalidDevice;
    double cheapest_raise = 0.0;
    for (u32 d = begin; d < end; ++d) {
      const power::DeviceSpec& spec = specs_[dev_spec_[d]];
      if (dev_pm_ceil_[d] + 1 >= spec.dvfs.size()) continue;
      if (!(dev_units_[d] > 0.0)) continue;
      const auto& next = spec.dvfs.at(dev_pm_ceil_[d] + 1);
      const power::WorkloadModel& w = dev_wl_[d];
      const double mem_frac = w.memory_boundedness(eff_op(d));
      const double act =
          w.activity * (1.0 - mem_frac) + 0.25 * w.activity * mem_frac;
      const double raised = power::PowerModel::total_power_w(
          spec, dev_var_[d], spec_vnom_[dev_spec_[d]], next, act, dev_temp_[d]);
      const double delta = raised - fresh_device_power_w(d);
      if (candidate == ShardedDispatcher::kInvalidDevice ||
          delta < cheapest_raise) {
        candidate = d;
        cheapest_raise = delta;
      }
    }
    if (candidate != ShardedDispatcher::kInvalidDevice &&
        p + cheapest_raise <= 0.95 * budget) {
      ++dev_pm_ceil_[candidate];
      changed = true;
    }
  }
  pm_clamp(node);
  return changed;
}

void ShardedCluster::power_manager_step() {
  const std::size_t n = node_count();
  if (n == 0) return;
  pm_floor_.resize(n);
  pm_demand_.resize(n);
  double floor_total = 0.0;
  double demand_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pm_floor_[i] = node_floor_w(i);
    pm_demand_[i] = std::max(fresh_node_power_w(i), pm_floor_[i]);
    floor_total += pm_floor_[i];
    demand_total += pm_demand_[i];
  }
  const double budget = *config_.base.facility_cap_w;
  const double distributable = std::max(0.0, budget - floor_total);
  for (std::size_t i = 0; i < n; ++i) {
    const double share = demand_total > 0.0
                             ? pm_demand_[i] / demand_total
                             : 1.0 / static_cast<double>(n);
    const double alloc = pm_floor_[i] + distributable * share;
    node_budget_w_[i] = std::max(alloc, 1.0);
    node_controller_step(i);
  }
}

void ShardedCluster::apply_node_budget(std::size_t node, double budget_w) {
  ANTAREX_REQUIRE(node < node_count(), "Cluster: node index out of range");
  ANTAREX_REQUIRE(budget_w > 0.0, "ShardedCluster: non-positive node budget");
  node_budget_w_[node] = std::max(budget_w, 1.0);
  if (!node_controller_step(node)) return;
  // Keep notching down until the node fits or the ceilings bottom out.
  std::size_t notches = 0;
  const u32 begin = node_dev_begin_[node];
  const u32 end = begin + node_dev_count_[node];
  for (u32 d = begin; d < end; ++d) notches += specs_[dev_spec_[d]].dvfs.size();
  while (notches-- > 0 && fresh_node_power_w(node) > budget_w &&
         node_controller_step(node)) {
  }
}

void ShardedCluster::control_step() {
  TELEMETRY_SPAN("rtrm.control_step");
  const GovernorPolicy policy = config_.base.governor;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (node_failed_[i]) continue;  // no governor/guard action on a dead node
    if (node_quiet_[i]) continue;   // provably identical to the last visit
    const u32 begin = node_dev_begin_[i];
    const u32 count = node_dev_count_[i];
    const double base_share =
        count > 0 ? node_base_w_[i] / static_cast<double>(count) : 0.0;
    bool mutated = false;
    for (u32 d = begin; d < begin + count; ++d) {
      const u32 op_before = dev_op_[d];
      const u32 ceil_before = dev_guard_ceil_[d];
      governor_step(d, policy, base_share);
      if (config_.base.thermal_guard) guard_step(d);
      mutated = mutated || dev_op_[d] != op_before ||
                dev_guard_ceil_[d] != ceil_before;
    }
    if (!mutated) {
      // Frozen inputs + no movement this visit => the next visit recomputes
      // the same decisions. Any touch/unpark clears the flag.
      bool all_parked = true;
      for (u32 d = begin; d < begin + count; ++d)
        if (!dev_parked_[d]) {
          all_parked = false;
          break;
        }
      if (all_parked) node_quiet_[i] = 1;
    }
  }
  if (config_.base.facility_cap_w) power_manager_step();
  if (op_step_down_ > 0) {
    for (std::size_t i = 0; i < node_count(); ++i) {
      if (node_failed_[i]) continue;
      const u32 begin = node_dev_begin_[i];
      const u32 end = begin + node_dev_count_[i];
      for (u32 d = begin; d < end; ++d) {
        const std::size_t num_ops = specs_[dev_spec_[d]].dvfs.size();
        const std::size_t ceiling =
            num_ops > op_step_down_ ? num_ops - 1 - op_step_down_ : 0;
        if (dev_op_[d] > ceiling) set_dev_op(d, ceiling);
      }
    }
  }
  // Last word: the govern layer's cap clamp overrides every proposal above.
  if (control_hook_) control_hook_(*this, clock_.now());
}

// ---------------------------------------------------------------------------
// The plant step
// ---------------------------------------------------------------------------

void ShardedCluster::step_shard(std::size_t s, double dt_s) {
  Shard& sh = shards_[s];
  sh.finished.clear();
  sh.power_changed = false;
  const double ambient = config_.base.ambient_c;
  double step_max = sh.parked_max_c;
  std::size_t w = 0;  // compact the active calendar in place
  for (std::size_t idx = 0; idx < sh.active.size(); ++idx) {
    const u32 i = sh.active[idx];
    const u32 begin = node_dev_begin_[i];
    const u32 count = node_dev_count_[i];
    bool all_parked = true;
    if (node_failed_[i]) {
      for (u32 d = begin; d < begin + count; ++d) {
        if (dev_parked_[d]) continue;
        // Device::step_offline: throttle decay + cooling; accumulate(0, dt)
        // adds exactly 0.0 and is skipped.
        const bool no_throttle = dev_throttle_s_[d] == 0.0;
        dev_throttle_s_[d] = std::max(0.0, dev_throttle_s_[d] - dt_s);
        const double t_before = dev_temp_[d];
        dev_temp_[d] =
            power::ThermalModel::stepped_c(t_before, 0.0, ambient, dt_s);
        ++sh.full_steps;
        dev_upto_[d] = steps_done_ + 1;
        step_max = std::max(step_max, dev_temp_[d]);
        if (no_throttle && dev_temp_[d] == t_before) {
          dev_parked_[d] = 1;
          sh.parked_max_c = std::max(sh.parked_max_c, dev_temp_[d]);
        } else {
          all_parked = false;
        }
      }
      // Node::step on a failed node: rapl.accumulate(0, dt) is an exact
      // no-op; node_power_ went to 0 when the crash was applied.
      node_downtime_s_[i] += dt_s;
      node_upto_[i] = steps_done_ + 1;
    } else {
      for (u32 d = begin; d < begin + count; ++d) {
        if (dev_parked_[d]) continue;
        // --- Device::step, transliterated over the SoA arrays -------------
        const power::DeviceSpec& spec = specs_[dev_spec_[d]];
        const double v_nom = spec_vnom_[dev_spec_[d]];
        const bool no_throttle = dev_throttle_s_[d] == 0.0;
        const power::OperatingPoint& op = eff_op(d);
        double active_s = 0.0;
        if (dev_units_[d] > 0.0) {
          const double unit_time =
              dev_wl_[d].execution_time_s(op) * dev_slowdown_[d];
          const double progress = dt_s / unit_time;
          if (progress >= dev_units_[d]) {
            active_s = dev_units_[d] * unit_time;
            dev_units_[d] = 0.0;
            ++dev_done_[d];
            sh.finished.emplace_back(d, dev_job_[d]);
          } else {
            dev_units_[d] -= progress;
            active_s = dt_s;
          }
        }
        dev_busy_s_[d] += active_s;
        const double temp = dev_temp_[d];
        double energy = 0.0;
        if (active_s > 0.0) {
          const power::WorkloadModel& wl = dev_wl_[d];
          const double mem_frac = wl.memory_boundedness(op);
          const double act =
              wl.activity * (1.0 - mem_frac) + 0.25 * wl.activity * mem_frac;
          energy += power::PowerModel::total_power_w(spec, dev_var_[d], v_nom,
                                                     op, act, temp) *
                    active_s;
        }
        const double idle_s = dt_s - active_s;
        if (idle_s > 0.0)
          energy += power::PowerModel::idle_power_w(spec, dev_var_[d], v_nom,
                                                    op, temp) *
                    idle_s;
        const double pw = energy / dt_s;
        dev_energy_j_[d] += pw * dt_s;  // RaplDomain::accumulate rounding
        dev_temp_[d] = power::ThermalModel::stepped_c(temp, pw, ambient, dt_s);
        dev_throttle_s_[d] = std::max(0.0, dev_throttle_s_[d] - dt_s);
        ++sh.full_steps;
        dev_upto_[d] = steps_done_ + 1;
        dev_power_[d] = fresh_device_power_w(d);  // post-step cache
        step_max = std::max(step_max, dev_temp_[d]);
        // Park: idle, no throttle at either end of the step, and the
        // temperature landed on its discrete fixed point — one more step
        // would reproduce this state bit-for-bit.
        if (no_throttle && dev_throttle_s_[d] == 0.0 &&
            !(dev_units_[d] > 0.0) && dev_temp_[d] == temp) {
          dev_parked_[d] = 1;
          sh.parked_max_c = std::max(sh.parked_max_c, dev_temp_[d]);
        } else {
          all_parked = false;
        }
      }
      // Node::power_w() after the device steps, then the node's accumulate.
      double np = node_base_w_[i];
      for (u32 d = begin; d < begin + count; ++d) np += dev_power_[d];
      if (np != node_power_[i]) {
        node_power_[i] = np;
        sh.power_changed = true;
      }
      node_energy_j_[i] += np * dt_s;
      node_upto_[i] = steps_done_ + 1;
    }
    if (all_parked && count > 0) {
      node_parked_[i] = 1;  // drops off the calendar until touched
    } else {
      sh.active[w++] = i;
    }
  }
  sh.active.resize(w);
  sh.step_max_c = step_max;
}

void ShardedCluster::run_for(double duration_s, double dt_s) {
  ANTAREX_REQUIRE(duration_s >= 0.0 && dt_s > 0.0,
                  "Cluster: bad run parameters");
  finalize();
  const double end = clock_.now() + duration_s;
  while (clock_.now() < end - 1e-12) {
    const double step = std::min(dt_s, end - clock_.now());
    // All skipped steps between global syncs share one dt; when the step
    // size changes (tail of a run), settle everything first.
    if (step != sync_dt_) {
      global_sync();
      sync_dt_ = step;
    }

    dispatcher_.place(clock_.now());
    if (clock_.now() + 1e-12 >= next_control_s_) {
      control_step();
      next_control_s_ = clock_.now() + config_.base.control_period_s;
    }

    // Shards own disjoint node ranges: they step in parallel and merge
    // serially in fixed shard order, so the run is byte-identical for any
    // worker count (and to the legacy per-object stepper).
    const auto body = [&](std::size_t b, std::size_t e) {
      for (std::size_t s = b; s < e; ++s) step_shard(s, step);
    };
    if (pool_ && shards_.size() > 1) {
      pool_->parallel_for(shards_.size(), 1, body);
    } else {
      body(0, shards_.size());
    }

    const double t_done = clock_.now() + step;
    bool dirty = it_dirty_;
    for (Shard& sh : shards_) {
      for (const auto& [d, job] : sh.finished) {
        free_insert(d);
        dispatcher_.on_finished(job, t_done);
      }
      dirty = dirty || sh.power_changed;
    }
    if (dirty) {
      // Same chain sum, same order, as the legacy per-step reduction. When
      // nothing changed the previous sum is bit-identical by definition.
      double p = 0.0;
      for (const double np : node_power_) p += np;
      it_power_ = p;
      it_dirty_ = false;
    }
    ++steps_done_;
    clock_.advance(step);

    TELEMETRY_GAUGE("rtrm.it_power_w", it_power_);
    TELEMETRY_GAUGE("rtrm.power_draw_w", it_power_);
    telemetry_.time_s = clock_.now();
    telemetry_.it_energy_j += it_power_ * step;
    telemetry_.facility_energy_j +=
        it_power_ * step * cooling_.pue(it_power_, config_.base.ambient_c);
    telemetry_.peak_it_power_w =
        std::max(telemetry_.peak_it_power_w, it_power_);
    double step_max_c = config_.base.ambient_c;
    for (const Shard& sh : shards_)
      step_max_c =
          std::max(step_max_c, std::max(sh.step_max_c, sh.parked_max_c));
    telemetry_.max_temperature_c =
        std::max(telemetry_.max_temperature_c, step_max_c);
    TELEMETRY_GAUGE("rtrm.max_temp_c", telemetry_.max_temperature_c);
    TELEMETRY_GAUGE("rtrm.thermal_headroom_c",
                    config_.base.t_crit_c - step_max_c);
    telemetry_.jobs_completed = dispatcher_.completed();
    telemetry_.jobs_failed = dispatcher_.failed();
    for (auto& obs : step_observers_) obs(clock_.now(), it_power_, step);
  }
}

bool ShardedCluster::run_until_idle(double max_s, double dt_s) {
  const double deadline = clock_.now() + max_s;
  while (clock_.now() < deadline) {
    run_for(std::min(16.0 * dt_s, deadline - clock_.now()), dt_s);
    const bool any_busy = dispatcher_.queued() > 0 || dispatcher_.running() > 0;
    if (!any_busy) return true;
  }
  return dispatcher_.queued() == 0 && dispatcher_.running() == 0;
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

double ShardedCluster::node_downtime_s(std::size_t node) {
  ANTAREX_REQUIRE(node < node_count(), "Cluster: node index out of range");
  catch_up_node(node);
  return node_downtime_s_[node];
}

double ShardedCluster::node_energy_j(std::size_t node) {
  ANTAREX_REQUIRE(node < node_count(), "Cluster: node index out of range");
  catch_up_node(node);
  return node_energy_j_[node];
}

double ShardedCluster::device_energy_j(std::size_t node, std::size_t dev) {
  const u32 d = dev_index(node, dev);
  catch_up_device(d);
  return dev_energy_j_[d];
}

u32 ShardedCluster::device_counter_uj(std::size_t node, std::size_t dev) {
  const u32 d = dev_index(node, dev);
  catch_up_device(d);
  // power::RaplDomain::counter_uj, verbatim.
  const double uj = (dev_energy_j_[d] + dev_offset_j_[d]) * 1e6;
  const double wrapped = std::fmod(
      std::fmod(uj, 4294967296.0) + 4294967296.0, 4294967296.0);
  return static_cast<u32>(wrapped);
}

double ShardedCluster::device_progress_rate_ups(std::size_t node,
                                                std::size_t dev) const {
  const u32 d = dev_index(node, dev);
  if (!(dev_units_[d] > 0.0)) return 0.0;
  return 1.0 / (dev_wl_[d].execution_time_s(eff_op(d)) * dev_slowdown_[d]);
}

u64 ShardedCluster::full_device_steps() const {
  u64 total = 0;
  for (const Shard& sh : shards_) total += sh.full_steps;
  return total;
}

std::size_t ShardedCluster::approx_state_bytes() const {
  auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  std::size_t bytes = 0;
  bytes += vec(dev_spec_) + vec(dev_var_) + vec(dev_node_) + vec(dev_op_) +
           vec(dev_temp_) + vec(dev_energy_j_) + vec(dev_offset_j_) +
           vec(dev_units_) + vec(dev_job_) + vec(dev_wl_) + vec(dev_busy_s_) +
           vec(dev_done_) + vec(dev_interrupted_) + vec(dev_throttle_s_) +
           vec(dev_slowdown_) + vec(dev_guard_ceil_) + vec(dev_pm_ceil_) +
           vec(dev_power_) + vec(dev_parked_) + vec(dev_upto_);
  bytes += vec(node_base_w_) + vec(node_dev_begin_) + vec(node_dev_count_) +
           vec(node_failed_) + vec(node_crashes_) + vec(node_downtime_s_) +
           vec(node_energy_j_) + vec(node_power_) + vec(node_budget_w_) +
           vec(node_parked_) + vec(node_quiet_) + vec(node_upto_) +
           vec(node_shard_) + vec(pm_floor_) + vec(pm_demand_);
  for (const Shard& sh : shards_)
    bytes += sizeof(Shard) + vec(sh.active) + vec(sh.finished);
  for (const auto& v : devices_of_type_) bytes += vec(v);
  // Red-black tree node overhead for the free sets (~3 pointers + color).
  for (const auto& s : free_by_type_)
    bytes += s.size() * (sizeof(u32) + 4 * sizeof(void*));
  for (std::size_t i = 0; i < specs_.size(); ++i)
    bytes += sizeof(power::DeviceSpec) +
             specs_[i].dvfs.size() * sizeof(power::OperatingPoint);
  return bytes;
}

// ---------------------------------------------------------------------------
// ClusterBlueprint
// ---------------------------------------------------------------------------

void ClusterBlueprint::build(Cluster& cluster) const {
  char buf[48];
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "n%zu", i);
    Node node(buf, nodes[i].base_power_w);
    for (std::size_t j = 0; j < nodes[i].devices.size(); ++j) {
      const auto& [sid, var] = nodes[i].devices[j];
      std::snprintf(buf, sizeof(buf), "n%zu.d%zu", i, j);
      node.add_device(Device(buf, specs[sid], var));
    }
    cluster.add_node(std::move(node));
  }
}

void ClusterBlueprint::build(ShardedCluster& cluster) const {
  std::vector<u32> ids;
  ids.reserve(specs.size());
  for (const auto& s : specs) ids.push_back(cluster.add_spec(s));
  for (const auto& nd : nodes) {
    std::vector<std::pair<u32, power::Variability>> devs;
    devs.reserve(nd.devices.size());
    for (const auto& [sid, var] : nd.devices) devs.emplace_back(ids[sid], var);
    cluster.add_node(nd.base_power_w, devs);
  }
}

ClusterBlueprint ClusterBlueprint::exascale(u64 seed, std::size_t node_count,
                                            double sigma) {
  ClusterBlueprint bp;
  bp.specs = {power::DeviceSpec::xeon_haswell(), power::DeviceSpec::xeon_phi(),
              power::DeviceSpec::gpgpu()};
  bp.nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    // One independent stream per node: the blueprint is identical for any
    // shard count, thread count, or construction order.
    Rng rng(exec::stream_seed(seed, i));
    const double r = rng.uniform();
    NodeDef nd;
    nd.base_power_w = rng.uniform(55.0, 95.0);
    auto dev = [&](u32 sid) {
      nd.devices.emplace_back(sid, power::Variability::sample(rng, sigma));
    };
    if (r < 0.55) {  // thin node: dual Xeon
      dev(0);
      dev(0);
    } else if (r < 0.80) {  // MIC node: host + 2x Xeon Phi
      dev(0);
      dev(1);
      dev(1);
    } else {  // GPU node: host + 2x GPGPU
      dev(0);
      dev(2);
      dev(2);
    }
    bp.nodes.push_back(std::move(nd));
  }
  return bp;
}

}  // namespace antarex::rtrm
