// Hierarchical power and thermal controllers (paper Sec. V: "scalable and
// hierarchical optimal control-loops").
//
// Authority model: governors *propose* a P-state per device each control
// period; the controllers own persistent per-device **ceilings** and clamp
// the proposal. This is what makes the loops compose instead of fight — a
// budget violation lowers a ceiling and the ceiling stays down until
// headroom returns, regardless of what the governor asks for.
//
// Layers:
//  - NodePowerController: enforces a node power budget via ceilings.
//  - ClusterPowerManager: splits a facility budget across nodes
//    proportionally to demand and drives the per-node controllers.
//  - ThermalGuard: per-device safety loop capping the P-state near the
//    critical junction temperature ("thermally-safe point").
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rtrm/node.hpp"

namespace antarex::rtrm {

class NodePowerController {
 public:
  explicit NodePowerController(double budget_w);

  double budget_w() const { return budget_w_; }
  void set_budget_w(double w);

  /// One control step: compare node power to budget, move ceilings, clamp
  /// every device. Returns true if any ceiling changed.
  bool step(Node& node);

  /// Clamp device P-states to the current ceilings (idempotent; called by
  /// the cluster after the governor proposals).
  void clamp(Node& node) const;

  /// Current ceiling for a device index (defaults to the top P-state).
  std::size_t ceiling(std::size_t device_index) const;

  /// Priority weighting for victim selection (govern job priorities): when
  /// over budget the controller lowers the device maximizing power/weight, so
  /// a device running a weight-2 job is clamped only after an equal-power
  /// weight-1 neighbour. Empty (default) weighs everything 1.
  void set_device_weights(std::vector<double> weights);

 private:
  void ensure_sized(const Node& node);

  double budget_w_;
  std::vector<std::size_t> ceiling_;
  std::vector<double> weight_;
  bool sized_ = false;
};

class ClusterPowerManager {
 public:
  explicit ClusterPowerManager(double facility_budget_w);

  double facility_budget_w() const { return budget_w_; }
  void set_facility_budget_w(double w) { budget_w_ = w; }

  /// Allocate per-node budgets proportional to instantaneous demand, with a
  /// guaranteed floor (base power + minimum-P-state draw), then run each
  /// node's (persistent) controller.
  void step(std::vector<Node>& nodes);

  /// Last computed allocation (diagnostics/benches).
  const std::vector<double>& allocations_w() const { return alloc_; }

 private:
  double budget_w_;
  std::vector<double> alloc_;
  std::vector<NodePowerController> node_ctl_;
};

class ThermalGuard {
 public:
  /// Default critical junction temperature typical of server silicon.
  explicit ThermalGuard(double t_crit_c = 85.0, double hysteresis_c = 5.0);

  /// Lower the device's persistent ceiling above t_crit; allow recovery
  /// below t_crit - hysteresis. Always clamps to the ceiling. Returns true
  /// if the ceiling moved.
  bool step(Device& device);

  double t_crit_c() const { return t_crit_; }
  u64 throttle_events() const { return throttles_; }

 private:
  double t_crit_;
  double hysteresis_;
  u64 throttles_ = 0;
  std::unordered_map<std::string, std::size_t> ceiling_;  ///< by device name
};

}  // namespace antarex::rtrm
