// Job dispatcher: maps queued jobs to free devices.
//
// Placement policies model the paper's Sec. VII-a observation that "dynamic
// load balancing and task placement are critical" on heterogeneous systems.
//
// Resilience (antarex::fault): jobs interrupted by node crashes are restored
// from their last checkpoint and requeued with per-attempt exponential
// backoff; a job that keeps dying is reported Failed after max_attempts, so
// every submitted job ends in exactly one of {Done, Failed} — the no-lost-jobs
// invariant the property tests assert.
#pragma once

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "rtrm/job.hpp"
#include "rtrm/node.hpp"

namespace antarex::rtrm {

enum class PlacementPolicy {
  FirstFit,      ///< first free compatible device
  FastestFirst,  ///< free compatible device with the shortest predicted time
  EnergyAware,   ///< free compatible device with the lowest predicted energy
};

const char* placement_name(PlacementPolicy p);

class Dispatcher {
 public:
  explicit Dispatcher(PlacementPolicy policy = PlacementPolicy::FirstFit,
                      bool backfill = false);

  /// EASY backfilling: when the queue head cannot start (no free compatible
  /// device), later jobs may jump ahead as long as they cannot delay the
  /// head's reservation — they either run on a device the head cannot use,
  /// or finish (by prediction) before the reserved device frees.
  void set_backfill(bool enabled) { backfill_ = enabled; }
  bool backfill() const { return backfill_; }
  u64 backfilled_jobs() const { return backfilled_; }

  void submit(Job job);
  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }
  /// Jobs currently placed on devices (read-only view for the govern layer's
  /// per-job energy ledger and priority weighting).
  const std::vector<Job>& running_jobs() const { return running_; }
  std::size_t completed() const { return done_.size(); }
  const std::vector<Job>& completed_jobs() const { return done_; }
  std::size_t failed() const { return failed_.size(); }
  const std::vector<Job>& failed_jobs() const { return failed_; }
  u64 requeued_jobs() const { return requeued_; }

  /// Base of the per-attempt exponential backoff: a job on attempt k waits
  /// backoff_base_s * 2^(k-1) before it is eligible again.
  void set_backoff_base_s(double s) { backoff_base_s_ = s; }
  double backoff_base_s() const { return backoff_base_s_; }

  /// Try to place queued jobs on free devices (in queue order; a job that
  /// cannot be placed blocks later ones — FCFS). Jobs in crash backoff
  /// (not_before_s > now) are invisible to this pass: they neither place nor
  /// block others.
  void place(std::vector<Node>& nodes, double now_s);

  /// Notify that a job finished on some device (called by the cluster when a
  /// Device::step reports completion).
  void on_finished(u64 job_id, double now_s);

  /// Handle a node crash: each (job id, units unfinished) pair from
  /// Node::fail() is rolled back to its last checkpoint and requeued with
  /// exponential backoff, or marked Failed past its retry budget.
  void on_node_failed(const std::vector<std::pair<u64, double>>& interrupted,
                      double now_s);

  /// Lifecycle event hook for replay logging (antarex::fault): invoked as
  /// fn(kind, job_id, t) with kind in {"dispatch", "finish", "requeue",
  /// "fail"}. All events fire on the simulation thread in virtual-time order.
  using EventHook = std::function<void(const char* kind, u64 job_id, double t)>;
  void set_event_hook(EventHook fn) { event_hook_ = std::move(fn); }

  PlacementPolicy policy() const { return policy_; }

 private:
  Device* choose_device(std::vector<Node>& nodes, const Job& job) const;
  void start(Job job, Device& device, double now_s);
  /// Predicted seconds until a busy device frees (at its current P-state and
  /// degradation factor).
  static double predicted_remaining_s(const Device& d);
  void emit(const char* kind, u64 job_id, double t) const {
    if (event_hook_) event_hook_(kind, job_id, t);
  }

  PlacementPolicy policy_;
  bool backfill_;
  u64 backfilled_ = 0;
  u64 requeued_ = 0;
  double backoff_base_s_ = 2.0;
  std::deque<Job> queue_;
  std::vector<Job> running_;
  std::vector<Job> done_;
  std::vector<Job> failed_;
  EventHook event_hook_;
};

}  // namespace antarex::rtrm
