// Job dispatcher: maps queued jobs to free devices.
//
// Placement policies model the paper's Sec. VII-a observation that "dynamic
// load balancing and task placement are critical" on heterogeneous systems.
#pragma once

#include <deque>
#include <vector>

#include "rtrm/job.hpp"
#include "rtrm/node.hpp"

namespace antarex::rtrm {

enum class PlacementPolicy {
  FirstFit,      ///< first free compatible device
  FastestFirst,  ///< free compatible device with the shortest predicted time
  EnergyAware,   ///< free compatible device with the lowest predicted energy
};

const char* placement_name(PlacementPolicy p);

class Dispatcher {
 public:
  explicit Dispatcher(PlacementPolicy policy = PlacementPolicy::FirstFit,
                      bool backfill = false);

  /// EASY backfilling: when the queue head cannot start (no free compatible
  /// device), later jobs may jump ahead as long as they cannot delay the
  /// head's reservation — they either run on a device the head cannot use,
  /// or finish (by prediction) before the reserved device frees.
  void set_backfill(bool enabled) { backfill_ = enabled; }
  bool backfill() const { return backfill_; }
  u64 backfilled_jobs() const { return backfilled_; }

  void submit(Job job);
  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }
  std::size_t completed() const { return done_.size(); }
  const std::vector<Job>& completed_jobs() const { return done_; }

  /// Try to place queued jobs on free devices (in queue order; a job that
  /// cannot be placed blocks later ones — FCFS).
  void place(std::vector<Node>& nodes, double now_s);

  /// Notify that a job finished on some device (called by the cluster when a
  /// Device::step reports completion).
  void on_finished(u64 job_id, double now_s);

  PlacementPolicy policy() const { return policy_; }

 private:
  Device* choose_device(std::vector<Node>& nodes, const Job& job) const;
  void start(Job job, Device& device, double now_s);
  /// Predicted seconds until a busy device frees (at its current P-state).
  static double predicted_remaining_s(const Device& d);

  PlacementPolicy policy_;
  bool backfill_;
  u64 backfilled_ = 0;
  std::deque<Job> queue_;
  std::vector<Job> running_;
  std::vector<Job> done_;
};

}  // namespace antarex::rtrm
