// Jobs submitted to the runtime resource manager.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "power/dvfs.hpp"
#include "power/model.hpp"
#include "support/common.hpp"

namespace antarex::rtrm {

enum class JobState { Queued, Running, Done, Failed };

/// A unit of schedulable work. The same job costs differently on different
/// device types ("different tasks might be more efficient on different types
/// of processors", paper Sec. VII-a): `profiles` holds one workload model per
/// device type the job can execute on.
struct Job {
  u64 id = 0;
  std::string name;
  double units = 1.0;
  /// Fairness/priority weight for power-budget negotiation (govern): a job
  /// with priority 2 claims twice the share of a contended budget, and its
  /// device is the last to be clamped. Must be > 0.
  double priority = 1.0;
  std::map<power::DeviceType, power::WorkloadModel> profiles;

  double submit_time_s = 0.0;
  JobState state = JobState::Queued;
  double start_time_s = 0.0;
  double finish_time_s = 0.0;
  std::string device_name;  ///< where it ran (once running/done)

  // --- resilience (antarex::fault) -----------------------------------------
  /// Checkpoint granularity in work units. 0 disables checkpointing: a job
  /// interrupted by a node crash restarts from scratch. With g > 0, progress
  /// is durable in multiples of g — an interrupted job resumes from the last
  /// whole checkpoint.
  double checkpoint_units = 0.0;
  /// Work units already banked by checkpoints (restored on restart).
  double units_done = 0.0;
  /// Crash-restart count so far; the dispatcher applies exponential backoff
  /// per attempt and gives up (state = Failed) past max_attempts.
  int attempts = 0;
  int max_attempts = 4;
  /// Failure-aware rescheduling: not eligible for placement before this time.
  double not_before_s = 0.0;

  /// Work still owed (total minus banked checkpoints).
  double units_remaining() const { return units - units_done; }

  bool can_run_on(power::DeviceType t) const { return profiles.contains(t); }
  const power::WorkloadModel& profile(power::DeviceType t) const;
};

}  // namespace antarex::rtrm
