// A compute node: a set of heterogeneous devices plus node-level overhead
// power (memory, NIC, fans, VRs).
//
// A node can crash (antarex::fault injects Weibull-MTBF failures): while
// failed it draws no power, makes no progress, and its devices cool toward
// ambient; fail() hands the interrupted jobs back for rescheduling.
#pragma once

#include <utility>
#include <vector>

#include "power/rapl.hpp"
#include "rtrm/device.hpp"

namespace antarex::rtrm {

class Node {
 public:
  Node(std::string name, double base_power_w = 60.0);

  const std::string& name() const { return name_; }

  Device& add_device(Device d);
  std::size_t device_count() const { return devices_.size(); }
  Device& device(std::size_t i);
  const Device& device(std::size_t i) const;
  std::vector<Device>& devices() { return devices_; }
  const std::vector<Device>& devices() const { return devices_; }

  /// Advance all devices; returns ids of jobs that completed in this step.
  std::vector<u64> step(double dt_s, double ambient_c);

  /// Instantaneous node power (devices + base).
  double power_w() const;
  double base_power_w() const { return base_power_w_; }

  /// Node-level energy counter (sum of device RAPL + base overhead).
  const power::RaplDomain& rapl() const { return rapl_; }
  /// Mutable counter access for sensor-glitch injection (antarex::fault).
  power::RaplDomain& rapl() { return rapl_; }

  /// Aggregate peak compute at the devices' current operating points.
  double peak_gflops() const;

  // --- failure state --------------------------------------------------------
  /// Crash the node: every running job is interrupted and returned as
  /// (job id, units unfinished) for the dispatcher to reschedule. Idempotent
  /// (a second fail() on a downed node returns nothing).
  std::vector<std::pair<u64, double>> fail();
  void repair();
  bool failed() const { return failed_; }
  u64 crashes() const { return crashes_; }
  double downtime_s() const { return downtime_s_; }

 private:
  std::string name_;
  double base_power_w_;
  std::vector<Device> devices_;
  power::RaplDomain rapl_;
  bool failed_ = false;
  u64 crashes_ = 0;
  double downtime_s_ = 0.0;
};

}  // namespace antarex::rtrm
