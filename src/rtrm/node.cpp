#include "rtrm/node.hpp"

namespace antarex::rtrm {

Node::Node(std::string name, double base_power_w)
    : name_(std::move(name)), base_power_w_(base_power_w), rapl_(name_ + "-node") {
  ANTAREX_REQUIRE(base_power_w_ >= 0.0, "Node: negative base power");
}

Device& Node::add_device(Device d) {
  devices_.push_back(std::move(d));
  return devices_.back();
}

Device& Node::device(std::size_t i) {
  ANTAREX_REQUIRE(i < devices_.size(), "Node: device index out of range");
  return devices_[i];
}

const Device& Node::device(std::size_t i) const {
  ANTAREX_REQUIRE(i < devices_.size(), "Node: device index out of range");
  return devices_[i];
}

std::vector<u64> Node::step(double dt_s, double ambient_c) {
  std::vector<u64> finished;
  if (failed_) {
    // Powered off: no progress, no draw; the silicon cools toward ambient.
    for (auto& d : devices_) d.step_offline(dt_s, ambient_c);
    rapl_.accumulate(0.0, dt_s);
    downtime_s_ += dt_s;
    return finished;
  }
  for (auto& d : devices_) {
    if (auto job = d.step(dt_s, ambient_c)) finished.push_back(*job);
  }
  rapl_.accumulate(power_w(), dt_s);
  return finished;
}

std::vector<std::pair<u64, double>> Node::fail() {
  std::vector<std::pair<u64, double>> interrupted;
  if (failed_) return interrupted;
  failed_ = true;
  ++crashes_;
  for (auto& d : devices_)
    if (auto lost = d.interrupt()) interrupted.push_back(*lost);
  return interrupted;
}

void Node::repair() { failed_ = false; }

double Node::power_w() const {
  if (failed_) return 0.0;
  double p = base_power_w_;
  for (const auto& d : devices_) p += d.power_w();
  return p;
}

double Node::peak_gflops() const {
  double g = 0.0;
  for (const auto& d : devices_) g += d.spec().peak_gflops(d.op());
  return g;
}

}  // namespace antarex::rtrm
