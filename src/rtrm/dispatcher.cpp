#include "rtrm/dispatcher.hpp"

#include <algorithm>
#include <cmath>

#include "power/model.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

const char* placement_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::FirstFit: return "first-fit";
    case PlacementPolicy::FastestFirst: return "fastest-first";
    case PlacementPolicy::EnergyAware: return "energy-aware";
  }
  return "?";
}

Dispatcher::Dispatcher(PlacementPolicy policy, bool backfill)
    : policy_(policy), backfill_(backfill) {}

void Dispatcher::submit(Job job) {
  ANTAREX_REQUIRE(!job.profiles.empty(), "Dispatcher: job with no device profiles");
  job.state = JobState::Queued;
  queue_.push_back(std::move(job));
  TELEMETRY_COUNT("rtrm.jobs.submitted", 1);
}

Device* Dispatcher::choose_device(std::vector<Node>& nodes, const Job& job) const {
  Device* best = nullptr;
  double best_score = 0.0;
  for (auto& node : nodes) {
    if (node.failed()) continue;  // a downed node accepts no work
    for (auto& d : node.devices()) {
      if (d.busy() || !job.can_run_on(d.spec().type)) continue;
      if (policy_ == PlacementPolicy::FirstFit) return &d;
      const power::WorkloadModel& w = job.profile(d.spec().type);
      double score = 0.0;
      if (policy_ == PlacementPolicy::FastestFirst) {
        score = w.execution_time_s(d.op()) * d.slowdown() * job.units_remaining();
      } else {  // EnergyAware
        score = power::energy_j(d.power_model(), w, d.op(), job.units_remaining(),
                                d.temperature_c());
      }
      if (!best || score < best_score) {
        best = &d;
        best_score = score;
      }
    }
  }
  return best;
}

void Dispatcher::start(Job job, Device& device, double now_s) {
  job.state = JobState::Running;
  job.start_time_s = now_s;
  job.device_name = device.name();
  // Resume from the last checkpoint: only the unfinished units are assigned.
  device.assign(job.profile(device.spec().type), job.units_remaining(), job.id);
  emit("dispatch", job.id, now_s);
  running_.push_back(std::move(job));
  TELEMETRY_COUNT("rtrm.jobs.dispatched", 1);
}

double Dispatcher::predicted_remaining_s(const Device& d) {
  if (!d.busy()) return 0.0;
  return d.units_remaining() * d.workload().execution_time_s(d.op()) *
         d.slowdown();
}

void Dispatcher::place(std::vector<Node>& nodes, double now_s) {
  TELEMETRY_SPAN("rtrm.dispatch");
  // FCFS over the *eligible* queue: jobs still in crash backoff are skipped
  // without blocking the jobs behind them.
  auto first_eligible = [&]() {
    return std::find_if(queue_.begin(), queue_.end(), [&](const Job& j) {
      return j.not_before_s <= now_s;
    });
  };
  while (true) {
    auto head_it = first_eligible();
    if (head_it == queue_.end()) break;
    Job& head = *head_it;
    Device* d = choose_device(nodes, head);
    if (d) {
      start(std::move(head), *d, now_s);
      queue_.erase(head_it);
      continue;
    }
    if (!backfill_) break;  // plain FCFS: head blocks

    // EASY backfill. Reserve for the head the busy compatible device with
    // the shortest predicted remaining time.
    const Device* reserved = nullptr;
    double reservation_s = 0.0;
    for (auto& node : nodes) {
      if (node.failed()) continue;
      for (auto& dev : node.devices()) {
        if (!head.can_run_on(dev.spec().type)) continue;
        const double rem = predicted_remaining_s(dev);
        if (!reserved || rem < reservation_s) {
          reserved = &dev;
          reservation_s = rem;
        }
      }
    }
    if (!reserved) break;  // no compatible device exists at all

    // Try to start one later job without endangering the reservation: it may
    // use any free device other than the reserved one freely; the reserved
    // device itself is busy (that is why the head waits), so "other free
    // devices" is the whole opportunity set.
    bool placed_any = false;
    for (auto it = std::next(head_it); it != queue_.end(); ++it) {
      if (it->not_before_s > now_s) continue;  // backoff: not eligible yet
      Device* fit = choose_device(nodes, *it);
      if (!fit || fit == reserved) continue;
      start(std::move(*it), *fit, now_s);
      queue_.erase(it);
      ++backfilled_;
      TELEMETRY_COUNT("rtrm.jobs.backfilled", 1);
      placed_any = true;
      break;  // re-evaluate from the head after each placement
    }
    if (!placed_any) break;
  }
  TELEMETRY_GAUGE("rtrm.queue_depth", static_cast<double>(queue_.size()));
}

void Dispatcher::on_finished(u64 job_id, double now_s) {
  const auto it = std::find_if(running_.begin(), running_.end(),
                               [&](const Job& j) { return j.id == job_id; });
  ANTAREX_REQUIRE(it != running_.end(),
                  "Dispatcher: completion for a job that is not running");
  it->state = JobState::Done;
  it->finish_time_s = now_s;
  it->units_done = it->units;
  TELEMETRY_COUNT("rtrm.jobs.completed", 1);
  emit("finish", job_id, now_s);
  done_.push_back(std::move(*it));
  running_.erase(it);
}

void Dispatcher::on_node_failed(
    const std::vector<std::pair<u64, double>>& interrupted, double now_s) {
  for (const auto& [job_id, units_unfinished] : interrupted) {
    const auto it = std::find_if(running_.begin(), running_.end(),
                                 [&](const Job& j) { return j.id == job_id; });
    ANTAREX_REQUIRE(it != running_.end(),
                    "Dispatcher: crash report for a job that is not running");
    Job job = std::move(*it);
    running_.erase(it);

    // Roll progress back to the last durable checkpoint. The device reports
    // units still unfinished for *this* assignment; anything beyond the
    // checkpoint granularity is lost.
    const double assigned = job.units_remaining();
    const double progressed = std::max(0.0, assigned - units_unfinished);
    if (job.checkpoint_units > 0.0)
      job.units_done +=
          std::floor(progressed / job.checkpoint_units) * job.checkpoint_units;

    ++job.attempts;
    if (job.attempts > job.max_attempts) {
      job.state = JobState::Failed;
      job.finish_time_s = now_s;
      TELEMETRY_COUNT("rtrm.jobs.failed", 1);
      emit("fail", job_id, now_s);
      failed_.push_back(std::move(job));
      continue;
    }
    job.state = JobState::Queued;
    job.device_name.clear();
    job.not_before_s =
        now_s + backoff_base_s_ * std::ldexp(1.0, job.attempts - 1);
    ++requeued_;
    TELEMETRY_COUNT("rtrm.jobs.requeued", 1);
    emit("requeue", job_id, now_s);
    queue_.push_back(std::move(job));
  }
}

}  // namespace antarex::rtrm
