// Frequency governors: the per-device policy layer the paper's Sec. V claim
// compares against ("the default frequency selection of the Linux OS power
// governor").
#pragma once

#include <string>

#include "rtrm/device.hpp"

namespace antarex::rtrm {

enum class GovernorPolicy {
  Performance,  ///< always the highest P-state
  Powersave,    ///< always the lowest P-state
  Ondemand,     ///< Linux-default-like: max when busy, min when idle
  EnergyAware,  ///< ANTAREX: energy-optimal P-state for the running workload
};

const char* governor_name(GovernorPolicy p);

/// Apply one governor decision to a device (called every control period).
/// EnergyAware uses the device's currently-assigned workload model — the
/// knowledge the ANTAREX monitoring loop provides — and minimizes
/// *attributable node energy*: (device power + base_power_share) * time.
/// Without the base-power share the policy degenerates to powersave, because
/// device-only energy is minimized by the lowest P-state for most workloads;
/// the share is what makes race-to-idle worthwhile for compute-bound codes
/// (the cluster passes node base power / device count).
void apply_governor(Device& device, GovernorPolicy policy,
                    double base_power_share_w = 0.0);

}  // namespace antarex::rtrm
