// Exascale-sharded cluster simulation (ROADMAP item 1).
//
// ShardedCluster re-implements the rtrm::Cluster plant over compact
// structure-of-arrays state partitioned into shards of contiguous nodes:
// per-device scalars live in flat arrays instead of Node/Device objects, and
// each shard keeps a sorted calendar of *active* nodes so settled (parked)
// nodes cost nothing per tick. Shards step independently — in parallel on the
// antarex::exec pool — and their results merge serially in fixed shard order,
// so a run is byte-identical across 1/2/8 workers and any shard count, and
// byte-identical to the legacy per-object Cluster (the differential suite in
// tests/test_sharded_cluster.cpp asserts exactly that).
//
// Bit-identity is by construction, not by tolerance: every floating-point
// expression of the legacy path (power::PowerModel, power::ThermalModel,
// device/node stepping, governors, controllers, dispatcher scoring) is
// evaluated through the *same* shared static helpers, in the same order.
// Parking is an exact-arithmetic shortcut: a device parks only when one more
// step would provably reproduce its state bit-for-bit (temperature at the
// discrete fixed point, idle, no throttle decay), and the skipped per-step
// energy/downtime additions are replayed as the identical sequence of
// additions when the device is next observed or mutated.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "power/cooling.hpp"
#include "power/dvfs.hpp"
#include "power/model.hpp"
#include "rtrm/cluster.hpp"
#include "rtrm/job.hpp"
#include "support/sim_clock.hpp"

namespace antarex::exec {
class ThreadPool;
}

namespace antarex::rtrm {

class ShardedCluster;

/// The legacy Dispatcher's exact placement/backfill/retry semantics over the
/// SoA device arrays: per-type free-device index sets replace the
/// all-nodes-all-devices scan, visited in ascending global device index so
/// every policy keeps the legacy first-seen tie-break.
class ShardedDispatcher {
 public:
  using EventHook = std::function<void(const char* kind, u64 job_id, double t)>;

  void submit(Job job);
  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }
  std::size_t completed() const { return done_.size(); }
  std::size_t failed() const { return failed_.size(); }
  /// Unordered (swap-erase) view of in-flight jobs.
  const std::vector<Job>& running_jobs() const { return running_; }
  const std::vector<Job>& completed_jobs() const { return done_; }
  const std::vector<Job>& failed_jobs() const { return failed_; }
  u64 requeued_jobs() const { return requeued_; }
  u64 backfilled_jobs() const { return backfilled_; }

  void set_backoff_base_s(double s) { backoff_base_s_ = s; }
  double backoff_base_s() const { return backoff_base_s_; }
  void set_event_hook(EventHook fn) { event_hook_ = std::move(fn); }
  PlacementPolicy policy() const { return policy_; }

  /// Global device index a running job occupies (kInvalidDevice if the id is
  /// not currently running) — the govern layer's job ledger keys on this
  /// instead of comparing device-name strings per node per tick.
  u32 device_of(u64 job_id) const;

  static constexpr u32 kInvalidDevice = 0xffffffffu;

 private:
  friend class ShardedCluster;

  void place(double now_s);
  void on_finished(u64 job_id, double now_s);
  void on_node_failed(const std::vector<std::pair<u64, double>>& interrupted,
                      double now_s);
  u32 choose_device(const Job& job) const;
  void start(Job job, u32 device, double now_s);
  void erase_running(std::size_t pos);
  void emit(const char* kind, u64 job_id, double t) const {
    if (event_hook_) event_hook_(kind, job_id, t);
  }

  ShardedCluster* c_ = nullptr;
  PlacementPolicy policy_ = PlacementPolicy::FirstFit;
  bool backfill_ = false;
  u64 backfilled_ = 0;
  u64 requeued_ = 0;
  double backoff_base_s_ = 2.0;
  std::deque<Job> queue_;
  /// Stale-low lower bound on min(not_before_s) over the queue; lets place()
  /// skip the scan while every queued job is in crash backoff.
  double min_not_before_ = 0.0;
  std::vector<Job> running_;
  std::unordered_map<u64, std::size_t> running_pos_;
  std::unordered_map<u64, u32> device_by_job_;
  std::vector<Job> done_;
  std::vector<Job> failed_;
  EventHook event_hook_;
};

struct ShardedClusterConfig {
  ClusterConfig base;
  std::size_t shards = 8;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config = {});

  // --- topology (frozen at the first run call) ------------------------------
  /// Register a device SKU shared by many device instances; returns its id.
  u32 add_spec(power::DeviceSpec spec);
  const power::DeviceSpec& spec(u32 id) const { return specs_[id]; }

  /// Append a node with the given base power and (spec id, variability)
  /// device list; returns the node index.
  std::size_t add_node(
      double base_power_w,
      const std::vector<std::pair<u32, power::Variability>>& devices);

  std::size_t node_count() const { return node_base_w_.size(); }
  std::size_t device_count() const { return dev_spec_.size(); }
  std::size_t node_device_count(std::size_t node) const {
    return node_dev_count_[node];
  }
  std::size_t shard_count() const { return config_.shards; }
  /// Shard owning node i, and the node range [first, last) of shard s.
  std::size_t shard_of_node(std::size_t node) const { return node_shard_[node]; }
  std::pair<std::size_t, std::size_t> shard_node_range(std::size_t s) const;

  // --- jobs -----------------------------------------------------------------
  void submit(Job job) { dispatcher_.submit(std::move(job)); }
  ShardedDispatcher& dispatcher() { return dispatcher_; }
  const ShardedDispatcher& dispatcher() const { return dispatcher_; }

  // --- run ------------------------------------------------------------------
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }
  void run_for(double duration_s, double dt_s = 0.25);
  bool run_until_idle(double max_s = 1e7, double dt_s = 0.25);

  const ClusterConfig& config() const { return config_.base; }
  /// Changing ambient mid-run invalidates every parked thermal fixed point,
  /// so this also wakes all parked state.
  void set_ambient_c(double c);
  void set_governor(GovernorPolicy g);
  void set_op_step_down(std::size_t steps);
  std::size_t op_step_down() const { return op_step_down_; }

  // --- failures (driven by antarex::fault) ----------------------------------
  void fail_node(std::size_t node);
  void repair_node(std::size_t node);
  std::size_t nodes_down() const { return down_count_; }
  void force_throttle(std::size_t node, std::size_t dev, double duration_s);
  void set_node_slowdown(std::size_t node, double factor);
  void set_reading_offset_j(std::size_t node, std::size_t dev, double joules);

  // --- observers / control hooks --------------------------------------------
  void set_step_observer(std::function<void(double, double, double)> fn) {
    step_observers_.clear();
    if (fn) step_observers_.push_back(std::move(fn));
  }
  void add_step_observer(std::function<void(double, double, double)> fn) {
    ANTAREX_REQUIRE(fn != nullptr, "ShardedCluster: null step observer");
    step_observers_.push_back(std::move(fn));
  }
  void set_control_hook(std::function<void(ShardedCluster&, double)> fn) {
    control_hook_ = std::move(fn);
  }

  // --- power-cap actuation (govern::ShardedCapCoordinator) ------------------
  /// Run the node's persistent power controller against `budget_w` until the
  /// node fits (bounded by the total P-state notches), exactly as the legacy
  /// CapCoordinator drives NodePowerController on its control hook.
  void apply_node_budget(std::size_t node, double budget_w);
  /// Node power floor: base + every device idle at its lowest P-state (the
  /// same floor the facility power manager computes).
  double node_floor_w(std::size_t node) const;

  // --- state accessors (catch parked state up before reading) ---------------
  double now_s() const { return clock_.now(); }
  const ClusterTelemetry& telemetry() const { return telemetry_; }
  const power::CoolingModel& cooling() const { return cooling_; }
  /// IT power committed by the most recent step (chain-summed in node order).
  double it_power_w() const { return it_power_; }
  double node_power_w(std::size_t node) const { return node_power_[node]; }
  double node_base_power_w(std::size_t node) const {
    return node_base_w_[node];
  }
  bool node_failed(std::size_t node) const { return node_failed_[node] != 0; }
  u64 node_crashes(std::size_t node) const { return node_crashes_[node]; }
  double node_downtime_s(std::size_t node);
  double node_energy_j(std::size_t node);

  std::size_t device_op_index(std::size_t node, std::size_t dev) const {
    return dev_op_[dev_index(node, dev)];
  }
  bool device_busy(std::size_t node, std::size_t dev) const {
    return dev_units_[dev_index(node, dev)] > 0.0;
  }
  bool device_throttled(std::size_t node, std::size_t dev) const {
    return dev_throttle_s_[dev_index(node, dev)] > 0.0;
  }
  double device_slowdown(std::size_t node, std::size_t dev) const {
    return dev_slowdown_[dev_index(node, dev)];
  }
  double device_temperature_c(std::size_t node, std::size_t dev) const {
    return dev_temp_[dev_index(node, dev)];
  }
  double device_busy_seconds(std::size_t node, std::size_t dev) const {
    return dev_busy_s_[dev_index(node, dev)];
  }
  u64 device_completed_jobs(std::size_t node, std::size_t dev) const {
    return dev_done_[dev_index(node, dev)];
  }
  u64 device_interrupted_jobs(std::size_t node, std::size_t dev) const {
    return dev_interrupted_[dev_index(node, dev)];
  }
  double device_progress_rate_ups(std::size_t node, std::size_t dev) const;
  double device_energy_j(std::size_t node, std::size_t dev);
  /// Wrapping 32-bit RAPL counter view (glitch offset applied), identical to
  /// power::RaplDomain::counter_uj.
  u32 device_counter_uj(std::size_t node, std::size_t dev);

  // --- scale diagnostics ----------------------------------------------------
  /// Plant steps taken so far.
  u64 steps() const { return steps_done_; }
  /// Device steps that ran the full step math (parked devices excluded) —
  /// the deterministic metric the exascale bench gates: parking regressions
  /// show up here before they show up in wall time.
  u64 full_device_steps() const;
  /// Resident bytes of the SoA state (arrays + shard calendars + specs).
  std::size_t approx_state_bytes() const;

 private:
  friend class ShardedDispatcher;

  struct Shard {
    u32 begin_node = 0;
    u32 end_node = 0;
    std::vector<u32> active;  ///< ascending indices of unparked nodes
    std::vector<std::pair<u32, u64>> finished;  ///< (device, job) this step
    /// Upper bound on parked-device temperatures (never shrinks; sound for
    /// the monotone max-temperature telemetry because a parked temperature
    /// already entered the running max on the step the device parked).
    double parked_max_c = 0.0;
    double step_max_c = 0.0;
    bool power_changed = false;
    u64 full_steps = 0;
  };

  u32 dev_index(std::size_t node, std::size_t dev) const {
    ANTAREX_REQUIRE(node < node_count() && dev < node_dev_count_[node],
                    "ShardedCluster: device index out of range");
    return node_dev_begin_[node] + static_cast<u32>(dev);
  }
  const power::OperatingPoint& eff_op(u32 d) const {
    return specs_[dev_spec_[d]].dvfs.at(dev_throttle_s_[d] > 0.0 ? 0
                                                                 : dev_op_[d]);
  }
  double fresh_device_power_w(u32 d) const;
  double fresh_node_power_w(std::size_t node) const;

  void finalize();
  void step_shard(std::size_t s, double dt_s);
  void control_step();
  void governor_step(u32 d, GovernorPolicy policy, double base_share);
  void guard_step(u32 d);
  void power_manager_step();
  bool node_controller_step(std::size_t node);
  void pm_clamp(std::size_t node);
  void set_dev_op(u32 d, std::size_t op);
  void assign_device(u32 d, const power::WorkloadModel& w, double units,
                     u64 job_id);
  void unpark_all();

  /// Replay the per-step additions a parked entity skipped, using the step
  /// size in force since the last global sync.
  void catch_up_device(u32 d);
  void catch_up_node(std::size_t node);
  /// Catch up + unpark a device (and reactivate its node in the shard
  /// calendar) before any serial mutation or stateful read.
  void touch_device(u32 d);
  void touch_node(std::size_t node);
  void global_sync();

  void free_insert(u32 d);
  void free_erase(u32 d);

  ShardedClusterConfig config_;
  ShardedDispatcher dispatcher_;
  power::CoolingModel cooling_;
  SimClock clock_;
  double next_control_s_ = 0.0;
  ClusterTelemetry telemetry_;
  std::vector<std::function<void(double, double, double)>> step_observers_;
  std::function<void(ShardedCluster&, double)> control_hook_;
  std::size_t op_step_down_ = 0;
  exec::ThreadPool* pool_ = nullptr;
  bool finalized_ = false;

  // Shared SKU table (one entry per spec, not per device).
  std::vector<power::DeviceSpec> specs_;
  std::vector<double> spec_vnom_;

  // Device SoA (size = total devices, node-major order).
  std::vector<u32> dev_spec_;
  std::vector<power::Variability> dev_var_;
  std::vector<u32> dev_node_;
  std::vector<u32> dev_op_;
  std::vector<double> dev_temp_;
  std::vector<double> dev_energy_j_;
  std::vector<double> dev_offset_j_;
  std::vector<double> dev_units_;
  std::vector<u64> dev_job_;
  std::vector<power::WorkloadModel> dev_wl_;
  std::vector<double> dev_busy_s_;
  std::vector<u64> dev_done_;
  std::vector<u64> dev_interrupted_;
  std::vector<double> dev_throttle_s_;
  std::vector<double> dev_slowdown_;
  std::vector<u32> dev_guard_ceil_;
  std::vector<u32> dev_pm_ceil_;
  std::vector<double> dev_power_;  ///< post-step power (idle power if parked)
  std::vector<u8> dev_parked_;
  std::vector<u64> dev_upto_;  ///< steps fully applied to this device

  // Node SoA.
  std::vector<double> node_base_w_;
  std::vector<u32> node_dev_begin_;
  std::vector<u32> node_dev_count_;
  std::vector<u8> node_failed_;
  std::vector<u64> node_crashes_;
  std::vector<double> node_downtime_s_;
  std::vector<double> node_energy_j_;
  std::vector<double> node_power_;
  std::vector<double> node_budget_w_;  ///< per-node controller budget
  std::vector<u8> node_parked_;
  std::vector<u8> node_quiet_;  ///< control loop provably a no-op
  std::vector<u64> node_upto_;
  std::vector<u32> node_shard_;

  std::vector<Shard> shards_;
  std::size_t down_count_ = 0;
  double it_power_ = 0.0;
  bool it_dirty_ = true;
  u64 steps_done_ = 0;
  double sync_dt_ = 0.0;  ///< step size shared by all skipped steps

  // Dispatcher support: free (idle, alive-node) devices per type, plus the
  // full per-type device lists for backfill reservations.
  std::array<std::set<u32>, 3> free_by_type_;
  std::array<std::vector<u32>, 3> devices_of_type_;

  // Facility power-manager scratch (avoids per-control allocation at scale).
  std::vector<double> pm_floor_;
  std::vector<double> pm_demand_;
};

/// A cluster description buildable on either engine — the differential tests
/// and scale benches construct byte-identical twins from one blueprint.
struct ClusterBlueprint {
  struct NodeDef {
    double base_power_w = 60.0;
    std::vector<std::pair<u32, power::Variability>> devices;
  };
  std::vector<power::DeviceSpec> specs;
  std::vector<NodeDef> nodes;

  void build(Cluster& cluster) const;
  void build(ShardedCluster& cluster) const;

  /// Heterogeneous Mont-Blanc-style mix (thin CPU / MIC / GPU nodes) with
  /// per-instance variability drawn from exec::stream_seed(seed, node) — the
  /// blueprint is independent of shard count, thread count, and construction
  /// order.
  static ClusterBlueprint exascale(u64 seed, std::size_t node_count,
                                   double sigma = 0.05);
};

}  // namespace antarex::rtrm
