#include "rtrm/controllers.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace antarex::rtrm {

NodePowerController::NodePowerController(double budget_w) : budget_w_(budget_w) {
  ANTAREX_REQUIRE(budget_w_ > 0.0, "NodePowerController: non-positive budget");
}

void NodePowerController::set_budget_w(double w) {
  ANTAREX_REQUIRE(w > 0.0, "NodePowerController: non-positive budget");
  budget_w_ = w;
}

void NodePowerController::ensure_sized(const Node& node) {
  if (sized_ && ceiling_.size() == node.device_count()) return;
  ceiling_.resize(node.device_count());
  for (std::size_t i = 0; i < node.device_count(); ++i)
    ceiling_[i] = node.device(i).num_ops() - 1;
  sized_ = true;
}

void NodePowerController::set_device_weights(std::vector<double> weights) {
  for (double w : weights)
    ANTAREX_REQUIRE(w > 0.0, "NodePowerController: non-positive weight");
  weight_ = std::move(weights);
}

std::size_t NodePowerController::ceiling(std::size_t device_index) const {
  ANTAREX_REQUIRE(device_index < ceiling_.size(),
                  "NodePowerController: device index out of range");
  return ceiling_[device_index];
}

void NodePowerController::clamp(Node& node) const {
  for (std::size_t i = 0; i < node.device_count() && i < ceiling_.size(); ++i) {
    Device& d = node.device(i);
    if (d.op_index() > ceiling_[i]) d.set_op_index(ceiling_[i]);
  }
}

bool NodePowerController::step(Node& node) {
  ensure_sized(node);
  clamp(node);

  const double p = node.power_w();
  bool changed = false;
  if (p > budget_w_) {
    // Over budget: lower the ceiling of the device currently drawing the
    // most power that still has room. One step per control period keeps the
    // loop stable.
    std::size_t victim = node.device_count();
    double worst = 0.0;
    for (std::size_t i = 0; i < node.device_count(); ++i) {
      if (ceiling_[i] == 0) continue;
      const double w = i < weight_.size() ? weight_[i] : 1.0;
      const double dp = node.device(i).power_w() / w;
      if (dp > worst) {
        worst = dp;
        victim = i;
      }
    }
    if (victim < node.device_count()) {
      --ceiling_[victim];
      changed = true;
    }
  } else {
    // Headroom: estimate the cost of raising the cheapest constrained busy
    // device one step and allow it only with a 5% guard band.
    std::size_t candidate = node.device_count();
    double cheapest_raise = 0.0;
    for (std::size_t i = 0; i < node.device_count(); ++i) {
      Device& d = node.device(i);
      if (ceiling_[i] + 1 >= d.num_ops()) continue;
      if (!d.busy()) continue;
      const auto& next = d.spec().dvfs.at(ceiling_[i] + 1);
      const double mem_frac = d.workload().memory_boundedness(d.op());
      const double act = d.workload().activity * (1.0 - mem_frac) +
                         0.25 * d.workload().activity * mem_frac;
      const double raised =
          d.power_model().total_power_w(next, act, d.temperature_c());
      const double delta = raised - d.power_w();
      if (candidate == node.device_count() || delta < cheapest_raise) {
        candidate = i;
        cheapest_raise = delta;
      }
    }
    if (candidate < node.device_count() &&
        p + cheapest_raise <= 0.95 * budget_w_) {
      ++ceiling_[candidate];
      changed = true;
    }
  }
  clamp(node);
  return changed;
}

ClusterPowerManager::ClusterPowerManager(double facility_budget_w)
    : budget_w_(facility_budget_w) {
  ANTAREX_REQUIRE(budget_w_ > 0.0, "ClusterPowerManager: non-positive budget");
}

void ClusterPowerManager::step(std::vector<Node>& nodes) {
  if (nodes.empty()) return;
  alloc_.assign(nodes.size(), 0.0);
  while (node_ctl_.size() < nodes.size()) node_ctl_.emplace_back(1.0);

  // Floor: base power plus every device at its lowest P-state (idle).
  std::vector<double> floor(nodes.size());
  std::vector<double> demand(nodes.size());
  double floor_total = 0.0;
  double demand_total = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    double f = nodes[i].base_power_w();
    for (const auto& d : nodes[i].devices())
      f += d.power_model().idle_power_w(d.spec().dvfs.lowest(),
                                        d.temperature_c());
    floor[i] = f;
    demand[i] = std::max(nodes[i].power_w(), f);
    floor_total += f;
    demand_total += demand[i];
  }

  const double distributable = std::max(0.0, budget_w_ - floor_total);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double share =
        demand_total > 0.0 ? demand[i] / demand_total
                           : 1.0 / static_cast<double>(nodes.size());
    alloc_[i] = floor[i] + distributable * share;
    node_ctl_[i].set_budget_w(std::max(alloc_[i], 1.0));
    node_ctl_[i].step(nodes[i]);
  }
}

ThermalGuard::ThermalGuard(double t_crit_c, double hysteresis_c)
    : t_crit_(t_crit_c), hysteresis_(hysteresis_c) {
  ANTAREX_REQUIRE(hysteresis_ > 0.0, "ThermalGuard: non-positive hysteresis");
}

bool ThermalGuard::step(Device& device) {
  auto [it, inserted] = ceiling_.try_emplace(device.name(), device.num_ops() - 1);
  std::size_t& ceil = it->second;

  const double t = device.temperature_c();
  bool moved = false;
  if (t > t_crit_ && ceil > 0) {
    --ceil;
    ++throttles_;
    TELEMETRY_COUNT("rtrm.thermal_throttles", 1);
    moved = true;
  } else if (t < t_crit_ - hysteresis_ && ceil + 1 < device.num_ops()) {
    ++ceil;
    moved = true;
  }
  if (device.op_index() > ceil) device.set_op_index(ceil);
  return moved;
}

}  // namespace antarex::rtrm
