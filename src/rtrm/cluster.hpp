// The top-level simulated supercomputer: nodes + dispatcher + governors +
// hierarchical controllers + cooling plant, advanced on a logical clock.
//
// This is the "runtime resource manager (RTRM)" box of the paper's Figure 1
// together with the plant it manages.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "power/cooling.hpp"
#include "rtrm/controllers.hpp"
#include "rtrm/dispatcher.hpp"
#include "rtrm/governor.hpp"
#include "rtrm/node.hpp"
#include "support/sim_clock.hpp"

namespace antarex::exec {
class ThreadPool;
}

namespace antarex::rtrm {

struct ClusterConfig {
  GovernorPolicy governor = GovernorPolicy::Ondemand;
  PlacementPolicy placement = PlacementPolicy::FirstFit;
  bool backfill = false;  ///< EASY backfilling in the job dispatcher
  double control_period_s = 1.0;          ///< governor/controller cadence
  double ambient_c = 18.0;                ///< machine-room ambient
  std::optional<double> facility_cap_w;   ///< cluster power cap, if any
  bool thermal_guard = true;
  double t_crit_c = 85.0;
};

struct ClusterTelemetry {
  double time_s = 0.0;
  double it_energy_j = 0.0;       ///< integrated IT (node) energy
  double facility_energy_j = 0.0; ///< IT + cooling + overhead
  double peak_it_power_w = 0.0;
  double max_temperature_c = 0.0;
  u64 jobs_completed = 0;
  u64 jobs_failed = 0;  ///< jobs that exhausted their retry budget
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  Node& add_node(Node node);
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  Dispatcher& dispatcher() { return dispatcher_; }
  const Dispatcher& dispatcher() const { return dispatcher_; }
  const ClusterConfig& config() const { return config_; }
  void set_ambient_c(double c) { config_.ambient_c = c; }
  void set_governor(GovernorPolicy g) { config_.governor = g; }

  void submit(Job job) { dispatcher_.submit(std::move(job)); }

  // --- failures (driven by antarex::fault) -----------------------------------
  /// Crash node i at the current virtual time: its running jobs are
  /// interrupted and handed to the dispatcher for checkpoint rollback and
  /// backoff requeue (or Failed past their retry budget).
  void fail_node(std::size_t i);
  /// Bring node i back online; it accepts work again on the next place().
  void repair_node(std::size_t i);
  /// O(1): maintained on fail/repair instead of rescanning every node — the
  /// fault injector and cap coordinator poll this every step.
  std::size_t nodes_down() const { return down_count_; }

  /// Per-node power committed by the most recent simulation step, in node
  /// order (empty before the first step). Lets per-step consumers (the cap
  /// coordinator's energy ledger) reuse the stepper's own evaluations
  /// instead of re-walking every device model per tick.
  const std::vector<double>& last_node_power_w() const {
    return last_node_power_w_;
  }

  /// Step the plant's nodes on a thread pool (grain = one node per task).
  /// Completions are still committed serially in node-index order, so the
  /// simulation stays bit-identical to the serial path for any pool size.
  /// Pass nullptr to return to serial stepping.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Advance the simulation by `duration_s` in steps of `dt_s`, running the
  /// control loops every config.control_period_s.
  void run_for(double duration_s, double dt_s = 0.25);

  /// Run until the job queue and all devices drain (or max_s elapses).
  /// Returns true if everything completed.
  bool run_until_idle(double max_s = 1e7, double dt_s = 0.25);

  /// Power-authority hook running inside every control step, *after* the
  /// governor proposals, thermal guard, and built-in power manager: the
  /// govern layer's cap coordinator clamps P-states here so a cap holds
  /// before the next plant step draws any power. fn(nodes, now_s). Pass
  /// nullptr to detach.
  void set_control_hook(std::function<void(std::vector<Node>&, double)> fn) {
    control_hook_ = std::move(fn);
  }

  /// Global DVFS actuation (govern::DvfsActuator): clamp every device to
  /// (num_ops - 1 - steps) at each control step, i.e. `steps` P-states below
  /// its top. 0 restores nominal. Composes with per-device ceilings — the
  /// lower clamp wins.
  void set_op_step_down(std::size_t steps) { op_step_down_ = steps; }
  std::size_t op_step_down() const { return op_step_down_; }

  /// Also publish a per-node rtrm.node_power_w.<name> telemetry series every
  /// step (trace-grade volume; benches enable it under --telemetry=trace so
  /// cap decisions are visible per node in reports).
  void set_trace_node_power(bool enabled) { trace_node_power_ = enabled; }

  /// Observe every simulation step after it lands:
  /// fn(now_s, it_power_w, dt_s). Lets the obs layer drive energy sampling
  /// and policy ticks off the simulation clock. Pass nullptr to detach all
  /// observers installed through either setter.
  void set_step_observer(std::function<void(double, double, double)> fn) {
    step_observers_.clear();
    if (fn) step_observers_.push_back(std::move(fn));
  }

  /// Attach an additional observer without displacing existing ones — the
  /// fault injector and the obs sampler can watch the same cluster. Observers
  /// fire in attachment order, on the simulation thread.
  void add_step_observer(std::function<void(double, double, double)> fn) {
    ANTAREX_REQUIRE(fn != nullptr, "Cluster: null step observer");
    step_observers_.push_back(std::move(fn));
  }

  double now_s() const { return clock_.now(); }
  double it_power_w() const;
  double pue() const;
  const ClusterTelemetry& telemetry() const { return telemetry_; }
  const power::CoolingModel& cooling() const { return cooling_; }

 private:
  void control_step();

  ClusterConfig config_;
  std::vector<Node> nodes_;
  Dispatcher dispatcher_;
  power::CoolingModel cooling_;
  std::optional<ClusterPowerManager> power_manager_;
  ThermalGuard thermal_guard_;
  SimClock clock_;
  double next_control_s_ = 0.0;
  ClusterTelemetry telemetry_;
  std::vector<std::function<void(double, double, double)>> step_observers_;
  std::function<void(std::vector<Node>&, double)> control_hook_;
  std::size_t op_step_down_ = 0;
  bool trace_node_power_ = false;
  exec::ThreadPool* pool_ = nullptr;
  std::size_t down_count_ = 0;
  std::vector<double> last_node_power_w_;
};

}  // namespace antarex::rtrm
