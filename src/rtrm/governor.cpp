#include "rtrm/governor.hpp"

namespace antarex::rtrm {

const char* governor_name(GovernorPolicy p) {
  switch (p) {
    case GovernorPolicy::Performance: return "performance";
    case GovernorPolicy::Powersave: return "powersave";
    case GovernorPolicy::Ondemand: return "ondemand";
    case GovernorPolicy::EnergyAware: return "energy-aware";
  }
  return "?";
}

void apply_governor(Device& device, GovernorPolicy policy,
                    double base_power_share_w) {
  ANTAREX_REQUIRE(base_power_share_w >= 0.0,
                  "apply_governor: negative base power share");
  const std::size_t top = device.num_ops() - 1;
  switch (policy) {
    case GovernorPolicy::Performance:
      device.set_op_index(top);
      break;
    case GovernorPolicy::Powersave:
      device.set_op_index(0);
      break;
    case GovernorPolicy::Ondemand:
      device.set_op_index(device.busy() ? top : 0);
      break;
    case GovernorPolicy::EnergyAware: {
      if (!device.busy()) {
        device.set_op_index(0);
        return;
      }
      // Attributable node energy per work unit at each P-state, at the
      // device's current temperature (the monitors' live reading).
      const power::WorkloadModel& w = device.workload();
      std::size_t best = top;
      double best_e = 0.0;
      for (std::size_t i = 0; i < device.num_ops(); ++i) {
        const auto& op = device.spec().dvfs.at(i);
        const double e =
            power::energy_j(device.power_model(), w, op, 1.0,
                            device.temperature_c()) +
            base_power_share_w * w.execution_time_s(op);
        if (i == 0 || e <= best_e) {
          best_e = e;
          best = i;
        }
      }
      device.set_op_index(best);
      break;
    }
  }
}

}  // namespace antarex::rtrm
