// One device instance (CPU socket / MIC / GPU) under runtime management.
//
// A Device couples the analytic models from src/power (power, thermal, RAPL
// counter) with an execution state: the operating point chosen by a governor
// or controller, and the work currently assigned to it.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "power/dvfs.hpp"
#include "power/model.hpp"
#include "power/rapl.hpp"
#include "power/thermal.hpp"
#include "support/common.hpp"

namespace antarex::rtrm {

class Device {
 public:
  Device(std::string instance_name, power::DeviceSpec spec,
         power::Variability var = {});

  const std::string& name() const { return name_; }
  const power::DeviceSpec& spec() const { return model_.spec(); }
  const power::PowerModel& power_model() const { return model_; }

  // --- operating point ------------------------------------------------------
  std::size_t op_index() const { return op_index_; }
  /// Effective operating point: the governor's choice, unless a forced
  /// thermal throttle (PROCHOT-style, injected by antarex::fault) is active —
  /// hardware throttling overrides any OS/governor decision.
  const power::OperatingPoint& op() const {
    return spec().dvfs.at(throttled() ? 0 : op_index_);
  }
  void set_op_index(std::size_t i);
  std::size_t num_ops() const { return spec().dvfs.size(); }

  // --- fault state ----------------------------------------------------------
  /// Force the lowest P-state for the next `duration_s` of simulated time
  /// regardless of governor decisions (an injected thermal-throttle event).
  void force_throttle(double duration_s);
  bool throttled() const { return throttle_hold_s_ > 0.0; }

  /// Degrade execution speed by `factor` (>= 1; 1 restores nominal). Models a
  /// slow node: same power draw per active second, `factor` times the time —
  /// the silent performance faults PowerStack-style runtimes must detect.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

  /// Node crash support: drop the assigned job without completing it.
  /// Returns (job id, units still unfinished) if one was running.
  std::optional<std::pair<u64, double>> interrupt();

  /// Advance only the thermal state with zero power draw (the node lost
  /// power). No energy is accumulated; the die cools toward ambient.
  void step_offline(double dt_s, double ambient_c);

  u64 interrupted_jobs() const { return interrupted_; }

  // --- work assignment ------------------------------------------------------
  /// Assign `units` of work characterized by `w`. Fails if busy.
  void assign(power::WorkloadModel w, double units, u64 job_id);
  bool busy() const { return units_remaining_ > 0.0; }
  std::optional<u64> running_job() const;
  double units_remaining() const { return units_remaining_; }
  const power::WorkloadModel& workload() const { return workload_; }

  // --- simulation -----------------------------------------------------------
  /// Advance dt seconds: progress assigned work at the current operating
  /// point, update temperature, accumulate energy. Returns the job id if the
  /// assigned work completed within this step.
  std::optional<u64> step(double dt_s, double ambient_c);

  /// Instantaneous electrical power right now.
  double power_w(double ambient_c_unused = 0.0) const;

  /// Observable work progress rate (units/s) at the effective operating
  /// point — what a job-level heartbeat sensor reports. Reflects forced
  /// throttles (via op()) and injected slowdowns alike; 0 while idle. This
  /// is the signal antarex::monitor's slow-node detection keys on.
  double progress_rate_ups() const {
    if (!busy()) return 0.0;
    return 1.0 / (workload_.execution_time_s(op()) * slowdown_);
  }

  double temperature_c() const { return thermal_.temperature_c(); }
  const power::RaplDomain& rapl() const { return rapl_; }
  /// Mutable counter access for sensor-glitch injection (antarex::fault).
  power::RaplDomain& rapl() { return rapl_; }
  double busy_seconds() const { return busy_seconds_; }
  u64 completed_jobs() const { return completed_; }

 private:
  std::string name_;
  power::PowerModel model_;
  power::ThermalModel thermal_;
  power::RaplDomain rapl_;
  std::size_t op_index_;

  power::WorkloadModel workload_;
  double units_remaining_ = 0.0;
  u64 job_id_ = 0;
  double busy_seconds_ = 0.0;
  u64 completed_ = 0;
  u64 interrupted_ = 0;
  double throttle_hold_s_ = 0.0;
  double slowdown_ = 1.0;
};

}  // namespace antarex::rtrm
