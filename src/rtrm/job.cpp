#include "rtrm/job.hpp"

namespace antarex::rtrm {

const power::WorkloadModel& Job::profile(power::DeviceType t) const {
  auto it = profiles.find(t);
  ANTAREX_REQUIRE(it != profiles.end(),
                  "Job '" + name + "' has no profile for this device type");
  return it->second;
}

}  // namespace antarex::rtrm
