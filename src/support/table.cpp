#include "support/table.hpp"

#include <cctype>
#include <cstdio>

#include "support/common.hpp"

namespace antarex {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != 'x' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ANTAREX_REQUIRE(!header_.empty(), "Table: header must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ANTAREX_REQUIRE(cells.size() == header_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto pad = [&](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::string sep = "+";
  for (std::size_t w : width) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep;
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out += " " + pad(header_[c], width[c], false) + " |";
  out += "\n" + sep;
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      out += " " + pad(row[c], width[c], looks_numeric(row[c])) + " |";
    out += "\n";
  }
  out += sep;
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace antarex
