// Logical simulation clock.
//
// Every runtime component (monitors, RTRM control loops, job dispatcher)
// advances on this clock rather than wall time, keeping the full stack
// deterministic and fast to simulate.
#pragma once

#include "support/common.hpp"

namespace antarex {

class SimClock {
 public:
  /// Current simulated time in seconds.
  double now() const { return now_s_; }

  /// Advance by dt seconds (dt >= 0).
  void advance(double dt_s) {
    ANTAREX_REQUIRE(dt_s >= 0.0, "SimClock: cannot advance backwards");
    now_s_ += dt_s;
  }

  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace antarex
