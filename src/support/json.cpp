#include "support/json.hpp"

#include <cctype>
#include <cstdlib>

#include "support/strings.hpp"

namespace antarex {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += format("\\u%04x", static_cast<unsigned>(c));
        else
          out += c;
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

// --- JsonValue accessors ----------------------------------------------------

bool JsonValue::as_bool() const {
  ANTAREX_REQUIRE(kind_ == Kind::Bool, "json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  ANTAREX_REQUIRE(kind_ == Kind::Number, "json: value is not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  ANTAREX_REQUIRE(kind_ == Kind::String, "json: value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  ANTAREX_REQUIRE(kind_ == Kind::Array, "json: value is not an array");
  return items_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  ANTAREX_REQUIRE(kind_ == Kind::Object, "json: value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = get(key);
  ANTAREX_REQUIRE(v != nullptr, "json: missing key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  ANTAREX_REQUIRE(kind_ == Kind::Object, "json: value is not an object");
  return members_;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  if (kind_ != Kind::Object) return fallback;
  const JsonValue* v = get(key);
  return (v && v->is_number()) ? v->as_number() : fallback;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = n;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

// --- Parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    ANTAREX_REQUIRE(pos_ == s_.size(), err("trailing characters"));
    return v;
  }

 private:
  std::string err(const std::string& what) const {
    return format("json: %s at offset %zu", what.c_str(), pos_);
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    ANTAREX_REQUIRE(peek() == c, err(format("expected '%c'", c)));
    ++pos_;
  }

  bool consume_word(const char* word) {
    std::size_t i = 0;
    while (word[i]) {
      if (pos_ + i >= s_.size() || s_[pos_ + i] != word[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue::string(string_body());
      case 't':
        ANTAREX_REQUIRE(consume_word("true"), err("bad literal"));
        return JsonValue::boolean(true);
      case 'f':
        ANTAREX_REQUIRE(consume_word("false"), err("bad literal"));
        return JsonValue::boolean(false);
      case 'n':
        ANTAREX_REQUIRE(consume_word("null"), err("bad literal"));
        return JsonValue::null();
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::object(std::move(members));
    }
  }

  JsonValue array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::array(std::move(items));
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      ANTAREX_REQUIRE(pos_ < s_.size(), err("unterminated string"));
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      ANTAREX_REQUIRE(pos_ < s_.size(), err("unterminated escape"));
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          ANTAREX_REQUIRE(pos_ + 4 <= s_.size(), err("short \\u escape"));
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long cp = std::strtol(hex.c_str(), &end, 16);
          ANTAREX_REQUIRE(end && *end == '\0', err("bad \\u escape"));
          // ASCII decodes exactly; anything wider is out of scope here.
          out += (cp >= 0 && cp < 0x80) ? static_cast<char>(cp) : '?';
          break;
        }
        default: throw Error(err("unknown escape"));
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    ANTAREX_REQUIRE(pos_ > start, err("expected a value"));
    char* end = nullptr;
    const std::string text = s_.substr(start, pos_ - start);
    const double v = std::strtod(text.c_str(), &end);
    ANTAREX_REQUIRE(end && *end == '\0', err("malformed number"));
    return JsonValue::number(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace antarex
