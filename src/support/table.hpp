// ASCII table rendering used by the benchmark harnesses to print
// paper-vs-measured rows in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace antarex {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment; numeric-looking cells are right-aligned.
  std::string render() const;
  /// Render and write to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace antarex
