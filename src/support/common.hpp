// Common small utilities shared by every ANTAREX module.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace antarex {

/// Error raised by ANTAREX components on contract violations that are
/// recoverable by the caller (bad input, unknown names, malformed sources).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant check. Unlike assert(), stays active in release builds:
/// the simulators are deterministic, so a broken invariant is always a bug
/// worth a loud stop rather than silent corruption of results.
#define ANTAREX_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::std::fprintf(stderr, "ANTAREX_CHECK failed at %s:%d: %s\n",       \
                     __FILE__, __LINE__, (msg));                          \
      ::std::abort();                                                     \
    }                                                                     \
  } while (false)

/// Throwing contract check for user-facing API boundaries.
#define ANTAREX_REQUIRE(cond, msg)                \
  do {                                            \
    if (!(cond)) throw ::antarex::Error((msg));   \
  } while (false)

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

}  // namespace antarex
