// Minimal JSON support shared by the telemetry exporters, the bench report
// writer, and the antarex-report tool.
//
// Two halves:
//  - writing: json_escape()/json_quote() are the one escaping implementation
//    every hand-rolled JSON emitter in the tree must go through, so a metric
//    name or bench label containing quotes, backslashes, or control bytes can
//    never produce an invalid document;
//  - reading: a small recursive-descent parser for the documents this repo
//    itself produces (Chrome traces, metrics dumps, BENCH_*.json). It accepts
//    standard JSON, keeps object keys in insertion order, and throws
//    antarex::Error with an offset on malformed input. Not a general-purpose
//    library: no streaming, no \u surrogate pairs (escapes decode to '?'),
//    numbers as double.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex {

/// Escape a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s);

/// The escaped string wrapped in double quotes.
std::string json_quote(const std::string& s);

/// A parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_bool() const { return kind_ == Kind::Bool; }

  /// Typed accessors; throw antarex::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object lookup: get() returns nullptr when absent, at() throws.
  const JsonValue* get(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Convenience: number at `key`, or `fallback` when absent/not a number.
  double number_or(const std::string& key, double fallback) const;

  // Construction (used by the parser; handy for tests).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document; throws antarex::Error on syntax errors or
/// trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace antarex
