#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace antarex {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  ANTAREX_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0, 1]");
}

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::clear() {
  value_ = 0.0;
  seeded_ = false;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  ANTAREX_REQUIRE(capacity > 0, "SlidingWindow: capacity must be > 0");
  buf_.reserve(capacity);
}

void SlidingWindow::add(double x) {
  if (buf_.size() < capacity_) {
    buf_.push_back(x);
  } else {
    buf_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
}

double SlidingWindow::mean() const {
  if (buf_.empty()) return 0.0;
  double s = 0.0;
  for (double x : buf_) s += x;
  return s / static_cast<double>(buf_.size());
}

double SlidingWindow::percentile(double p) const {
  ANTAREX_REQUIRE(!buf_.empty(), "SlidingWindow::percentile: empty window");
  return ::antarex::percentile(buf_, p);
}

void SlidingWindow::clear() {
  buf_.clear();
  head_ = 0;
}

double percentile(std::vector<double> xs, double p) {
  ANTAREX_REQUIRE(!xs.empty(), "percentile: empty sample");
  ANTAREX_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0, 100]");
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  ANTAREX_REQUIRE(!xs.empty(), "geometric_mean: empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    ANTAREX_REQUIRE(x > 0.0, "geometric_mean: values must be positive");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ANTAREX_REQUIRE(hi > lo, "Histogram: hi must be > lo");
  ANTAREX_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  ANTAREX_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace antarex
