// Streaming and batch statistics used by monitors, benches and models.
#pragma once

#include <cstddef>
#include <vector>

#include "support/common.hpp"

namespace antarex {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average; the paper's monitors favour recent
/// operating conditions ("autotune the system according to the most recent
/// operating conditions", Sec. IV).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2);

  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !seeded_; }
  void clear();

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Sliding window over the last N samples with percentile queries; backs the
/// SLA monitors (e.g. p95 latency in the navigation server).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return buf_.size() == capacity_; }
  double mean() const;
  /// Percentile in [0,100] by nearest-rank on a sorted copy.
  double percentile(double p) const;
  void clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<double> buf_;
};

/// Nearest-rank percentile of an arbitrary sample (copies + sorts).
double percentile(std::vector<double> xs, double p);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& xs);

/// Geometric mean; requires all-positive values.
double geometric_mean(const std::vector<double>& xs);

/// Fixed-range histogram used by the workload analyses.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);  ///< out-of-range values are clamped to edge bins
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace antarex
