#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace antarex {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string fmt_double(double v, int decimals) {
  return format("%.*f", decimals, v);
}

}  // namespace antarex
