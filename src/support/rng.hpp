// Deterministic pseudo-random number generation.
//
// All stochastic elements of the ANTAREX simulators (manufacturing
// variability, workload generators, exploration strategies) draw from these
// generators so that every test and benchmark is reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace antarex {

/// SplitMix64: used to seed Xoshiro and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next();

 private:
  u64 state_;
};

/// xoshiro256** by Blackman & Vigna — the project-wide PRNG.
/// Deterministic, fast, and independent of the C++ standard library's
/// implementation-defined distributions.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed'ba5e'0000'0001ULL);

  /// Uniform in [0, 2^64).
  u64 next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  i64 uniform_int(i64 lo, i64 hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Weibull with shape k (> 0) and scale lambda (> 0). shape > 1 models
  /// wear-out (hazard grows with age) — the standard MTBF model for node
  /// crashes in the fault injector.
  double weibull(double shape, double scale);

  /// Pareto with scale x_m (> 0) and shape alpha (> 0). Heavy-tailed; used to
  /// model the "widely varying time" of docking tasks (paper Sec. VII-a).
  double pareto(double x_m, double alpha);

  /// true with probability p.
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, n).
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent generator (for parallel streams).
  Rng split();

 private:
  u64 s_[4];
};

}  // namespace antarex
