// Small string helpers shared by the DSL/C frontends and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace antarex {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable double with fixed decimals (benches/report tables).
std::string fmt_double(double v, int decimals = 2);

}  // namespace antarex
