#include "support/rng.hpp"

#include <cmath>
#include <limits>

namespace antarex {

namespace {
inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

u64 SplitMix64::next() {
  u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(u64 seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ANTAREX_REQUIRE(lo <= hi, "Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

i64 Rng::uniform_int(i64 lo, i64 hi) {
  ANTAREX_REQUIRE(lo <= hi, "Rng::uniform_int: lo > hi");
  const u64 span = static_cast<u64>(hi - lo) + 1;
  if (span == 0) return static_cast<i64>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const u64 limit = std::numeric_limits<u64>::max() - std::numeric_limits<u64>::max() % span;
  u64 r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<i64>(r % span);
}

double Rng::normal() {
  // Box-Muller; discard the spare to keep the stream position deterministic
  // regardless of call interleaving.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  ANTAREX_REQUIRE(lambda > 0.0, "Rng::exponential: lambda must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::weibull(double shape, double scale) {
  ANTAREX_REQUIRE(shape > 0.0 && scale > 0.0,
                  "Rng::weibull: parameters must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::pareto(double x_m, double alpha) {
  ANTAREX_REQUIRE(x_m > 0.0 && alpha > 0.0, "Rng::pareto: parameters must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  ANTAREX_REQUIRE(n > 0, "Rng::index: empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<i64>(n) - 1));
}

Rng Rng::split() {
  Rng child(next_u64() ^ 0xa5a5'5a5a'dead'beefULL);
  return child;
}

}  // namespace antarex
