#include "nav/nav.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

namespace antarex::nav {

namespace {
constexpr double kDay = 86400.0;

double wrap_tod(double t) {
  double tod = std::fmod(t, kDay);
  if (tod < 0.0) tod += kDay;
  return tod;
}
}  // namespace

double SpeedProfiles::congestion(double time_of_day_s) {
  const double t = wrap_tod(time_of_day_s) / 3600.0;  // hours
  // Two Gaussian rush peaks: 8:30 and 17:30.
  const double morning = std::exp(-(t - 8.5) * (t - 8.5) / (2.0 * 1.2 * 1.2));
  const double evening = std::exp(-(t - 17.5) * (t - 17.5) / (2.0 * 1.5 * 1.5));
  return std::min(1.0, morning + evening);
}

double SpeedProfiles::multiplier(int road_class, double time_of_day_s) const {
  ANTAREX_REQUIRE(road_class >= 0 && road_class < kClasses,
                  "SpeedProfiles: unknown road class");
  const double c = congestion(time_of_day_s);
  // Arterials suffer most under congestion; locals least.
  static constexpr double kSensitivity[kClasses] = {0.25, 0.45, 0.65};
  return 1.0 - kSensitivity[road_class] * c;
}

std::size_t RoadGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& v : adj) n += v.size();
  return n;
}

double RoadGraph::max_speed_mps() const {
  double s = 0.0;
  for (const auto& v : adj)
    for (const auto& e : v) s = std::max(s, e.free_speed_mps);
  return s;
}

RoadGraph RoadGraph::grid_city(Rng& rng, int w, int h, double spacing_m,
                               int arterial_every, double removal_rate) {
  ANTAREX_REQUIRE(w >= 2 && h >= 2, "grid_city: need at least a 2x2 grid");
  ANTAREX_REQUIRE(arterial_every >= 2, "grid_city: arterial_every must be >= 2");

  RoadGraph g;
  const auto id = [w](int x, int y) { return static_cast<u32>(y * w + x); };
  g.adj.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  g.coords.resize(g.adj.size());
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      g.coords[id(x, y)] = {x * spacing_m, y * spacing_m};

  auto classify = [&](int x0, int y0, int x1, int y1) {
    const bool horizontal = y0 == y1;
    const int line = horizontal ? y0 : x0;
    (void)x1;
    (void)y1;
    if (line % arterial_every == 0) return 2;
    if (line % 2 == 0) return 1;
    return 0;
  };
  auto speed_for = [&](int cls) {
    switch (cls) {
      case 2: return 22.2;  // 80 km/h arterial
      case 1: return 16.7;  // 60 km/h collector
      default: return 11.1; // 40 km/h local
    }
  };

  auto connect = [&](int x0, int y0, int x1, int y1) {
    if (rng.bernoulli(removal_rate)) return;  // missing street
    const int cls = classify(x0, y0, x1, y1);
    Edge e;
    e.length_m = spacing_m * rng.uniform(1.0, 1.15);  // streets are not ideal lines
    e.free_speed_mps = speed_for(cls);
    e.road_class = cls;
    e.to = id(x1, y1);
    g.adj[id(x0, y0)].push_back(e);
    e.to = id(x0, y0);
    g.adj[id(x1, y1)].push_back(e);
  };

  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) connect(x, y, x + 1, y);
      if (y + 1 < h) connect(x, y, x, y + 1);
    }
  return g;
}

double edge_travel_time_s(const RoadGraph::Edge& e, const SpeedProfiles& profiles,
                          double depart_s) {
  const double speed = e.free_speed_mps * profiles.multiplier(e.road_class, depart_s);
  ANTAREX_CHECK(speed > 0.0, "edge speed must stay positive");
  return e.length_m / speed;
}

namespace {

/// Free-flow (no congestion) single-source travel times.
std::vector<double> free_flow_times(const RoadGraph& g, u32 source) {
  std::vector<double> dist(g.num_nodes(), std::numeric_limits<double>::infinity());
  using Item = std::pair<double, u32>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> open;
  dist[source] = 0.0;
  open.push({0.0, source});
  while (!open.empty()) {
    const auto [d, v] = open.top();
    open.pop();
    if (d > dist[v]) continue;
    for (const auto& e : g.adj[v]) {
      const double nd = d + e.length_m / e.free_speed_mps;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        open.push({nd, e.to});
      }
    }
  }
  return dist;
}

}  // namespace

Landmarks::Landmarks(const RoadGraph& g, int count, Rng& rng) {
  ANTAREX_REQUIRE(count >= 1, "Landmarks: need at least one landmark");
  ANTAREX_REQUIRE(g.num_nodes() > 0, "Landmarks: empty graph");

  // Farthest-point selection: start random, then repeatedly pick the node
  // farthest (in free-flow time) from the current landmark set.
  std::vector<u32> picks;
  picks.push_back(static_cast<u32>(rng.index(g.num_nodes())));
  dist_.push_back(free_flow_times(g, picks.back()));
  while (static_cast<int>(picks.size()) < count) {
    u32 farthest = picks[0];
    double best = -1.0;
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& d : dist_) nearest = std::min(nearest, d[v]);
      if (std::isfinite(nearest) && nearest > best) {
        best = nearest;
        farthest = v;
      }
    }
    picks.push_back(farthest);
    dist_.push_back(free_flow_times(g, farthest));
  }
}

double Landmarks::lower_bound_s(u32 from, u32 to) const {
  // Triangle inequality on free-flow distances (the network is symmetric):
  // t(from, to) >= |d(L, to) - d(L, from)| for every landmark L.
  double bound = 0.0;
  for (const auto& d : dist_) {
    const double a = d[from];
    const double b = d[to];
    if (!std::isfinite(a) || !std::isfinite(b)) continue;
    bound = std::max(bound, std::fabs(b - a));
  }
  return bound;
}

namespace {

struct Label {
  double f;  // priority (arrival + heuristic)
  double arrival;
  u32 node;
  bool operator>(const Label& other) const { return f > other.f; }
};

Route run_search(const RoadGraph& g, const SpeedProfiles& profiles, u32 from,
                 u32 to, double depart_s, const QueryOptions& opts,
                 const std::vector<double>* edge_penalty) {
  ANTAREX_REQUIRE(from < g.num_nodes() && to < g.num_nodes(),
                  "shortest_path: node id out of range");
  Route route;
  const std::size_t n = g.num_nodes();
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<u32> parent(n, std::numeric_limits<u32>::max());
  std::vector<bool> settled(n, false);

  const double vmax = g.max_speed_mps();
  auto heuristic = [&](u32 v) {
    if (!opts.astar) return 0.0;
    if (opts.landmarks) return opts.epsilon * opts.landmarks->lower_bound_s(v, to);
    const auto [x0, y0] = g.coords[v];
    const auto [x1, y1] = g.coords[to];
    const double d = std::hypot(x1 - x0, y1 - y0);
    return opts.epsilon * d / vmax;
  };

  std::priority_queue<Label, std::vector<Label>, std::greater<>> open;
  best[from] = depart_s;
  open.push({depart_s + heuristic(from), depart_s, from});

  // Penalized edge cost index: flattened (node, edge#) offsets.
  std::vector<std::size_t> edge_base;
  if (edge_penalty) {
    edge_base.resize(n, 0);
    std::size_t off = 0;
    for (std::size_t v = 0; v < n; ++v) {
      edge_base[v] = off;
      off += g.adj[v].size();
    }
  }

  while (!open.empty()) {
    const Label top = open.top();
    open.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    ++route.expanded;
    if (top.node == to) break;

    const auto& edges = g.adj[top.node];
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      const auto& e = edges[ei];
      double tt = edge_travel_time_s(e, profiles, top.arrival);
      if (edge_penalty) tt *= (*edge_penalty)[edge_base[top.node] + ei];
      const double arr = top.arrival + tt;
      if (arr < best[e.to]) {
        best[e.to] = arr;
        parent[e.to] = top.node;
        open.push({arr + heuristic(e.to), arr, e.to});
      }
    }
  }

  if (!settled[to]) return route;  // unreachable
  route.travel_time_s = best[to] - depart_s;
  std::vector<u32> rev;
  for (u32 v = to; v != std::numeric_limits<u32>::max(); v = parent[v]) {
    rev.push_back(v);
    if (v == from) break;
  }
  route.nodes.assign(rev.rbegin(), rev.rend());
  return route;
}

}  // namespace

Route shortest_path_td(const RoadGraph& g, const SpeedProfiles& profiles, u32 from,
                       u32 to, double depart_s, const QueryOptions& opts) {
  ANTAREX_REQUIRE(opts.epsilon >= 1.0, "shortest_path: epsilon must be >= 1");
  return run_search(g, profiles, from, to, depart_s, opts, nullptr);
}

std::vector<Route> k_alternatives(const RoadGraph& g, const SpeedProfiles& profiles,
                                  u32 from, u32 to, double depart_s, int k,
                                  double penalty, const QueryOptions& opts) {
  ANTAREX_REQUIRE(k >= 1, "k_alternatives: k must be >= 1");
  ANTAREX_REQUIRE(penalty > 1.0, "k_alternatives: penalty must be > 1");

  std::vector<double> edge_penalty(g.num_edges(), 1.0);
  std::vector<std::size_t> edge_base(g.num_nodes(), 0);
  {
    std::size_t off = 0;
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      edge_base[v] = off;
      off += g.adj[v].size();
    }
  }

  std::vector<Route> out;
  std::unordered_set<std::string> seen;
  for (int i = 0; i < k; ++i) {
    Route r = run_search(g, profiles, from, to, depart_s, opts, &edge_penalty);
    if (!r.found()) break;
    // Deduplicate identical node sequences.
    std::string key;
    for (u32 v : r.nodes) key += std::to_string(v) + ",";
    // Penalize this route's edges for the next iteration.
    for (std::size_t j = 0; j + 1 < r.nodes.size(); ++j) {
      const u32 a = r.nodes[j];
      const u32 b = r.nodes[j + 1];
      for (std::size_t ei = 0; ei < g.adj[a].size(); ++ei)
        if (g.adj[a][ei].to == b) edge_penalty[edge_base[a] + ei] *= penalty;
    }
    if (seen.insert(key).second) out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const Route& a, const Route& b) {
    return a.travel_time_s < b.travel_time_s;
  });
  return out;
}

std::vector<Request> diurnal_requests(Rng& rng, const RoadGraph& g,
                                      double duration_s, double base_rate_hz,
                                      double peak_rate_hz, double start_tod_s) {
  ANTAREX_REQUIRE(duration_s > 0.0, "diurnal_requests: non-positive duration");
  ANTAREX_REQUIRE(base_rate_hz >= 0.0 && peak_rate_hz >= 0.0,
                  "diurnal_requests: negative rates");
  std::vector<Request> out;
  const double lambda_max = base_rate_hz + peak_rate_hz;
  if (lambda_max <= 0.0) return out;

  // Thinning algorithm for the non-homogeneous Poisson process.
  double t = 0.0;
  while (true) {
    t += rng.exponential(lambda_max);
    if (t >= duration_s) break;
    const double lam =
        base_rate_hz + peak_rate_hz * SpeedProfiles::congestion(start_tod_s + t);
    if (!rng.bernoulli(lam / lambda_max)) continue;
    Request r;
    r.arrival_s = t;
    r.from = static_cast<u32>(rng.index(g.num_nodes()));
    do {
      r.to = static_cast<u32>(rng.index(g.num_nodes()));
    } while (r.to == r.from);
    out.push_back(r);
  }
  return out;
}

}  // namespace antarex::nav
