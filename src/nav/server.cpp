#include "nav/server.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <queue>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace antarex::nav {

NavServer::NavServer(const RoadGraph& graph, const SpeedProfiles& profiles,
                     double cost_per_expansion_s, int workers)
    : graph_(graph),
      profiles_(profiles),
      unit_cost_s_(cost_per_expansion_s),
      workers_(workers) {
  ANTAREX_REQUIRE(unit_cost_s_ > 0.0, "NavServer: non-positive unit cost");
  ANTAREX_REQUIRE(workers_ >= 1, "NavServer: need at least one worker");
}

void NavServer::set_degradation(Degradation d) {
  ANTAREX_REQUIRE(d.healthy_workers == -1 ||
                      (d.healthy_workers >= 1 && d.healthy_workers <= workers_),
                  "NavServer: healthy_workers out of range");
  ANTAREX_REQUIRE(d.shed_backlog >= 1, "NavServer: shed_backlog must be >= 1");
  ANTAREX_REQUIRE(d.stale_service_s >= 0.0,
                  "NavServer: negative stale service cost");
  degradation_ = d;
}

bool NavServer::try_degraded(const Request& req, std::size_t backlog,
                             ServedRequest& served) {
  if (backlog < degradation_.shed_backlog) return false;
  if (degradation_.serve_stale) {
    const auto hit = quality_cache_.find({req.from, req.to});
    if (hit != quality_cache_.end()) {
      served.stale = true;
      served.service_s = degradation_.stale_service_s;
      served.quality = hit->second;
      TELEMETRY_COUNT("nav.requests_stale", 1);
      return true;
    }
  }
  served.shed = true;
  served.service_s = 0.0;
  served.quality = 0.0;
  TELEMETRY_COUNT("nav.requests_shed", 1);
  return true;
}

void NavServer::remember(const ServedRequest& served) {
  quality_cache_[{served.request.from, served.request.to}] = served.quality;
}

void NavServer::compute_route(const Request& req, const ServerKnobs& knobs,
                              ServedRequest& served) const {
  u64 expanded = 0;
  Route primary;
  if (knobs.k_routes == 1) {
    primary = shortest_path_td(graph_, profiles_, req.from, req.to,
                               req.arrival_s, knobs.opts);
    expanded = primary.expanded;
  } else {
    auto routes = k_alternatives(graph_, profiles_, req.from, req.to,
                                 req.arrival_s, knobs.k_routes, 1.3, knobs.opts);
    for (const auto& r : routes) expanded += r.expanded;
    if (!routes.empty()) primary = routes.front();
  }
  served.expanded = expanded;
  served.service_s = static_cast<double>(expanded) * unit_cost_s_;

  // Quality: exact optimum / returned time. epsilon == 1 with A* is
  // admissible, so only inflated searches can lose quality.
  if (primary.found()) {
    if (knobs.opts.epsilon > 1.0) {
      const Route exact = shortest_path_td(graph_, profiles_, req.from, req.to,
                                           req.arrival_s, {true, 1.0});
      served.quality = exact.found() && primary.travel_time_s > 0.0
                           ? exact.travel_time_s / primary.travel_time_s
                           : 1.0;
    } else {
      served.quality = 1.0;
    }
  } else {
    served.quality = 0.0;  // unreachable pair: worst quality
  }
}

std::vector<ServedRequest> NavServer::serve(const std::vector<Request>& requests,
                                            const Policy& policy,
                                            const Observer& observer) {
  ANTAREX_REQUIRE(policy != nullptr, "NavServer: null policy");
  for (std::size_t i = 1; i < requests.size(); ++i)
    ANTAREX_REQUIRE(requests[i].arrival_s >= requests[i - 1].arrival_s,
                    "NavServer: requests must be sorted by arrival");

  std::vector<ServedRequest> out;
  out.reserve(requests.size());

  // Worker pool as a min-heap of next-free times. Crashed handlers
  // (degradation.healthy_workers) simply never contribute a slot.
  const int live_workers = degradation_.healthy_workers == -1
                               ? workers_
                               : degradation_.healthy_workers;
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < live_workers; ++w) free_at.push(0.0);

  // Queue length accounting: arrivals not yet started.
  std::vector<double> start_times;

  // Per-request latency distribution (seconds). 0..2 s covers the SLA band
  // the navigation use case tunes around; beyond-range requests clamp into
  // the top bucket, which is exactly the "SLA blown" signal.
  auto& latency_hist =
      telemetry::Registry::global().histogram("nav.latency_s", 0.0, 2.0, 40);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    // One request = one causal tree, rooted at a deterministic id derived
    // from the request index (byte-identical across runs and thread counts).
    const telemetry::TraceContext root =
        telemetry::TraceContext::root(static_cast<u64>(i) + 1);
    telemetry::ContextScope ctx_scope(root);
    TELEMETRY_SPAN("nav.request");
    // Queue length seen on arrival: requests that started after this arrival
    // is an approximation; use backlog = number of pending starts > arrival.
    std::size_t backlog = 0;
    for (double s : start_times)
      if (s > req.arrival_s) ++backlog;

    const ServerKnobs knobs = policy(backlog, req.arrival_s);
    ANTAREX_REQUIRE(knobs.k_routes >= 1, "NavServer: policy produced k < 1");

    ServedRequest served;
    served.request = req;
    served.knobs_used = knobs;

    if (try_degraded(req, backlog, served)) {
      // Answered (or dropped) at the front door: no worker slot consumed.
      if (served.shed) {
        TELEMETRY_SPAN("nav.shed");
      } else {
        TELEMETRY_SPAN("nav.stale");
      }
      served.queue_wait_s = 0.0;
      served.latency_s = served.service_s;
    } else {
      const double worker_free = free_at.top();
      free_at.pop();
      const double start = std::max(req.arrival_s, worker_free);

      // Run the actual routing computation.
      {
        TELEMETRY_SPAN("nav.compute");
        compute_route(req, knobs, served);
      }
      remember(served);
      served.queue_wait_s = start - req.arrival_s;
      served.latency_s = served.queue_wait_s + served.service_s;

      free_at.push(start + served.service_s);
      start_times.push_back(start);
    }

    TELEMETRY_COUNT("nav.requests", 1);
    TELEMETRY_COUNT("nav.nodes_expanded", served.expanded);
    TELEMETRY_GAUGE("nav.queue_depth", static_cast<double>(backlog));
    latency_hist.add(served.latency_s);

    if (observer) observer(served);
    out.push_back(std::move(served));
  }
  return out;
}

ConcurrentServeResult NavServer::serve_concurrent(
    exec::ThreadPool& pool, const std::vector<Request>& requests,
    const Policy& policy, std::size_t max_in_flight, const Observer& observer) {
  ANTAREX_REQUIRE(policy != nullptr, "NavServer: null policy");
  ANTAREX_REQUIRE(max_in_flight >= 1,
                  "NavServer: serve_concurrent needs max_in_flight >= 1");
  // The govern admission actuator shrinks the window below what the caller
  // asked for. Read once at entry: one serve call = one window size, so the
  // backlog sequence (and every knob decision) stays deterministic.
  max_in_flight = std::min(max_in_flight, std::max<std::size_t>(1, admission_cap_));
  for (std::size_t i = 1; i < requests.size(); ++i)
    ANTAREX_REQUIRE(requests[i].arrival_s >= requests[i - 1].arrival_s,
                    "NavServer: requests must be sorted by arrival");

  ConcurrentServeResult out;
  out.served.resize(requests.size());
  out.threads = pool.size();

  auto& latency_hist =
      telemetry::Registry::global().histogram("nav.latency_s", 0.0, 2.0, 40);

  pool.reset_stats();
  const auto t0 = std::chrono::steady_clock::now();

  // Bounded admission window: futures for in-flight requests, collected
  // strictly in submission order so the observer sequence is deterministic.
  std::deque<std::pair<std::size_t, std::future<void>>> window;
  auto collect_front = [&] {
    auto [idx, fut] = std::move(window.front());
    window.pop_front();
    fut.get();  // rethrows if the routing computation threw
    ServedRequest& served = out.served[idx];
    remember(served);
    served.latency_s = served.service_s;  // no virtual queue in this mode
    TELEMETRY_COUNT("nav.requests", 1);
    TELEMETRY_COUNT("nav.nodes_expanded", served.expanded);
    latency_hist.add(served.latency_s);
    if (observer) observer(served);
  };

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (window.size() >= max_in_flight) collect_front();

    // Backlog = in-flight count at admission. Depends only on i and
    // max_in_flight, never on thread timing — knob decisions reproduce.
    const std::size_t backlog = window.size();
    const ServerKnobs knobs = policy(backlog, requests[i].arrival_s);
    ANTAREX_REQUIRE(knobs.k_routes >= 1, "NavServer: policy produced k < 1");
    TELEMETRY_GAUGE("nav.queue_depth", static_cast<double>(backlog));

    ServedRequest& served = out.served[i];
    served.request = requests[i];
    served.knobs_used = knobs;

    // Root of this request's causal tree; the 'S' mark at admission is the
    // flow-start the queue-wait segment is measured from.
    const telemetry::TraceContext root =
        telemetry::TraceContext::root(static_cast<u64>(i) + 1);

    if (try_degraded(requests[i], backlog, served)) {
      // Degraded answers never enter the pool; they are final immediately.
      // (The observer therefore sees them at admission time, slightly ahead
      // of still-in-flight earlier requests — a deterministic order either
      // way, since backlog depends only on i and max_in_flight.)
      telemetry::mark_scheduled(root);
      {
        telemetry::ContextScope ctx_scope(root);
        TELEMETRY_SPAN("nav.request");
        if (served.shed) {
          TELEMETRY_SPAN("nav.shed");
        } else {
          TELEMETRY_SPAN("nav.stale");
        }
      }
      served.latency_s = served.service_s;
      TELEMETRY_COUNT("nav.requests", 1);
      latency_hist.add(served.latency_s);
      if (observer) observer(served);
      continue;
    }

    telemetry::mark_scheduled(root);
    window.emplace_back(i,
                        pool.async([this, &served, i, knobs, &requests, root] {
                          telemetry::ContextScope ctx_scope(root);
                          TELEMETRY_SPAN("nav.request");
                          TELEMETRY_SPAN("nav.compute");
                          compute_route(requests[i], knobs, served);
                        }));
  }
  while (!window.empty()) collect_front();

  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.steals = pool.stats().steals;
  pool.publish_telemetry();
  return out;
}

}  // namespace antarex::nav
