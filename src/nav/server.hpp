// The navigation server simulation: requests queue at a server farm whose
// per-request compute cost depends on the routing knobs — the plant the
// ANTAREX autotuner manages to keep the latency SLA under diurnal load
// ("balancing data collection, big data analysis and extreme computational
// power", paper Sec. VII-b).
#pragma once

#include <functional>

#include "nav/nav.hpp"

namespace antarex::nav {

/// The server-side software knobs (the DSL/application parameters the
/// autotuner drives).
struct ServerKnobs {
  QueryOptions opts;       ///< astar + epsilon (quality/latency trade)
  int k_routes = 1;        ///< alternatives computed per request
};

struct ServedRequest {
  Request request;
  double queue_wait_s = 0.0;
  double service_s = 0.0;      ///< compute time (expansions x unit cost)
  double latency_s = 0.0;      ///< wait + service
  double quality = 1.0;        ///< optimal_time / returned_time, in (0, 1]
  u64 expanded = 0;
  ServerKnobs knobs_used;
};

class NavServer {
 public:
  /// cost_per_expansion_s: CPU seconds per settled node (calibrates the
  /// simulated machine); workers: parallel request handlers.
  NavServer(const RoadGraph& graph, const SpeedProfiles& profiles,
            double cost_per_expansion_s = 2e-6, int workers = 2);

  /// Knob policy consulted per request. Inputs: current queue length at the
  /// request's arrival and the time of day — enough for both static policies
  /// (ignore inputs) and adaptive ones.
  using Policy = std::function<ServerKnobs(std::size_t queue_length,
                                           double time_of_day_s)>;

  /// Completion hook, invoked after each served request (used by the
  /// autotuner integration to feed monitors).
  using Observer = std::function<void(const ServedRequest&)>;

  /// Serve all requests (must be sorted by arrival time). Deterministic.
  std::vector<ServedRequest> serve(const std::vector<Request>& requests,
                                   const Policy& policy,
                                   const Observer& observer = nullptr);

 private:
  const RoadGraph& graph_;
  const SpeedProfiles& profiles_;
  double unit_cost_s_;
  int workers_;
};

}  // namespace antarex::nav
