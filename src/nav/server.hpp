// The navigation server simulation: requests queue at a server farm whose
// per-request compute cost depends on the routing knobs — the plant the
// ANTAREX autotuner manages to keep the latency SLA under diurnal load
// ("balancing data collection, big data analysis and extreme computational
// power", paper Sec. VII-b).
//
// Two serving modes:
//  - serve(): the original single-threaded virtual-time simulation (workers
//    are a min-heap of next-free times). Fully deterministic including waits.
//  - serve_concurrent(): requests actually execute on an exec::ThreadPool
//    with a bounded in-flight window. Routing outcomes (expansions, quality,
//    knobs, modelled service time) are byte-identical to serve() with the
//    matching backlog sequence; wall-clock figures are measured.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "exec/pool.hpp"
#include "nav/nav.hpp"

namespace antarex::nav {

/// The server-side software knobs (the DSL/application parameters the
/// autotuner drives).
struct ServerKnobs {
  QueryOptions opts;       ///< astar + epsilon (quality/latency trade)
  int k_routes = 1;        ///< alternatives computed per request
};

struct ServedRequest {
  Request request;
  double queue_wait_s = 0.0;
  double service_s = 0.0;      ///< compute time (expansions x unit cost)
  double latency_s = 0.0;      ///< wait + service
  double quality = 1.0;        ///< optimal_time / returned_time, in (0, 1]
  u64 expanded = 0;
  ServerKnobs knobs_used;
  bool shed = false;           ///< dropped under overload (no route computed)
  bool stale = false;          ///< answered from the stale-route cache
};

/// Outcome of serve_concurrent: per-request results in submission order plus
/// measured execution figures from the pool.
struct ConcurrentServeResult {
  std::vector<ServedRequest> served;  ///< index order == request order
  double wall_s = 0.0;                ///< measured wall-clock seconds
  u64 steals = 0;                     ///< pool steals during the run
  int threads = 1;
};

class NavServer {
 public:
  /// cost_per_expansion_s: CPU seconds per settled node (calibrates the
  /// simulated machine); workers: parallel request handlers.
  NavServer(const RoadGraph& graph, const SpeedProfiles& profiles,
            double cost_per_expansion_s = 2e-6, int workers = 2);

  /// Graceful degradation under faults/overload (antarex::fault). When the
  /// backlog at a request's arrival reaches shed_backlog, the server stops
  /// computing fresh routes: if serve_stale and the (from, to) pair was
  /// answered before, the cached answer is returned at a fixed tiny cost
  /// (stale = true); otherwise the request is shed (quality 0, no compute,
  /// shed = true). healthy_workers (serve() mode only) models crashed request
  /// handlers: the virtual worker pool shrinks to that many slots.
  struct Degradation {
    int healthy_workers = -1;               ///< -1: all workers healthy
    std::size_t shed_backlog = SIZE_MAX;    ///< SIZE_MAX: never degrade
    bool serve_stale = true;
    double stale_service_s = 1e-5;          ///< cost of a cache hit
  };
  void set_degradation(Degradation d);
  const Degradation& degradation() const { return degradation_; }

  /// Power-governance admission throttle (govern::NavActuator): an upper
  /// bound on serve_concurrent's in-flight window regardless of what the
  /// caller passes. Read once per serve call (deterministic backlog
  /// sequence); SIZE_MAX (default) means uncapped. Clamped to >= 1.
  void set_admission_cap(std::size_t cap) {
    admission_cap_ = std::max<std::size_t>(1, cap);
  }
  std::size_t admission_cap() const { return admission_cap_; }

  /// Knob policy consulted per request. Inputs: current queue length at the
  /// request's arrival and the time of day — enough for both static policies
  /// (ignore inputs) and adaptive ones.
  using Policy = std::function<ServerKnobs(std::size_t queue_length,
                                           double time_of_day_s)>;

  /// Completion hook, invoked after each served request (used by the
  /// autotuner integration to feed monitors).
  using Observer = std::function<void(const ServedRequest&)>;

  /// Serve all requests (must be sorted by arrival time). Deterministic.
  std::vector<ServedRequest> serve(const std::vector<Request>& requests,
                                   const Policy& policy,
                                   const Observer& observer = nullptr);

  /// Serve all requests on `pool`, at most `max_in_flight` outstanding at
  /// once (bounded admission queue: when full, the oldest request is awaited
  /// before the next is admitted). The policy's backlog input is the
  /// in-flight count at admission — a deterministic sequence (min(i,
  /// max_in_flight-1) once warm), so knob decisions and routing outcomes are
  /// reproducible across thread counts; the observer fires in submission
  /// order. queue_wait_s is 0 and latency_s equals the modelled service_s in
  /// this mode — real waiting shows up in the measured wall_s.
  ConcurrentServeResult serve_concurrent(exec::ThreadPool& pool,
                                         const std::vector<Request>& requests,
                                         const Policy& policy,
                                         std::size_t max_in_flight = 64,
                                         const Observer& observer = nullptr);

 private:
  /// The per-request routing computation shared by both serving modes:
  /// route (k alternatives if asked), expansion count, quality vs the exact
  /// optimum. Pure — safe to run concurrently on const graph/profiles.
  void compute_route(const Request& req, const ServerKnobs& knobs,
                     ServedRequest& served) const;

  /// Degraded-mode answer for one request (stale cache hit or shed). Returns
  /// false when the request must be computed normally.
  bool try_degraded(const Request& req, std::size_t backlog,
                    ServedRequest& served);
  void remember(const ServedRequest& served);

  const RoadGraph& graph_;
  const SpeedProfiles& profiles_;
  double unit_cost_s_;
  int workers_;
  Degradation degradation_;
  std::size_t admission_cap_ = SIZE_MAX;
  std::map<std::pair<u32, u32>, double> quality_cache_;  ///< od-pair → quality
};

}  // namespace antarex::nav
