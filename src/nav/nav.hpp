// Use case 2: Self-adaptive navigation system (paper Sec. VII-b).
//
// Substitution note (DESIGN.md): the project's production system is Sygic's
// server-side navigation. This mini-app reproduces its computational pattern:
// time-dependent routing on a road network under a variable (diurnal) request
// load, where the server trades route quality against compute to keep its
// latency SLA — exactly the knob set the ANTAREX autotuner manages.
//
// Components: a synthetic grid-city road network with arterials, piecewise
// diurnal congestion profiles (FIFO network), time-dependent Dijkstra and
// weighted A*, and a penalty-based K-alternative-routes search.
#pragma once

#include <utility>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace antarex::nav {

/// Congestion profiles: a speed multiplier in (0, 1] as a function of the
/// time of day, per road class. Rush hours slow arterials more than side
/// streets.
class SpeedProfiles {
 public:
  static constexpr int kClasses = 3;  // 0=local, 1=collector, 2=arterial

  /// Multiplier for a road class at a given time of day (seconds in [0,86400)).
  double multiplier(int road_class, double time_of_day_s) const;

  /// Congestion intensity in [0, 1]: 0 = free flow (night), 1 = worst rush.
  static double congestion(double time_of_day_s);
};

struct RoadGraph {
  struct Edge {
    u32 to = 0;
    double length_m = 0.0;
    double free_speed_mps = 13.9;  ///< 50 km/h default
    int road_class = 0;
  };

  std::vector<std::vector<Edge>> adj;
  std::vector<std::pair<double, double>> coords;  ///< node positions (m)

  std::size_t num_nodes() const { return adj.size(); }
  std::size_t num_edges() const;
  double max_speed_mps() const;

  /// Synthetic city: w x h grid of intersections with `spacing` metres
  /// between neighbours; every k-th row/column is an arterial (faster, class
  /// 2); a fraction of edges is removed to make the network irregular.
  static RoadGraph grid_city(Rng& rng, int w, int h, double spacing_m = 150.0,
                             int arterial_every = 4, double removal_rate = 0.08);
};

/// Travel time over one edge departing at `depart_s` (time-of-day wraps).
double edge_travel_time_s(const RoadGraph::Edge& e, const SpeedProfiles& profiles,
                          double depart_s);

struct Route {
  std::vector<u32> nodes;       ///< empty if unreachable
  double travel_time_s = 0.0;
  u64 expanded = 0;             ///< settled nodes (the latency driver)

  bool found() const { return !nodes.empty(); }
};

/// ALT (A*, Landmarks, Triangle inequality) preprocessing: free-flow travel
/// times from a set of landmark nodes give admissible lower bounds that are
/// much tighter than the euclidean/max-speed bound, especially around
/// obstacles (removed streets). Free-flow times lower-bound congested times,
/// so the heuristic stays admissible at any time of day.
class Landmarks {
 public:
  /// Picks `count` landmarks (farthest-point heuristic) and precomputes
  /// free-flow distances from each to every node.
  Landmarks(const RoadGraph& g, int count, Rng& rng);

  /// Admissible lower bound on travel time from `from` to `to`.
  double lower_bound_s(u32 from, u32 to) const;

  std::size_t count() const { return dist_.size(); }

 private:
  std::vector<std::vector<double>> dist_;  ///< [landmark][node] free-flow s
};

struct QueryOptions {
  bool astar = true;
  /// Heuristic inflation: 1.0 = admissible (optimal); >1 trades quality for
  /// fewer expansions — the server's main "precision" knob.
  double epsilon = 1.0;
  /// Optional ALT landmarks (must outlive the query). When set and astar is
  /// true, the landmark bound replaces the euclidean one.
  const Landmarks* landmarks = nullptr;
};

/// Time-dependent shortest path (label-setting; correct for FIFO networks).
Route shortest_path_td(const RoadGraph& g, const SpeedProfiles& profiles,
                       u32 from, u32 to, double depart_s,
                       const QueryOptions& opts = {});

/// K alternative routes by iterative edge-penalization: after each route,
/// its edges' costs are inflated by `penalty` and the search repeats.
/// Returns up to k distinct routes, best first.
std::vector<Route> k_alternatives(const RoadGraph& g, const SpeedProfiles& profiles,
                                  u32 from, u32 to, double depart_s, int k,
                                  double penalty = 1.3,
                                  const QueryOptions& opts = {});

// ---------------------------------------------------------------------------
// Server workload
// ---------------------------------------------------------------------------

struct Request {
  double arrival_s = 0.0;  ///< absolute simulation time
  u32 from = 0;
  u32 to = 0;
};

/// Poisson arrivals with a diurnal rate: lambda(t) = base + peak * congestion.
std::vector<Request> diurnal_requests(Rng& rng, const RoadGraph& g,
                                      double duration_s, double base_rate_hz,
                                      double peak_rate_hz, double start_tod_s = 0.0);

}  // namespace antarex::nav
