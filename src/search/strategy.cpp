#include "search/strategy.hpp"

#include <algorithm>
#include <limits>

#include "exec/parallel.hpp"

namespace antarex::search {

SearchStrategy::SearchStrategy(SearchConfig cfg)
    : cfg_(cfg), engine_(cfg.genetic) {
  ANTAREX_REQUIRE(cfg_.bootstrap >= 2, "SearchStrategy: bootstrap < 2");
  ANTAREX_REQUIRE(cfg_.model_top_k <= cfg_.genetic.population,
                  "SearchStrategy: model_top_k exceeds the population");
}

void SearchStrategy::warm_start(std::vector<tuner::Configuration> seeds) {
  warm_seeds_ = std::move(seeds);
}

void SearchStrategy::reset() {
  queue_.clear();
  queue_pos_ = 0;
  population_.clear();
  fitness_.clear();
  model_ = PerfModel();
  generation_ = 0;
  decision_counter_ = 0;
  bootstrapped_ = false;
  // warm_seeds_ survives a reset: transfer knowledge is cross-phase.
}

void SearchStrategy::observe(const tuner::DesignSpace&,
                             const tuner::Configuration& c, double value) {
  fitness_[tuner::config_key(c)].add(value);
}

double SearchStrategy::fitness_of(const tuner::Configuration& c,
                                  bool minimize) const {
  const auto it = fitness_.find(tuner::config_key(c));
  if (it == fitness_.end() || it->second.count() == 0) {
    // Unevaluated genome (e.g. a batch cut a generation short): worst
    // possible fitness, so selection never favours the unknown.
    return minimize ? std::numeric_limits<double>::infinity()
                    : -std::numeric_limits<double>::infinity();
  }
  return it->second.mean();
}

tuner::Configuration SearchStrategy::random_distinct(
    const tuner::DesignSpace& space, std::vector<std::string>& keys) {
  // Bounded retries: on tiny spaces distinctness may be unsatisfiable.
  tuner::Configuration c;
  for (int attempt = 0; attempt < 16; ++attempt) {
    Rng rng(exec::stream_seed(cfg_.seed, decision_counter_++));
    c = tuner::random_config(space, rng);
    std::string key = tuner::config_key(c);
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(std::move(key));
      return c;
    }
  }
  keys.push_back(tuner::config_key(c));
  return c;
}

void SearchStrategy::seed_generation_zero(const tuner::DesignSpace& space,
                                          const tuner::Knowledge& knowledge,
                                          const std::string& objective,
                                          bool minimize) {
  std::vector<tuner::Configuration> pop;
  std::vector<std::string> keys;
  auto add = [&](const tuner::Configuration& c) {
    if (pop.size() >= cfg_.genetic.population || !space.valid(c)) return;
    std::string key = tuner::config_key(c);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) return;
    keys.push_back(std::move(key));
    pop.push_back(c);
  };

  // 1. Cross-run transfer seeds (already mapped into this space).
  for (const tuner::Configuration& c : warm_seeds_) add(c);

  // 2. Model-seeded share: fit from everything measured so far and take the
  //    top-K predictions. An underdetermined fit skips this share.
  model_.fit(space, knowledge, objective);
  if (model_.fitted()) {
    for (const tuner::Configuration& c :
         model_.top_k(space, cfg_.model_top_k, minimize, cfg_.seed,
                      cfg_.model_scan_cap))
      add(c);
  }

  // 3. Random fill keeps exploration pressure.
  while (pop.size() < cfg_.genetic.population)
    pop.push_back(random_distinct(space, keys));

  population_ = std::move(pop);
  queue_ = population_;
  queue_pos_ = 0;
  generation_ = 0;
}

void SearchStrategy::evolve(const tuner::DesignSpace& space, bool minimize) {
  std::vector<double> fitness(population_.size());
  for (std::size_t i = 0; i < population_.size(); ++i)
    fitness[i] = fitness_of(population_[i], minimize);
  ++generation_;
  population_ = engine_.next_generation(space, population_, fitness, minimize,
                                        generation_);
  queue_ = population_;
  queue_pos_ = 0;
}

tuner::Configuration SearchStrategy::next(const tuner::DesignSpace& space,
                                          const tuner::Knowledge& knowledge,
                                          const std::string& objective,
                                          bool minimize, Rng&) {
  ANTAREX_REQUIRE(space.knob_count() > 0, "SearchStrategy: empty design space");
  if (queue_pos_ >= queue_.size()) {
    if (!bootstrapped_) {
      // Stage 0: distinct random probes to make the model fittable.
      std::vector<std::string> keys;
      queue_.clear();
      const std::size_t probes =
          std::min(cfg_.bootstrap, std::max<std::size_t>(2, space.size()));
      for (std::size_t i = 0; i < probes; ++i)
        queue_.push_back(random_distinct(space, keys));
      queue_pos_ = 0;
      bootstrapped_ = true;
    } else if (population_.empty()) {
      seed_generation_zero(space, knowledge, objective, minimize);
    } else {
      evolve(space, minimize);
    }
  }
  return queue_[queue_pos_++];
}

std::unique_ptr<tuner::Strategy> make_strategy(const std::string& name) {
  if (auto builtin = tuner::make_builtin_strategy(name)) return builtin;
  if (name == "evolutionary" || name == "search")
    return std::make_unique<SearchStrategy>();
  throw Error("unknown strategy '" + name +
              "' (want flat|full-search|epsilon-greedy|model-guided|"
              "evolutionary)");
}

}  // namespace antarex::search
