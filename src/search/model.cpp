#include "search/model.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "tuner/strategy.hpp"

namespace antarex::search {

namespace {

/// Per-knob min/max over the full value list (annotation-independent).
void knob_range(const tuner::Knob& k, double& lo, double& hi) {
  lo = *std::min_element(k.values.begin(), k.values.end());
  hi = *std::max_element(k.values.begin(), k.values.end());
}

/// Solve (A + ridge*I) w = b in place by Gaussian elimination with partial
/// pivoting. Returns false on a (numerically) singular system.
bool solve_ridge(std::vector<std::vector<double>> a, std::vector<double> b,
                 double ridge, std::vector<double>& out) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) a[i][i] += ridge;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  out.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * out[c];
    out[i] = s / a[i][i];
  }
  return true;
}

}  // namespace

std::vector<double> PerfModel::features(const tuner::DesignSpace& space,
                                        const tuner::Configuration& c) const {
  const std::size_t n = space.knob_count();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double lo, hi;
    knob_range(space.knob(i), lo, hi);
    const double v = space.value(c, i);
    x[i] = hi > lo ? (v - lo) / (hi - lo) : 0.0;
  }
  std::vector<double> f;
  f.reserve(1 + n + n * (n + 1) / 2);
  f.push_back(1.0);
  for (double v : x) f.push_back(v);
  // Interaction terms, i <= j: the diagonal (x_i^2) captures per-knob
  // curvature — bowls, not just planes — and the off-diagonal captures
  // pairwise knob coupling.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) f.push_back(x[i] * x[j]);
  return f;
}

FitReport PerfModel::fit(const tuner::DesignSpace& space,
                         const tuner::Knowledge& kb,
                         const std::string& metric) {
  const std::size_t n = space.knob_count();
  ANTAREX_REQUIRE(n > 0, "PerfModel: empty design space");
  const std::size_t dims = 1 + n + n * (n + 1) / 2;

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (const tuner::Configuration& c : kb.configs()) {
    if (!space.valid(c)) continue;
    const auto y = kb.mean(c, metric);
    if (!y) continue;
    xs.push_back(features(space, c));
    ys.push_back(*y);
  }

  report_ = {};
  report_.samples = xs.size();
  report_.dims = dims;
  if (xs.size() < dims) return report_;

  // Normal equations: XtX w = Xty, ridge-damped for conditioning.
  std::vector<std::vector<double>> xtx(dims, std::vector<double>(dims, 0.0));
  std::vector<double> xty(dims, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    for (std::size_t i = 0; i < dims; ++i) {
      xty[i] += xs[s][i] * ys[s];
      for (std::size_t j = i; j < dims; ++j) xtx[i][j] += xs[s][i] * xs[s][j];
    }
  }
  for (std::size_t i = 0; i < dims; ++i)
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];

  if (!solve_ridge(std::move(xtx), std::move(xty), 1e-8, weights_))
    return report_;

  double ss_res = 0.0, ss_tot = 0.0, mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  for (std::size_t s = 0; s < xs.size(); ++s) {
    double pred = 0.0;
    for (std::size_t i = 0; i < dims; ++i) pred += weights_[i] * xs[s][i];
    ss_res += (ys[s] - pred) * (ys[s] - pred);
    ss_tot += (ys[s] - mean_y) * (ys[s] - mean_y);
  }
  report_.rmse = std::sqrt(ss_res / static_cast<double>(xs.size()));
  report_.r2 = ss_tot > 1e-300 ? 1.0 - ss_res / ss_tot : 1.0;
  report_.ok = true;
  return report_;
}

double PerfModel::predict(const tuner::DesignSpace& space,
                          const tuner::Configuration& c) const {
  ANTAREX_REQUIRE(fitted(), "PerfModel: predict before a successful fit");
  const std::vector<double> f = features(space, c);
  ANTAREX_REQUIRE(f.size() == weights_.size(),
                  "PerfModel: design space does not match the fitted model");
  double y = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) y += weights_[i] * f[i];
  return y;
}

std::vector<tuner::Configuration> PerfModel::top_k(
    const tuner::DesignSpace& space, std::size_t k, bool minimize, u64 seed,
    std::size_t scan_cap) const {
  ANTAREX_REQUIRE(fitted(), "PerfModel: top_k before a successful fit");
  ANTAREX_REQUIRE(k >= 1, "PerfModel: top_k needs k >= 1");

  struct Scored {
    tuner::Configuration config;
    std::string key;
    double pred;
  };
  const std::size_t n = space.size();
  const bool enumerate = n <= scan_cap;
  const std::size_t scan = enumerate ? n : scan_cap;
  std::vector<Scored> scored;
  scored.reserve(scan);
  for (std::size_t s = 0; s < scan; ++s) {
    tuner::Configuration c;
    if (enumerate) {
      c = space.at(s);
    } else {
      Rng rng(exec::stream_seed(seed, s));
      c = tuner::random_config(space, rng);
    }
    const double pred = predict(space, c);
    std::string key = tuner::config_key(c);
    scored.push_back({std::move(c), std::move(key), pred});
  }
  std::sort(scored.begin(), scored.end(), [&](const Scored& a, const Scored& b) {
    if (a.pred != b.pred) return minimize ? a.pred < b.pred : a.pred > b.pred;
    return a.key < b.key;
  });
  // Sampled candidates can repeat; dedupe while collecting the k best.
  std::vector<tuner::Configuration> out;
  std::vector<std::string> keys;
  for (const Scored& s : scored) {
    if (out.size() >= k) break;
    if (std::find(keys.begin(), keys.end(), s.key) != keys.end()) continue;
    keys.push_back(s.key);
    out.push_back(s.config);
  }
  return out;
}

}  // namespace antarex::search
