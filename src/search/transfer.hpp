// Cross-run knowledge transfer: warm-start a new application's search from
// the nearest neighbour in a cache of previous tuning runs.
//
// The PowerStack "end-to-end auto-tuning" motivation: design-space
// exploration results should outlive the run that produced them. Each cache
// entry stores an application name, the knob signature of its design space
// (names + value lists), and the run's exported knowledge base. A new
// application queries the cache with its own design space; the nearest entry
// by knob-signature distance donates its best-known configurations, mapped
// knob-by-knob (matched by name, values snapped to the nearest candidate in
// the new space) into seeds for the evolutionary starting population.
//
// The cache serializes to a line-oriented text format so it can ship between
// runs the same way the mARGOt operating-point lists do.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tuner/knob.hpp"
#include "tuner/knowledge.hpp"

namespace antarex::search {

struct TransferEntry {
  std::string app;
  std::vector<tuner::Knob> knobs;  ///< source design-space signature
  std::string knowledge_text;      ///< tuner::Knowledge::export_text()
};

class TransferCache {
 public:
  /// Record (or replace) the entry for `app` from a finished run.
  void record(const std::string& app, const tuner::DesignSpace& space,
              const tuner::Knowledge& kb);

  std::size_t size() const { return entries_.size(); }
  const std::vector<TransferEntry>& entries() const { return entries_; }

  /// Nearest entry to `space` by knob-signature distance (never an entry
  /// named `exclude_app`); nullptr when the cache has no candidate. Ties
  /// break by app name for determinism.
  const TransferEntry* nearest(const tuner::DesignSpace& space,
                               const std::string& exclude_app = {}) const;

  /// Signature distance in [0, 1]: per knob of the union of names, matched
  /// knobs contribute normalized range/cardinality differences, unmatched
  /// knobs contribute 1.
  static double distance(const std::vector<tuner::Knob>& source,
                         const tuner::DesignSpace& target);

  /// The entry's k best configurations for `objective`, mapped into `space`:
  /// knobs matched by name carry their value over (snapped to the nearest
  /// candidate value); knobs the source never had default to the middle
  /// candidate. Mapped duplicates collapse. Best first.
  static std::vector<tuner::Configuration> seed_configs(
      const TransferEntry& entry, const tuner::DesignSpace& space,
      const std::string& objective, bool minimize, std::size_t k);

  /// Serialization round-trip for shipping the cache between runs.
  std::string export_text() const;
  void import_text(const std::string& text);

 private:
  std::vector<TransferEntry> entries_;
};

}  // namespace antarex::search
