// antarex::search — model-seeded evolutionary design-space exploration.
//
// The two-stage exploration flow of the Odyssey/AutoSA lineage, grown onto
// the grey-box autotuner of paper Sec. IV: a cheap analytic performance
// model (linear + interaction terms over normalized knob encodings) is fit
// from the knowledge base and seeds the starting population of a genetic
// engine (tournament selection, knob-aware crossover/mutation, elitism,
// duplicate suppression); a cross-run transfer cache warm-starts new
// applications from the nearest-neighbour previous run. The SearchStrategy
// adapter plugs the whole thing into tuner::Strategy, so Autotuner
// next_batch()/report_batch() evaluates generations in parallel on an
// exec::ThreadPool with bit-identical trajectories at any worker count.
// See DESIGN.md subsystem #17 and README "Design-space search".
#pragma once

#include "search/genetic.hpp"
#include "search/model.hpp"
#include "search/strategy.hpp"
#include "search/transfer.hpp"
