// Evolutionary engine over tuner design spaces.
//
// Stage two of the two-stage exploration flow: a small genetic algorithm —
// tournament selection, knob-aware uniform crossover, domain-respecting
// mutation, elitism, duplicate suppression — refining the model-seeded
// starting population. Genomes are tuner::Configurations; every operator
// draws only values the design space's *candidate* lists allow, so grey-box
// annotations constrain the search exactly as they constrain the flat
// strategies.
//
// Determinism contract (DESIGN.md decision 5/8): the engine owns no RNG
// state. Every child of generation g at slot i draws from an independent
// stream seeded by exec::stream_seed over (seed, g, i), so the produced
// populations are identical regardless of how many workers later evaluate
// them — and regardless of how many times a caller re-runs a generation.
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "tuner/knob.hpp"

namespace antarex::search {

struct GeneticConfig {
  std::size_t population = 24;   ///< genomes per generation
  std::size_t elites = 2;        ///< best parents copied through unchanged
  std::size_t tournament = 3;    ///< tournament size for parent selection
  double crossover_rate = 0.9;   ///< else the better parent is cloned
  double mutation_rate = 0.25;   ///< per-knob mutation probability
  double step_bias = 0.7;        ///< neighbour-step vs uniform-reset mutation
  u64 seed = 0x5ea7c4;           ///< root of the per-(generation, slot) streams
};

class GeneticEngine {
 public:
  explicit GeneticEngine(GeneticConfig cfg = {});

  const GeneticConfig& config() const { return cfg_; }

  /// Produce the next generation from `parents` with per-genome `fitness`
  /// (lower is better when `minimize`). Elites pass through unchanged; the
  /// rest come from tournament-selected parents via crossover + mutation,
  /// with duplicates re-mutated (bounded retries, so tiny spaces still
  /// converge instead of spinning). Every returned genome respects the
  /// space's candidate lists.
  std::vector<tuner::Configuration> next_generation(
      const tuner::DesignSpace& space,
      const std::vector<tuner::Configuration>& parents,
      const std::vector<double>& fitness, bool minimize, u64 generation) const;

  /// Knob-aware uniform crossover: each knob from one parent or the other.
  tuner::Configuration crossover(const tuner::DesignSpace& space,
                                 const tuner::Configuration& a,
                                 const tuner::Configuration& b,
                                 Rng& rng) const;

  /// Domain-respecting mutation: per knob, with probability mutation_rate,
  /// either step to a neighbouring candidate (probability step_bias) or
  /// reset to a uniform candidate. A genome whose current index fell outside
  /// the candidate list (annotation added after seeding) snaps back in.
  tuner::Configuration mutate(const tuner::DesignSpace& space,
                              tuner::Configuration c, Rng& rng) const;

 private:
  std::size_t tournament_pick(const std::vector<double>& fitness, bool minimize,
                              Rng& rng) const;

  GeneticConfig cfg_;
};

}  // namespace antarex::search
