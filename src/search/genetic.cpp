#include "search/genetic.hpp"

#include <algorithm>
#include <string>

#include "exec/parallel.hpp"

namespace antarex::search {

namespace {

/// Position of value-index `vi` inside the knob's candidate list, or npos.
std::size_t candidate_pos(const std::vector<std::size_t>& cand, std::size_t vi) {
  const auto it = std::find(cand.begin(), cand.end(), vi);
  return it == cand.end() ? static_cast<std::size_t>(-1)
                          : static_cast<std::size_t>(it - cand.begin());
}

}  // namespace

GeneticEngine::GeneticEngine(GeneticConfig cfg) : cfg_(cfg) {
  ANTAREX_REQUIRE(cfg_.population >= 2, "GeneticEngine: population < 2");
  ANTAREX_REQUIRE(cfg_.elites < cfg_.population,
                  "GeneticEngine: elites must leave room for children");
  ANTAREX_REQUIRE(cfg_.tournament >= 1, "GeneticEngine: empty tournament");
  ANTAREX_REQUIRE(cfg_.crossover_rate >= 0.0 && cfg_.crossover_rate <= 1.0,
                  "GeneticEngine: crossover rate outside [0, 1]");
  ANTAREX_REQUIRE(cfg_.mutation_rate >= 0.0 && cfg_.mutation_rate <= 1.0,
                  "GeneticEngine: mutation rate outside [0, 1]");
}

tuner::Configuration GeneticEngine::crossover(const tuner::DesignSpace& space,
                                              const tuner::Configuration& a,
                                              const tuner::Configuration& b,
                                              Rng& rng) const {
  ANTAREX_REQUIRE(a.size() == space.knob_count() && b.size() == a.size(),
                  "GeneticEngine: parent arity mismatch");
  tuner::Configuration child(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    child[i] = rng.bernoulli(0.5) ? a[i] : b[i];
  return child;
}

tuner::Configuration GeneticEngine::mutate(const tuner::DesignSpace& space,
                                           tuner::Configuration c,
                                           Rng& rng) const {
  for (std::size_t i = 0; i < space.knob_count(); ++i) {
    const auto& cand = space.candidates(i);
    const std::size_t pos = candidate_pos(cand, c[i]);
    if (pos == static_cast<std::size_t>(-1)) {
      c[i] = cand[rng.index(cand.size())];  // snap into the annotated domain
      continue;
    }
    if (!rng.bernoulli(cfg_.mutation_rate)) continue;
    if (cand.size() == 1) continue;
    if (rng.bernoulli(cfg_.step_bias)) {
      // Neighbour step along the candidate list (knob values are ordered, so
      // this is a local move in knob space).
      const bool up = pos == 0 ? true : pos + 1 == cand.size() ? false
                                                               : rng.bernoulli(0.5);
      c[i] = cand[up ? pos + 1 : pos - 1];
    } else {
      c[i] = cand[rng.index(cand.size())];
    }
  }
  return c;
}

std::size_t GeneticEngine::tournament_pick(const std::vector<double>& fitness,
                                           bool minimize, Rng& rng) const {
  std::size_t best = rng.index(fitness.size());
  for (std::size_t t = 1; t < cfg_.tournament; ++t) {
    const std::size_t i = rng.index(fitness.size());
    const bool better =
        minimize ? fitness[i] < fitness[best] : fitness[i] > fitness[best];
    if (better || (fitness[i] == fitness[best] && i < best)) best = i;
  }
  return best;
}

std::vector<tuner::Configuration> GeneticEngine::next_generation(
    const tuner::DesignSpace& space,
    const std::vector<tuner::Configuration>& parents,
    const std::vector<double>& fitness, bool minimize, u64 generation) const {
  ANTAREX_REQUIRE(!parents.empty(), "GeneticEngine: no parents");
  ANTAREX_REQUIRE(parents.size() == fitness.size(),
                  "GeneticEngine: fitness arity mismatch");

  // Rank parents for elitism: by fitness, ties by config_key so the order
  // never depends on container iteration quirks.
  std::vector<std::size_t> rank(parents.size());
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    if (fitness[a] != fitness[b])
      return minimize ? fitness[a] < fitness[b] : fitness[a] > fitness[b];
    return tuner::config_key(parents[a]) < tuner::config_key(parents[b]);
  });

  std::vector<tuner::Configuration> children;
  std::vector<std::string> keys;
  children.reserve(cfg_.population);
  auto try_add = [&](const tuner::Configuration& c) {
    std::string key = tuner::config_key(c);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) return false;
    keys.push_back(std::move(key));
    children.push_back(c);
    return true;
  };

  const std::size_t elites = std::min(cfg_.elites, parents.size());
  for (std::size_t e = 0; e < elites && children.size() < cfg_.population; ++e)
    try_add(parents[rank[e]]);

  for (std::size_t slot = 0; children.size() < cfg_.population; ++slot) {
    Rng rng(exec::stream_seed(cfg_.seed + generation * 0x9e3779b97f4a7c15ULL,
                              slot));
    const std::size_t pa = tournament_pick(fitness, minimize, rng);
    const std::size_t pb = tournament_pick(fitness, minimize, rng);
    tuner::Configuration child =
        rng.bernoulli(cfg_.crossover_rate)
            ? crossover(space, parents[pa], parents[pb], rng)
            : parents[minimize == (fitness[pa] <= fitness[pb]) ? pa : pb];
    child = mutate(space, std::move(child), rng);
    // Duplicate suppression: re-mutate a clone a few times; on a tiny space
    // the population may legitimately not have enough distinct points, so
    // accept the duplicate after the retry budget rather than spin.
    bool added = try_add(child);
    for (int retry = 0; !added && retry < 8; ++retry) {
      child = mutate(space, std::move(child), rng);
      added = try_add(child);
    }
    if (!added) {
      keys.push_back(tuner::config_key(child));
      children.push_back(std::move(child));
    }
  }
  return children;
}

}  // namespace antarex::search
