#include "search/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "support/strings.hpp"

namespace antarex::search {

namespace {

void value_range(const std::vector<double>& values, double& lo, double& hi) {
  lo = *std::min_element(values.begin(), values.end());
  hi = *std::max_element(values.begin(), values.end());
}

/// Distance between two same-named knobs in [0, 1]: how far apart their
/// value ranges and cardinalities sit, each range difference normalized by
/// the larger extent.
double knob_distance(const tuner::Knob& a, const tuner::Knob& b) {
  double alo, ahi, blo, bhi;
  value_range(a.values, alo, ahi);
  value_range(b.values, blo, bhi);
  const double extent = std::max({ahi - alo, bhi - blo, 1e-12});
  const double range_d =
      0.5 * (std::fabs(alo - blo) + std::fabs(ahi - bhi)) / extent;
  const double count_d =
      std::fabs(std::log2(static_cast<double>(a.values.size())) -
                std::log2(static_cast<double>(b.values.size()))) /
      8.0;  // 8 doublings of knob resolution = maximally different
  return std::min(1.0, 0.7 * range_d + 0.3 * count_d);
}

}  // namespace

void TransferCache::record(const std::string& app,
                           const tuner::DesignSpace& space,
                           const tuner::Knowledge& kb) {
  ANTAREX_REQUIRE(!app.empty(), "TransferCache: empty application name");
  ANTAREX_REQUIRE(app.find('\n') == std::string::npos,
                  "TransferCache: application name must be single-line");
  TransferEntry e;
  e.app = app;
  for (std::size_t i = 0; i < space.knob_count(); ++i)
    e.knobs.push_back(space.knob(i));
  e.knowledge_text = kb.export_text();
  for (TransferEntry& existing : entries_) {
    if (existing.app == app) {
      existing = std::move(e);
      return;
    }
  }
  entries_.push_back(std::move(e));
}

double TransferCache::distance(const std::vector<tuner::Knob>& source,
                               const tuner::DesignSpace& target) {
  std::set<std::string> names;
  for (const tuner::Knob& k : source) names.insert(k.name);
  for (std::size_t i = 0; i < target.knob_count(); ++i)
    names.insert(target.knob(i).name);
  if (names.empty()) return 1.0;

  double d = 0.0;
  for (const std::string& name : names) {
    const auto sit = std::find_if(source.begin(), source.end(),
                                  [&](const tuner::Knob& k) { return k.name == name; });
    const int ti = target.knob_index(name);
    if (sit == source.end() || ti < 0) {
      d += 1.0;  // knob exists on one side only
      continue;
    }
    d += knob_distance(*sit, target.knob(static_cast<std::size_t>(ti)));
  }
  return d / static_cast<double>(names.size());
}

const TransferEntry* TransferCache::nearest(const tuner::DesignSpace& space,
                                            const std::string& exclude_app) const {
  const TransferEntry* best = nullptr;
  double best_d = 0.0;
  for (const TransferEntry& e : entries_) {
    if (e.app == exclude_app) continue;
    const double d = distance(e.knobs, space);
    if (!best || d < best_d || (d == best_d && e.app < best->app)) {
      best = &e;
      best_d = d;
    }
  }
  return best;
}

std::vector<tuner::Configuration> TransferCache::seed_configs(
    const TransferEntry& entry, const tuner::DesignSpace& space,
    const std::string& objective, bool minimize, std::size_t k) {
  tuner::Knowledge kb;
  kb.import_text(entry.knowledge_text);

  // Rank the source configurations by the objective.
  struct Ranked {
    tuner::Configuration config;
    double value;
  };
  std::vector<Ranked> ranked;
  for (const tuner::Configuration& c : kb.configs()) {
    if (c.size() != entry.knobs.size()) continue;
    const auto v = kb.mean(c, objective);
    if (v) ranked.push_back({c, *v});
  }
  std::sort(ranked.begin(), ranked.end(), [&](const Ranked& a, const Ranked& b) {
    if (a.value != b.value) return minimize ? a.value < b.value : a.value > b.value;
    return tuner::config_key(a.config) < tuner::config_key(b.config);
  });

  std::vector<tuner::Configuration> seeds;
  std::vector<std::string> keys;
  for (const Ranked& r : ranked) {
    if (seeds.size() >= k) break;
    tuner::Configuration mapped(space.knob_count());
    for (std::size_t j = 0; j < space.knob_count(); ++j) {
      const tuner::Knob& target = space.knob(j);
      const auto& cand = space.candidates(j);
      const auto sit = std::find_if(
          entry.knobs.begin(), entry.knobs.end(),
          [&](const tuner::Knob& sk) { return sk.name == target.name; });
      if (sit == entry.knobs.end()) {
        mapped[j] = cand[cand.size() / 2];  // unmatched knob: middle candidate
        continue;
      }
      const std::size_t src_idx = r.config[static_cast<std::size_t>(
          sit - entry.knobs.begin())];
      if (src_idx >= sit->values.size()) {
        mapped[j] = cand[cand.size() / 2];  // stale entry beyond source domain
        continue;
      }
      const double want = sit->values[src_idx];
      std::size_t best_ci = cand[0];
      double best_err = std::fabs(target.values[cand[0]] - want);
      for (std::size_t ci : cand) {
        const double err = std::fabs(target.values[ci] - want);
        if (err < best_err) {
          best_err = err;
          best_ci = ci;
        }
      }
      mapped[j] = best_ci;
    }
    std::string key = tuner::config_key(mapped);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    keys.push_back(std::move(key));
    seeds.push_back(std::move(mapped));
  }
  return seeds;
}

std::string TransferCache::export_text() const {
  std::string out;
  for (const TransferEntry& e : entries_) {
    out += "[entry] " + e.app + "\n";
    for (const tuner::Knob& k : e.knobs) {
      out += "[knob] " + k.name + " ";
      for (std::size_t i = 0; i < k.values.size(); ++i) {
        if (i) out += ',';
        out += format("%.17g", k.values[i]);
      }
      out += "\n";
    }
    out += "[kb]\n";
    out += e.knowledge_text;
    out += "[end]\n";
  }
  return out;
}

void TransferCache::import_text(const std::string& text) {
  TransferEntry current;
  bool in_entry = false, in_kb = false;
  for (const std::string& raw : split(text, '\n')) {
    if (in_kb) {
      if (trim(raw) == "[end]") {
        in_kb = false;
        in_entry = false;
        // Validate the embedded knowledge list before accepting the entry.
        tuner::Knowledge check;
        check.import_text(current.knowledge_text);
        entries_.push_back(std::move(current));
        current = {};
        continue;
      }
      current.knowledge_text += raw + "\n";
      continue;
    }
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.rfind("[entry] ", 0) == 0) {
      ANTAREX_REQUIRE(!in_entry, "TransferCache: nested [entry]");
      in_entry = true;
      current.app = trim(line.substr(std::string("[entry] ").size()));
      ANTAREX_REQUIRE(!current.app.empty(), "TransferCache: unnamed [entry]");
    } else if (line.rfind("[knob] ", 0) == 0) {
      ANTAREX_REQUIRE(in_entry, "TransferCache: [knob] outside an entry");
      const std::string body = line.substr(std::string("[knob] ").size());
      const auto fields = split(body, ' ');
      ANTAREX_REQUIRE(fields.size() == 2,
                      "TransferCache: malformed knob line '" + line + "'");
      tuner::Knob k;
      k.name = fields[0];
      for (const std::string& v : split(fields[1], ',')) {
        char* end = nullptr;
        const double value = std::strtod(v.c_str(), &end);
        ANTAREX_REQUIRE(end && *end == '\0',
                        "TransferCache: bad knob value '" + v + "'");
        k.values.push_back(value);
      }
      ANTAREX_REQUIRE(!k.values.empty(), "TransferCache: knob without values");
      current.knobs.push_back(std::move(k));
    } else if (line == "[kb]") {
      ANTAREX_REQUIRE(in_entry, "TransferCache: [kb] outside an entry");
      in_kb = true;
    } else {
      throw Error("TransferCache: unexpected line '" + line + "'");
    }
  }
  ANTAREX_REQUIRE(!in_entry && !in_kb,
                  "TransferCache: truncated input (missing [end])");
}

}  // namespace antarex::search
