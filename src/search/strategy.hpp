// SearchStrategy: the two-stage model-seeded evolutionary exploration,
// packaged as a tuner::Strategy so the existing Autotuner loop — including
// next_batch()/report_batch() parallel evaluation on an exec::ThreadPool —
// drives it unchanged.
//
// Lifecycle per phase (reset() restarts it):
//   1. Bootstrap: a fixed number of distinct seeded-random probes, enough to
//      fit the performance model.
//   2. Generation 0: fit PerfModel from the knowledge base; seed the
//      population from warm-start configs (cross-run transfer), the model's
//      top-K predictions, and random fill.
//   3. Generations 1..: evolve with the GeneticEngine; fitness is the
//      knowledge-fed objective mean, memoized across generations so a genome
//      re-proposed later is never re-derived from scratch.
//
// Determinism: the strategy ignores the Autotuner's Rng entirely — every
// draw comes from exec::stream_seed over (seed, decision index), so a search
// trajectory is bit-identical for any worker count evaluating the batches.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "search/genetic.hpp"
#include "search/model.hpp"
#include "support/stats.hpp"
#include "tuner/strategy.hpp"

namespace antarex::search {

struct SearchConfig {
  GeneticConfig genetic;
  std::size_t bootstrap = 16;      ///< random probes before the model is fit
  std::size_t model_top_k = 12;    ///< model-seeded share of generation 0
  std::size_t model_scan_cap = 8192;  ///< candidate scan bound for top_k
  u64 seed = 0x5ea7c4;
};

class SearchStrategy final : public tuner::Strategy {
 public:
  explicit SearchStrategy(SearchConfig cfg = {});

  std::string name() const override { return "evolutionary"; }
  tuner::Configuration next(const tuner::DesignSpace& space,
                            const tuner::Knowledge& knowledge,
                            const std::string& objective, bool minimize,
                            Rng& rng) override;
  void observe(const tuner::DesignSpace& space, const tuner::Configuration& c,
               double objective_value) override;
  void reset() override;

  /// Cross-run transfer: configurations (already mapped into this design
  /// space, e.g. by TransferCache::seed_configs) injected ahead of the
  /// model's picks when generation 0 is assembled.
  void warm_start(std::vector<tuner::Configuration> seeds);

  const SearchConfig& config() const { return cfg_; }
  u64 generation() const { return generation_; }
  /// The fitted performance model; nullptr until generation 0 was seeded
  /// with a successful fit.
  const PerfModel* model() const { return model_.fitted() ? &model_ : nullptr; }

 private:
  void seed_generation_zero(const tuner::DesignSpace& space,
                            const tuner::Knowledge& knowledge,
                            const std::string& objective, bool minimize);
  void evolve(const tuner::DesignSpace& space, bool minimize);
  double fitness_of(const tuner::Configuration& c, bool minimize) const;
  tuner::Configuration random_distinct(const tuner::DesignSpace& space,
                                       std::vector<std::string>& keys);

  SearchConfig cfg_;
  GeneticEngine engine_;
  PerfModel model_;
  std::vector<tuner::Configuration> warm_seeds_;

  std::vector<tuner::Configuration> queue_;  ///< genomes awaiting proposal
  std::size_t queue_pos_ = 0;
  std::vector<tuner::Configuration> population_;
  std::map<std::string, RunningStats> fitness_;  ///< memoized by config_key
  u64 generation_ = 0;
  u64 decision_counter_ = 0;  ///< stream index for every internal draw
  bool bootstrapped_ = false;
};

/// Strategy factory covering the flat tuner built-ins ("flat"/"full-search",
/// "epsilon-greedy", "model-guided") and the two-stage "evolutionary"
/// search. Throws antarex::Error on an unknown name — the bench `--strategy`
/// flag's backend.
std::unique_ptr<tuner::Strategy> make_strategy(const std::string& name);

}  // namespace antarex::search
