// Cheap analytic performance model fit from tuner::Knowledge measurements.
//
// Stage one of the two-stage design-space exploration flow (the Odyssey/
// AutoSA shape): a per-metric least-squares model — linear plus interaction
// terms (quadratic self-terms and pairwise products) over normalized knob
// encodings — fit from whatever the knowledge base has already measured,
// used to rank unseen configurations and seed the evolutionary engine's
// starting population with the top-K predicted points. The model is
// deliberately small (closed-form ridge solve, O(dims^3) with
// dims = 1 + n + n(n+1)/2 for n knobs) so fitting is free next to even one
// real measurement.
#pragma once

#include <string>
#include <vector>

#include "tuner/knob.hpp"
#include "tuner/knowledge.hpp"

namespace antarex::search {

/// Fit-quality report: how much the model should be trusted. `ok` is false
/// when the system is underdetermined (fewer samples than coefficients) —
/// callers should then prefer random seeding over model ranking.
struct FitReport {
  std::size_t samples = 0;  ///< distinct configurations used for the fit
  std::size_t dims = 0;     ///< coefficients (bias + linear + interactions)
  double rmse = 0.0;        ///< in-sample root-mean-square error
  double r2 = 0.0;          ///< in-sample coefficient of determination
  bool ok = false;          ///< samples >= dims and the solve succeeded
};

class PerfModel {
 public:
  /// Fit the model for `metric` from every knowledge-base entry that has at
  /// least one observation of it. Returns the fit report (also kept on the
  /// model). The design space provides the normalization (per-knob value
  /// range over the *full* knob definition, so annotations do not move the
  /// encoding).
  FitReport fit(const tuner::DesignSpace& space, const tuner::Knowledge& kb,
                const std::string& metric);

  /// Predicted metric for a configuration. Requires a prior successful fit.
  double predict(const tuner::DesignSpace& space,
                 const tuner::Configuration& c) const;

  /// The k configurations with the best predicted metric, distinct, best
  /// first. Enumerates the space when it is small; otherwise ranks
  /// `scan_cap` seeded-random candidates (per-index streams keyed by `seed`,
  /// so the ranking is reproducible at any parallelism). Ties break by
  /// config_key for determinism.
  std::vector<tuner::Configuration> top_k(const tuner::DesignSpace& space,
                                          std::size_t k, bool minimize,
                                          u64 seed = 1,
                                          std::size_t scan_cap = 8192) const;

  const FitReport& report() const { return report_; }
  bool fitted() const { return report_.ok; }
  const std::vector<double>& weights() const { return weights_; }

  /// Normalized feature vector for a configuration: bias, one term per knob
  /// in [0, 1], one product term per knob pair (i <= j, so squares
  /// included). Exposed for tests.
  std::vector<double> features(const tuner::DesignSpace& space,
                               const tuner::Configuration& c) const;

 private:
  std::vector<double> weights_;
  FitReport report_;
};

}  // namespace antarex::search
