// Join-point model of the ANTAREX DSL.
//
// The weaver exposes program points of the mini-C AST as typed join points
// with queryable attributes — the `$fCall.name`, `$loop.isInnermost`,
// `$arg.runtimeValue` of the paper's figures.
//
// Supported selectors and attributes:
//   func : name, numParams, line
//   fCall: name, location ("line:col"), numArgs, argList (raw code fragment)
//   loop : type ("for"/"while"), isInnermost, numIter (null if unknown),
//          inductionVar, line
//   arg  : name (callee parameter name), index, value (literal value or null),
//          runtimeValue (dynamic weaving only), code (raw source fragment)
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cir/ast.hpp"
#include "dsl/ast.hpp"
#include "dsl/value.hpp"

namespace antarex::dsl {

struct JoinPoint {
  enum class Kind { Function, Call, Loop, Arg };

  Kind kind;
  cir::Module* module = nullptr;
  cir::Function* func = nullptr;  ///< self (Function) or enclosing function

  // Call / Arg
  cir::CallExpr* call = nullptr;
  cir::Block* anchor_block = nullptr;  ///< block owning the anchor statement
  cir::Stmt* anchor_stmt = nullptr;    ///< statement containing the call
  int arg_index = -1;

  // Loop
  cir::ForStmt* loop = nullptr;

  /// Runtime value of the argument; set only during dynamic weaving.
  std::optional<i64> runtime_value;

  /// The `$x` variable name this join point binds to ("$func", "$fCall", ...).
  static std::string var_name_for_selector(const std::string& selector);

  /// Attribute lookup; throws on unknown attribute for the kind.
  Val attribute(const std::string& name) const;
};

using JoinPointPtr = std::shared_ptr<JoinPoint>;

/// One match of a select chain: the join points bound along the chain, keyed
/// by their `$` variable names (e.g. {"$func": ..., "$loop": ...}).
struct SelectionBinding {
  std::vector<std::pair<std::string, JoinPointPtr>> bound;

  const JoinPointPtr* find(const std::string& var) const;
  /// The innermost (last) join point of the chain.
  const JoinPointPtr& leaf() const;
};

/// Expression evaluation environment: name -> Val, with chained parents.
/// Assignment semantics: `set` rebinds the name where it is already bound
/// (walking up the chain), so an apply-block statement like `c = c + 1`
/// accumulates into the aspect-level variable; unbound names are defined in
/// the current frame.
class Env {
 public:
  Env() = default;
  explicit Env(Env* parent) : parent_(parent) {}

  void set(const std::string& name, Val v);
  /// Always defines/overwrites in this frame (used for per-match join-point
  /// bindings like $fCall, which must shadow, never leak upward).
  void set_local(const std::string& name, Val v);
  /// nullptr if unbound anywhere in the chain.
  const Val* find(const std::string& name) const;

  /// Flattened copy of this environment including all parents (closer
  /// bindings shadow outer ones). Used to capture closures for dynamic
  /// aspects, whose parent frames die before the aspect triggers.
  Env snapshot() const;

 private:
  Val* find_mutable(const std::string& name);

  Env* parent_ = nullptr;
  std::vector<std::pair<std::string, Val>> vars_;
};

/// Evaluate a DSL expression in an environment. Unknown bare identifiers
/// throw; attribute access on join points resolves via JoinPoint::attribute;
/// attribute access on records resolves by key.
Val eval_expr(const DExpr& e, const Env& env);

/// Run a select chain over a module (or rooted at a join point).
/// The per-step filters run with the candidate join point's attributes
/// visible as bare identifiers (e.g. `{type=='for'}`).
std::vector<SelectionBinding> run_select(cir::Module& module,
                                         const JoinPointPtr& root,
                                         const SelectStmt& sel);

}  // namespace antarex::dsl
