#include "dsl/joinpoint.hpp"

#include <cmath>
#include <functional>

#include "cir/analysis.hpp"
#include "cir/printer.hpp"
#include "support/strings.hpp"

namespace antarex::dsl {

std::string JoinPoint::var_name_for_selector(const std::string& selector) {
  return "$" + selector;
}

namespace {

/// Render a call's argument list as source text (the paper's $fCall.argList:
/// pasted raw into the probe call so the probe receives the runtime values).
std::string arg_list_source(const cir::CallExpr& call) {
  std::vector<std::string> parts;
  parts.reserve(call.args.size());
  for (const auto& a : call.args) parts.push_back(cir::to_source(*a));
  return join(parts, ", ");
}

/// Parameter name of the callee for a given argument index, when the callee
/// is a module-local function; "arg<i>" otherwise.
std::string arg_name(const JoinPoint& jp) {
  if (jp.module) {
    if (const cir::Function* callee = jp.module->find(jp.call->callee)) {
      if (jp.arg_index >= 0 &&
          jp.arg_index < static_cast<int>(callee->params.size()))
        return callee->params[static_cast<std::size_t>(jp.arg_index)].name;
    }
  }
  return format("arg%d", jp.arg_index);
}

}  // namespace

Val JoinPoint::attribute(const std::string& attr) const {
  switch (kind) {
    case Kind::Function: {
      ANTAREX_CHECK(func != nullptr, "join point: function pointer missing");
      if (attr == "name") return Val::str(func->name);
      if (attr == "numParams") return Val::num(static_cast<double>(func->params.size()));
      if (attr == "line") return Val::num(func->loc.line);
      break;
    }
    case Kind::Call: {
      ANTAREX_CHECK(call != nullptr, "join point: call pointer missing");
      if (attr == "name") return Val::str(call->callee);
      if (attr == "location") return Val::str(call->loc.to_string());
      if (attr == "line") return Val::num(call->loc.line);
      if (attr == "numArgs") return Val::num(static_cast<double>(call->args.size()));
      if (attr == "argList") return Val::code(arg_list_source(*call));
      break;
    }
    case Kind::Loop: {
      ANTAREX_CHECK(loop != nullptr, "join point: loop pointer missing");
      if (attr == "type") return Val::str("for");
      const cir::LoopFacts facts = cir::analyze_loop(*loop);
      if (attr == "isInnermost") return Val::boolean(facts.is_innermost);
      if (attr == "numIter")
        return facts.trip_count ? Val::num(static_cast<double>(*facts.trip_count))
                                : Val::null();
      if (attr == "inductionVar") return Val::str(facts.induction_var);
      if (attr == "line") return Val::num(loop->loc.line);
      break;
    }
    case Kind::Arg: {
      ANTAREX_CHECK(call != nullptr && arg_index >= 0, "join point: malformed arg");
      const cir::Expr& a = *call->args[static_cast<std::size_t>(arg_index)];
      if (attr == "name") return Val::str(arg_name(*this));
      if (attr == "index") return Val::num(arg_index);
      if (attr == "code") return Val::code(cir::to_source(a));
      if (attr == "value") {
        if (a.kind == cir::ExprKind::IntLit)
          return Val::num(static_cast<double>(static_cast<const cir::IntLit&>(a).value));
        if (a.kind == cir::ExprKind::FloatLit)
          return Val::num(static_cast<const cir::FloatLit&>(a).value);
        return Val::null();
      }
      if (attr == "runtimeValue") {
        return runtime_value ? Val::num(static_cast<double>(*runtime_value))
                             : Val::null();
      }
      break;
    }
  }
  throw Error(format("DSL: unknown attribute '%s' on this join point kind",
                     attr.c_str()));
}

const JoinPointPtr* SelectionBinding::find(const std::string& var) const {
  for (const auto& [name, jp] : bound)
    if (name == var) return &jp;
  return nullptr;
}

const JoinPointPtr& SelectionBinding::leaf() const {
  ANTAREX_CHECK(!bound.empty(), "SelectionBinding: empty binding");
  return bound.back().second;
}

Val* Env::find_mutable(const std::string& name) {
  for (auto& [n, val] : vars_)
    if (n == name) return &val;
  return parent_ ? parent_->find_mutable(name) : nullptr;
}

void Env::set(const std::string& name, Val v) {
  if (Val* existing = find_mutable(name)) {
    *existing = std::move(v);
    return;
  }
  vars_.emplace_back(name, std::move(v));
}

void Env::set_local(const std::string& name, Val v) {
  for (auto& [n, val] : vars_) {
    if (n == name) {
      val = std::move(v);
      return;
    }
  }
  vars_.emplace_back(name, std::move(v));
}

const Val* Env::find(const std::string& name) const {
  for (const auto& [n, val] : vars_)
    if (n == name) return &val;
  return parent_ ? parent_->find(name) : nullptr;
}

Env Env::snapshot() const {
  Env out;
  std::function<void(const Env*)> copy_chain = [&](const Env* e) {
    if (!e) return;
    copy_chain(e->parent_);
    for (const auto& [n, v] : e->vars_) out.set(n, v);
  };
  copy_chain(this);
  return out;
}

Val eval_expr(const DExpr& e, const Env& env) {
  switch (e.kind) {
    case DExprKind::Null:
      return Val::null();
    case DExprKind::Bool:
      return Val::boolean(e.bool_value);
    case DExprKind::Num:
      return Val::num(e.num_value);
    case DExprKind::Str:
      return Val::str(e.str_value);
    case DExprKind::Var: {
      const Val* v = env.find(e.name);
      if (!v)
        throw Error(format("DSL: unbound variable '%s' (line %d)", e.name.c_str(),
                           e.line));
      return *v;
    }
    case DExprKind::Attr: {
      const Val base = eval_expr(*e.lhs, env);
      if (base.is_join_point()) return base.as_join_point()->attribute(e.name);
      if (base.is_record()) {
        const auto rec = base.as_record();
        auto it = rec->find(e.name);
        if (it == rec->end())
          throw Error(format("DSL: record has no field '%s' (line %d)",
                             e.name.c_str(), e.line));
        return it->second;
      }
      throw Error(format("DSL: '.%s' applied to a non-object value (line %d)",
                         e.name.c_str(), e.line));
    }
    case DExprKind::Unary: {
      const Val v = eval_expr(*e.lhs, env);
      return e.un_op == DUnOp::Neg ? Val::num(-v.as_num())
                                   : Val::boolean(!v.as_bool());
    }
    case DExprKind::Binary: {
      if (e.bin_op == DBinOp::And) {
        const Val l = eval_expr(*e.lhs, env);
        if (!l.as_bool()) return Val::boolean(false);
        return Val::boolean(eval_expr(*e.rhs, env).as_bool());
      }
      if (e.bin_op == DBinOp::Or) {
        const Val l = eval_expr(*e.lhs, env);
        if (l.as_bool()) return Val::boolean(true);
        return Val::boolean(eval_expr(*e.rhs, env).as_bool());
      }
      const Val l = eval_expr(*e.lhs, env);
      const Val r = eval_expr(*e.rhs, env);
      switch (e.bin_op) {
        case DBinOp::Eq: return Val::boolean(l.equals(r));
        case DBinOp::Ne: return Val::boolean(!l.equals(r));
        case DBinOp::Add:
          // String concatenation when either side is a string.
          if (l.is_str() || r.is_str()) return Val::str(l.to_string() + r.to_string());
          return Val::num(l.as_num() + r.as_num());
        case DBinOp::Sub: return Val::num(l.as_num() - r.as_num());
        case DBinOp::Mul: return Val::num(l.as_num() * r.as_num());
        case DBinOp::Div: return Val::num(l.as_num() / r.as_num());
        case DBinOp::Mod: return Val::num(std::fmod(l.as_num(), r.as_num()));
        // Comparisons on null (unknown attribute values, e.g. numIter of a
        // non-countable loop) are false rather than an error: conditions like
        // `$loop.numIter <= threshold` must simply not match such loops.
        case DBinOp::Lt:
          if (l.is_null() || r.is_null()) return Val::boolean(false);
          return Val::boolean(l.as_num() < r.as_num());
        case DBinOp::Le:
          if (l.is_null() || r.is_null()) return Val::boolean(false);
          return Val::boolean(l.as_num() <= r.as_num());
        case DBinOp::Gt:
          if (l.is_null() || r.is_null()) return Val::boolean(false);
          return Val::boolean(l.as_num() > r.as_num());
        case DBinOp::Ge:
          if (l.is_null() || r.is_null()) return Val::boolean(false);
          return Val::boolean(l.as_num() >= r.as_num());
        default:
          break;
      }
      ANTAREX_CHECK(false, "eval_expr: unreachable binop");
    }
  }
  ANTAREX_CHECK(false, "eval_expr: unreachable kind");
  return Val::null();
}

namespace {

JoinPointPtr make_func_jp(cir::Module& m, cir::Function& f) {
  auto jp = std::make_shared<JoinPoint>();
  jp->kind = JoinPoint::Kind::Function;
  jp->module = &m;
  jp->func = &f;
  return jp;
}

JoinPointPtr make_call_jp(cir::Module& m, const cir::CallSite& site) {
  auto jp = std::make_shared<JoinPoint>();
  jp->kind = JoinPoint::Kind::Call;
  jp->module = &m;
  jp->func = site.func;
  jp->call = site.call;
  jp->anchor_block = site.block;
  jp->anchor_stmt = site.block->stmts[site.stmt_index].get();
  return jp;
}

JoinPointPtr make_loop_jp(cir::Module& m, cir::Function& f, cir::ForStmt& loop) {
  auto jp = std::make_shared<JoinPoint>();
  jp->kind = JoinPoint::Kind::Loop;
  jp->module = &m;
  jp->func = &f;
  jp->loop = &loop;
  return jp;
}

JoinPointPtr make_arg_jp(const JoinPointPtr& call_jp, int index) {
  auto jp = std::make_shared<JoinPoint>(*call_jp);
  jp->kind = JoinPoint::Kind::Arg;
  jp->arg_index = index;
  return jp;
}

/// Candidates of a selector step within the scope of `parent` (or the whole
/// module when parent is null).
std::vector<JoinPointPtr> step_candidates(cir::Module& m, const JoinPointPtr& parent,
                                          const std::string& selector) {
  std::vector<JoinPointPtr> out;
  if (selector == "func") {
    ANTAREX_REQUIRE(!parent, "DSL: 'func' selector cannot be nested");
    for (auto& f : m.functions) out.push_back(make_func_jp(m, *f));
    return out;
  }
  if (selector == "fCall") {
    auto scan = [&](cir::Function& f) {
      for (auto& site : cir::collect_call_sites(f))
        out.push_back(make_call_jp(m, site));
    };
    if (parent) {
      ANTAREX_REQUIRE(parent->kind == JoinPoint::Kind::Function,
                      "DSL: 'fCall' may only be nested under 'func'");
      scan(*parent->func);
    } else {
      for (auto& f : m.functions) scan(*f);
    }
    return out;
  }
  if (selector == "loop") {
    auto scan = [&](cir::Function& f) {
      for (cir::ForStmt* loop : cir::collect_for_loops(f))
        out.push_back(make_loop_jp(m, f, *loop));
    };
    if (parent) {
      ANTAREX_REQUIRE(parent->kind == JoinPoint::Kind::Function,
                      "DSL: 'loop' may only be nested under 'func'");
      scan(*parent->func);
    } else {
      for (auto& f : m.functions) scan(*f);
    }
    return out;
  }
  if (selector == "arg") {
    ANTAREX_REQUIRE(parent && parent->kind == JoinPoint::Kind::Call,
                    "DSL: 'arg' must be nested under 'fCall'");
    for (int i = 0; i < static_cast<int>(parent->call->args.size()); ++i)
      out.push_back(make_arg_jp(parent, i));
    return out;
  }
  throw Error("DSL: unknown selector '" + selector + "'");
}

bool passes_filter(const JoinPointPtr& jp, const ChainStep& step) {
  if (step.name_filter) {
    // {'kernel'} shorthand: match the join point's name attribute.
    return jp->attribute("name").as_str() == *step.name_filter;
  }
  if (step.attr_filter) {
    // Attributes visible as bare identifiers; bind the jp's own variable too.
    Env env;
    env.set(JoinPoint::var_name_for_selector("self"), Val::join_point(jp));
    // Resolve bare identifiers by attribute lookup through a wrapper env is
    // not expressible with Env alone; instead evaluate with a custom walk:
    // we pre-bind the attribute names used by this kind. Simpler and robust:
    // rewrite Var nodes as attribute reads at eval time via a shim:
    struct Shim {
      static Val eval(const DExpr& e, const JoinPointPtr& jp, const Env& env) {
        if (e.kind == DExprKind::Var && e.name[0] != '$')
          return jp->attribute(e.name);
        if (e.kind == DExprKind::Attr) {
          const Val base = Shim::eval(*e.lhs, jp, env);
          if (base.is_join_point()) return base.as_join_point()->attribute(e.name);
          if (base.is_record()) {
            const auto rec = base.as_record();
            auto it = rec->find(e.name);
            ANTAREX_REQUIRE(it != rec->end(), "DSL: record has no field " + e.name);
            return it->second;
          }
          throw Error("DSL: '.' applied to non-object in filter");
        }
        if (e.kind == DExprKind::Unary) {
          const Val v = Shim::eval(*e.lhs, jp, env);
          return e.un_op == DUnOp::Neg ? Val::num(-v.as_num())
                                       : Val::boolean(!v.as_bool());
        }
        if (e.kind == DExprKind::Binary) {
          // Rebuild tiny expression with pre-evaluated leaves is overkill;
          // reuse eval_expr by materializing an env of leaf values is not
          // possible for arbitrary shapes. Evaluate directly:
          const Val l = Shim::eval(*e.lhs, jp, env);
          if (e.bin_op == DBinOp::And)
            return Val::boolean(l.as_bool() && Shim::eval(*e.rhs, jp, env).as_bool());
          if (e.bin_op == DBinOp::Or)
            return Val::boolean(l.as_bool() || Shim::eval(*e.rhs, jp, env).as_bool());
          const Val r = Shim::eval(*e.rhs, jp, env);
          switch (e.bin_op) {
            case DBinOp::Eq: return Val::boolean(l.equals(r));
            case DBinOp::Ne: return Val::boolean(!l.equals(r));
            case DBinOp::Add:
              if (l.is_str() || r.is_str())
                return Val::str(l.to_string() + r.to_string());
              return Val::num(l.as_num() + r.as_num());
            case DBinOp::Sub: return Val::num(l.as_num() - r.as_num());
            case DBinOp::Mul: return Val::num(l.as_num() * r.as_num());
            case DBinOp::Div: return Val::num(l.as_num() / r.as_num());
            case DBinOp::Mod: return Val::num(std::fmod(l.as_num(), r.as_num()));
            case DBinOp::Lt:
              if (l.is_null() || r.is_null()) return Val::boolean(false);
              return Val::boolean(l.as_num() < r.as_num());
            case DBinOp::Le:
              if (l.is_null() || r.is_null()) return Val::boolean(false);
              return Val::boolean(l.as_num() <= r.as_num());
            case DBinOp::Gt:
              if (l.is_null() || r.is_null()) return Val::boolean(false);
              return Val::boolean(l.as_num() > r.as_num());
            case DBinOp::Ge:
              if (l.is_null() || r.is_null()) return Val::boolean(false);
              return Val::boolean(l.as_num() >= r.as_num());
            default: break;
          }
        }
        return eval_expr(e, env);  // literals
      }
    };
    return Shim::eval(*step.attr_filter, jp, env).as_bool();
  }
  return true;
}

}  // namespace

std::vector<SelectionBinding> run_select(cir::Module& module,
                                         const JoinPointPtr& root,
                                         const SelectStmt& sel) {
  ANTAREX_REQUIRE(!sel.chain.empty(), "DSL: empty select chain");

  std::vector<SelectionBinding> frontier;
  {
    SelectionBinding seed;
    if (root) seed.bound.emplace_back("$root", root);
    frontier.push_back(std::move(seed));
  }

  for (const ChainStep& step : sel.chain) {
    std::vector<SelectionBinding> next;
    for (const SelectionBinding& b : frontier) {
      const JoinPointPtr parent =
          b.bound.empty() ? nullptr : b.bound.back().second;
      for (const JoinPointPtr& jp : step_candidates(module, parent, step.selector)) {
        if (!passes_filter(jp, step)) continue;
        SelectionBinding extended = b;
        extended.bound.emplace_back(JoinPoint::var_name_for_selector(step.selector),
                                    jp);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }

  // Drop the $root seed from the visible bindings.
  for (auto& b : frontier) {
    if (!b.bound.empty() && b.bound.front().first == "$root")
      b.bound.erase(b.bound.begin());
  }
  return frontier;
}

}  // namespace antarex::dsl
