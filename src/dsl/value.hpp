// Values of the ANTAREX DSL expression language.
//
// Aspects compute over a small dynamic value universe: null, booleans,
// numbers, strings, raw code fragments (spliced verbatim into %{...}%
// templates), join-point references, and records (the named outputs of
// builtin actions and called aspects, e.g. `spOut.$func` in Figure 4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>

#include "support/common.hpp"

namespace antarex::dsl {

struct JoinPoint;  // defined in joinpoint.hpp
class Val;

using Record = std::map<std::string, Val>;

class Val {
 public:
  Val() : v_(nullptr) {}
  static Val null() { return Val(); }
  static Val boolean(bool b);
  static Val num(double d);
  static Val str(std::string s);
  /// Raw code fragment: splices into templates without quoting.
  static Val code(std::string s);
  static Val join_point(std::shared_ptr<JoinPoint> jp);
  static Val record(std::shared_ptr<Record> r);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_num() const { return std::holds_alternative<double>(v_); }
  bool is_str() const { return std::holds_alternative<StrBox>(v_) && !std::get<StrBox>(v_).raw; }
  bool is_code() const { return std::holds_alternative<StrBox>(v_) && std::get<StrBox>(v_).raw; }
  bool is_join_point() const { return std::holds_alternative<std::shared_ptr<JoinPoint>>(v_); }
  bool is_record() const { return std::holds_alternative<std::shared_ptr<Record>>(v_); }

  bool as_bool() const;           ///< truthiness (null/false/0/"" are false)
  double as_num() const;          ///< throws unless numeric or bool
  const std::string& as_str() const;  ///< string or code content
  std::shared_ptr<JoinPoint> as_join_point() const;
  std::shared_ptr<Record> as_record() const;

  /// Equality used by `==` in aspect conditions: numeric compare for numbers
  /// and bools, text compare for strings/code, identity for join points.
  bool equals(const Val& other) const;

  /// Rendering for diagnostics and `[[...]]` template splices of non-string
  /// values (numbers print integral when exact).
  std::string to_string() const;

  /// Splice form: strings paste as mini-C string literals ("..."), code
  /// fragments paste raw, numbers paste as literals.
  std::string to_splice() const;

 private:
  struct StrBox {
    std::string s;
    bool raw = false;  // true: code fragment
  };
  std::variant<std::nullptr_t, bool, double, StrBox,
               std::shared_ptr<JoinPoint>, std::shared_ptr<Record>>
      v_;
};

}  // namespace antarex::dsl
