#include "dsl/value.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace antarex::dsl {

Val Val::boolean(bool b) {
  Val v;
  v.v_ = b;
  return v;
}

Val Val::num(double d) {
  Val v;
  v.v_ = d;
  return v;
}

Val Val::str(std::string s) {
  Val v;
  v.v_ = StrBox{std::move(s), false};
  return v;
}

Val Val::code(std::string s) {
  Val v;
  v.v_ = StrBox{std::move(s), true};
  return v;
}

Val Val::join_point(std::shared_ptr<JoinPoint> jp) {
  ANTAREX_REQUIRE(jp != nullptr, "Val: null join point");
  Val v;
  v.v_ = std::move(jp);
  return v;
}

Val Val::record(std::shared_ptr<Record> r) {
  ANTAREX_REQUIRE(r != nullptr, "Val: null record");
  Val v;
  v.v_ = std::move(r);
  return v;
}

bool Val::as_bool() const {
  if (is_null()) return false;
  if (is_bool()) return std::get<bool>(v_);
  if (is_num()) return std::get<double>(v_) != 0.0;
  if (is_str() || is_code()) return !std::get<StrBox>(v_).s.empty();
  return true;  // join points and records are truthy
}

double Val::as_num() const {
  if (is_num()) return std::get<double>(v_);
  if (is_bool()) return std::get<bool>(v_) ? 1.0 : 0.0;
  throw Error("dsl: value is not a number: " + to_string());
}

const std::string& Val::as_str() const {
  ANTAREX_REQUIRE(std::holds_alternative<StrBox>(v_),
                  "dsl: value is not a string: " + to_string());
  return std::get<StrBox>(v_).s;
}

std::shared_ptr<JoinPoint> Val::as_join_point() const {
  ANTAREX_REQUIRE(is_join_point(), "dsl: value is not a join point: " + to_string());
  return std::get<std::shared_ptr<JoinPoint>>(v_);
}

std::shared_ptr<Record> Val::as_record() const {
  ANTAREX_REQUIRE(is_record(), "dsl: value is not a record: " + to_string());
  return std::get<std::shared_ptr<Record>>(v_);
}

bool Val::equals(const Val& other) const {
  if ((is_num() || is_bool()) && (other.is_num() || other.is_bool()))
    return as_num() == other.as_num();
  if (std::holds_alternative<StrBox>(v_) &&
      std::holds_alternative<StrBox>(other.v_))
    return std::get<StrBox>(v_).s == std::get<StrBox>(other.v_).s;
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_join_point() && other.is_join_point())
    return std::get<std::shared_ptr<JoinPoint>>(v_) ==
           std::get<std::shared_ptr<JoinPoint>>(other.v_);
  return false;
}

std::string Val::to_string() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_num()) {
    const double d = std::get<double>(v_);
    if (std::floor(d) == d && std::fabs(d) < 1e15)
      return format("%lld", static_cast<long long>(d));
    return format("%g", d);
  }
  if (std::holds_alternative<StrBox>(v_)) return std::get<StrBox>(v_).s;
  if (is_join_point()) return "<joinpoint>";
  return "<record>";
}

std::string Val::to_splice() const {
  if (is_str()) return "\"" + std::get<StrBox>(v_).s + "\"";
  if (is_code()) return std::get<StrBox>(v_).s;
  if (is_bool()) return std::get<bool>(v_) ? "1" : "0";
  return to_string();
}

}  // namespace antarex::dsl
