// Lexer for the ANTAREX DSL (LARA-inspired aspect language).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/common.hpp"

namespace antarex::dsl {

enum class DTok {
  End,
  Ident,        // aspect/selector/attribute names
  DollarIdent,  // $fCall, $loop, $arg, $func ... (text includes the '$')
  Num,
  Str,          // 'single' or "double" quoted
  Template,     // %{ ... }% (text is the raw template body)
  // punctuation
  LParen, RParen, LBrace, RBrace,
  Dot, Comma, Semi, Colon,
  // operators
  Assign, Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Not,
  Plus, Minus, Star, Slash, Percent,
  // keywords
  KwAspectdef, KwEnd, KwInput, KwOutput, KwSelect, KwApply, KwCondition,
  KwCall, KwDo, KwInsert, KwBefore, KwAfter, KwDynamic, KwVar,
  KwTrue, KwFalse, KwNull,
};

const char* dtok_name(DTok t);

struct DToken {
  DTok kind = DTok::End;
  std::string text;
  double num = 0.0;
  int line = 0;
  int col = 0;
};

/// Tokenizes DSL source; throws antarex::Error on malformed input.
std::vector<DToken> dsl_lex(std::string_view source);

}  // namespace antarex::dsl
