#include <functional>

#include "dsl/ast.hpp"
#include "dsl/lexer.hpp"
#include "support/strings.hpp"

namespace antarex::dsl {

DExprPtr DExpr::clone() const {
  auto e = std::make_unique<DExpr>();
  e->kind = kind;
  e->bool_value = bool_value;
  e->num_value = num_value;
  e->str_value = str_value;
  e->name = name;
  e->un_op = un_op;
  e->bin_op = bin_op;
  e->line = line;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  return e;
}

const AspectDef* AspectLibrary::find(const std::string& name) const {
  for (const auto& a : aspects)
    if (a.name == name) return &a;
  return nullptr;
}

namespace {

class DslParser {
 public:
  explicit DslParser(std::string_view src) : toks_(dsl_lex(src)) {}

  AspectLibrary library() {
    AspectLibrary lib;
    while (!at(DTok::End)) lib.aspects.push_back(aspectdef());
    // Duplicate names are almost certainly a copy-paste bug in a strategy
    // file; reject early.
    for (std::size_t i = 0; i < lib.aspects.size(); ++i)
      for (std::size_t j = i + 1; j < lib.aspects.size(); ++j)
        if (lib.aspects[i].name == lib.aspects[j].name)
          throw Error("DSL: duplicate aspectdef '" + lib.aspects[i].name + "'");
    return lib;
  }

  DExprPtr single_expression() {
    DExprPtr e = expression();
    expect(DTok::End, "end of expression");
    return e;
  }

 private:
  const DToken& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(DTok k) const { return peek().kind == k; }
  const DToken& advance() { return toks_[pos_++]; }
  bool match(DTok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const DToken& expect(DTok k, const char* what) {
    if (!at(k))
      fail(format("expected %s (%s), got %s", dtok_name(k), what,
                  dtok_name(peek().kind)));
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error(format("DSL parse error at %d:%d: %s", peek().line, peek().col,
                       msg.c_str()));
  }

  // --- aspectdef ------------------------------------------------------------

  AspectDef aspectdef() {
    expect(DTok::KwAspectdef, "aspect definition");
    AspectDef def;
    def.name = expect(DTok::Ident, "aspect name").text;
    while (!at(DTok::KwEnd)) {
      if (at(DTok::End)) fail("unterminated aspectdef '" + def.name + "'");
      switch (peek().kind) {
        case DTok::KwInput:
          advance();
          name_list(def.inputs);
          expect(DTok::KwEnd, "end of input section");
          break;
        case DTok::KwOutput:
          advance();
          name_list(def.outputs);
          expect(DTok::KwEnd, "end of output section");
          break;
        case DTok::KwSelect:
          def.body.push_back(select_item());
          break;
        case DTok::KwApply:
          def.body.push_back(apply_item());
          break;
        case DTok::KwCondition:
          def.body.push_back(condition_item());
          break;
        case DTok::KwCall: {
          Item item;
          item.kind = Item::Kind::Call;
          item.call = call_stmt();
          def.body.push_back(std::move(item));
          break;
        }
        case DTok::KwVar: {
          advance();
          Item item;
          item.kind = Item::Kind::Assign;
          item.assign.name = ident_or_dollar("variable name");
          expect(DTok::Assign, "initializer");
          item.assign.value = expression();
          expect(DTok::Semi, "';' after var");
          def.body.push_back(std::move(item));
          break;
        }
        case DTok::Ident:
        case DTok::DollarIdent: {
          // output/variable assignment: name = expr ;
          Item item;
          item.kind = Item::Kind::Assign;
          item.assign.name = advance().text;
          expect(DTok::Assign, "assignment");
          item.assign.value = expression();
          expect(DTok::Semi, "';' after assignment");
          def.body.push_back(std::move(item));
          break;
        }
        default:
          fail(format("unexpected %s in aspect body", dtok_name(peek().kind)));
      }
    }
    expect(DTok::KwEnd, "end of aspectdef");
    return def;
  }

  void name_list(std::vector<std::string>& out) {
    out.push_back(ident_or_dollar("name"));
    while (match(DTok::Comma)) out.push_back(ident_or_dollar("name"));
  }

  std::string ident_or_dollar(const char* what) {
    if (at(DTok::Ident) || at(DTok::DollarIdent)) return advance().text;
    fail(format("expected %s", what));
  }

  // --- select ----------------------------------------------------------------

  Item select_item() {
    expect(DTok::KwSelect, "select");
    Item item;
    item.kind = Item::Kind::Select;
    if (at(DTok::DollarIdent)) {
      item.select.root_var = advance().text;
      expect(DTok::Dot, "'.' after select root");
    }
    item.select.chain.push_back(chain_step());
    while (match(DTok::Dot)) item.select.chain.push_back(chain_step());
    expect(DTok::KwEnd, "end of select");
    return item;
  }

  ChainStep chain_step() {
    ChainStep step;
    step.selector = expect(DTok::Ident, "selector name").text;
    if (match(DTok::LBrace)) {
      if (at(DTok::Str) && peek(1).kind == DTok::RBrace) {
        step.name_filter = advance().text;
      } else {
        step.attr_filter = expression();
      }
      expect(DTok::RBrace, "end of selector filter");
    }
    return step;
  }

  // --- apply -------------------------------------------------------------------

  Item apply_item() {
    expect(DTok::KwApply, "apply");
    Item item;
    item.kind = Item::Kind::Apply;
    item.apply.dynamic = match(DTok::KwDynamic);
    while (!at(DTok::KwEnd)) {
      if (at(DTok::End)) fail("unterminated apply block");
      item.apply.actions.push_back(action());
    }
    expect(DTok::KwEnd, "end of apply");
    return item;
  }

  Action action() {
    Action a{};
    switch (peek().kind) {
      case DTok::KwInsert: {
        advance();
        a.kind = Action::Kind::Insert;
        if (match(DTok::KwBefore)) {
          a.insert.before = true;
        } else if (match(DTok::KwAfter)) {
          a.insert.before = false;
        } else {
          fail("expected 'before' or 'after' after insert");
        }
        a.insert.code_template = expect(DTok::Template, "code template").text;
        expect(DTok::Semi, "';' after insert");
        return a;
      }
      case DTok::KwDo: {
        advance();
        a.kind = Action::Kind::Do;
        a.do_action.action = expect(DTok::Ident, "action name").text;
        expect(DTok::LParen, "action arguments");
        if (!at(DTok::RParen)) {
          a.do_action.args.push_back(expression());
          while (match(DTok::Comma)) a.do_action.args.push_back(expression());
        }
        expect(DTok::RParen, "end of action arguments");
        expect(DTok::Semi, "';' after do");
        return a;
      }
      case DTok::KwCall: {
        a.kind = Action::Kind::Call;
        a.call = call_stmt();
        return a;
      }
      case DTok::Ident:
      case DTok::DollarIdent: {
        a.kind = Action::Kind::Assign;
        a.assign.name = advance().text;
        expect(DTok::Assign, "assignment");
        a.assign.value = expression();
        expect(DTok::Semi, "';' after assignment");
        return a;
      }
      default:
        fail(format("unexpected %s in apply block", dtok_name(peek().kind)));
    }
  }

  CallStmt call_stmt() {
    expect(DTok::KwCall, "call");
    CallStmt c;
    // `call label : Callee(...)` or `call Callee(...)`.
    if (at(DTok::Ident) && peek(1).kind == DTok::Colon) {
      c.label = advance().text;
      advance();  // ':'
    }
    c.callee = expect(DTok::Ident, "aspect or action name").text;
    expect(DTok::LParen, "call arguments");
    if (!at(DTok::RParen)) {
      c.args.push_back(expression());
      while (match(DTok::Comma)) c.args.push_back(expression());
    }
    expect(DTok::RParen, "end of call arguments");
    expect(DTok::Semi, "';' after call");
    return c;
  }

  Item condition_item() {
    expect(DTok::KwCondition, "condition");
    Item item;
    item.kind = Item::Kind::Condition;
    item.condition.expr = expression();
    expect(DTok::KwEnd, "end of condition");
    return item;
  }

  // --- expressions -------------------------------------------------------------

  DExprPtr make(DExprKind k) {
    auto e = std::make_unique<DExpr>();
    e->kind = k;
    e->line = peek().line;
    return e;
  }

  DExprPtr expression() { return or_expr(); }

  DExprPtr binary(DBinOp op, DExprPtr l, DExprPtr r) {
    auto e = make(DExprKind::Binary);
    e->bin_op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }

  DExprPtr or_expr() {
    DExprPtr e = and_expr();
    while (match(DTok::OrOr)) e = binary(DBinOp::Or, std::move(e), and_expr());
    return e;
  }

  DExprPtr and_expr() {
    DExprPtr e = cmp_expr();
    while (match(DTok::AndAnd)) e = binary(DBinOp::And, std::move(e), cmp_expr());
    return e;
  }

  DExprPtr cmp_expr() {
    DExprPtr e = add_expr();
    while (true) {
      DBinOp op;
      if (at(DTok::Eq)) op = DBinOp::Eq;
      else if (at(DTok::Ne)) op = DBinOp::Ne;
      else if (at(DTok::Lt)) op = DBinOp::Lt;
      else if (at(DTok::Le)) op = DBinOp::Le;
      else if (at(DTok::Gt)) op = DBinOp::Gt;
      else if (at(DTok::Ge)) op = DBinOp::Ge;
      else break;
      advance();
      e = binary(op, std::move(e), add_expr());
    }
    return e;
  }

  DExprPtr add_expr() {
    DExprPtr e = mul_expr();
    while (at(DTok::Plus) || at(DTok::Minus)) {
      const DBinOp op = at(DTok::Plus) ? DBinOp::Add : DBinOp::Sub;
      advance();
      e = binary(op, std::move(e), mul_expr());
    }
    return e;
  }

  DExprPtr mul_expr() {
    DExprPtr e = unary_expr();
    while (at(DTok::Star) || at(DTok::Slash) || at(DTok::Percent)) {
      DBinOp op = DBinOp::Mul;
      if (at(DTok::Slash)) op = DBinOp::Div;
      else if (at(DTok::Percent)) op = DBinOp::Mod;
      advance();
      e = binary(op, std::move(e), unary_expr());
    }
    return e;
  }

  DExprPtr unary_expr() {
    if (at(DTok::Minus) || at(DTok::Not)) {
      const DUnOp op = at(DTok::Minus) ? DUnOp::Neg : DUnOp::Not;
      advance();
      auto e = make(DExprKind::Unary);
      e->un_op = op;
      e->lhs = unary_expr();
      return e;
    }
    return postfix_expr();
  }

  DExprPtr postfix_expr() {
    DExprPtr e = primary_expr();
    while (match(DTok::Dot)) {
      auto attr = make(DExprKind::Attr);
      if (at(DTok::Ident) || at(DTok::DollarIdent)) {
        attr->name = advance().text;
      } else {
        fail("expected attribute name after '.'");
      }
      attr->lhs = std::move(e);
      e = std::move(attr);
    }
    return e;
  }

  DExprPtr primary_expr() {
    switch (peek().kind) {
      case DTok::Num: {
        auto e = make(DExprKind::Num);
        e->num_value = advance().num;
        return e;
      }
      case DTok::Str: {
        auto e = make(DExprKind::Str);
        e->str_value = advance().text;
        return e;
      }
      case DTok::KwTrue: {
        advance();
        auto e = make(DExprKind::Bool);
        e->bool_value = true;
        return e;
      }
      case DTok::KwFalse: {
        advance();
        auto e = make(DExprKind::Bool);
        e->bool_value = false;
        return e;
      }
      case DTok::KwNull:
        advance();
        return make(DExprKind::Null);
      case DTok::Ident:
      case DTok::DollarIdent: {
        auto e = make(DExprKind::Var);
        e->name = advance().text;
        return e;
      }
      case DTok::LParen: {
        advance();
        DExprPtr e = expression();
        expect(DTok::RParen, "closing parenthesis");
        return e;
      }
      default:
        fail(format("unexpected %s in expression", dtok_name(peek().kind)));
    }
  }

  std::vector<DToken> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

AspectLibrary parse_aspects(std::string_view source) {
  return DslParser(source).library();
}

DExprPtr parse_dsl_expression(std::string_view source) {
  return DslParser(source).single_expression();
}

}  // namespace antarex::dsl
