// DSL runtime support: the instrumentation probes that woven code calls.
//
// Figure 2's aspect injects `profile_args(name, location, args...)` before
// selected calls; this file provides the host-side store those probes write
// to — "gather information about argument values and their frequency".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cir/ast.hpp"
#include "support/common.hpp"
#include "vm/engine.hpp"

namespace antarex::dsl {

/// Collects per-function argument profiles from `profile_args` probes.
class ProfileStore {
 public:
  struct FunctionProfile {
    std::string location;                  ///< first-seen probe location
    u64 calls = 0;
    /// value -> frequency, per argument position (numeric args only).
    std::vector<std::map<double, u64>> value_counts;
  };

  /// Register the `profile_args` host function on an engine. The store must
  /// outlive the engine's use of the probe.
  void install(vm::Engine& engine);

  /// Record one observation (also callable directly from C++).
  void record(const std::string& func, const std::string& location,
              const std::vector<double>& args);

  bool has(const std::string& func) const;
  const FunctionProfile& profile(const std::string& func) const;
  u64 total_calls() const;

  /// Most frequent value observed for one argument position; throws if the
  /// function or index was never observed.
  double hottest_value(const std::string& func, std::size_t arg_index) const;

  void clear();

 private:
  std::map<std::string, FunctionProfile> profiles_;
};

/// Section timers: the `monitor_begin(id)` / `monitor_end(id)` probes that
/// adaptivity aspects weave around regions of interest (the "Runtime
/// Monitoring" box of Figure 1). Cost is measured in VM instructions — the
/// stack's deterministic clock — so tests and benches are reproducible.
/// Sections may nest and repeat; statistics accumulate per id.
class SectionTimers {
 public:
  /// Register both probes on the engine. The store must outlive their use.
  void install(vm::Engine& engine);

  struct Section {
    u64 entries = 0;
    u64 exits = 0;
    u64 total_instructions = 0;
    u64 min_instructions = 0;
    u64 max_instructions = 0;
  };

  bool has(const std::string& id) const;
  const Section& section(const std::string& id) const;
  double mean_instructions(const std::string& id) const;
  /// Sections currently entered but not exited (should be 0 between calls).
  std::size_t open_sections() const;
  void clear();

 private:
  void begin(const std::string& id);
  void end(const std::string& id);

  vm::Engine* engine_ = nullptr;
  std::map<std::string, Section> sections_;
  std::vector<std::pair<std::string, u64>> stack_;  ///< (id, start count)
};

/// Fully automatic profile-guided specialization (paper Sec. IV: "fully
/// automatic dynamic optimizations, based on profiling information, and data
/// acquired at runtime, e.g. dynamic range of function parameters").
///
/// Where Figure 4's aspect names the function, parameter and value range by
/// hand, AutoSpecializer derives them from the ProfileStore: when a profiled
/// function gets hot and one of its integer parameters is dominated by a
/// single value, it specializes on that value (clone -> bind -> fold ->
/// unroll -> dce -> compile -> AddVersion) without any per-function strategy.
class AutoSpecializer {
 public:
  struct Options {
    u64 min_calls = 64;            ///< profile confidence before acting
    double min_share = 0.5;        ///< hottest value must dominate
    std::size_t max_versions = 4;  ///< per function
    i64 unroll_threshold = 256;    ///< full-unroll cap for bound loops
  };

  AutoSpecializer(cir::Module& module, vm::Engine& engine)
      : AutoSpecializer(module, engine, Options()) {}
  AutoSpecializer(cir::Module& module, vm::Engine& engine, Options opts);

  /// Inspect the profile and install any specializations that became
  /// profitable. Call periodically (e.g., each monitor window). Returns the
  /// number of versions installed by this step.
  std::size_t step(const ProfileStore& profile);

  std::size_t versions_installed() const { return installed_; }

 private:
  cir::Module& module_;
  vm::Engine& engine_;
  Options opts_;
  std::map<std::string, std::vector<i64>> done_;  ///< func -> handled values
  std::map<std::string, int> chosen_param_;       ///< func -> param index
  std::size_t installed_ = 0;
};

}  // namespace antarex::dsl
