#include "dsl/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "passes/const_fold.hpp"
#include "passes/dce.hpp"
#include "passes/specialize.hpp"
#include "passes/unroll.hpp"
#include "vm/compiler.hpp"

namespace antarex::dsl {

void ProfileStore::install(vm::Engine& engine) {
  engine.register_host(
      "profile_args", [this](std::span<const vm::Value> args) {
        ANTAREX_REQUIRE(args.size() >= 2,
                        "profile_args: expected (name, location, values...)");
        std::vector<double> values;
        for (std::size_t i = 2; i < args.size(); ++i) {
          // Keep argument positions aligned with the call site: numeric args
          // record their value, buffers record their length (a useful
          // profile in its own right), strings record 0.
          if (args[i].is_numeric()) {
            values.push_back(args[i].as_float());
          } else if (args[i].kind() == vm::Value::Kind::FloatArr) {
            values.push_back(static_cast<double>(args[i].float_array().size()));
          } else if (args[i].kind() == vm::Value::Kind::IntArr) {
            values.push_back(static_cast<double>(args[i].int_array().size()));
          } else {
            values.push_back(0.0);
          }
        }
        record(args[0].as_str(), args[1].as_str(), values);
        return vm::Value::from_int(0);
      });
}

void ProfileStore::record(const std::string& func, const std::string& location,
                          const std::vector<double>& args) {
  FunctionProfile& p = profiles_[func];
  if (p.calls == 0) p.location = location;
  ++p.calls;
  if (p.value_counts.size() < args.size()) p.value_counts.resize(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) ++p.value_counts[i][args[i]];
}

bool ProfileStore::has(const std::string& func) const {
  return profiles_.contains(func);
}

const ProfileStore::FunctionProfile& ProfileStore::profile(
    const std::string& func) const {
  auto it = profiles_.find(func);
  ANTAREX_REQUIRE(it != profiles_.end(),
                  "ProfileStore: no profile for '" + func + "'");
  return it->second;
}

u64 ProfileStore::total_calls() const {
  u64 n = 0;
  for (const auto& [name, p] : profiles_) n += p.calls;
  return n;
}

double ProfileStore::hottest_value(const std::string& func,
                                   std::size_t arg_index) const {
  const FunctionProfile& p = profile(func);
  ANTAREX_REQUIRE(arg_index < p.value_counts.size(),
                  "ProfileStore: argument index never observed");
  const auto& counts = p.value_counts[arg_index];
  ANTAREX_REQUIRE(!counts.empty(), "ProfileStore: no numeric observations");
  double best = 0.0;
  u64 best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = value;
    }
  }
  return best;
}

void ProfileStore::clear() { profiles_.clear(); }

void SectionTimers::install(vm::Engine& engine) {
  engine_ = &engine;
  engine.register_host("monitor_begin", [this](std::span<const vm::Value> args) {
    ANTAREX_REQUIRE(args.size() == 1, "monitor_begin: expected (id)");
    begin(args[0].is_str() ? args[0].as_str() : args[0].to_string());
    return vm::Value::from_int(0);
  });
  engine.register_host("monitor_end", [this](std::span<const vm::Value> args) {
    ANTAREX_REQUIRE(args.size() == 1, "monitor_end: expected (id)");
    end(args[0].is_str() ? args[0].as_str() : args[0].to_string());
    return vm::Value::from_int(0);
  });
}

void SectionTimers::begin(const std::string& id) {
  ANTAREX_CHECK(engine_ != nullptr, "SectionTimers: not installed");
  ++sections_[id].entries;
  stack_.emplace_back(id, engine_->executed_instructions());
}

void SectionTimers::end(const std::string& id) {
  ANTAREX_REQUIRE(!stack_.empty(),
                  "monitor_end('" + id + "') without matching monitor_begin");
  ANTAREX_REQUIRE(stack_.back().first == id,
                  "monitor_end('" + id + "') does not match open section '" +
                      stack_.back().first + "'");
  const u64 elapsed = engine_->executed_instructions() - stack_.back().second;
  stack_.pop_back();
  Section& s = sections_[id];
  if (s.exits == 0) {
    s.min_instructions = s.max_instructions = elapsed;
  } else {
    s.min_instructions = std::min(s.min_instructions, elapsed);
    s.max_instructions = std::max(s.max_instructions, elapsed);
  }
  ++s.exits;
  s.total_instructions += elapsed;
}

bool SectionTimers::has(const std::string& id) const {
  return sections_.contains(id);
}

const SectionTimers::Section& SectionTimers::section(const std::string& id) const {
  auto it = sections_.find(id);
  ANTAREX_REQUIRE(it != sections_.end(),
                  "SectionTimers: no section '" + id + "'");
  return it->second;
}

double SectionTimers::mean_instructions(const std::string& id) const {
  const Section& s = section(id);
  ANTAREX_REQUIRE(s.exits > 0, "SectionTimers: section '" + id + "' never exited");
  return static_cast<double>(s.total_instructions) / static_cast<double>(s.exits);
}

std::size_t SectionTimers::open_sections() const { return stack_.size(); }

void SectionTimers::clear() {
  sections_.clear();
  stack_.clear();
}

AutoSpecializer::AutoSpecializer(cir::Module& module, vm::Engine& engine,
                                 Options opts)
    : module_(module), engine_(engine), opts_(opts) {
  ANTAREX_REQUIRE(opts_.min_calls > 0 && opts_.min_share > 0.0 &&
                      opts_.min_share <= 1.0,
                  "AutoSpecializer: invalid options");
}

std::size_t AutoSpecializer::step(const ProfileStore& profile) {
  std::size_t added = 0;

  // Snapshot names first: installing a specialization appends to
  // module_.functions, which would invalidate direct iteration.
  std::vector<std::string> names;
  names.reserve(module_.functions.size());
  for (const auto& fn : module_.functions) names.push_back(fn->name);

  for (const std::string& name : names) {
    cir::Function* fn = module_.find(name);
    if (!fn || !profile.has(name)) continue;
    const ProfileStore::FunctionProfile& p = profile.profile(name);
    if (p.calls < opts_.min_calls) continue;
    if (done_[name].size() >= opts_.max_versions) continue;

    // Pick the parameter to specialize on: the integer parameter whose
    // hottest observed value has the highest share (decided once per
    // function — the VM guards a single argument index).
    int param = chosen_param_.count(name) ? chosen_param_[name] : -1;
    if (param < 0) {
      double best_share = 0.0;
      for (std::size_t i = 0; i < fn->params.size() && i < p.value_counts.size();
           ++i) {
        if (fn->params[i].type != cir::Type::Int) continue;
        if (p.value_counts[i].empty()) continue;
        u64 top = 0;
        for (const auto& [value, count] : p.value_counts[i])
          top = std::max(top, count);
        const double share = static_cast<double>(top) /
                             static_cast<double>(p.calls);
        if (share > best_share) {
          best_share = share;
          param = static_cast<int>(i);
        }
      }
      if (param < 0 || best_share < opts_.min_share) continue;
      chosen_param_[name] = param;
      engine_.prepare_specialize(name, param);
    }

    // Hottest value for the chosen parameter.
    if (static_cast<std::size_t>(param) >= p.value_counts.size()) continue;
    const auto& counts = p.value_counts[static_cast<std::size_t>(param)];
    if (counts.empty()) continue;
    double best_value = 0.0;
    u64 best_count = 0;
    for (const auto& [value, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best_value = value;
      }
    }
    const double share =
        static_cast<double>(best_count) / static_cast<double>(p.calls);
    if (share < opts_.min_share) continue;
    if (std::floor(best_value) != best_value) continue;  // non-integral
    const i64 value = static_cast<i64>(best_value);
    auto& handled = done_[name];
    if (std::find(handled.begin(), handled.end(), value) != handled.end())
      continue;

    // Specialize + optimize + install.
    const std::string& pname =
        fn->params[static_cast<std::size_t>(param)].name;
    cir::Function* variant =
        passes::specialize_function(module_, name, pname, value);
    passes::ConstantFoldPass fold;
    passes::FullUnrollPass unroll(opts_.unroll_threshold);
    passes::DeadCodeEliminationPass dce;
    fold.run(*variant);
    unroll.run(*variant);
    fold.run(*variant);
    dce.run(*variant);
    engine_.add_version(name, value, vm::compile_function(*variant));

    handled.push_back(value);
    ++installed_;
    ++added;
  }
  return added;
}

}  // namespace antarex::dsl
