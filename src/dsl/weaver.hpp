// The ANTAREX DSL weaver.
//
// Executes aspect definitions over a mini-C module: resolves select chains to
// join points, evaluates conditions, and performs actions — code insertion
// (Fig. 2), loop transformations (Fig. 3), and runtime specialization via
// dynamic weaving against the VM's JIT manager (Fig. 4).
//
// Builtin actions available to aspects:
//   insert before/after %{...}%   - splice mini-C statements around the
//                                   *statement containing* the selected call.
//                                   Caveat: `insert after` a call that sits
//                                   inside a `return` lands after the return
//                                   and never executes — hoist the call into
//                                   its own statement when pairing
//                                   begin/end probes.
//   do LoopUnroll('full')          - fully unroll the selected $loop
//   do LoopUnroll(N)               - partially unroll by factor N
//   call PrepareSpecialize(f, p)   - arm multiversion dispatch on f's param p
//   call Specialize(fc, p, v)      - clone+bind+optimize, returns {$func,name}
//   call AddVersion(sp, $func, v)  - compile & install variant in the VM
//   call <UserAspect>(args...)     - invoke another aspectdef; returns its
//                                    outputs as a record
#pragma once

#include <string>
#include <vector>

#include "cir/ast.hpp"
#include "dsl/ast.hpp"
#include "dsl/joinpoint.hpp"
#include "vm/engine.hpp"

namespace antarex::dsl {

/// Counters describing what a weaving session did (reported by benches and
/// asserted by tests).
struct WeaveStats {
  std::size_t selections = 0;        ///< join points matched by selects
  std::size_t condition_rejects = 0; ///< matches filtered out by conditions
  std::size_t inserts = 0;
  std::size_t unrolls = 0;
  std::size_t specializations = 0;
  std::size_t versions_added = 0;
  std::size_t dynamic_registrations = 0;
  std::size_t dynamic_triggers = 0;  ///< dynamic apply bodies executed
};

class Weaver {
 public:
  /// `engine` may be null for purely static weaving; dynamic aspects and the
  /// specialization builtins that install code versions require it.
  Weaver(cir::Module& module, vm::Engine* engine = nullptr);

  /// Load (move in) a parsed aspect library.
  void load(AspectLibrary lib);
  /// Convenience: parse and load DSL source.
  void load_source(std::string_view dsl_source);

  /// Run an aspect with positional input values. Returns the aspect's outputs
  /// (declared via `output`) as a record.
  Record run(const std::string& aspect_name, std::vector<Val> inputs = {});

  const WeaveStats& stats() const { return stats_; }
  cir::Module& module() { return module_; }

 private:
  struct DynamicRegistration {
    std::string callee;                 ///< watched function name
    int arg_index = -1;                 ///< argument bound to $arg
    const ApplyStmt* apply = nullptr;   ///< actions to run on trigger
    const DExpr* condition = nullptr;   ///< may be null
    std::shared_ptr<Env> closure;       ///< captured aspect inputs
    std::vector<i64> handled_values;    ///< memoized guard values
  };

  void exec_aspect(const AspectDef& def, Env& env);
  void exec_apply(const ApplyStmt& apply, const SelectStmt& sel,
                  const DExpr* condition, Env& env);
  void exec_action(const Action& a, Env& env);
  Val exec_call(const CallStmt& call, Env& env);
  void do_insert(const InsertAction& ins, Env& env);
  void do_loop_unroll(const DoAction& act, Env& env);
  void register_dynamic(const ApplyStmt& apply, const SelectStmt& sel,
                        const DExpr* condition, const Env& env);
  void on_vm_call(const std::string& name, const std::vector<vm::Value>& args);

  /// Expand a %{...}% template: resolves [[expr]] splices against env.
  std::string splice_template(const std::string& tmpl, Env& env) const;

  // Builtin actions.
  Val builtin_prepare_specialize(const std::vector<Val>& args);
  Val builtin_specialize(const std::vector<Val>& args);
  Val builtin_add_version(const std::vector<Val>& args);

  cir::Module& module_;
  vm::Engine* engine_;
  AspectLibrary library_;
  WeaveStats stats_;
  std::vector<DynamicRegistration> dynamic_;
  bool hook_installed_ = false;
  int call_depth_ = 0;
};

}  // namespace antarex::dsl
