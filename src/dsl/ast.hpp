// AST of the ANTAREX DSL.
//
// An aspect definition (`aspectdef`, paper Figs. 2-4) is the modular unit: it
// declares inputs/outputs and an ordered body of items — select statements,
// apply blocks (optionally dynamic), conditions, calls to other aspects or
// builtin actions, and variable assignments.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::dsl {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class DExprKind { Null, Bool, Num, Str, Var, Attr, Unary, Binary };

enum class DUnOp { Neg, Not };
enum class DBinOp { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or };

struct DExpr;
using DExprPtr = std::unique_ptr<DExpr>;

struct DExpr {
  DExprKind kind;
  // literals
  bool bool_value = false;
  double num_value = 0.0;
  std::string str_value;
  // Var: name (may start with '$'); Attr: member name
  std::string name;
  // Unary/Binary/Attr children
  DUnOp un_op = DUnOp::Neg;
  DBinOp bin_op = DBinOp::Add;
  DExprPtr lhs;  // Attr base / unary operand / binary lhs
  DExprPtr rhs;

  int line = 0;

  DExprPtr clone() const;
};

// ---------------------------------------------------------------------------
// Select chains
// ---------------------------------------------------------------------------

/// One step of a select chain, e.g. `loop{type=='for'}` or `fCall{'kernel'}`
/// or `arg{'size'}`. A bare string filter is shorthand for name == <string>.
struct ChainStep {
  std::string selector;              ///< "func" | "fCall" | "loop" | "arg"
  std::optional<std::string> name_filter;  ///< {'kernel'} shorthand
  DExprPtr attr_filter;              ///< {type=='for'} — may be null
};

struct SelectStmt {
  /// Non-empty when the chain is rooted at a join-point variable from the
  /// environment, e.g. `select $func.loop{...} end`.
  std::string root_var;
  std::vector<ChainStep> chain;
};

// ---------------------------------------------------------------------------
// Actions & statements
// ---------------------------------------------------------------------------

struct CallStmt {
  std::string label;   ///< empty if unlabelled; `call spOut : Specialize(...)`
  std::string callee;  ///< aspect or builtin action name
  std::vector<DExprPtr> args;
};

struct AssignStmt {
  std::string name;
  DExprPtr value;
};

struct InsertAction {
  bool before = true;
  std::string code_template;  ///< raw %{...}% body with [[expr]] splices
};

struct DoAction {
  std::string action;  ///< e.g. "LoopUnroll"
  std::vector<DExprPtr> args;
};

struct Action {
  enum class Kind { Insert, Do, Call, Assign } kind;
  InsertAction insert;
  DoAction do_action;
  CallStmt call;
  AssignStmt assign;
};

struct ApplyStmt {
  bool dynamic = false;
  std::vector<Action> actions;
};

struct ConditionStmt {
  DExprPtr expr;
};

struct Item {
  enum class Kind { Select, Apply, Condition, Call, Assign } kind;
  SelectStmt select;
  ApplyStmt apply;
  ConditionStmt condition;
  CallStmt call;
  AssignStmt assign;
};

// ---------------------------------------------------------------------------
// Aspect definitions
// ---------------------------------------------------------------------------

struct AspectDef {
  std::string name;
  std::vector<std::string> inputs;   ///< names, possibly '$'-prefixed
  std::vector<std::string> outputs;
  std::vector<Item> body;
};

/// A parsed DSL file: named aspect definitions.
struct AspectLibrary {
  std::vector<AspectDef> aspects;

  const AspectDef* find(const std::string& name) const;
};

/// Parse a DSL source file. Throws antarex::Error with line info on errors.
AspectLibrary parse_aspects(std::string_view source);

/// Parse a single DSL expression (used in tests and filters).
DExprPtr parse_dsl_expression(std::string_view source);

}  // namespace antarex::dsl
