#include "dsl/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/strings.hpp"

namespace antarex::dsl {

const char* dtok_name(DTok t) {
  switch (t) {
    case DTok::End: return "<eof>";
    case DTok::Ident: return "identifier";
    case DTok::DollarIdent: return "$-identifier";
    case DTok::Num: return "number";
    case DTok::Str: return "string";
    case DTok::Template: return "code template";
    case DTok::LParen: return "'('";
    case DTok::RParen: return "')'";
    case DTok::LBrace: return "'{'";
    case DTok::RBrace: return "'}'";
    case DTok::Dot: return "'.'";
    case DTok::Comma: return "','";
    case DTok::Semi: return "';'";
    case DTok::Colon: return "':'";
    case DTok::Assign: return "'='";
    case DTok::Eq: return "'=='";
    case DTok::Ne: return "'!='";
    case DTok::Lt: return "'<'";
    case DTok::Le: return "'<='";
    case DTok::Gt: return "'>'";
    case DTok::Ge: return "'>='";
    case DTok::AndAnd: return "'&&'";
    case DTok::OrOr: return "'||'";
    case DTok::Not: return "'!'";
    case DTok::Plus: return "'+'";
    case DTok::Minus: return "'-'";
    case DTok::Star: return "'*'";
    case DTok::Slash: return "'/'";
    case DTok::Percent: return "'%'";
    case DTok::KwAspectdef: return "'aspectdef'";
    case DTok::KwEnd: return "'end'";
    case DTok::KwInput: return "'input'";
    case DTok::KwOutput: return "'output'";
    case DTok::KwSelect: return "'select'";
    case DTok::KwApply: return "'apply'";
    case DTok::KwCondition: return "'condition'";
    case DTok::KwCall: return "'call'";
    case DTok::KwDo: return "'do'";
    case DTok::KwInsert: return "'insert'";
    case DTok::KwBefore: return "'before'";
    case DTok::KwAfter: return "'after'";
    case DTok::KwDynamic: return "'dynamic'";
    case DTok::KwVar: return "'var'";
    case DTok::KwTrue: return "'true'";
    case DTok::KwFalse: return "'false'";
    case DTok::KwNull: return "'null'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, DTok>& keywords() {
  static const std::unordered_map<std::string_view, DTok> kw = {
      {"aspectdef", DTok::KwAspectdef}, {"end", DTok::KwEnd},
      {"input", DTok::KwInput},         {"output", DTok::KwOutput},
      {"select", DTok::KwSelect},       {"apply", DTok::KwApply},
      {"condition", DTok::KwCondition}, {"call", DTok::KwCall},
      {"do", DTok::KwDo},               {"insert", DTok::KwInsert},
      {"before", DTok::KwBefore},       {"after", DTok::KwAfter},
      {"dynamic", DTok::KwDynamic},     {"var", DTok::KwVar},
      {"true", DTok::KwTrue},           {"false", DTok::KwFalse},
      {"null", DTok::KwNull},
  };
  return kw;
}

}  // namespace

std::vector<DToken> dsl_lex(std::string_view src) {
  std::vector<DToken> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  auto fail = [&](const std::string& msg) -> void {
    throw Error(format("DSL lex error at %d:%d: %s", line, col, msg.c_str()));
  };
  auto advance = [&]() -> char {
    const char c = src[i++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  };
  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  };
  auto push = [&](DTok k, std::string text, int l, int c) {
    DToken t;
    t.kind = k;
    t.text = std::move(text);
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    const int l = line, co = col;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) fail("unterminated block comment");
      advance();
      advance();
      continue;
    }
    // Template %{ ... }%
    if (c == '%' && peek(1) == '{') {
      advance();
      advance();
      std::string body;
      while (i < src.size() && !(peek() == '}' && peek(1) == '%')) body += advance();
      if (i >= src.size()) fail("unterminated %{ template");
      advance();
      advance();
      push(DTok::Template, std::move(body), l, co);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                                peek() == '_'))
        name += advance();
      auto it = keywords().find(name);
      push(it != keywords().end() ? it->second : DTok::Ident, std::move(name), l, co);
      continue;
    }
    if (c == '$') {
      advance();
      std::string name = "$";
      if (!(std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_'))
        fail("expected identifier after '$'");
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                                peek() == '_'))
        name += advance();
      push(DTok::DollarIdent, std::move(name), l, co);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      bool dot_seen = false;
      while (i < src.size()) {
        const char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num += advance();
        } else if (d == '.' && !dot_seen) {
          dot_seen = true;
          num += advance();
        } else {
          break;
        }
      }
      DToken t;
      t.kind = DTok::Num;
      t.text = num;
      t.num = std::strtod(num.c_str(), nullptr);
      t.line = l;
      t.col = co;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = advance();
      std::string s;
      while (i < src.size() && peek() != quote) {
        char d = advance();
        if (d == '\\' && i < src.size()) {
          const char esc = advance();
          switch (esc) {
            case 'n': d = '\n'; break;
            case 't': d = '\t'; break;
            case '\\': d = '\\'; break;
            case '\'': d = '\''; break;
            case '"': d = '"'; break;
            default: fail(format("unknown escape '\\%c'", esc));
          }
        }
        s += d;
      }
      if (i >= src.size()) fail("unterminated string literal");
      advance();
      push(DTok::Str, std::move(s), l, co);
      continue;
    }
    advance();
    switch (c) {
      case '(': push(DTok::LParen, "(", l, co); break;
      case ')': push(DTok::RParen, ")", l, co); break;
      case '{': push(DTok::LBrace, "{", l, co); break;
      case '}': push(DTok::RBrace, "}", l, co); break;
      case '.': push(DTok::Dot, ".", l, co); break;
      case ',': push(DTok::Comma, ",", l, co); break;
      case ';': push(DTok::Semi, ";", l, co); break;
      case ':': push(DTok::Colon, ":", l, co); break;
      case '+': push(DTok::Plus, "+", l, co); break;
      case '-': push(DTok::Minus, "-", l, co); break;
      case '*': push(DTok::Star, "*", l, co); break;
      case '/': push(DTok::Slash, "/", l, co); break;
      case '%': push(DTok::Percent, "%", l, co); break;
      case '=':
        if (peek() == '=') {
          advance();
          push(DTok::Eq, "==", l, co);
        } else {
          push(DTok::Assign, "=", l, co);
        }
        break;
      case '!':
        if (peek() == '=') {
          advance();
          push(DTok::Ne, "!=", l, co);
        } else {
          push(DTok::Not, "!", l, co);
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          push(DTok::Le, "<=", l, co);
        } else {
          push(DTok::Lt, "<", l, co);
        }
        break;
      case '>':
        if (peek() == '=') {
          advance();
          push(DTok::Ge, ">=", l, co);
        } else {
          push(DTok::Gt, ">", l, co);
        }
        break;
      case '&':
        if (peek() == '&') {
          advance();
          push(DTok::AndAnd, "&&", l, co);
        } else {
          fail("expected '&&'");
        }
        break;
      case '|':
        if (peek() == '|') {
          advance();
          push(DTok::OrOr, "||", l, co);
        } else {
          fail("expected '||'");
        }
        break;
      default:
        fail(format("unexpected character '%c'", c));
    }
  }
  DToken end;
  end.kind = DTok::End;
  end.line = line;
  end.col = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace antarex::dsl
