#include "dsl/weaver.hpp"

#include <algorithm>

#include "cir/analysis.hpp"
#include "cir/parser.hpp"
#include "cir/printer.hpp"
#include "passes/const_fold.hpp"
#include "passes/specialize.hpp"
#include "passes/unroll.hpp"
#include "support/strings.hpp"
#include "vm/compiler.hpp"

namespace antarex::dsl {

Weaver::Weaver(cir::Module& module, vm::Engine* engine)
    : module_(module), engine_(engine) {}

void Weaver::load(AspectLibrary lib) {
  for (auto& a : lib.aspects) {
    ANTAREX_REQUIRE(library_.find(a.name) == nullptr,
                    "Weaver: aspect '" + a.name + "' already loaded");
    library_.aspects.push_back(std::move(a));
  }
}

void Weaver::load_source(std::string_view dsl_source) {
  load(parse_aspects(dsl_source));
}

Record Weaver::run(const std::string& aspect_name, std::vector<Val> inputs) {
  const AspectDef* def = library_.find(aspect_name);
  ANTAREX_REQUIRE(def != nullptr, "Weaver: unknown aspect '" + aspect_name + "'");
  ANTAREX_REQUIRE(inputs.size() <= def->inputs.size(),
                  format("Weaver: aspect '%s' takes %zu inputs, got %zu",
                         aspect_name.c_str(), def->inputs.size(), inputs.size()));
  Env env;
  for (std::size_t i = 0; i < def->inputs.size(); ++i)
    env.set(def->inputs[i], i < inputs.size() ? std::move(inputs[i]) : Val::null());
  for (const auto& out : def->outputs) env.set(out, Val::null());

  exec_aspect(*def, env);

  Record outputs;
  for (const auto& out : def->outputs) {
    const Val* v = env.find(out);
    outputs[out] = v ? *v : Val::null();
  }
  return outputs;
}

void Weaver::exec_aspect(const AspectDef& def, Env& env) {
  ANTAREX_REQUIRE(++call_depth_ <= 32,
                  "Weaver: aspect call depth exceeded (recursive aspects?)");
  const SelectStmt* current_select = nullptr;
  const DExpr* pending_condition = nullptr;

  for (std::size_t i = 0; i < def.body.size(); ++i) {
    const Item& item = def.body[i];
    switch (item.kind) {
      case Item::Kind::Select:
        current_select = &item.select;
        pending_condition = nullptr;
        break;
      case Item::Kind::Condition:
        // A condition *before* an apply: stash it. (Figure layout puts the
        // condition after the apply; both orders are accepted.)
        pending_condition = item.condition.expr.get();
        break;
      case Item::Kind::Apply: {
        ANTAREX_REQUIRE(current_select != nullptr,
                        "Weaver: 'apply' without a preceding 'select' in aspect '" +
                            def.name + "'");
        const DExpr* condition = pending_condition;
        if (!condition && i + 1 < def.body.size() &&
            def.body[i + 1].kind == Item::Kind::Condition) {
          condition = def.body[i + 1].condition.expr.get();
          ++i;  // consume the trailing condition
        }
        pending_condition = nullptr;
        exec_apply(item.apply, *current_select, condition, env);
        break;
      }
      case Item::Kind::Call: {
        const Val result = exec_call(item.call, env);
        if (!item.call.label.empty()) env.set(item.call.label, result);
        break;
      }
      case Item::Kind::Assign:
        env.set(item.assign.name, eval_expr(*item.assign.value, env));
        break;
    }
  }
  --call_depth_;
}

void Weaver::exec_apply(const ApplyStmt& apply, const SelectStmt& sel,
                        const DExpr* condition, Env& env) {
  if (apply.dynamic) {
    register_dynamic(apply, sel, condition, env);
    return;
  }

  JoinPointPtr root;
  if (!sel.root_var.empty()) {
    const Val* v = env.find(sel.root_var);
    ANTAREX_REQUIRE(v != nullptr && v->is_join_point(),
                    "Weaver: select root '" + sel.root_var +
                        "' is not a bound join point");
    root = v->as_join_point();
  }

  const auto bindings = run_select(module_, root, sel);
  stats_.selections += bindings.size();

  for (const SelectionBinding& b : bindings) {
    Env scope(&env);
    for (const auto& [var, jp] : b.bound)
      scope.set_local(var, Val::join_point(jp));
    if (condition && !eval_expr(*condition, scope).as_bool()) {
      ++stats_.condition_rejects;
      continue;
    }
    for (const Action& a : apply.actions) exec_action(a, scope);
  }
}

void Weaver::exec_action(const Action& a, Env& env) {
  switch (a.kind) {
    case Action::Kind::Insert:
      do_insert(a.insert, env);
      break;
    case Action::Kind::Do:
      if (a.do_action.action == "LoopUnroll") {
        do_loop_unroll(a.do_action, env);
      } else {
        throw Error("Weaver: unknown do-action '" + a.do_action.action + "'");
      }
      break;
    case Action::Kind::Call: {
      const Val result = exec_call(a.call, env);
      if (!a.call.label.empty()) env.set(a.call.label, result);
      break;
    }
    case Action::Kind::Assign:
      env.set(a.assign.name, eval_expr(*a.assign.value, env));
      break;
  }
}

Val Weaver::exec_call(const CallStmt& call, Env& env) {
  std::vector<Val> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) args.push_back(eval_expr(*a, env));

  if (call.callee == "PrepareSpecialize") return builtin_prepare_specialize(args);
  if (call.callee == "Specialize") return builtin_specialize(args);
  if (call.callee == "AddVersion") return builtin_add_version(args);

  // User aspect invocation.
  const AspectDef* def = library_.find(call.callee);
  if (!def)
    throw Error("Weaver: call to unknown aspect or action '" + call.callee + "'");
  Record rec = run(call.callee, std::move(args));
  return Val::record(std::make_shared<Record>(std::move(rec)));
}

// ---------------------------------------------------------------------------
// insert
// ---------------------------------------------------------------------------

std::string Weaver::splice_template(const std::string& tmpl, Env& env) const {
  // Paper-style templates wrap string splices in single quotes:
  //   '[[funcName]]'  — normalize so the value's own quoting applies.
  std::string t = replace_all(tmpl, "'[[", "[[");
  t = replace_all(t, "]]'", "]]");

  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t open = t.find("[[", pos);
    if (open == std::string::npos) {
      out += t.substr(pos);
      break;
    }
    out += t.substr(pos, open - pos);
    const std::size_t close = t.find("]]", open + 2);
    ANTAREX_REQUIRE(close != std::string::npos,
                    "Weaver: unterminated [[...]] splice in template");
    const std::string expr_src = t.substr(open + 2, close - open - 2);
    DExprPtr expr = parse_dsl_expression(expr_src);
    out += eval_expr(*expr, env).to_splice();
    pos = close + 2;
  }
  return out;
}

void Weaver::do_insert(const InsertAction& ins, Env& env) {
  const Val* v = env.find("$fCall");
  ANTAREX_REQUIRE(v != nullptr && v->is_join_point(),
                  "Weaver: 'insert' requires a selected $fCall join point");
  const JoinPointPtr jp = v->as_join_point();
  ANTAREX_REQUIRE(jp->kind == JoinPoint::Kind::Call,
                  "Weaver: 'insert' target must be a call join point");

  const std::string source = splice_template(ins.code_template, env);
  auto snippet = cir::parse_snippet(source);

  cir::Block& block = *jp->anchor_block;
  const auto it = std::find_if(
      block.stmts.begin(), block.stmts.end(),
      [&](const cir::StmtPtr& s) { return s.get() == jp->anchor_stmt; });
  ANTAREX_REQUIRE(it != block.stmts.end(),
                  "Weaver: insertion anchor no longer exists (conflicting "
                  "transformations?)");
  const auto insert_at = ins.before ? it : std::next(it);
  block.stmts.insert(insert_at,
                     std::make_move_iterator(snippet->stmts.begin()),
                     std::make_move_iterator(snippet->stmts.end()));
  ++stats_.inserts;
}

// ---------------------------------------------------------------------------
// LoopUnroll
// ---------------------------------------------------------------------------

void Weaver::do_loop_unroll(const DoAction& act, Env& env) {
  const Val* v = env.find("$loop");
  ANTAREX_REQUIRE(v != nullptr && v->is_join_point(),
                  "Weaver: LoopUnroll requires a selected $loop join point");
  const JoinPointPtr jp = v->as_join_point();
  ANTAREX_REQUIRE(jp->kind == JoinPoint::Kind::Loop,
                  "Weaver: LoopUnroll target must be a loop join point");
  ANTAREX_REQUIRE(act.args.size() == 1, "Weaver: LoopUnroll takes one argument");

  const Val mode = eval_expr(*act.args[0], env);
  bool done = false;
  if (mode.is_str() && mode.as_str() == "full") {
    // The condition (numIter <= threshold) already guarded eligibility; use a
    // generous internal cap as a safety net against degenerate aspects.
    done = passes::unroll_loop_full(*jp->func, jp->loop, 4096);
  } else if (mode.is_num()) {
    done = passes::unroll_loop_partial(*jp->func, jp->loop,
                                       static_cast<i64>(mode.as_num()));
  } else {
    throw Error("Weaver: LoopUnroll argument must be 'full' or a factor");
  }
  if (done) ++stats_.unrolls;
}

// ---------------------------------------------------------------------------
// Specialization builtins (Figure 4)
// ---------------------------------------------------------------------------

Val Weaver::builtin_prepare_specialize(const std::vector<Val>& args) {
  ANTAREX_REQUIRE(args.size() == 2,
                  "PrepareSpecialize(funcName, paramName) takes 2 arguments");
  ANTAREX_REQUIRE(engine_ != nullptr,
                  "PrepareSpecialize requires a VM engine attached to the weaver");
  const std::string func = args[0].as_str();
  const std::string param = args[1].as_str();
  const cir::Function* f = module_.find(func);
  ANTAREX_REQUIRE(f != nullptr, "PrepareSpecialize: unknown function '" + func + "'");
  const int idx = f->param_index(param);
  ANTAREX_REQUIRE(idx >= 0,
                  "PrepareSpecialize: no parameter '" + param + "' in " + func);
  engine_->prepare_specialize(func, idx);

  auto rec = std::make_shared<Record>();
  (*rec)["func"] = Val::str(func);
  (*rec)["param"] = Val::str(param);
  (*rec)["index"] = Val::num(idx);
  return Val::record(rec);
}

Val Weaver::builtin_specialize(const std::vector<Val>& args) {
  ANTAREX_REQUIRE(args.size() == 3,
                  "Specialize($fCall|name, paramName, value) takes 3 arguments");
  std::string func;
  if (args[0].is_join_point()) {
    const auto jp = args[0].as_join_point();
    ANTAREX_REQUIRE(jp->kind == JoinPoint::Kind::Call || jp->kind == JoinPoint::Kind::Arg,
                    "Specialize: join point must be a call (or its arg)");
    func = jp->call->callee;
  } else {
    func = args[0].as_str();
  }
  const std::string param = args[1].as_str();
  const i64 value = static_cast<i64>(args[2].as_num());

  cir::Function* variant = passes::specialize_function(module_, func, param, value);
  // Fold so downstream analyses (numIter) see the bound constant.
  passes::ConstantFoldPass fold;
  fold.run(*variant);
  ++stats_.specializations;

  auto jp = std::make_shared<JoinPoint>();
  jp->kind = JoinPoint::Kind::Function;
  jp->module = &module_;
  jp->func = variant;

  auto rec = std::make_shared<Record>();
  (*rec)["$func"] = Val::join_point(jp);
  (*rec)["name"] = Val::str(variant->name);
  (*rec)["origin"] = Val::str(func);
  return Val::record(rec);
}

Val Weaver::builtin_add_version(const std::vector<Val>& args) {
  ANTAREX_REQUIRE(args.size() == 3,
                  "AddVersion(spCall, $func, value) takes 3 arguments");
  ANTAREX_REQUIRE(engine_ != nullptr,
                  "AddVersion requires a VM engine attached to the weaver");
  const auto prep = args[0].as_record();
  const std::string target = prep->at("func").as_str();
  ANTAREX_REQUIRE(args[1].is_join_point(), "AddVersion: second argument must be $func");
  const cir::Function* variant = args[1].as_join_point()->func;
  const i64 value = static_cast<i64>(args[2].as_num());

  engine_->add_version(target, value, vm::compile_function(*variant));
  ++stats_.versions_added;
  return Val::null();
}

// ---------------------------------------------------------------------------
// Dynamic weaving (Figure 4's `apply dynamic`)
// ---------------------------------------------------------------------------

void Weaver::register_dynamic(const ApplyStmt& apply, const SelectStmt& sel,
                              const DExpr* condition, const Env& env) {
  ANTAREX_REQUIRE(engine_ != nullptr,
                  "Weaver: dynamic apply requires a VM engine");
  // Dynamic selection must be a concrete fCall{'name'}.arg{'param'} chain:
  // the runtime hook keys on the callee name and argument index.
  ANTAREX_REQUIRE(sel.chain.size() == 2 && sel.chain[0].selector == "fCall" &&
                      sel.chain[1].selector == "arg",
                  "Weaver: dynamic apply requires `select fCall{'f'}.arg{'p'}`");
  ANTAREX_REQUIRE(sel.chain[0].name_filter && sel.chain[1].name_filter,
                  "Weaver: dynamic select needs name filters on fCall and arg");

  const std::string callee = *sel.chain[0].name_filter;
  const std::string param = *sel.chain[1].name_filter;
  const cir::Function* f = module_.find(callee);
  ANTAREX_REQUIRE(f != nullptr, "Weaver: dynamic select on unknown function '" +
                                    callee + "'");
  const int idx = f->param_index(param);
  ANTAREX_REQUIRE(idx >= 0, "Weaver: function '" + callee +
                                "' has no parameter '" + param + "'");

  DynamicRegistration reg;
  reg.callee = callee;
  reg.arg_index = idx;
  reg.apply = &apply;
  reg.condition = condition;
  // Capture the aspect's current environment by value (flattened).
  auto closure = std::make_shared<Env>();
  // There is no iteration interface on Env; capture the input names we know
  // about by copying the whole chain lazily instead: we keep a child Env
  // whose parent is a heap copy of the caller's bindings.
  *closure = env.snapshot();
  reg.closure = std::move(closure);
  dynamic_.push_back(std::move(reg));
  ++stats_.dynamic_registrations;

  if (!hook_installed_) {
    engine_->set_call_hook([this](const std::string& name,
                                  const std::vector<vm::Value>& args) {
      on_vm_call(name, args);
    });
    hook_installed_ = true;
  }
}

void Weaver::on_vm_call(const std::string& name,
                        const std::vector<vm::Value>& args) {
  for (auto& reg : dynamic_) {
    if (reg.callee != name) continue;
    if (reg.arg_index < 0 || static_cast<std::size_t>(reg.arg_index) >= args.size())
      continue;
    const vm::Value& guard = args[static_cast<std::size_t>(reg.arg_index)];
    if (!guard.is_int()) continue;
    const i64 value = guard.as_int();
    if (std::find(reg.handled_values.begin(), reg.handled_values.end(), value) !=
        reg.handled_values.end())
      continue;

    // Build the runtime join points: $fCall bound to (any) static call site of
    // the callee, $arg carrying the observed runtime value.
    cir::Function* callee_fn = module_.find(name);
    if (!callee_fn) continue;

    auto call_jp = std::make_shared<JoinPoint>();
    call_jp->kind = JoinPoint::Kind::Call;
    call_jp->module = &module_;
    call_jp->func = callee_fn;
    // Synthesize a call expression describing the dynamic call: argument
    // literals from runtime values (enough for attribute queries).
    static thread_local std::vector<std::unique_ptr<cir::CallExpr>> scratch;
    std::vector<cir::ExprPtr> lit_args;
    for (const auto& a : args) {
      if (a.is_int()) lit_args.push_back(cir::make_int(a.as_int()));
      else if (a.is_float()) lit_args.push_back(cir::make_float(a.as_float()));
      else lit_args.push_back(cir::make_str("<opaque>"));
    }
    scratch.push_back(std::make_unique<cir::CallExpr>(name, std::move(lit_args)));
    call_jp->call = scratch.back().get();

    auto arg_jp = std::make_shared<JoinPoint>(*call_jp);
    arg_jp->kind = JoinPoint::Kind::Arg;
    arg_jp->arg_index = reg.arg_index;
    arg_jp->runtime_value = value;

    Env scope(reg.closure.get());
    scope.set_local("$fCall", Val::join_point(call_jp));
    scope.set_local("$arg", Val::join_point(arg_jp));

    if (reg.condition && !eval_expr(*reg.condition, scope).as_bool()) {
      ++stats_.condition_rejects;
      continue;
    }

    reg.handled_values.push_back(value);
    ++stats_.dynamic_triggers;
    for (const Action& a : reg.apply->actions) exec_action(a, scope);
  }
}

}  // namespace antarex::dsl
