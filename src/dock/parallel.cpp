#include "dock/parallel.hpp"

#include <chrono>

#include "telemetry/telemetry.hpp"

namespace antarex::dock {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

DockResult dock_one(const AffinityGrid& grid, const Molecule& mol,
                    const DockParams& params, u64 run_seed, std::size_t index) {
  Rng rng(exec::stream_seed(run_seed, index));
  return dock_ligand(grid, mol, params, rng);
}

}  // namespace

LibraryRunResult dock_library_serial(const AffinityGrid& grid,
                                     const std::vector<Molecule>& ligands,
                                     const DockParams& params, u64 run_seed) {
  TELEMETRY_SPAN("dock.library_serial");
  LibraryRunResult out;
  out.results.reserve(ligands.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ligands.size(); ++i)
    out.results.push_back(dock_one(grid, ligands[i], params, run_seed, i));
  out.wall_s = seconds_since(t0);
  out.imbalance = 1.0;
  out.worker_busy_s = {out.wall_s};
  return out;
}

LibraryRunResult run_parallel(exec::ThreadPool& pool, const AffinityGrid& grid,
                              const std::vector<Molecule>& ligands,
                              const DockParams& params, u64 run_seed,
                              int batch) {
  ANTAREX_REQUIRE(batch >= 1, "dock::run_parallel: batch must be >= 1");
  TELEMETRY_SPAN("dock.library_parallel");

  // Stats window scoped to this run so steal/busy numbers are attributable.
  pool.reset_stats();
  const auto t0 = std::chrono::steady_clock::now();
  LibraryRunResult out;
  out.results = exec::parallel_map<DockResult>(
      pool, ligands.size(), static_cast<std::size_t>(batch),
      [&](std::size_t i) {
        return dock_one(grid, ligands[i], params, run_seed, i);
      });
  out.wall_s = seconds_since(t0);

  const exec::PoolStats stats = pool.stats();
  out.steals = stats.steals;
  out.worker_busy_s = stats.worker_busy_s;
  out.imbalance = stats.imbalance();
  out.threads = pool.size();
  out.batch = batch;
  pool.publish_telemetry();
  return out;
}

}  // namespace antarex::dock
