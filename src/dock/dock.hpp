// Use case 1: Computer-accelerated drug discovery (paper Sec. VII-a).
//
// Substitution note (DESIGN.md): the project's production code is LiGen, a
// proprietary de-novo design workflow. This mini-app reproduces the
// computational pattern the paper describes — grid-based rigid docking of
// many ligands where "the verification of each point in the solution space
// requires a widely varying time", making "dynamic load balancing and task
// placement critical".
//
// Pipeline: a receptor pocket is discretized into an affinity grid; each
// ligand is docked by enumerating rigid poses (rotations x translations) and
// scoring them against the grid; per-ligand cost is proportional to
// atoms x poses, with atom counts drawn heavy-tailed.
#pragma once

#include <array>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace antarex::dock {

struct Atom {
  double x = 0.0, y = 0.0, z = 0.0;
  double radius = 1.5;
  double charge = 0.0;
};

struct Molecule {
  std::vector<Atom> atoms;

  std::array<double, 3> centroid() const;
  /// Translate so the centroid is at the origin.
  void center();
};

/// Scalar affinity field sampled on a regular 3-D grid: negative values are
/// favourable (binding pocket), positive values are clashes.
class AffinityGrid {
 public:
  AffinityGrid(std::size_t nx, std::size_t ny, std::size_t nz, double spacing);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double spacing() const { return spacing_; }
  double extent_x() const { return static_cast<double>(nx_ - 1) * spacing_; }
  double extent_y() const { return static_cast<double>(ny_ - 1) * spacing_; }
  double extent_z() const { return static_cast<double>(nz_ - 1) * spacing_; }

  double& at(std::size_t i, std::size_t j, std::size_t k);
  double at(std::size_t i, std::size_t j, std::size_t k) const;

  /// Trilinear interpolation; coordinates outside the box cost a steep
  /// out-of-bounds penalty (ligand must stay in the pocket region).
  double sample(double x, double y, double z) const;

  /// Synthesize a pocket: a few attractive spherical wells (binding site)
  /// over a mildly repulsive background, plus hard walls near the faces.
  static AffinityGrid synthetic_pocket(Rng& rng, std::size_t n = 24,
                                       double spacing = 1.0, int wells = 3);

 private:
  std::size_t nx_, ny_, nz_;
  double spacing_;
  std::vector<double> values_;
};

/// Rigid-body pose: ZYX Euler rotation plus translation.
struct Pose {
  double rx = 0.0, ry = 0.0, rz = 0.0;
  double tx = 0.0, ty = 0.0, tz = 0.0;
};

/// Apply a pose to an atom position.
std::array<double, 3> transform(const Pose& pose, const Atom& a);

/// Score = sum over atoms of grid affinity at the transformed position,
/// weighted by atom radius (bigger atoms bury more surface).
double score_pose(const AffinityGrid& grid, const Molecule& mol, const Pose& pose);

struct DockResult {
  double best_score = 0.0;
  Pose best_pose;
  u64 poses_evaluated = 0;
};

struct DockParams {
  int rotations = 24;     ///< sampled orientations per ligand
  int translations = 64;  ///< sampled placements per orientation
  /// Early-termination: stop a translation scan when the running score
  /// exceeds this fraction of the best; models the unpredictable per-ligand
  /// time (score landscapes differ between ligands).
  double prune_threshold = 0.25;
};

/// Exhaustively dock one ligand. Deterministic given the rng seed (pose
/// sampling uses its own stream).
DockResult dock_ligand(const AffinityGrid& grid, const Molecule& mol,
                       const DockParams& params, Rng& rng);

struct RefineParams {
  int steps = 400;
  double t_start = 2.0;     ///< initial annealing temperature (score units)
  double t_end = 0.01;
  double max_translate = 1.0;  ///< proposal step (grid units)
  double max_rotate = 0.35;    ///< proposal step (radians)
};

/// Local pose refinement by simulated annealing, starting from `start`
/// (typically the best pose of the global dock_ligand search — LiGen-style
/// two-stage docking). Deterministic given the rng. The result never scores
/// worse than the start.
DockResult refine_pose(const AffinityGrid& grid, const Molecule& mol,
                       const Pose& start, const RefineParams& params, Rng& rng);

/// Random ligand with a heavy-tailed atom count:
/// atoms ~ min_atoms + Pareto(x_m, alpha), clamped to max_atoms.
Molecule random_ligand(Rng& rng, int min_atoms = 8, int max_atoms = 400,
                       double pareto_xm = 6.0, double pareto_alpha = 1.3);

/// Deterministic per-ligand cost estimate in "work units" (atoms x poses);
/// the scheduling simulators consume these.
double ligand_cost_units(const Molecule& mol, const DockParams& params);

// ---------------------------------------------------------------------------
// Load-balancing simulators: distribute per-task costs over P workers.
// ---------------------------------------------------------------------------

struct ScheduleResult {
  double makespan = 0.0;                ///< time until the last worker drains
  std::vector<double> worker_busy;      ///< per-worker busy time
  double imbalance = 0.0;               ///< max busy / mean busy
  u64 steals_or_pulls = 0;              ///< queue interactions (dynamic only)
};

/// Static block partition: task i goes to worker i*P/N (no runtime cost, full
/// exposure to imbalance).
ScheduleResult schedule_static(const std::vector<double>& costs, int workers);

/// Dynamic self-scheduling work queue: free workers pull the next batch of
/// `batch` tasks, paying `pull_overhead` per pull (the autotunable trade-off:
/// small batches balance better but pay more overhead).
ScheduleResult schedule_dynamic(const std::vector<double>& costs, int workers,
                                int batch = 1, double pull_overhead = 0.0);

}  // namespace antarex::dock
