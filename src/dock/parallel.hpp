// Measured parallel docking on the antarex::exec work-stealing pool.
//
// This is the executable counterpart of the schedule_static/schedule_dynamic
// *simulators* in dock.hpp: the simulators predict makespan/imbalance/steal
// behaviour from cost vectors, run_parallel produces the same shape of result
// from a real run (wall time, per-worker busy seconds, steal counts), so the
// UC1 bench can put prediction and measurement side by side.
//
// Determinism contract: each ligand draws from its own RNG stream derived via
// exec::stream_seed(run_seed, i) and results are returned in ligand index
// order, so dock_library_serial and run_parallel produce byte-identical
// results for any thread count (DESIGN.md decision 5).
#pragma once

#include <vector>

#include "dock/dock.hpp"
#include "exec/exec.hpp"

namespace antarex::dock {

/// Outcome of docking a whole ligand library, serial or parallel.
struct LibraryRunResult {
  std::vector<DockResult> results;    ///< per-ligand, always in index order
  double wall_s = 0.0;                ///< measured wall-clock seconds
  double imbalance = 0.0;             ///< max worker busy / mean busy (1.0 = serial)
  u64 steals = 0;                     ///< pool steal count during the run
  std::vector<double> worker_busy_s;  ///< measured per-worker busy seconds
  int threads = 1;
  int batch = 1;  ///< parallel_for grain used (ligands per chunk)
};

/// Serial reference run: docks ligands in index order, one derived RNG
/// stream per ligand. The byte-identical baseline for run_parallel.
LibraryRunResult dock_library_serial(const AffinityGrid& grid,
                                     const std::vector<Molecule>& ligands,
                                     const DockParams& params, u64 run_seed);

/// Dock the library on `pool` with grain `batch` — the same batch knob the
/// autotuner drives against schedule_dynamic in UC1, now applied to a real
/// work-stealing run. Results are byte-identical to dock_library_serial.
LibraryRunResult run_parallel(exec::ThreadPool& pool, const AffinityGrid& grid,
                              const std::vector<Molecule>& ligands,
                              const DockParams& params, u64 run_seed,
                              int batch = 1);

}  // namespace antarex::dock
