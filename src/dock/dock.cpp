#include "dock/dock.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace antarex::dock {

std::array<double, 3> Molecule::centroid() const {
  ANTAREX_REQUIRE(!atoms.empty(), "Molecule: no atoms");
  double cx = 0, cy = 0, cz = 0;
  for (const auto& a : atoms) {
    cx += a.x;
    cy += a.y;
    cz += a.z;
  }
  const double n = static_cast<double>(atoms.size());
  return {cx / n, cy / n, cz / n};
}

void Molecule::center() {
  const auto c = centroid();
  for (auto& a : atoms) {
    a.x -= c[0];
    a.y -= c[1];
    a.z -= c[2];
  }
}

AffinityGrid::AffinityGrid(std::size_t nx, std::size_t ny, std::size_t nz,
                           double spacing)
    : nx_(nx), ny_(ny), nz_(nz), spacing_(spacing),
      values_(nx * ny * nz, 0.0) {
  ANTAREX_REQUIRE(nx >= 2 && ny >= 2 && nz >= 2, "AffinityGrid: too small");
  ANTAREX_REQUIRE(spacing > 0.0, "AffinityGrid: non-positive spacing");
}

double& AffinityGrid::at(std::size_t i, std::size_t j, std::size_t k) {
  ANTAREX_REQUIRE(i < nx_ && j < ny_ && k < nz_, "AffinityGrid: index out of range");
  return values_[(k * ny_ + j) * nx_ + i];
}

double AffinityGrid::at(std::size_t i, std::size_t j, std::size_t k) const {
  ANTAREX_REQUIRE(i < nx_ && j < ny_ && k < nz_, "AffinityGrid: index out of range");
  return values_[(k * ny_ + j) * nx_ + i];
}

double AffinityGrid::sample(double x, double y, double z) const {
  constexpr double kOutOfBoxPenalty = 50.0;
  const double fx = x / spacing_;
  const double fy = y / spacing_;
  const double fz = z / spacing_;
  if (fx < 0.0 || fy < 0.0 || fz < 0.0 ||
      fx > static_cast<double>(nx_ - 1) || fy > static_cast<double>(ny_ - 1) ||
      fz > static_cast<double>(nz_ - 1))
    return kOutOfBoxPenalty;

  const auto i0 = static_cast<std::size_t>(fx);
  const auto j0 = static_cast<std::size_t>(fy);
  const auto k0 = static_cast<std::size_t>(fz);
  const std::size_t i1 = std::min(i0 + 1, nx_ - 1);
  const std::size_t j1 = std::min(j0 + 1, ny_ - 1);
  const std::size_t k1 = std::min(k0 + 1, nz_ - 1);
  const double dx = fx - static_cast<double>(i0);
  const double dy = fy - static_cast<double>(j0);
  const double dz = fz - static_cast<double>(k0);

  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  const double c00 = lerp(at(i0, j0, k0), at(i1, j0, k0), dx);
  const double c10 = lerp(at(i0, j1, k0), at(i1, j1, k0), dx);
  const double c01 = lerp(at(i0, j0, k1), at(i1, j0, k1), dx);
  const double c11 = lerp(at(i0, j1, k1), at(i1, j1, k1), dx);
  return lerp(lerp(c00, c10, dy), lerp(c01, c11, dy), dz);
}

AffinityGrid AffinityGrid::synthetic_pocket(Rng& rng, std::size_t n,
                                            double spacing, int wells) {
  AffinityGrid g(n, n, n, spacing);
  const double ext = g.extent_x();

  struct Well {
    double x, y, z, depth, sigma;
  };
  std::vector<Well> ws;
  for (int w = 0; w < wells; ++w) {
    ws.push_back({rng.uniform(0.3 * ext, 0.7 * ext),
                  rng.uniform(0.3 * ext, 0.7 * ext),
                  rng.uniform(0.3 * ext, 0.7 * ext),
                  rng.uniform(2.0, 5.0),
                  rng.uniform(0.1 * ext, 0.2 * ext)});
  }

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) * spacing;
        const double y = static_cast<double>(j) * spacing;
        const double z = static_cast<double>(k) * spacing;
        double v = 0.15;  // mildly unfavourable background
        for (const auto& w : ws) {
          const double d2 = (x - w.x) * (x - w.x) + (y - w.y) * (y - w.y) +
                            (z - w.z) * (z - w.z);
          v -= w.depth * std::exp(-d2 / (2.0 * w.sigma * w.sigma));
        }
        // Hard walls near the faces (receptor surface).
        const double edge = std::min({x, y, z, ext - x, ext - y, ext - z});
        if (edge < 1.5 * spacing) v += 8.0 * (1.5 * spacing - edge);
        g.at(i, j, k) = v;
      }
    }
  }
  return g;
}

std::array<double, 3> transform(const Pose& pose, const Atom& a) {
  // ZYX Euler rotation.
  const double cz = std::cos(pose.rz), sz = std::sin(pose.rz);
  const double cy = std::cos(pose.ry), sy = std::sin(pose.ry);
  const double cx = std::cos(pose.rx), sx = std::sin(pose.rx);

  // Rz * Ry * Rx applied to (x, y, z).
  const double x1 = a.x;
  const double y1 = a.y * cx - a.z * sx;
  const double z1 = a.y * sx + a.z * cx;

  const double x2 = x1 * cy + z1 * sy;
  const double y2 = y1;
  const double z2 = -x1 * sy + z1 * cy;

  const double x3 = x2 * cz - y2 * sz;
  const double y3 = x2 * sz + y2 * cz;
  return {x3 + pose.tx, y3 + pose.ty, z2 + pose.tz};
}

double score_pose(const AffinityGrid& grid, const Molecule& mol, const Pose& pose) {
  double s = 0.0;
  for (const auto& atom : mol.atoms) {
    const auto p = transform(pose, atom);
    s += grid.sample(p[0], p[1], p[2]) * atom.radius;
  }
  return s;
}

DockResult dock_ligand(const AffinityGrid& grid, const Molecule& mol,
                       const DockParams& params, Rng& rng) {
  ANTAREX_REQUIRE(params.rotations >= 1 && params.translations >= 1,
                  "dock_ligand: need at least one pose");
  DockResult result;
  result.best_score = 1e300;

  const double ext = grid.extent_x();
  for (int r = 0; r < params.rotations; ++r) {
    Pose pose;
    pose.rx = rng.uniform(0.0, 6.283185307);
    pose.ry = rng.uniform(0.0, 6.283185307);
    pose.rz = rng.uniform(0.0, 6.283185307);
    for (int t = 0; t < params.translations; ++t) {
      pose.tx = rng.uniform(0.2 * ext, 0.8 * ext);
      pose.ty = rng.uniform(0.2 * ext, 0.8 * ext);
      pose.tz = rng.uniform(0.2 * ext, 0.8 * ext);
      const double s = score_pose(grid, mol, pose);
      ++result.poses_evaluated;
      if (s < result.best_score) {
        result.best_score = s;
        result.best_pose = pose;
      } else if (result.best_score < 0.0 &&
                 s > params.prune_threshold * result.best_score) {
        // Landscape around this orientation is poor; skip to the next
        // orientation once the best found here is far off the incumbent.
        break;
      }
    }
  }
  return result;
}

DockResult refine_pose(const AffinityGrid& grid, const Molecule& mol,
                       const Pose& start, const RefineParams& params, Rng& rng) {
  ANTAREX_REQUIRE(params.steps >= 1, "refine_pose: need at least one step");
  ANTAREX_REQUIRE(params.t_start >= params.t_end && params.t_end > 0.0,
                  "refine_pose: bad temperature schedule");

  DockResult result;
  Pose current = start;
  double current_score = score_pose(grid, mol, current);
  result.best_pose = current;
  result.best_score = current_score;

  const double cooling =
      std::pow(params.t_end / params.t_start, 1.0 / params.steps);
  double temperature = params.t_start;

  for (int step = 0; step < params.steps; ++step) {
    Pose proposal = current;
    // Perturb one degree of freedom at a time (better acceptance at low T).
    switch (rng.uniform_int(0, 5)) {
      case 0: proposal.tx += rng.uniform(-params.max_translate, params.max_translate); break;
      case 1: proposal.ty += rng.uniform(-params.max_translate, params.max_translate); break;
      case 2: proposal.tz += rng.uniform(-params.max_translate, params.max_translate); break;
      case 3: proposal.rx += rng.uniform(-params.max_rotate, params.max_rotate); break;
      case 4: proposal.ry += rng.uniform(-params.max_rotate, params.max_rotate); break;
      default: proposal.rz += rng.uniform(-params.max_rotate, params.max_rotate); break;
    }
    const double s = score_pose(grid, mol, proposal);
    ++result.poses_evaluated;
    const double delta = s - current_score;
    if (delta <= 0.0 || rng.bernoulli(std::exp(-delta / temperature))) {
      current = proposal;
      current_score = s;
      if (s < result.best_score) {
        result.best_score = s;
        result.best_pose = proposal;
      }
    }
    temperature *= cooling;
  }
  return result;
}

Molecule random_ligand(Rng& rng, int min_atoms, int max_atoms, double pareto_xm,
                       double pareto_alpha) {
  ANTAREX_REQUIRE(min_atoms >= 1 && max_atoms >= min_atoms,
                  "random_ligand: bad atom bounds");
  const double tail = rng.pareto(pareto_xm, pareto_alpha);
  const int n = std::min(max_atoms, min_atoms + static_cast<int>(tail));

  Molecule m;
  m.atoms.reserve(static_cast<std::size_t>(n));
  // Random self-avoiding-ish blob: chain of atoms at bonded distance.
  double x = 0, y = 0, z = 0;
  for (int i = 0; i < n; ++i) {
    Atom a;
    a.x = x;
    a.y = y;
    a.z = z;
    a.radius = rng.uniform(1.2, 1.9);
    a.charge = rng.uniform(-0.5, 0.5);
    m.atoms.push_back(a);
    const double theta = rng.uniform(0.0, 6.283185307);
    const double phi = std::acos(rng.uniform(-1.0, 1.0));
    const double bond = 1.5;
    x += bond * std::sin(phi) * std::cos(theta);
    y += bond * std::sin(phi) * std::sin(theta);
    z += bond * std::cos(phi);
  }
  m.center();
  return m;
}

double ligand_cost_units(const Molecule& mol, const DockParams& params) {
  return static_cast<double>(mol.atoms.size()) *
         static_cast<double>(params.rotations) *
         static_cast<double>(params.translations) * 1e-4;
}

ScheduleResult schedule_static(const std::vector<double>& costs, int workers) {
  ANTAREX_REQUIRE(workers >= 1, "schedule_static: need at least one worker");
  ScheduleResult r;
  r.worker_busy.assign(static_cast<std::size_t>(workers), 0.0);
  const std::size_t n = costs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(
        (i * static_cast<std::size_t>(workers)) / std::max<std::size_t>(n, 1));
    r.worker_busy[std::min(w, r.worker_busy.size() - 1)] += costs[i];
  }
  double total = 0.0;
  for (double b : r.worker_busy) {
    r.makespan = std::max(r.makespan, b);
    total += b;
  }
  const double mean = total / static_cast<double>(workers);
  r.imbalance = mean > 0.0 ? r.makespan / mean : 1.0;
  return r;
}

ScheduleResult schedule_dynamic(const std::vector<double>& costs, int workers,
                                int batch, double pull_overhead) {
  ANTAREX_REQUIRE(workers >= 1, "schedule_dynamic: need at least one worker");
  ANTAREX_REQUIRE(batch >= 1, "schedule_dynamic: batch must be >= 1");
  ANTAREX_REQUIRE(pull_overhead >= 0.0, "schedule_dynamic: negative overhead");

  ScheduleResult r;
  r.worker_busy.assign(static_cast<std::size_t>(workers), 0.0);

  // Event-driven: the worker with the earliest finish time pulls next.
  using Slot = std::pair<double, std::size_t>;  // (available_at, worker)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t w = 0; w < static_cast<std::size_t>(workers); ++w)
    free_at.push({0.0, w});

  std::size_t next_task = 0;
  while (next_task < costs.size()) {
    auto [t, w] = free_at.top();
    free_at.pop();
    double chunk = pull_overhead;
    for (int b = 0; b < batch && next_task < costs.size(); ++b)
      chunk += costs[next_task++];
    ++r.steals_or_pulls;
    r.worker_busy[w] += chunk;
    free_at.push({t + chunk, w});
  }
  double total = 0.0;
  while (!free_at.empty()) {
    r.makespan = std::max(r.makespan, free_at.top().first);
    free_at.pop();
  }
  for (double b : r.worker_busy) total += b;
  const double mean = total / static_cast<double>(workers);
  r.imbalance = mean > 0.0 ? r.makespan / mean : 1.0;
  return r;
}

}  // namespace antarex::dock
