#include "passes/pass_manager.hpp"

#include "passes/const_fold.hpp"
#include "passes/dce.hpp"
#include "passes/inline.hpp"
#include "passes/strength.hpp"
#include "passes/unroll.hpp"
#include "support/strings.hpp"

namespace antarex::passes {

std::size_t PipelineStats::total_actions() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.actions;
  return n;
}

void PassManager::add(const std::string& spec) {
  passes_.push_back(make_pass(spec));
  specs_.push_back(spec);
}

void PassManager::add_pipeline(const std::string& pipeline) {
  for (const auto& part : split(pipeline, ',')) {
    const std::string spec = trim(part);
    if (!spec.empty()) add(spec);
  }
}

PassPtr PassManager::make_pass(const std::string& spec) const {
  std::string name = spec;
  i64 arg = -1;
  if (const auto pos = spec.find(':'); pos != std::string::npos) {
    name = spec.substr(0, pos);
    const std::string arg_str = spec.substr(pos + 1);
    ANTAREX_REQUIRE(!arg_str.empty(), "pass spec '" + spec + "': missing argument");
    arg = std::strtoll(arg_str.c_str(), nullptr, 10);
    ANTAREX_REQUIRE(arg > 0, "pass spec '" + spec + "': argument must be positive");
  }
  if (name == "fold") return std::make_unique<ConstantFoldPass>();
  if (name == "dce") return std::make_unique<DeadCodeEliminationPass>();
  if (name == "strength") return std::make_unique<StrengthReductionPass>();
  if (name == "inline") return std::make_unique<InlineTrivialPass>(module_);
  if (name == "unroll") return std::make_unique<FullUnrollPass>(arg > 0 ? arg : 16);
  if (name == "unroll-partial")
    return std::make_unique<PartialUnrollPass>(arg > 0 ? arg : 4);
  throw Error("unknown pass spec '" + spec + "'");
}

PipelineStats PassManager::run(cir::Function& f) {
  PipelineStats stats;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const PassResult r = passes_[i]->run(f);
    stats.steps.push_back({specs_[i], r.changed, r.actions});
  }
  return stats;
}

PipelineStats PassManager::run_all() {
  PipelineStats stats;
  for (auto& f : module_.functions) {
    PipelineStats s = run(*f);
    for (auto& step : s.steps) stats.steps.push_back(std::move(step));
  }
  return stats;
}

PipelineStats PassManager::run_to_fixpoint(cir::Function& f, int max_rounds) {
  PipelineStats stats;
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      const PassResult r = passes_[i]->run(f);
      stats.steps.push_back({specs_[i], r.changed, r.actions});
      changed = changed || r.changed;
    }
    if (!changed) break;
  }
  return stats;
}

std::vector<std::string> PassManager::known_specs() {
  return {"fold", "dce", "strength", "inline", "unroll", "unroll-partial"};
}

}  // namespace antarex::passes
