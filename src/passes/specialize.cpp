#include "passes/specialize.hpp"

#include "cir/analysis.hpp"
#include "support/strings.hpp"

namespace antarex::passes {

using namespace cir;

std::string specialized_name(const std::string& func, const std::string& param,
                             i64 value) {
  return format("%s__%s_%lld", func.c_str(), param.c_str(),
                static_cast<long long>(value));
}

Function* specialize_function(Module& m, const std::string& func,
                              const std::string& param, i64 value) {
  Function* original = m.find(func);
  ANTAREX_REQUIRE(original != nullptr, "specialize: unknown function '" + func + "'");
  const int idx = original->param_index(param);
  ANTAREX_REQUIRE(idx >= 0,
                  format("specialize: '%s' has no parameter '%s'", func.c_str(),
                         param.c_str()));
  ANTAREX_REQUIRE(original->params[static_cast<std::size_t>(idx)].type == Type::Int,
                  "specialize: only integer parameters can be specialized");

  const std::string name = specialized_name(func, param, value);
  if (Function* existing = m.find(name)) return existing;

  auto clone = original->clone();
  clone->name = name;
  // A parameter cannot be re-assigned safely if the body writes it; in that
  // case keep it as a local initialized to the constant instead of
  // substituting uses.
  if (is_var_modified(*clone->body, param)) {
    auto decl = std::make_unique<VarDeclStmt>(Type::Int, param, make_int(value));
    clone->body->stmts.insert(clone->body->stmts.begin(), std::move(decl));
  } else {
    const IntLit lit(value);
    substitute_var(*clone->body, param, lit);
  }
  clone->params.erase(clone->params.begin() + idx);
  return m.add(std::move(clone));
}

}  // namespace antarex::passes
