// Pass pipeline management.
//
// Pipelines are named sequences like "fold,dce,unroll:16,strength" — the unit
// of exploration for iterative compilation (paper Sec. III-B) and the
// "compiler optimization sequences" action family of LARA (paper Sec. III-A).
#pragma once

#include <string>
#include <vector>

#include "passes/pass.hpp"

namespace antarex::passes {

struct PipelineStats {
  struct Step {
    std::string pass;
    bool changed = false;
    std::size_t actions = 0;
  };
  std::vector<Step> steps;
  std::size_t total_actions() const;
};

class PassManager {
 public:
  /// Module-aware: inline needs cross-function visibility.
  explicit PassManager(cir::Module& module) : module_(module) {}

  /// Append a pass by spec. Known specs:
  ///   "fold" | "dce" | "strength" | "inline"
  ///   "unroll"          (full, default max trip 16)
  ///   "unroll:N"        (full, max trip N)
  ///   "unroll-partial"  (factor 4)
  ///   "unroll-partial:N"
  /// Throws on unknown specs.
  void add(const std::string& spec);

  /// Parse a comma-separated pipeline and append each pass.
  void add_pipeline(const std::string& pipeline);

  std::size_t size() const { return passes_.size(); }
  void clear() { passes_.clear(); }

  /// Run all passes, in order, over one function.
  PipelineStats run(cir::Function& f);

  /// Run over every function of the module.
  PipelineStats run_all();

  /// Run the pipeline repeatedly over a function until no pass reports a
  /// change (bounded by max_rounds).
  PipelineStats run_to_fixpoint(cir::Function& f, int max_rounds = 8);

  /// The specs this manager knows how to construct (for explorers).
  static std::vector<std::string> known_specs();

 private:
  PassPtr make_pass(const std::string& spec) const;

  cir::Module& module_;
  std::vector<std::string> specs_;
  std::vector<PassPtr> passes_;
};

}  // namespace antarex::passes
