// Strength reduction: replace expensive operations with cheaper equivalents.
#pragma once

#include "passes/pass.hpp"

namespace antarex::passes {

/// Rewrites (on pure operands where duplication is required):
///   pow(x, 2) -> x * x,   pow(x, 3) -> x * x * x,   pow(x, 1) -> x
///   x * 2  /  2 * x -> x + x
///   pow(x, 0.5) -> sqrt(x)
class StrengthReductionPass final : public Pass {
 public:
  std::string name() const override { return "strength"; }
  PassResult run(cir::Function& f) override;
};

}  // namespace antarex::passes
