// Loop unrolling (full and partial).
//
// Full unrolling is the action behind the paper's Figure 3 aspect
// (`do LoopUnroll('full')` on innermost loops with numIter <= threshold).
#pragma once

#include "passes/pass.hpp"

namespace antarex::passes {

/// Fully unrolls one specific loop if legal: canonical counted loop, static
/// trip count <= `max_trip`, no break and no top-level continue in the body.
/// The loop statement is replaced in its owning block by the expanded body
/// copies (with the induction variable substituted by literals).
/// Returns true on success, false if the loop is not eligible (the function is
/// left unchanged). Throws if `loop` is not owned by `f`.
bool unroll_loop_full(cir::Function& f, const cir::ForStmt* loop, i64 max_trip = 64);

/// Partially unrolls one loop by `factor`: the body is replicated `factor`
/// times (induction variable offset by k*step in copy k) and the step is
/// scaled; a remainder loop handles trip counts not divisible by the factor.
/// Requires a canonical counted loop with static trip count. Returns false if
/// not eligible.
bool unroll_loop_partial(cir::Function& f, const cir::ForStmt* loop, i64 factor);

/// Pass wrapper: fully unroll every eligible loop with trip count <= max_trip
/// (innermost-first so nested constant loops collapse bottom-up).
class FullUnrollPass final : public Pass {
 public:
  explicit FullUnrollPass(i64 max_trip = 16) : max_trip_(max_trip) {}
  std::string name() const override { return "unroll"; }
  PassResult run(cir::Function& f) override;

 private:
  i64 max_trip_;
};

/// Pass wrapper: partially unroll every eligible loop by a fixed factor.
class PartialUnrollPass final : public Pass {
 public:
  explicit PartialUnrollPass(i64 factor = 4) : factor_(factor) {}
  std::string name() const override { return "unroll-partial"; }
  PassResult run(cir::Function& f) override;

 private:
  i64 factor_;
};

}  // namespace antarex::passes
