// Iterative compilation (paper Sec. III-B).
//
// "Iterative compilation techniques are attractive to identify the best
// compiler optimizations for a given program/code fragment" — this explorer
// enumerates (or samples) pass pipelines, evaluates each candidate by
// actually running the transformed program on the VM and counting executed
// instructions (a deterministic stand-in for cycles), and returns the best
// sequence. The result is what split compilation conveys to the runtime
// stage.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cir/ast.hpp"
#include "exec/pool.hpp"
#include "support/rng.hpp"
#include "vm/engine.hpp"

namespace antarex::passes {

/// A measurement workload: entry point plus a factory producing fresh
/// arguments per evaluation (array arguments are mutable buffers, so each
/// candidate run must get its own copy). When candidates are evaluated on a
/// thread pool, make_args is called concurrently and must be thread-safe
/// (a pure factory over captured-by-value inputs is).
struct Workload {
  std::string entry;
  std::function<std::vector<vm::Value>()> make_args;
};

struct Candidate {
  std::string pipeline;
  u64 instructions = 0;
  bool output_matches_baseline = true;
};

struct IterativeResult {
  std::string best_pipeline;      ///< "" = baseline (no passes) is best
  u64 best_instructions = 0;
  u64 baseline_instructions = 0;
  std::vector<Candidate> evaluated;

  double best_speedup() const {
    return best_instructions == 0
               ? 1.0
               : static_cast<double>(baseline_instructions) /
                     static_cast<double>(best_instructions);
  }
};

class IterativeCompiler {
 public:
  /// Candidate pass specs used to build sequences; defaults to
  /// PassManager::known_specs().
  explicit IterativeCompiler(std::vector<std::string> specs = {});

  /// Evaluate candidates on `pool` instead of serially (nullptr reverts).
  /// Candidate lists are always generated serially (so explore_random draws
  /// the same pipelines for any thread count) and results are collected in
  /// candidate index order, so exploration results are byte-identical with
  /// and without a pool.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Evaluate one pipeline on a fresh clone of the module. Also verifies the
  /// transformed program still produces the baseline output (miscompilation
  /// guard); mismatching candidates are marked and never selected.
  Candidate evaluate(const cir::Module& m, const Workload& w,
                     const std::string& pipeline) const;

  /// Exhaustive search over all ordered sequences of length 1..max_len
  /// (without repetition within one sequence).
  IterativeResult explore_exhaustive(const cir::Module& m, const Workload& w,
                                     int max_len = 2) const;

  /// Random sampling of `samples` sequences of length up to max_len.
  IterativeResult explore_random(const cir::Module& m, const Workload& w,
                                 int samples, int max_len, Rng& rng) const;

 private:
  u64 run_baseline(const cir::Module& m, const Workload& w, vm::Value* out) const;
  std::vector<Candidate> evaluate_all(const cir::Module& m, const Workload& w,
                                      const std::vector<std::string>& pipelines) const;
  IterativeResult finalize(std::vector<Candidate> candidates, u64 baseline) const;

  std::vector<std::string> specs_;
  exec::ThreadPool* pool_ = nullptr;
};

}  // namespace antarex::passes
