// Dead code elimination.
#pragma once

#include "passes/pass.hpp"

namespace antarex::passes {

/// Removes:
///  - statements after an unconditional return in a block,
///  - `if` with a literal condition (replaced by the taken branch),
///  - `while (0)` loops and `for` loops with literal-false conditions,
///  - declarations of variables that are never read, when the initializer is
///    pure (repeatedly, so chains of dead temporaries disappear),
///  - pure expression statements.
class DeadCodeEliminationPass final : public Pass {
 public:
  std::string name() const override { return "dce"; }
  PassResult run(cir::Function& f) override;
};

}  // namespace antarex::passes
