#include "passes/dce.hpp"

#include <unordered_set>

#include "cir/analysis.hpp"

namespace antarex::passes {

using namespace cir;

namespace {

bool is_literal_cond(const Expr& e, bool& value) {
  if (e.kind == ExprKind::IntLit) {
    value = static_cast<const IntLit&>(e).value != 0;
    return true;
  }
  if (e.kind == ExprKind::FloatLit) {
    value = static_cast<const FloatLit&>(e).value != 0.0;
    return true;
  }
  return false;
}

/// Names read anywhere in the function (conservative: assignment targets of
/// array stores read the base; index reads count).
std::unordered_set<std::string> collect_reads(Function& f) {
  std::unordered_set<std::string> reads;
  walk_stmts(*f.body, [&](Stmt& s) {
    if (s.kind == StmtKind::Assign) {
      auto& a = static_cast<AssignStmt&>(s);
      // Store target: VarRef target is a write, not a read; but an Index
      // target reads the base array and the index expression.
      if (a.target->kind == ExprKind::Index) {
        walk_exprs(*a.target, [&](Expr& e) {
          if (e.kind == ExprKind::VarRef) reads.insert(static_cast<VarRef&>(e).name);
        });
      }
      walk_exprs(*a.value, [&](Expr& e) {
        if (e.kind == ExprKind::VarRef) reads.insert(static_cast<VarRef&>(e).name);
      });
    } else {
      walk_exprs(s, [&](Expr& e) {
        if (e.kind == ExprKind::VarRef) reads.insert(static_cast<VarRef&>(e).name);
      });
    }
  });
  return reads;
}

class Dce {
 public:
  explicit Dce(Function& f) : fn_(f) {}

  std::size_t run() {
    bool changed = true;
    // Iterate to fixpoint: removing one dead statement can make another dead.
    while (changed) {
      changed = false;
      reads_ = collect_reads(fn_);
      const std::size_t before = removed_;
      simplify_block(*fn_.body);
      changed = removed_ > before;
    }
    return removed_;
  }

 private:
  void simplify_block(Block& b) {
    std::vector<StmtPtr> kept;
    kept.reserve(b.stmts.size());
    bool dead = false;  // statements after a return
    for (auto& sp : b.stmts) {
      if (dead) {
        ++removed_;
        continue;
      }
      if (!process(sp, kept)) continue;  // statement replaced/removed
      if (kept.back()->kind == StmtKind::Return) dead = true;
    }
    b.stmts = std::move(kept);
  }

  /// Returns false if the statement was dropped; otherwise appends (possibly a
  /// replacement) to `kept`.
  bool process(StmtPtr& sp, std::vector<StmtPtr>& kept) {
    Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::Block:
        simplify_block(static_cast<Block&>(s));
        break;
      case StmtKind::ExprStmt: {
        auto& es = static_cast<ExprStmt&>(s);
        if (is_pure_expr(*es.expr)) {
          ++removed_;
          return false;
        }
        break;
      }
      case StmtKind::VarDecl: {
        auto& d = static_cast<VarDeclStmt&>(s);
        if (!reads_.contains(d.name) && (!d.init || is_pure_expr(*d.init))) {
          ++removed_;
          return false;
        }
        break;
      }
      case StmtKind::Assign: {
        auto& a = static_cast<AssignStmt&>(s);
        if (a.target->kind == ExprKind::VarRef &&
            !reads_.contains(static_cast<VarRef&>(*a.target).name) &&
            is_pure_expr(*a.value)) {
          ++removed_;
          return false;
        }
        break;
      }
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(s);
        bool cond_value = false;
        if (is_literal_cond(*i.cond, cond_value)) {
          ++removed_;
          std::unique_ptr<Block> taken =
              cond_value ? std::move(i.then_block) : std::move(i.else_block);
          if (!taken) return false;
          simplify_block(*taken);
          kept.push_back(std::move(taken));
          return true;
        }
        simplify_block(*i.then_block);
        if (i.else_block) {
          simplify_block(*i.else_block);
          if (i.else_block->stmts.empty()) i.else_block.reset();
        }
        break;
      }
      case StmtKind::For: {
        auto& f = static_cast<ForStmt&>(s);
        bool cond_value = true;
        if (f.cond && is_literal_cond(*f.cond, cond_value) && !cond_value) {
          // Loop body never runs; the init may still have effects.
          ++removed_;
          if (f.init && !(f.init->kind == StmtKind::VarDecl)) {
            kept.push_back(std::move(f.init));
            return true;
          }
          return false;
        }
        simplify_block(*f.body);
        break;
      }
      case StmtKind::While: {
        auto& w = static_cast<WhileStmt&>(s);
        bool cond_value = true;
        if (is_literal_cond(*w.cond, cond_value) && !cond_value) {
          ++removed_;
          return false;
        }
        simplify_block(*w.body);
        break;
      }
      default:
        break;
    }
    kept.push_back(std::move(sp));
    return true;
  }

  Function& fn_;
  std::unordered_set<std::string> reads_;
  std::size_t removed_ = 0;
};

}  // namespace

PassResult DeadCodeEliminationPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;
  result.actions = Dce(f).run();
  result.changed = result.actions > 0;
  return result;
}

}  // namespace antarex::passes
