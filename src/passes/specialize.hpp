// Function specialization (constant argument binding).
//
// This is the `Specialize` action of the paper's Figure 4: clone a function,
// bind one integer parameter to a runtime-observed constant, and let the rest
// of the pipeline (fold, unroll, dce) exploit the new constant. The resulting
// variant is what `AddVersion` installs in the VM's dispatch table.
#pragma once

#include <string>

#include "passes/pass.hpp"

namespace antarex::passes {

/// Derived variant name, e.g. "kernel__size_128".
std::string specialized_name(const std::string& func, const std::string& param,
                             i64 value);

/// Clones `func` from the module, substitutes parameter `param` with the
/// literal `value`, removes the parameter from the signature, renames the
/// clone to specialized_name(...), adds it to the module and returns it.
/// Throws if the function/parameter does not exist or the parameter is not
/// integer-typed. If a same-named variant already exists it is returned as-is
/// (specialization is idempotent per (func, param, value)).
cir::Function* specialize_function(cir::Module& m, const std::string& func,
                                   const std::string& param, i64 value);

}  // namespace antarex::passes
