#include "passes/unroll.hpp"

#include <unordered_set>

#include "cir/analysis.hpp"

namespace antarex::passes {

using namespace cir;

namespace {

/// Finds the owning slot of `target` anywhere under `b` (recursively).
StmtPtr* find_stmt_slot(Block& b, const Stmt* target) {
  for (auto& sp : b.stmts) {
    if (sp.get() == target) return &sp;
    switch (sp->kind) {
      case StmtKind::Block: {
        if (StmtPtr* r = find_stmt_slot(static_cast<Block&>(*sp), target)) return r;
        break;
      }
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(*sp);
        if (StmtPtr* r = find_stmt_slot(*i.then_block, target)) return r;
        if (i.else_block)
          if (StmtPtr* r = find_stmt_slot(*i.else_block, target)) return r;
        break;
      }
      case StmtKind::For: {
        if (StmtPtr* r = find_stmt_slot(*static_cast<ForStmt&>(*sp).body, target))
          return r;
        break;
      }
      case StmtKind::While: {
        if (StmtPtr* r = find_stmt_slot(*static_cast<WhileStmt&>(*sp).body, target))
          return r;
        break;
      }
      default:
        break;
    }
  }
  return nullptr;
}

/// True if the block contains a `continue` that would bind to this loop
/// (i.e., not nested inside an inner loop).
bool has_toplevel_continue(const Block& b) {
  for (const auto& sp : b.stmts) {
    switch (sp->kind) {
      case StmtKind::Continue:
        return true;
      case StmtKind::Block:
        if (has_toplevel_continue(static_cast<const Block&>(*sp))) return true;
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*sp);
        if (has_toplevel_continue(*i.then_block)) return true;
        if (i.else_block && has_toplevel_continue(*i.else_block)) return true;
        break;
      }
      // For/While re-bind continue; do not descend.
      default:
        break;
    }
  }
  return false;
}

struct Eligibility {
  bool ok = false;
  LoopFacts facts;
};

Eligibility check_eligible(const ForStmt& loop) {
  Eligibility e;
  e.facts = analyze_loop(loop);
  if (!e.facts.trip_count || e.facts.induction_var.empty()) return e;
  if (has_toplevel_continue(*loop.body)) return e;
  e.ok = true;
  return e;
}

}  // namespace

bool unroll_loop_full(Function& f, const ForStmt* loop, i64 max_trip) {
  ANTAREX_REQUIRE(f.body != nullptr, "unroll: function has no body");
  StmtPtr* slot = find_stmt_slot(*f.body, loop);
  ANTAREX_REQUIRE(slot != nullptr, "unroll: loop does not belong to this function");

  const Eligibility e = check_eligible(*loop);
  if (!e.ok || *e.facts.trip_count > max_trip) return false;

  const i64 n = *e.facts.trip_count;
  const i64 c0 = *e.facts.lower_bound;
  const i64 step = *e.facts.step;
  const std::string& var = e.facts.induction_var;

  auto expansion = std::make_unique<Block>();
  expansion->loc = loop->loc;
  for (i64 k = 0; k < n; ++k) {
    auto copy = loop->body->clone_block();
    const IntLit value(c0 + k * step);
    substitute_var(*copy, var, value);
    // Splice the copy's statements; keep each iteration as a nested block so
    // iteration-local declarations do not collide.
    expansion->stmts.push_back(std::move(copy));
  }
  *slot = std::move(expansion);
  return true;
}

bool unroll_loop_partial(Function& f, const ForStmt* loop, i64 factor) {
  ANTAREX_REQUIRE(f.body != nullptr, "unroll: function has no body");
  ANTAREX_REQUIRE(factor >= 2, "unroll: partial factor must be >= 2");
  StmtPtr* slot = find_stmt_slot(*f.body, loop);
  ANTAREX_REQUIRE(slot != nullptr, "unroll: loop does not belong to this function");

  const Eligibility e = check_eligible(*loop);
  if (!e.ok) return false;
  const i64 n = *e.facts.trip_count;
  if (n < factor) return false;

  const i64 c0 = *e.facts.lower_bound;
  const i64 step = *e.facts.step;
  const std::string& var = e.facts.induction_var;

  const i64 main_iters = n / factor;
  const i64 main_end = c0 + main_iters * factor * step;  // first index of remainder

  auto result = std::make_unique<Block>();
  result->loc = loop->loc;

  // Main loop: for (v = c0; v <|> main_end_bound; v = v + factor*step) with
  // `factor` body copies, copy k substituting v -> v + k*step.
  {
    auto init = std::make_unique<VarDeclStmt>(Type::Int, var, make_int(c0));
    ExprPtr cond = make_binary(step > 0 ? BinOp::Lt : BinOp::Gt, make_var(var),
                               make_int(main_end));
    auto step_stmt = std::make_unique<AssignStmt>(
        make_var(var),
        make_binary(BinOp::Add, make_var(var), make_int(factor * step)));
    auto body = std::make_unique<Block>();
    for (i64 k = 0; k < factor; ++k) {
      auto copy = loop->body->clone_block();
      if (k > 0) {
        const BinaryExpr offset(BinOp::Add, make_var(var), make_int(k * step));
        substitute_var(*copy, var, offset);
      }
      body->stmts.push_back(std::move(copy));
    }
    result->stmts.push_back(std::make_unique<ForStmt>(
        std::move(init), std::move(cond), std::move(step_stmt), std::move(body)));
  }

  // Remainder loop: the leftover n % factor iterations, fully expanded.
  const i64 rem = n % factor;
  for (i64 k = 0; k < rem; ++k) {
    auto copy = loop->body->clone_block();
    const IntLit value(main_end + k * step);
    substitute_var(*copy, var, value);
    result->stmts.push_back(std::move(copy));
  }

  *slot = std::move(result);
  return true;
}

PassResult FullUnrollPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;
  // Re-collect after each successful unroll: the transformation invalidates
  // pointers into the replaced subtree.
  bool progress = true;
  while (progress) {
    progress = false;
    for (ForStmt* loop : collect_for_loops(f)) {
      const LoopFacts facts = analyze_loop(*loop);
      if (!facts.is_innermost) continue;  // bottom-up: innermost first
      if (unroll_loop_full(f, loop, max_trip_)) {
        ++result.actions;
        progress = true;
        break;
      }
    }
  }
  result.changed = result.actions > 0;
  return result;
}

PassResult PartialUnrollPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;
  // Snapshot eligible loops by node id so the pass never re-processes the
  // main loops it generates (clones and new loops get fresh ids).
  std::unordered_set<NodeId> pending;
  for (ForStmt* loop : collect_for_loops(f)) {
    const LoopFacts facts = analyze_loop(*loop);
    if (facts.trip_count && *facts.trip_count >= 2 * factor_)
      pending.insert(loop->id);
  }
  while (!pending.empty()) {
    ForStmt* target = nullptr;
    for (ForStmt* loop : collect_for_loops(f)) {
      if (pending.contains(loop->id)) {
        target = loop;
        break;
      }
    }
    if (!target) break;  // remaining ids were destroyed by earlier unrolls
    pending.erase(target->id);
    if (unroll_loop_partial(f, target, factor_)) ++result.actions;
  }
  result.changed = result.actions > 0;
  return result;
}

}  // namespace antarex::passes
