#include "passes/pass.hpp"

#include <unordered_set>

#include "cir/analysis.hpp"

namespace antarex::passes {

namespace {
const std::unordered_set<std::string>& pure_builtins() {
  static const std::unordered_set<std::string> pure = {
      "sqrt", "fabs", "exp", "log", "sin", "cos", "pow", "floor", "min", "max",
  };
  return pure;
}
}  // namespace

bool is_pure_expr(const cir::Expr& e) {
  bool pure = true;
  cir::walk_exprs(e, [&](const cir::Expr& x) {
    if (x.kind == cir::ExprKind::Call) {
      const auto& c = static_cast<const cir::CallExpr&>(x);
      if (!pure_builtins().contains(c.callee)) pure = false;
    }
  });
  return pure;
}

}  // namespace antarex::passes
