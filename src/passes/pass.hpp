// Transformation pass interface over the mini-C AST.
//
// Passes are the "code transformations" software knob of the paper (Sec. I:
// "tuning software knobs (including application parameters, code
// transformations and code variants)"). The DSL weaver actions (LoopUnroll,
// Specialize) and the iterative-compilation explorer are built from these.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cir/ast.hpp"

namespace antarex::passes {

struct PassResult {
  bool changed = false;
  /// Pass-specific count (folded expressions, unrolled loops, ...).
  std::size_t actions = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual PassResult run(cir::Function& f) = 0;
};

using PassPtr = std::unique_ptr<Pass>;

/// True if evaluating the expression cannot write memory or perform I/O:
/// literals, variable/array reads, arithmetic, and calls to pure math
/// builtins. Calls to user functions or probes are impure.
bool is_pure_expr(const cir::Expr& e);

}  // namespace antarex::passes
