#include "passes/inline.hpp"

#include "cir/analysis.hpp"

namespace antarex::passes {

using namespace cir;

namespace {

/// Returns the single returned expression if `f` is `return <pure expr>;`.
const Expr* trivial_body(const Function& f) {
  if (!f.body || f.body->stmts.size() != 1) return nullptr;
  const Stmt& s = *f.body->stmts.front();
  if (s.kind != StmtKind::Return) return nullptr;
  const auto& r = static_cast<const ReturnStmt&>(s);
  if (!r.value || !is_pure_expr(*r.value)) return nullptr;
  return r.value.get();
}

/// Substitute parameter names inside a cloned expression tree.
void substitute_params(ExprPtr& e, const Function& callee,
                       const std::vector<ExprPtr>& args) {
  if (!e) return;
  if (e->kind == ExprKind::VarRef) {
    const int idx = callee.param_index(static_cast<VarRef&>(*e).name);
    if (idx >= 0) {
      e = args[static_cast<std::size_t>(idx)]->clone();
      return;
    }
  }
  switch (e->kind) {
    case ExprKind::Unary:
      substitute_params(static_cast<UnaryExpr&>(*e).operand, callee, args);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      substitute_params(b.lhs, callee, args);
      substitute_params(b.rhs, callee, args);
      break;
    }
    case ExprKind::Call:
      for (auto& a : static_cast<CallExpr&>(*e).args)
        substitute_params(a, callee, args);
      break;
    case ExprKind::Index: {
      auto& ix = static_cast<IndexExpr&>(*e);
      substitute_params(ix.base, callee, args);
      substitute_params(ix.index, callee, args);
      break;
    }
    default:
      break;
  }
}

std::size_t inline_in_tree(ExprPtr& e, const Module& module, const Function& self) {
  std::size_t n = 0;
  switch (e->kind) {
    case ExprKind::Unary:
      n += inline_in_tree(static_cast<UnaryExpr&>(*e).operand, module, self);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      n += inline_in_tree(b.lhs, module, self);
      n += inline_in_tree(b.rhs, module, self);
      break;
    }
    case ExprKind::Call: {
      auto& c = static_cast<CallExpr&>(*e);
      for (auto& a : c.args) n += inline_in_tree(a, module, self);
      if (c.callee == self.name) break;  // no self-inlining
      const Function* callee = module.find(c.callee);
      if (!callee || callee->params.size() != c.args.size()) break;
      const Expr* body = trivial_body(*callee);
      if (!body) break;
      // All argument expressions must be pure: they may be duplicated (a
      // parameter can occur several times in the body) or dropped (parameter
      // unused).
      for (const auto& a : c.args)
        if (!is_pure_expr(*a)) return n;
      ExprPtr replacement = body->clone();
      substitute_params(replacement, *callee, c.args);
      replacement->loc = e->loc;
      e = std::move(replacement);
      ++n;
      break;
    }
    case ExprKind::Index:
      n += inline_in_tree(static_cast<IndexExpr&>(*e).index, module, self);
      break;
    default:
      break;
  }
  return n;
}

}  // namespace

PassResult InlineTrivialPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;
  for_each_expr_slot(*f.body, [&](ExprPtr& slot, bool is_store_target) {
    if (!slot || is_store_target) return;
    result.actions += inline_in_tree(slot, module_, f);
  });
  result.changed = result.actions > 0;
  return result;
}

}  // namespace antarex::passes
