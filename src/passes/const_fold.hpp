// Constant folding + algebraic simplification + local constant propagation.
#pragma once

#include "passes/pass.hpp"

namespace antarex::passes {

/// Folds literal subexpressions (2*3 -> 6), applies safe algebraic identities
/// (x*1 -> x, x+0 -> x, x*0 -> 0 when x is pure), and propagates constants
/// from `int x = C;` declarations whose variable is never reassigned in the
/// function.
class ConstantFoldPass final : public Pass {
 public:
  std::string name() const override { return "fold"; }
  PassResult run(cir::Function& f) override;
};

/// Fold a single expression tree in place; returns number of folds.
std::size_t fold_expr(cir::ExprPtr& e);

}  // namespace antarex::passes
