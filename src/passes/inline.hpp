// Inlining of trivial functions.
#pragma once

#include "passes/pass.hpp"

namespace antarex::passes {

/// Inlines calls to module-local functions whose body is a single
/// `return <pure expr>;` statement: the call expression is replaced by the
/// callee body with parameters substituted by the (pure) argument
/// expressions. Calls with impure arguments, or to larger callees, are left
/// alone — the VM's call overhead is exactly what iterative compilation then
/// weighs against code growth.
class InlineTrivialPass final : public Pass {
 public:
  /// Module-aware pass: needs the module to resolve callees.
  explicit InlineTrivialPass(const cir::Module& module) : module_(module) {}
  std::string name() const override { return "inline"; }
  PassResult run(cir::Function& f) override;

 private:
  const cir::Module& module_;
};

}  // namespace antarex::passes
