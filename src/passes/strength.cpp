#include "passes/strength.hpp"

#include "cir/analysis.hpp"

namespace antarex::passes {

using namespace cir;

namespace {

bool is_int_lit(const Expr& e, i64 v) {
  return e.kind == ExprKind::IntLit && static_cast<const IntLit&>(e).value == v;
}

bool is_float_lit(const Expr& e, double v) {
  return e.kind == ExprKind::FloatLit && static_cast<const FloatLit&>(e).value == v;
}

std::size_t reduce_tree(ExprPtr& e) {
  std::size_t n = 0;
  // Bottom-up: children first.
  switch (e->kind) {
    case ExprKind::Unary:
      n += reduce_tree(static_cast<UnaryExpr&>(*e).operand);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      n += reduce_tree(b.lhs);
      n += reduce_tree(b.rhs);
      break;
    }
    case ExprKind::Call:
      for (auto& a : static_cast<CallExpr&>(*e).args) n += reduce_tree(a);
      break;
    case ExprKind::Index:
      n += reduce_tree(static_cast<IndexExpr&>(*e).index);
      break;
    default:
      break;
  }

  if (e->kind == ExprKind::Call) {
    auto& c = static_cast<CallExpr&>(*e);
    if (c.callee == "pow" && c.args.size() == 2 && is_pure_expr(*c.args[0])) {
      if (is_int_lit(*c.args[1], 1) || is_float_lit(*c.args[1], 1.0)) {
        e = std::move(c.args[0]);
        return n + 1;
      }
      if (is_int_lit(*c.args[1], 2) || is_float_lit(*c.args[1], 2.0)) {
        ExprPtr x = std::move(c.args[0]);
        ExprPtr x2 = x->clone();
        e = make_binary(BinOp::Mul, std::move(x), std::move(x2));
        return n + 1;
      }
      if (is_int_lit(*c.args[1], 3) || is_float_lit(*c.args[1], 3.0)) {
        ExprPtr x = std::move(c.args[0]);
        ExprPtr sq = make_binary(BinOp::Mul, x->clone(), x->clone());
        e = make_binary(BinOp::Mul, std::move(sq), std::move(x));
        return n + 1;
      }
      if (is_float_lit(*c.args[1], 0.5)) {
        std::vector<ExprPtr> args;
        args.push_back(std::move(c.args[0]));
        e = make_call("sqrt", std::move(args));
        return n + 1;
      }
    }
  } else if (e->kind == ExprKind::Binary) {
    auto& b = static_cast<BinaryExpr&>(*e);
    if (b.op == BinOp::Mul) {
      if (is_int_lit(*b.rhs, 2) && is_pure_expr(*b.lhs)) {
        ExprPtr x = std::move(b.lhs);
        ExprPtr x2 = x->clone();
        e = make_binary(BinOp::Add, std::move(x), std::move(x2));
        return n + 1;
      }
      if (is_int_lit(*b.lhs, 2) && is_pure_expr(*b.rhs)) {
        ExprPtr x = std::move(b.rhs);
        ExprPtr x2 = x->clone();
        e = make_binary(BinOp::Add, std::move(x), std::move(x2));
        return n + 1;
      }
    }
  }
  return n;
}

}  // namespace

PassResult StrengthReductionPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;
  for_each_expr_slot(*f.body, [&](ExprPtr& slot, bool is_store_target) {
    if (!slot) return;
    if (is_store_target) {
      if (slot->kind == ExprKind::Index)
        result.actions += reduce_tree(static_cast<IndexExpr&>(*slot).index);
      return;
    }
    result.actions += reduce_tree(slot);
  });
  result.changed = result.actions > 0;
  return result;
}

}  // namespace antarex::passes
