#include "passes/const_fold.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "cir/analysis.hpp"

namespace antarex::passes {

using namespace cir;

namespace {

bool is_int_lit(const Expr& e, i64 v) {
  return e.kind == ExprKind::IntLit && static_cast<const IntLit&>(e).value == v;
}

bool is_lit(const Expr& e) {
  return e.kind == ExprKind::IntLit || e.kind == ExprKind::FloatLit;
}

double lit_value(const Expr& e) {
  return e.kind == ExprKind::IntLit
             ? static_cast<double>(static_cast<const IntLit&>(e).value)
             : static_cast<const FloatLit&>(e).value;
}

/// Fold a binop of two literals. Integer semantics when both are IntLit.
ExprPtr fold_literal_binop(BinOp op, const Expr& l, const Expr& r) {
  const bool both_int = l.kind == ExprKind::IntLit && r.kind == ExprKind::IntLit;
  if (both_int) {
    const i64 a = static_cast<const IntLit&>(l).value;
    const i64 b = static_cast<const IntLit&>(r).value;
    switch (op) {
      case BinOp::Add: return make_int(a + b);
      case BinOp::Sub: return make_int(a - b);
      case BinOp::Mul: return make_int(a * b);
      case BinOp::Div: return b == 0 ? nullptr : make_int(a / b);
      case BinOp::Mod: return b == 0 ? nullptr : make_int(a % b);
      case BinOp::Lt: return make_int(a < b);
      case BinOp::Le: return make_int(a <= b);
      case BinOp::Gt: return make_int(a > b);
      case BinOp::Ge: return make_int(a >= b);
      case BinOp::Eq: return make_int(a == b);
      case BinOp::Ne: return make_int(a != b);
      case BinOp::And: return make_int(a != 0 && b != 0);
      case BinOp::Or: return make_int(a != 0 || b != 0);
    }
    return nullptr;
  }
  const double a = lit_value(l);
  const double b = lit_value(r);
  switch (op) {
    case BinOp::Add: return make_float(a + b);
    case BinOp::Sub: return make_float(a - b);
    case BinOp::Mul: return make_float(a * b);
    case BinOp::Div: return b == 0.0 ? nullptr : make_float(a / b);
    case BinOp::Mod: return b == 0.0 ? nullptr : make_float(std::fmod(a, b));
    case BinOp::Lt: return make_int(a < b);
    case BinOp::Le: return make_int(a <= b);
    case BinOp::Gt: return make_int(a > b);
    case BinOp::Ge: return make_int(a >= b);
    case BinOp::Eq: return make_int(a == b);
    case BinOp::Ne: return make_int(a != b);
    case BinOp::And: return make_int(a != 0.0 && b != 0.0);
    case BinOp::Or: return make_int(a != 0.0 || b != 0.0);
  }
  return nullptr;
}

std::size_t fold_tree(ExprPtr& e) {
  std::size_t folds = 0;
  switch (e->kind) {
    case ExprKind::Unary: {
      auto& u = static_cast<UnaryExpr&>(*e);
      folds += fold_tree(u.operand);
      if (u.op == UnOp::Neg && u.operand->kind == ExprKind::IntLit) {
        e = make_int(-static_cast<IntLit&>(*u.operand).value);
        ++folds;
      } else if (u.op == UnOp::Neg && u.operand->kind == ExprKind::FloatLit) {
        e = make_float(-static_cast<FloatLit&>(*u.operand).value);
        ++folds;
      } else if (u.op == UnOp::Not && is_lit(*u.operand)) {
        e = make_int(lit_value(*u.operand) == 0.0 ? 1 : 0);
        ++folds;
      }
      break;
    }
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      folds += fold_tree(b.lhs);
      folds += fold_tree(b.rhs);
      if (is_lit(*b.lhs) && is_lit(*b.rhs)) {
        if (ExprPtr folded = fold_literal_binop(b.op, *b.lhs, *b.rhs)) {
          folded->loc = e->loc;
          e = std::move(folded);
          ++folds;
        }
        break;
      }
      // Algebraic identities (checked with integer-literal neutral elements;
      // also safe for float operands since 0/1 are exact).
      auto take = [&](ExprPtr& keep) {
        ExprPtr kept = std::move(keep);
        kept->loc = e->loc;
        e = std::move(kept);
        ++folds;
      };
      switch (b.op) {
        case BinOp::Add:
          if (is_int_lit(*b.rhs, 0)) take(b.lhs);
          else if (is_int_lit(*b.lhs, 0)) take(b.rhs);
          break;
        case BinOp::Sub:
          if (is_int_lit(*b.rhs, 0)) take(b.lhs);
          break;
        case BinOp::Mul:
          if (is_int_lit(*b.rhs, 1)) take(b.lhs);
          else if (is_int_lit(*b.lhs, 1)) take(b.rhs);
          else if ((is_int_lit(*b.rhs, 0) && is_pure_expr(*b.lhs)) ||
                   (is_int_lit(*b.lhs, 0) && is_pure_expr(*b.rhs))) {
            e = make_int(0);
            ++folds;
          }
          break;
        case BinOp::Div:
          if (is_int_lit(*b.rhs, 1)) take(b.lhs);
          break;
        default:
          break;
      }
      break;
    }
    case ExprKind::Call: {
      auto& c = static_cast<CallExpr&>(*e);
      for (auto& a : c.args) folds += fold_tree(a);
      break;
    }
    case ExprKind::Index: {
      auto& ix = static_cast<IndexExpr&>(*e);
      folds += fold_tree(ix.index);
      break;
    }
    default:
      break;
  }
  return folds;
}

/// Variables eligible for function-wide constant propagation: declared exactly
/// once, with an integer/float literal initializer, and never re-assigned.
std::unordered_map<std::string, const Expr*> propagatable_constants(Function& f) {
  std::unordered_map<std::string, int> decl_count;
  std::unordered_map<std::string, const Expr*> init;
  std::unordered_set<std::string> assigned;
  walk_stmts(*f.body, [&](Stmt& s) {
    if (s.kind == StmtKind::VarDecl) {
      auto& d = static_cast<VarDeclStmt&>(s);
      ++decl_count[d.name];
      if (d.init && is_lit(*d.init)) init[d.name] = d.init.get();
    } else if (s.kind == StmtKind::Assign) {
      auto& a = static_cast<AssignStmt&>(s);
      if (a.target->kind == ExprKind::VarRef)
        assigned.insert(static_cast<VarRef&>(*a.target).name);
    }
  });
  // Parameters shadow nothing here; remove names that are params (their value
  // is not the initializer).
  std::unordered_map<std::string, const Expr*> out;
  for (auto& [name, expr] : init) {
    if (decl_count[name] == 1 && !assigned.contains(name) &&
        f.param_index(name) < 0)
      out[name] = expr;
  }
  return out;
}

}  // namespace

std::size_t fold_expr(ExprPtr& e) {
  ANTAREX_REQUIRE(e != nullptr, "fold_expr: null expression");
  return fold_tree(e);
}

PassResult ConstantFoldPass::run(Function& f) {
  PassResult result;
  if (!f.body) return result;

  // 1. Propagate single-assignment literal locals into their uses.
  const auto constants = propagatable_constants(f);
  for (const auto& [name, lit] : constants) {
    // substitute_var only rewrites reads; the (single) declaration remains and
    // DCE removes it once unused.
    result.actions += substitute_var(*f.body, name, *lit);
  }

  // 2. Fold every expression tree.
  for_each_expr_slot(*f.body, [&](ExprPtr& slot, bool is_store_target) {
    if (!slot) return;
    if (is_store_target) {
      // Only the index sub-expression of a store target is foldable.
      if (slot->kind == ExprKind::Index)
        result.actions += fold_tree(static_cast<IndexExpr&>(*slot).index);
      return;
    }
    result.actions += fold_tree(slot);
  });

  result.changed = result.actions > 0;
  return result;
}

}  // namespace antarex::passes
