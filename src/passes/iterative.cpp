#include "passes/iterative.hpp"

#include <cmath>

#include "exec/parallel.hpp"
#include "passes/pass_manager.hpp"
#include "support/strings.hpp"

namespace antarex::passes {

namespace {

bool values_equal(const vm::Value& a, const vm::Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.as_int() == b.as_int();
    const double x = a.as_float();
    const double y = b.as_float();
    if (std::isnan(x) && std::isnan(y)) return true;
    const double tol = 1e-9 * std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= tol;
  }
  return false;  // arrays/strings as return values are not compared
}

}  // namespace

IterativeCompiler::IterativeCompiler(std::vector<std::string> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty()) specs_ = PassManager::known_specs();
}

u64 IterativeCompiler::run_baseline(const cir::Module& m, const Workload& w,
                                    vm::Value* out) const {
  vm::Engine engine;
  engine.load_module(m);
  engine.reset_instruction_count();
  vm::Value result = engine.call(w.entry, w.make_args());
  if (out) *out = result;
  return engine.executed_instructions();
}

Candidate IterativeCompiler::evaluate(const cir::Module& m, const Workload& w,
                                      const std::string& pipeline) const {
  auto transformed = m.clone();
  PassManager pm(*transformed);
  pm.add_pipeline(pipeline);
  pm.run_all();

  vm::Engine engine;
  engine.load_module(*transformed);
  engine.reset_instruction_count();
  vm::Value result = engine.call(w.entry, w.make_args());

  Candidate c;
  c.pipeline = pipeline;
  c.instructions = engine.executed_instructions();

  vm::Value baseline_result;
  run_baseline(m, w, &baseline_result);
  c.output_matches_baseline =
      !baseline_result.is_numeric() || values_equal(result, baseline_result);
  return c;
}

std::vector<Candidate> IterativeCompiler::evaluate_all(
    const cir::Module& m, const Workload& w,
    const std::vector<std::string>& pipelines) const {
  if (!pool_ || pipelines.size() < 2) {
    std::vector<Candidate> out;
    out.reserve(pipelines.size());
    for (const auto& p : pipelines) out.push_back(evaluate(m, w, p));
    return out;
  }
  // evaluate() is pure (clones the module, fresh Engine per run), so
  // candidates are embarrassingly parallel; parallel_map keeps index order.
  return exec::parallel_map<Candidate>(
      *pool_, pipelines.size(), 1,
      [&](std::size_t i) { return evaluate(m, w, pipelines[i]); });
}

IterativeResult IterativeCompiler::finalize(std::vector<Candidate> candidates,
                                            u64 baseline) const {
  IterativeResult out;
  out.baseline_instructions = baseline;
  out.best_instructions = baseline;
  out.best_pipeline = "";
  for (const auto& c : candidates) {
    if (c.output_matches_baseline && c.instructions < out.best_instructions) {
      out.best_instructions = c.instructions;
      out.best_pipeline = c.pipeline;
    }
  }
  out.evaluated = std::move(candidates);
  return out;
}

IterativeResult IterativeCompiler::explore_exhaustive(const cir::Module& m,
                                                      const Workload& w,
                                                      int max_len) const {
  ANTAREX_REQUIRE(max_len >= 1, "explore_exhaustive: max_len must be >= 1");
  const u64 baseline = run_baseline(m, w, nullptr);

  std::vector<std::string> pipelines;
  std::vector<std::size_t> seq;
  std::function<void()> recurse = [&]() {
    if (!seq.empty()) {
      std::vector<std::string> parts;
      for (std::size_t i : seq) parts.push_back(specs_[i]);
      pipelines.push_back(join(parts, ","));
    }
    if (static_cast<int>(seq.size()) == max_len) return;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      // No immediate repetition; repeating a pass back-to-back is a no-op for
      // all our fixpoint-free passes.
      if (!seq.empty() && seq.back() == i) continue;
      seq.push_back(i);
      recurse();
      seq.pop_back();
    }
  };
  recurse();
  return finalize(evaluate_all(m, w, pipelines), baseline);
}

IterativeResult IterativeCompiler::explore_random(const cir::Module& m,
                                                  const Workload& w, int samples,
                                                  int max_len, Rng& rng) const {
  ANTAREX_REQUIRE(samples >= 1 && max_len >= 1,
                  "explore_random: samples and max_len must be >= 1");
  const u64 baseline = run_baseline(m, w, nullptr);
  // Draw all pipelines first: the rng sequence stays identical whether the
  // evaluations then run serially or on the pool.
  std::vector<std::string> pipelines;
  for (int s = 0; s < samples; ++s) {
    const int len = static_cast<int>(rng.uniform_int(1, max_len));
    std::vector<std::string> parts;
    for (int i = 0; i < len; ++i) parts.push_back(specs_[rng.index(specs_.size())]);
    pipelines.push_back(join(parts, ","));
  }
  return finalize(evaluate_all(m, w, pipelines), baseline);
}

}  // namespace antarex::passes
