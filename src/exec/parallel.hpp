// Deterministic parallelism primitives on top of ThreadPool.
//
// The two rules that keep a parallel computation byte-reproducible across
// thread counts (DESIGN.md decision 5):
//  1. Per-task RNG streams: stream_seed(run_seed, i) derives an independent
//     SplitMix64-mixed seed per task index — never draw from a shared
//     generator inside a parallel region, because draw order would then
//     depend on scheduling.
//  2. Ordered reduction: parallel_map writes results by index and any fold
//     over them runs serially in index order, so floating-point combination
//     order never depends on completion order.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/pool.hpp"
#include "support/rng.hpp"

namespace antarex::exec {

/// Seed for the i-th parallel stream of a run: SplitMix64 over the run seed
/// offset by the golden-ratio increment, so neighbouring indices land in
/// decorrelated states (the same construction SplitMix64 uses internally).
inline u64 stream_seed(u64 run_seed, u64 index) {
  SplitMix64 sm(run_seed + (index + 1) * 0x9e3779b97f4a7c15ULL);
  return sm.next();
}

/// results[i] = fn(i) for i in [0, n), computed in parallel, returned in
/// index order. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, std::size_t grain,
                            Fn&& fn) {
  std::vector<T> results(n);
  T* out = results.data();
  pool.parallel_for(n, grain, [&fn, out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return results;
}

/// Ordered reduction: acc = combine(acc, fn(i)) folded serially in index
/// order over results produced in parallel. Deterministic for any thread
/// count, including non-associative (floating-point) combines.
template <typename Acc, typename T, typename Fn, typename Combine>
Acc parallel_reduce(ThreadPool& pool, std::size_t n, std::size_t grain,
                    Acc init, Fn&& fn, Combine&& combine) {
  const std::vector<T> results =
      parallel_map<T>(pool, n, grain, std::forward<Fn>(fn));
  Acc acc = std::move(init);
  for (const T& r : results) acc = combine(std::move(acc), r);
  return acc;
}

}  // namespace antarex::exec
