// antarex::exec — the real multithreaded execution subsystem.
//
// A work-stealing thread pool: every worker owns a Chase-Lev deque (lock-free
// fast path) plus a small mutex-guarded inbox for submissions from outside
// the pool. A worker pops its own deque LIFO; when dry it drains its inbox,
// then steals FIFO from the other workers' deques and inboxes. This is the
// executable counterpart of the dock scheduling *simulators*
// (dock::schedule_dynamic) — same heavy-tailed-task problem, real threads,
// measured (not modelled) makespan, imbalance, and steal counts.
//
// Determinism contract (DESIGN.md decision 5): the pool itself schedules
// nondeterministically — *which* worker runs a task and *when* varies between
// runs — so any reproducible computation must (a) derive per-task RNG streams
// from the run seed and the task index (exec::stream_seed), never from a
// shared generator, and (b) combine results by task index (ordered
// reduction), never by completion order. parallel_for/parallel_map implement
// (b); with (a) observed, results are byte-identical across thread counts.
//
// Telemetry: the pool publishes exec.tasks / exec.steals counters, an
// exec.task span per task, an exec.queue_depth series (sampled), and — via
// publish_telemetry() — an exec.worker_busy_s gauge whose min/max envelope is
// the measured imbalance. All of it requires the registry to be safe for
// concurrent writers (see telemetry/registry.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/deque.hpp"
#include "support/common.hpp"

namespace antarex::exec {

/// A unit of pool work. Heap-allocated; the pool deletes it after run().
class Task {
 public:
  virtual ~Task() = default;
  virtual void run() = 0;

  u64 submit_ns = 0;  ///< stamped at enqueue; run_task measures queue wait
};

/// Quiescent-read execution statistics. Exact only while no tasks are in
/// flight (stats are per-worker relaxed atomics); the intended reading point
/// is after a parallel_for or TaskGroup::wait has returned.
struct PoolStats {
  u64 tasks = 0;                    ///< tasks executed
  u64 steals = 0;                   ///< cross-worker task acquisitions
  u64 inline_runs = 0;              ///< deque-full fallbacks (lost parallelism)
  u64 retries = 0;                  ///< async_retry re-submissions after a throw
  std::vector<double> worker_busy_s;  ///< per-worker task execution time
  std::vector<u64> worker_tasks;
  // Submit-to-start queue wait, accumulated per task independently of
  // tracing (the exec.queue_wait_us histogram carries the p50/p95/p99).
  u64 waited_tasks = 0;            ///< tasks with a measured wait
  double queue_wait_total_s = 0.0;
  double queue_wait_max_s = 0.0;

  /// max busy / mean busy, the same figure the dock simulators report.
  double imbalance() const;
  double total_busy_s() const;
  double mean_queue_wait_s() const;
};

class ThreadPool {
 public:
  /// threads <= 0 selects hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }
  static int hardware_threads();

  /// Workers currently inside a task's run() — the instantaneous occupancy
  /// the energy accountant weights its apportionment by. Racy by nature;
  /// always in [0, size()].
  int active_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

  // --- power-governance throttles (govern::ExecActuator) --------------------
  /// Cap the number of workers allowed to execute tasks: workers with index
  /// >= n park until the limit is raised. Their queues stay stealable, so
  /// nothing strands — throughput just drops toward the serial path. Clamped
  /// to [1, size()]; size() restores nominal. Results of parallel_for/map
  /// are unchanged by construction (ordered reduction), only timing moves.
  void set_worker_limit(int n);
  int worker_limit() const {
    return worker_limit_.load(std::memory_order_acquire);
  }

  /// Multiply the grain every parallel_for uses (>= 1): coarser chunks mean
  /// fewer scheduling points and steals per joule, the grain-size knob of the
  /// govern layer. 1 restores nominal.
  void set_grain_scale(double s);
  double grain_scale() const {
    return grain_scale_.load(std::memory_order_relaxed);
  }

  /// Fire-and-forget submission (round-robin inbox). The callable must not
  /// throw; use async() or parallel_for for exception propagation.
  void submit(std::function<void()> fn);

  /// Submission with a future carrying the result or exception.
  template <typename F>
  auto async(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// async() with a bounded retry budget: if the callable throws, it is
  /// resubmitted to the pool until it succeeds or max_attempts executions are
  /// spent, and only the *last* attempt's exception reaches the future. The
  /// resilience counterpart of the dispatcher's job requeue — transient task
  /// faults (injected or real) are absorbed instead of failing the run.
  template <typename F>
  auto async_retry(F f, int max_attempts)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    ANTAREX_REQUIRE(max_attempts >= 1, "async_retry: need at least one attempt");
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> fut = promise->get_future();
    retry_step<R>(std::make_shared<F>(std::move(f)), promise, max_attempts);
    return fut;
  }

  /// Run body(begin, end) over subranges covering [0, n), `grain` indices per
  /// task. Chunks are seeded contiguously across the workers' own deques and
  /// re-balance by stealing. Blocks until every chunk ran; rethrows the first
  /// chunk exception. Called from inside a pool worker it degrades to a
  /// serial body(0, n) — same result, no deadlock.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  PoolStats stats() const;
  void reset_stats();

  /// Export the current stats through the telemetry registry: per-worker
  /// exec.worker_busy_s gauge (min/max envelope = measured imbalance) and the
  /// exec.workers gauge.
  void publish_telemetry() const;

 private:
  struct Worker;

  /// One async_retry execution; resubmits itself on a throw. No cycle: each
  /// submitted closure owns the callable/promise via shared_ptr, nothing owns
  /// the closure after it ran.
  template <typename R, typename Fp, typename Pp>
  void retry_step(Fp fn, Pp promise, int attempts_left) {
    submit([this, fn, promise, attempts_left] {
      try {
        if constexpr (std::is_void_v<R>) {
          (*fn)();
          promise->set_value();
        } else {
          promise->set_value((*fn)());
        }
      } catch (...) {
        if (attempts_left <= 1) {
          promise->set_exception(std::current_exception());
          return;
        }
        note_retry();
        retry_step<R>(fn, promise, attempts_left - 1);
      }
    });
  }
  void note_retry();  ///< bump the retry stat + exec.task_retries counter

  void worker_main(std::size_t index);
  Task* find_task(Worker& self, std::size_t index);
  void run_task(Worker& self, Task* t);
  void submit_to(std::size_t worker, Task* t);
  void wake_all();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<u64> retries_{0};
  std::atomic<int> active_workers_{0};
  std::atomic<int> worker_limit_{0};  ///< set to size() in the constructor
  std::atomic<double> grain_scale_{1.0};
  std::atomic<std::size_t> next_inbox_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

/// Structured fire-and-wait: spawn any number of tasks, then wait() for all
/// of them; the first exception thrown by a task is rethrown from wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait_nothrow(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  template <typename F>
  void run(F f) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
    }
    pool_.submit([this, f = std::move(f)]() mutable {
      try {
        f();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) cv_.notify_all();
    });
  }

  void wait() {
    wait_nothrow();
    std::lock_guard<std::mutex> lock(mu_);
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void wait_nothrow() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;
  std::exception_ptr error_;
};

}  // namespace antarex::exec
