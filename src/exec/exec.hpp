// antarex::exec — deterministic work-stealing parallel runtime.
//
// The paper's use-case claim (Sec. VII-a) is that docking's "widely varying
// per-task time" makes dynamic load balancing critical. The dock module
// *simulates* that scheduling problem over cost vectors; this subsystem
// executes it: a Chase-Lev work-stealing thread pool, parallel_for with a
// tunable grain size (the same batch knob the autotuner drives in UC1), a
// small task/future API, and determinism primitives (seed-split RNG streams,
// ordered reduction) that keep every parallel result byte-identical across
// thread counts. See DESIGN.md subsystem #14 and README "Parallel execution".
#pragma once

#include "exec/deque.hpp"
#include "exec/parallel.hpp"
#include "exec/pool.hpp"
