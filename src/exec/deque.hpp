// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory ordering after
// Le, Pop, Cohen & Nardelli, PPoPP'13).
//
// One owner thread pushes and pops at the bottom (LIFO — keeps the owner on
// its cache-warm tail of the range); any number of thieves steal from the top
// (FIFO — thieves take the oldest, largest-granularity work). The fast path
// is lock-free: push is two stores, pop touches the CAS only for the final
// element, and a steal is one CAS.
//
// Deliberate simplifications for this codebase:
//  - Fixed capacity (power of two). The pool falls back to running a task
//    inline when the deque is full, so a bound costs at most parallelism,
//    never correctness.
//  - Memory ordering is expressed on the atomics themselves rather than via
//    standalone fences: ThreadSanitizer (which CI runs on test_exec) does not
//    model std::atomic_thread_fence, and the stricter orderings cost nothing
//    next to the millisecond-scale tasks this pool schedules.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/common.hpp"

namespace antarex::exec {

class Task;

class TaskDeque {
 public:
  explicit TaskDeque(std::size_t capacity = 1 << 13)
      : mask_(capacity - 1), slots_(capacity) {
    ANTAREX_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                    "TaskDeque: capacity must be a power of two");
  }

  /// Owner only. False when full (caller should run the task inline).
  bool push(Task* t) {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 top = top_.load(std::memory_order_acquire);
    if (b - top >= static_cast<i64>(slots_.size())) return false;
    slots_[static_cast<std::size_t>(b) & mask_].store(t,
                                                      std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. Null when empty (or when a thief won the last element).
  Task* pop() {
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    i64 top = top_.load(std::memory_order_seq_cst);
    Task* result = nullptr;
    if (top <= b) {
      result = slots_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      if (top == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(top, top + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          result = nullptr;
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Any thread. Null when empty or when another thief won the race.
  Task* steal() {
    i64 top = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (top >= b) return nullptr;
    Task* result =
        slots_[static_cast<std::size_t>(top) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return result;
  }

  /// Racy size estimate (telemetry only).
  std::size_t size_approx() const {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 top = top_.load(std::memory_order_relaxed);
    return b > top ? static_cast<std::size_t>(b - top) : 0;
  }

 private:
  const std::size_t mask_;
  std::vector<std::atomic<Task*>> slots_;
  alignas(64) std::atomic<i64> top_{0};
  alignas(64) std::atomic<i64> bottom_{0};
};

}  // namespace antarex::exec
