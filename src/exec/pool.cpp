#include "exec/pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>

#include "telemetry/telemetry.hpp"

namespace antarex::exec {

namespace {

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Which pool (if any) owns the current thread — guards nested parallel_for.
thread_local const ThreadPool* t_current_pool = nullptr;

// The executing worker's own deque and inline-run counter. SeedTask resolves
// its push target through these instead of carrying a pointer to the
// submission target's deque: an inbox-stolen seed would otherwise push into a
// deque it does not own, racing the owner's pop (Chase-Lev push is owner-only).
thread_local TaskDeque* t_my_deque = nullptr;
thread_local std::atomic<u64>* t_my_inline_runs = nullptr;

}  // namespace

double PoolStats::imbalance() const {
  double max_busy = 0.0, total = 0.0;
  for (double b : worker_busy_s) {
    max_busy = std::max(max_busy, b);
    total += b;
  }
  const double mean = worker_busy_s.empty()
                          ? 0.0
                          : total / static_cast<double>(worker_busy_s.size());
  return mean > 0.0 ? max_busy / mean : 1.0;
}

double PoolStats::total_busy_s() const {
  double total = 0.0;
  for (double b : worker_busy_s) total += b;
  return total;
}

double PoolStats::mean_queue_wait_s() const {
  return waited_tasks > 0
             ? queue_wait_total_s / static_cast<double>(waited_tasks)
             : 0.0;
}

struct ThreadPool::Worker {
  TaskDeque deque;
  std::mutex inbox_mu;
  std::deque<Task*> inbox;
  std::atomic<u64> busy_ns{0};
  std::atomic<u64> tasks{0};
  std::atomic<u64> steals{0};
  std::atomic<u64> inline_runs{0};
  std::atomic<u64> wait_ns{0};      ///< summed submit-to-start queue wait
  std::atomic<u64> wait_max_ns{0};  ///< written only by the owning thread
  std::atomic<u64> waited{0};
};

namespace {

// Shared state of one parallel_for call.
struct ForState {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t n = 0;
  std::size_t grain = 1;
  // Causal context of the parallel_for span; each chunk adopts a
  // deterministic child keyed by its chunk index, so the request tree is
  // identical no matter which worker ran (or stole) the chunk.
  telemetry::TraceContext ctx;
  std::atomic<std::size_t> remaining{0};  ///< chunks not yet finished
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  std::size_t error_begin = SIZE_MAX;  ///< chunk index of the kept exception

  void run_chunk(std::size_t begin, std::size_t end) {
    // Every chunk always runs — no fast-skip after a failure. The caller is
    // owed the *deterministic* first exception (lowest chunk index), not
    // whichever one a race surfaced first; with all chunks executed, the
    // lowest-index error is well defined across runs and thread counts.
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (begin < error_begin) {
        error_begin = begin;
        error = std::current_exception();
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    }
  }
};

struct FnTask final : Task {
  explicit FnTask(std::function<void()> f) : fn(std::move(f)) {}
  void run() override { fn(); }
  std::function<void()> fn;
};

struct ChunkTask final : Task {
  ChunkTask(ForState* s, std::size_t b, std::size_t e, std::size_t c)
      : state(s), begin(b), end(e), chunk(c) {}
  void run() override {
    if (state->ctx.active()) {
      telemetry::ContextScope scope(
          state->ctx.child_task(static_cast<u64>(chunk)));
      state->run_chunk(begin, end);
    } else {
      state->run_chunk(begin, end);
    }
  }
  ForState* state;
  std::size_t begin, end, chunk;
};

// Scatters one worker's share of chunks into the *executing* worker's
// Chase-Lev deque (via the thread-locals above — push is owner-only, and a
// seed stolen from an inbox runs on the thief), where other workers can then
// rebalance them by stealing. Idle workers poll for steals within 200us (the
// sleep timeout in worker_main), so no extra wakeup is needed after seeding.
struct SeedTask final : Task {
  SeedTask(ForState* s, std::size_t c0, std::size_t c1)
      : state(s), chunk_begin(c0), chunk_end(c1) {}

  void run() override {
    for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
      const std::size_t begin = c * state->grain;
      const std::size_t end = std::min(state->n, begin + state->grain);
      auto* chunk = new ChunkTask(state, begin, end, c);
      chunk->submit_ns = now_ns();
      if (!t_my_deque->push(chunk)) {
        // Deque full: run right here. Costs parallelism, never correctness.
        t_my_inline_runs->fetch_add(1, std::memory_order_relaxed);
        chunk->run();
        delete chunk;
      }
    }
  }

  ForState* state;
  std::size_t chunk_begin, chunk_end;
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int n = threads > 0 ? threads : hardware_threads();
  n = std::max(1, n);
  worker_limit_.store(n, std::memory_order_relaxed);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  wake_all();
  for (std::thread& t : threads_) t.join();
  // Workers drain every queue before exiting; anything still here means a
  // task was submitted after stop, which the API forbids.
  for (auto& w : workers_) {
    while (Task* t = w->deque.pop()) delete t;
    for (Task* t : w->inbox) delete t;
    w->inbox.clear();
  }
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::submit(std::function<void()> fn) {
  // Carry the submitter's causal context (if any) across the thread
  // boundary: fork a child task context here — serially, so its slot is
  // deterministic — and adopt it on whichever worker ends up running the
  // task. Inactive contexts (no tracing) skip the wrapper entirely.
  const telemetry::TraceContext ctx = telemetry::fork_context();
  Task* t;
  if (ctx.active()) {
    t = new FnTask([ctx, f = std::move(fn)] {
      telemetry::ContextScope scope(ctx);
      f();
    });
  } else {
    t = new FnTask(std::move(fn));
  }
  const std::size_t w =
      next_inbox_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  submit_to(w, t);
}

void ThreadPool::submit_to(std::size_t worker, Task* t) {
  t->submit_ns = now_ns();
  Worker& w = *workers_[worker];
  {
    std::lock_guard<std::mutex> lock(w.inbox_mu);
    w.inbox.push_back(t);
  }
  wake_all();
}

void ThreadPool::wake_all() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_all();
}

void ThreadPool::set_worker_limit(int n) {
  n = std::min(std::max(1, n), size());
  worker_limit_.store(n, std::memory_order_release);
  TELEMETRY_GAUGE("exec.worker_limit", static_cast<double>(n));
  wake_all();  // parked workers re-check the limit
}

void ThreadPool::set_grain_scale(double s) {
  ANTAREX_REQUIRE(s >= 1.0, "ThreadPool: grain scale must be >= 1");
  grain_scale_.store(s, std::memory_order_relaxed);
  TELEMETRY_GAUGE("exec.grain_scale", s);
}

void ThreadPool::note_retry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  TELEMETRY_COUNT("exec.task_retries", 1);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ANTAREX_REQUIRE(body != nullptr, "parallel_for: null body");
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const double scale = grain_scale_.load(std::memory_order_relaxed);
  if (scale > 1.0)
    grain = std::max<std::size_t>(
        grain, static_cast<std::size_t>(static_cast<double>(grain) * scale));

  if (t_current_pool == this) {
    // Nested use from a pool thread: blocking here could deadlock a
    // fully-busy pool, and the ordered-reduction contract makes serial
    // execution indistinguishable anyway.
    body(0, n);
    return;
  }

  TELEMETRY_SPAN("exec.parallel_for");
  TELEMETRY_COUNT("exec.parallel_for_calls", 1);

  ForState state;
  state.body = body;
  state.n = n;
  state.grain = grain;
  // Children of the exec.parallel_for span just opened above (inactive when
  // the caller has no causal context).
  state.ctx = telemetry::current_context();
  const std::size_t chunks = (n + grain - 1) / grain;
  state.remaining.store(chunks, std::memory_order_relaxed);

  // Contiguous block of chunks per worker — the same initial partition the
  // static scheduler uses; stealing provides the dynamic rebalancing.
  const std::size_t P = workers_.size();
  for (std::size_t w = 0; w < P; ++w) {
    const std::size_t c0 = w * chunks / P;
    const std::size_t c1 = (w + 1) * chunks / P;
    if (c0 == c1) continue;
    submit_to(w, new SeedTask(&state, c0, c1));
  }

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.done; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

Task* ThreadPool::find_task(Worker& self, std::size_t index) {
  if (Task* t = self.deque.pop()) return t;
  {
    std::lock_guard<std::mutex> lock(self.inbox_mu);
    if (!self.inbox.empty()) {
      Task* t = self.inbox.front();
      self.inbox.pop_front();
      return t;
    }
  }
  // Steal sweep: victims in index order starting after ourselves, their
  // deques first (lock-free), inboxes second.
  const std::size_t P = workers_.size();
  for (std::size_t d = 1; d < P; ++d) {
    Worker& victim = *workers_[(index + d) % P];
    if (Task* t = victim.deque.steal()) {
      self.steals.fetch_add(1, std::memory_order_relaxed);
      TELEMETRY_COUNT("exec.steals", 1);
      return t;
    }
  }
  for (std::size_t d = 1; d < P; ++d) {
    Worker& victim = *workers_[(index + d) % P];
    std::lock_guard<std::mutex> lock(victim.inbox_mu);
    if (!victim.inbox.empty()) {
      Task* t = victim.inbox.front();
      victim.inbox.pop_front();
      self.steals.fetch_add(1, std::memory_order_relaxed);
      TELEMETRY_COUNT("exec.steals", 1);
      return t;
    }
  }
  return nullptr;
}

void ThreadPool::run_task(Worker& self, Task* t) {
  TELEMETRY_SPAN("exec.task");
  active_workers_.fetch_add(1, std::memory_order_relaxed);
  const u64 t0 = now_ns();
  if (t->submit_ns != 0 && t0 > t->submit_ns) {
    const u64 wait = t0 - t->submit_ns;
    self.wait_ns.fetch_add(wait, std::memory_order_relaxed);
    self.waited.fetch_add(1, std::memory_order_relaxed);
    if (wait > self.wait_max_ns.load(std::memory_order_relaxed))
      self.wait_max_ns.store(wait, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      static telemetry::Histogram& queue_wait =
          telemetry::Registry::global().histogram("exec.queue_wait_us", 0.0,
                                                  10000.0, 64);
      queue_wait.add(static_cast<double>(wait) * 1e-3);
    }
  }
  t->run();
  active_workers_.fetch_sub(1, std::memory_order_relaxed);
  self.busy_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  const u64 done = self.tasks.fetch_add(1, std::memory_order_relaxed) + 1;
  TELEMETRY_COUNT("exec.tasks", 1);
  if ((done & 63u) == 0 && telemetry::enabled()) {
    static telemetry::Series& depth =
        telemetry::Registry::global().series("exec.queue_depth");
    depth.push(static_cast<double>(self.deque.size_approx()));
  }
  delete t;
}

void ThreadPool::worker_main(std::size_t index) {
  t_current_pool = this;
  Worker& self = *workers_[index];
  t_my_deque = &self.deque;
  t_my_inline_runs = &self.inline_runs;
  while (true) {
    // Power-throttled workers park without draining work: their deque and
    // inbox stay stealable by the workers still under the limit, so the
    // only effect is less parallelism.
    const bool parked =
        static_cast<int>(index) >= worker_limit_.load(std::memory_order_acquire);
    if (!parked) {
      if (Task* t = find_task(self, index)) {
        run_task(self, t);
        continue;
      }
    }
    if (stop_.load(std::memory_order_seq_cst)) return;
    // Nothing runnable (or parked): sleep briefly. The timeout bounds the
    // window of a missed wakeup, so submission never needs to hold the wake
    // lock.
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  for (const auto& w : workers_) {
    const u64 busy = w->busy_ns.load(std::memory_order_relaxed);
    const u64 tasks = w->tasks.load(std::memory_order_relaxed);
    s.worker_busy_s.push_back(static_cast<double>(busy) * 1e-9);
    s.worker_tasks.push_back(tasks);
    s.tasks += tasks;
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.inline_runs += w->inline_runs.load(std::memory_order_relaxed);
    s.waited_tasks += w->waited.load(std::memory_order_relaxed);
    s.queue_wait_total_s +=
        static_cast<double>(w->wait_ns.load(std::memory_order_relaxed)) * 1e-9;
    s.queue_wait_max_s = std::max(
        s.queue_wait_max_s,
        static_cast<double>(w->wait_max_ns.load(std::memory_order_relaxed)) *
            1e-9);
  }
  s.retries = retries_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  retries_.store(0, std::memory_order_relaxed);
  for (auto& w : workers_) {
    w->busy_ns.store(0, std::memory_order_relaxed);
    w->tasks.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->inline_runs.store(0, std::memory_order_relaxed);
    w->wait_ns.store(0, std::memory_order_relaxed);
    w->wait_max_ns.store(0, std::memory_order_relaxed);
    w->waited.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::publish_telemetry() const {
  const PoolStats s = stats();
  TELEMETRY_GAUGE("exec.workers", static_cast<double>(workers_.size()));
  TELEMETRY_GAUGE("exec.active_workers", static_cast<double>(active_workers()));
  for (double busy : s.worker_busy_s)
    TELEMETRY_GAUGE("exec.worker_busy_s", busy);
}

}  // namespace antarex::exec
