// Abstract syntax tree for the ANTAREX mini-C language.
//
// This is the "C/C++ functional description" box of the paper's Figure 1:
// application kernels are written in a C subset, parsed into this AST, and
// then (a) woven by the DSL engine (src/dsl), (b) transformed by the compiler
// passes (src/passes), and (c) lowered to bytecode and executed by the
// split-compilation VM (src/vm).
//
// Nodes carry stable ids and source locations so that aspects can reference
// join points (e.g. `$fCall.location` in the paper's Figure 2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace antarex::cir {

using NodeId = u64;

/// Process-wide monotonically increasing node id (also used for nodes created
/// by transformation passes, so clones are distinguishable from originals).
NodeId next_node_id();

struct SourceLoc {
  int line = 0;
  int col = 0;

  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Types. The mini-C type system is deliberately small: 64-bit integers,
// doubles ("double"/"float" both map to Float), string literals (only as call
// arguments, for probes), and 1-D arrays of each numeric type.
// ---------------------------------------------------------------------------

enum class Type {
  Void,
  Int,       // int  -> i64
  Float,     // double (and float) -> double
  IntArr,    // int*
  FloatArr,  // double*
  Str,       // string literal / const char*
};

const char* type_name(Type t);
bool is_numeric(Type t);
bool is_array(Type t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  FloatLit,
  StrLit,
  VarRef,
  Unary,
  Binary,
  Call,
  Index,
};

enum class UnOp { Neg, Not };

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

const char* unop_name(UnOp op);
const char* binop_name(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  NodeId id;
  SourceLoc loc;

  explicit Expr(ExprKind k) : kind(k), id(next_node_id()) {}
  virtual ~Expr() = default;

  virtual ExprPtr clone() const = 0;
};

struct IntLit final : Expr {
  i64 value;
  explicit IntLit(i64 v) : Expr(ExprKind::IntLit), value(v) {}
  ExprPtr clone() const override;
};

struct FloatLit final : Expr {
  double value;
  explicit FloatLit(double v) : Expr(ExprKind::FloatLit), value(v) {}
  ExprPtr clone() const override;
};

struct StrLit final : Expr {
  std::string value;
  explicit StrLit(std::string v) : Expr(ExprKind::StrLit), value(std::move(v)) {}
  ExprPtr clone() const override;
};

struct VarRef final : Expr {
  std::string name;
  explicit VarRef(std::string n) : Expr(ExprKind::VarRef), name(std::move(n)) {}
  ExprPtr clone() const override;
};

struct UnaryExpr final : Expr {
  UnOp op;
  ExprPtr operand;
  UnaryExpr(UnOp o, ExprPtr e)
      : Expr(ExprKind::Unary), op(o), operand(std::move(e)) {}
  ExprPtr clone() const override;
};

struct BinaryExpr final : Expr {
  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  BinaryExpr(BinOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  ExprPtr clone() const override;
};

struct CallExpr final : Expr {
  std::string callee;
  std::vector<ExprPtr> args;
  CallExpr(std::string c, std::vector<ExprPtr> a)
      : Expr(ExprKind::Call), callee(std::move(c)), args(std::move(a)) {}
  ExprPtr clone() const override;
};

struct IndexExpr final : Expr {
  ExprPtr base;   // VarRef to an array variable
  ExprPtr index;  // integer expression
  IndexExpr(ExprPtr b, ExprPtr i)
      : Expr(ExprKind::Index), base(std::move(b)), index(std::move(i)) {}
  ExprPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Block,
  ExprStmt,
  VarDecl,
  Assign,
  If,
  For,
  While,
  Return,
  Break,
  Continue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  NodeId id;
  SourceLoc loc;

  explicit Stmt(StmtKind k) : kind(k), id(next_node_id()) {}
  virtual ~Stmt() = default;

  virtual StmtPtr clone() const = 0;
};

struct Block final : Stmt {
  std::vector<StmtPtr> stmts;
  Block() : Stmt(StmtKind::Block) {}
  StmtPtr clone() const override;
  std::unique_ptr<Block> clone_block() const;
};

struct ExprStmt final : Stmt {
  ExprPtr expr;
  explicit ExprStmt(ExprPtr e) : Stmt(StmtKind::ExprStmt), expr(std::move(e)) {}
  StmtPtr clone() const override;
};

struct VarDeclStmt final : Stmt {
  Type type;
  std::string name;
  ExprPtr init;  // may be null
  VarDeclStmt(Type t, std::string n, ExprPtr i)
      : Stmt(StmtKind::VarDecl), type(t), name(std::move(n)), init(std::move(i)) {}
  StmtPtr clone() const override;
};

struct AssignStmt final : Stmt {
  ExprPtr target;  // VarRef or IndexExpr
  ExprPtr value;
  AssignStmt(ExprPtr t, ExprPtr v)
      : Stmt(StmtKind::Assign), target(std::move(t)), value(std::move(v)) {}
  StmtPtr clone() const override;
};

struct IfStmt final : Stmt {
  ExprPtr cond;
  std::unique_ptr<Block> then_block;
  std::unique_ptr<Block> else_block;  // may be null
  IfStmt(ExprPtr c, std::unique_ptr<Block> t, std::unique_ptr<Block> e)
      : Stmt(StmtKind::If), cond(std::move(c)), then_block(std::move(t)),
        else_block(std::move(e)) {}
  StmtPtr clone() const override;
};

/// Canonical counted loop: for (init; cond; step) body. init/step may be null
/// (e.g. `for (; i < n;)`), which the analyses treat as non-countable.
struct ForStmt final : Stmt {
  StmtPtr init;  // VarDeclStmt or AssignStmt, may be null
  ExprPtr cond;  // may be null (infinite loop)
  StmtPtr step;  // AssignStmt, may be null
  std::unique_ptr<Block> body;
  ForStmt(StmtPtr i, ExprPtr c, StmtPtr s, std::unique_ptr<Block> b)
      : Stmt(StmtKind::For), init(std::move(i)), cond(std::move(c)),
        step(std::move(s)), body(std::move(b)) {}
  StmtPtr clone() const override;
};

struct WhileStmt final : Stmt {
  ExprPtr cond;
  std::unique_ptr<Block> body;
  WhileStmt(ExprPtr c, std::unique_ptr<Block> b)
      : Stmt(StmtKind::While), cond(std::move(c)), body(std::move(b)) {}
  StmtPtr clone() const override;
};

struct ReturnStmt final : Stmt {
  ExprPtr value;  // may be null for void return
  explicit ReturnStmt(ExprPtr v) : Stmt(StmtKind::Return), value(std::move(v)) {}
  StmtPtr clone() const override;
};

struct BreakStmt final : Stmt {
  BreakStmt() : Stmt(StmtKind::Break) {}
  StmtPtr clone() const override;
};

struct ContinueStmt final : Stmt {
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  StmtPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Param {
  Type type;
  std::string name;
};

struct Function {
  NodeId id = next_node_id();
  SourceLoc loc;
  std::string name;
  Type return_type = Type::Void;
  std::vector<Param> params;
  std::unique_ptr<Block> body;

  std::unique_ptr<Function> clone() const;
  /// Index of a parameter by name; -1 if absent.
  int param_index(const std::string& pname) const;
};

/// A translation unit: an ordered set of functions. Function names are unique
/// within a module. External functions (host probes like `profile_args`, math
/// builtins) are not declared here; calls to unknown names are resolved
/// against the VM's host registry at execution time.
struct Module {
  std::vector<std::unique_ptr<Function>> functions;

  Function* find(const std::string& name);
  const Function* find(const std::string& name) const;
  /// Adds and returns the function; throws on duplicate name.
  Function* add(std::unique_ptr<Function> f);
  /// Removes by name; returns true if something was removed.
  bool remove(const std::string& name);

  std::unique_ptr<Module> clone() const;
};

// Convenience constructors used by passes, tests and the weaver.
ExprPtr make_int(i64 v);
ExprPtr make_float(double v);
ExprPtr make_str(std::string v);
ExprPtr make_var(std::string name);
ExprPtr make_unary(UnOp op, ExprPtr e);
ExprPtr make_binary(BinOp op, ExprPtr l, ExprPtr r);
ExprPtr make_call(std::string callee, std::vector<ExprPtr> args);
ExprPtr make_index(ExprPtr base, ExprPtr idx);

}  // namespace antarex::cir
