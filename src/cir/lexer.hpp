// Lexer for the ANTAREX mini-C language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cir/ast.hpp"

namespace antarex::cir {

enum class TokKind {
  End,
  Ident,
  IntLit,
  FloatLit,
  StrLit,
  // punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi,
  Plus, Minus, Star, Slash, Percent,
  Assign,          // =
  Lt, Le, Gt, Ge, EqEq, Ne,
  AmpAmp, PipePipe, Bang,
  PlusPlus, MinusMinus,
  PlusAssign, MinusAssign, StarAssign, SlashAssign,
  // keywords
  KwInt, KwDouble, KwFloat, KwVoid, KwConst, KwChar,
  KwIf, KwElse, KwFor, KwWhile, KwReturn, KwBreak, KwContinue,
};

const char* tok_kind_name(TokKind k);

struct Token {
  TokKind kind = TokKind::End;
  std::string text;   // identifier name / literal spelling (strings: unescaped)
  i64 int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;
};

/// Tokenizes a full source string. Throws antarex::Error with line:col on
/// malformed input. Supports // and /* */ comments.
std::vector<Token> lex(std::string_view source);

}  // namespace antarex::cir
