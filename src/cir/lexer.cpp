#include "cir/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/strings.hpp"

namespace antarex::cir {

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::End: return "<eof>";
    case TokKind::Ident: return "identifier";
    case TokKind::IntLit: return "integer literal";
    case TokKind::FloatLit: return "float literal";
    case TokKind::StrLit: return "string literal";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Comma: return "','";
    case TokKind::Semi: return "';'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::Assign: return "'='";
    case TokKind::Lt: return "'<'";
    case TokKind::Le: return "'<='";
    case TokKind::Gt: return "'>'";
    case TokKind::Ge: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::Ne: return "'!='";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::Bang: return "'!'";
    case TokKind::PlusPlus: return "'++'";
    case TokKind::MinusMinus: return "'--'";
    case TokKind::PlusAssign: return "'+='";
    case TokKind::MinusAssign: return "'-='";
    case TokKind::StarAssign: return "'*='";
    case TokKind::SlashAssign: return "'/='";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwDouble: return "'double'";
    case TokKind::KwFloat: return "'float'";
    case TokKind::KwVoid: return "'void'";
    case TokKind::KwConst: return "'const'";
    case TokKind::KwChar: return "'char'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwWhile: return "'while'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwBreak: return "'break'";
    case TokKind::KwContinue: return "'continue'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind>& keywords() {
  static const std::unordered_map<std::string_view, TokKind> kw = {
      {"int", TokKind::KwInt},       {"double", TokKind::KwDouble},
      {"float", TokKind::KwFloat},   {"void", TokKind::KwVoid},
      {"const", TokKind::KwConst},   {"char", TokKind::KwChar},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},       {"while", TokKind::KwWhile},
      {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
  };
  return kw;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(char c) {
    if (!done() && peek() == c) {
      advance();
      return true;
    }
    return false;
  }
  SourceLoc loc() const { return {line_, col_}; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error(format("lex error at %d:%d: %s", line_, col_, msg.c_str()));
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor cur(source);

  auto push = [&](TokKind k, SourceLoc loc, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.loc = loc;
    out.push_back(std::move(t));
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const SourceLoc loc = cur.loc();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
      if (cur.done()) cur.fail("unterminated block comment");
      cur.advance();
      cur.advance();
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                             cur.peek() == '_'))
        name.push_back(cur.advance());
      auto it = keywords().find(name);
      if (it != keywords().end()) {
        push(it->second, loc, name);
      } else {
        push(TokKind::Ident, loc, name);
      }
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string num;
      bool is_float = false;
      while (!cur.done()) {
        const char d = cur.peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num.push_back(cur.advance());
        } else if (d == '.' && !is_float) {
          is_float = true;
          num.push_back(cur.advance());
        } else if ((d == 'e' || d == 'E') &&
                   (std::isdigit(static_cast<unsigned char>(cur.peek(1))) ||
                    ((cur.peek(1) == '+' || cur.peek(1) == '-') &&
                     std::isdigit(static_cast<unsigned char>(cur.peek(2)))))) {
          is_float = true;
          num.push_back(cur.advance());  // e
          if (cur.peek() == '+' || cur.peek() == '-') num.push_back(cur.advance());
        } else {
          break;
        }
      }
      Token t;
      t.loc = loc;
      t.text = num;
      if (is_float) {
        t.kind = TokKind::FloatLit;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokKind::IntLit;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    // String literals. Both quote styles are accepted: woven code inherits
    // single-quoted strings from LARA-style %{...}% templates (paper Fig. 2).
    if (c == '"' || c == '\'') {
      const char quote = c;
      cur.advance();
      std::string s;
      while (!cur.done() && cur.peek() != quote) {
        char d = cur.advance();
        if (d == '\\' && !cur.done()) {
          const char esc = cur.advance();
          switch (esc) {
            case 'n': d = '\n'; break;
            case 't': d = '\t'; break;
            case '\\': d = '\\'; break;
            case '"': d = '"'; break;
            case '\'': d = '\''; break;
            default: cur.fail(format("unknown escape '\\%c'", esc));
          }
        }
        s.push_back(d);
      }
      if (cur.done()) cur.fail("unterminated string literal");
      cur.advance();  // closing quote
      push(TokKind::StrLit, loc, std::move(s));
      continue;
    }
    // Operators / punctuation.
    cur.advance();
    switch (c) {
      case '(': push(TokKind::LParen, loc); break;
      case ')': push(TokKind::RParen, loc); break;
      case '{': push(TokKind::LBrace, loc); break;
      case '}': push(TokKind::RBrace, loc); break;
      case '[': push(TokKind::LBracket, loc); break;
      case ']': push(TokKind::RBracket, loc); break;
      case ',': push(TokKind::Comma, loc); break;
      case ';': push(TokKind::Semi, loc); break;
      case '+':
        if (cur.match('+')) push(TokKind::PlusPlus, loc);
        else if (cur.match('=')) push(TokKind::PlusAssign, loc);
        else push(TokKind::Plus, loc);
        break;
      case '-':
        if (cur.match('-')) push(TokKind::MinusMinus, loc);
        else if (cur.match('=')) push(TokKind::MinusAssign, loc);
        else push(TokKind::Minus, loc);
        break;
      case '*':
        if (cur.match('=')) push(TokKind::StarAssign, loc);
        else push(TokKind::Star, loc);
        break;
      case '/':
        if (cur.match('=')) push(TokKind::SlashAssign, loc);
        else push(TokKind::Slash, loc);
        break;
      case '%': push(TokKind::Percent, loc); break;
      case '=':
        push(cur.match('=') ? TokKind::EqEq : TokKind::Assign, loc);
        break;
      case '<':
        push(cur.match('=') ? TokKind::Le : TokKind::Lt, loc);
        break;
      case '>':
        push(cur.match('=') ? TokKind::Ge : TokKind::Gt, loc);
        break;
      case '!':
        push(cur.match('=') ? TokKind::Ne : TokKind::Bang, loc);
        break;
      case '&':
        if (cur.match('&')) push(TokKind::AmpAmp, loc);
        else cur.fail("expected '&&' (bitwise ops are not in mini-C)");
        break;
      case '|':
        if (cur.match('|')) push(TokKind::PipePipe, loc);
        else cur.fail("expected '||' (bitwise ops are not in mini-C)");
        break;
      default:
        cur.fail(format("unexpected character '%c'", c));
    }
  }

  Token end;
  end.kind = TokKind::End;
  end.loc = cur.loc();
  out.push_back(std::move(end));
  return out;
}

}  // namespace antarex::cir
