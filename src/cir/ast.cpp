#include "cir/ast.hpp"

#include <atomic>

#include "support/strings.hpp"

namespace antarex::cir {

NodeId next_node_id() {
  static std::atomic<NodeId> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::string SourceLoc::to_string() const {
  return format("%d:%d", line, col);
}

const char* type_name(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::Int: return "int";
    case Type::Float: return "double";
    case Type::IntArr: return "int*";
    case Type::FloatArr: return "double*";
    case Type::Str: return "const char*";
  }
  return "?";
}

bool is_numeric(Type t) { return t == Type::Int || t == Type::Float; }
bool is_array(Type t) { return t == Type::IntArr || t == Type::FloatArr; }

const char* unop_name(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "!";
  }
  return "?";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

namespace {
template <typename T, typename... Args>
ExprPtr make_expr(SourceLoc loc, Args&&... args) {
  auto e = std::make_unique<T>(std::forward<Args>(args)...);
  e->loc = loc;
  return e;
}
}  // namespace

ExprPtr IntLit::clone() const { return make_expr<IntLit>(loc, value); }
ExprPtr FloatLit::clone() const { return make_expr<FloatLit>(loc, value); }
ExprPtr StrLit::clone() const { return make_expr<StrLit>(loc, value); }
ExprPtr VarRef::clone() const { return make_expr<VarRef>(loc, name); }

ExprPtr UnaryExpr::clone() const {
  return make_expr<UnaryExpr>(loc, op, operand->clone());
}

ExprPtr BinaryExpr::clone() const {
  return make_expr<BinaryExpr>(loc, op, lhs->clone(), rhs->clone());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> a;
  a.reserve(args.size());
  for (const auto& arg : args) a.push_back(arg->clone());
  return make_expr<CallExpr>(loc, callee, std::move(a));
}

ExprPtr IndexExpr::clone() const {
  return make_expr<IndexExpr>(loc, base->clone(), index->clone());
}

StmtPtr Block::clone() const { return clone_block(); }

std::unique_ptr<Block> Block::clone_block() const {
  auto b = std::make_unique<Block>();
  b->loc = loc;
  b->stmts.reserve(stmts.size());
  for (const auto& s : stmts) b->stmts.push_back(s->clone());
  return b;
}

StmtPtr ExprStmt::clone() const {
  auto s = std::make_unique<ExprStmt>(expr->clone());
  s->loc = loc;
  return s;
}

StmtPtr VarDeclStmt::clone() const {
  auto s = std::make_unique<VarDeclStmt>(type, name, init ? init->clone() : nullptr);
  s->loc = loc;
  return s;
}

StmtPtr AssignStmt::clone() const {
  auto s = std::make_unique<AssignStmt>(target->clone(), value->clone());
  s->loc = loc;
  return s;
}

StmtPtr IfStmt::clone() const {
  auto s = std::make_unique<IfStmt>(cond->clone(), then_block->clone_block(),
                                    else_block ? else_block->clone_block() : nullptr);
  s->loc = loc;
  return s;
}

StmtPtr ForStmt::clone() const {
  auto s = std::make_unique<ForStmt>(init ? init->clone() : nullptr,
                                     cond ? cond->clone() : nullptr,
                                     step ? step->clone() : nullptr,
                                     body->clone_block());
  s->loc = loc;
  return s;
}

StmtPtr WhileStmt::clone() const {
  auto s = std::make_unique<WhileStmt>(cond->clone(), body->clone_block());
  s->loc = loc;
  return s;
}

StmtPtr ReturnStmt::clone() const {
  auto s = std::make_unique<ReturnStmt>(value ? value->clone() : nullptr);
  s->loc = loc;
  return s;
}

StmtPtr BreakStmt::clone() const {
  auto s = std::make_unique<BreakStmt>();
  s->loc = loc;
  return s;
}

StmtPtr ContinueStmt::clone() const {
  auto s = std::make_unique<ContinueStmt>();
  s->loc = loc;
  return s;
}

std::unique_ptr<Function> Function::clone() const {
  auto f = std::make_unique<Function>();
  f->loc = loc;
  f->name = name;
  f->return_type = return_type;
  f->params = params;
  f->body = body ? body->clone_block() : nullptr;
  return f;
}

int Function::param_index(const std::string& pname) const {
  for (std::size_t i = 0; i < params.size(); ++i)
    if (params[i].name == pname) return static_cast<int>(i);
  return -1;
}

Function* Module::find(const std::string& name) {
  for (auto& f : functions)
    if (f->name == name) return f.get();
  return nullptr;
}

const Function* Module::find(const std::string& name) const {
  for (const auto& f : functions)
    if (f->name == name) return f.get();
  return nullptr;
}

Function* Module::add(std::unique_ptr<Function> f) {
  ANTAREX_REQUIRE(f != nullptr, "Module::add: null function");
  ANTAREX_REQUIRE(find(f->name) == nullptr,
                  "Module::add: duplicate function name '" + f->name + "'");
  functions.push_back(std::move(f));
  return functions.back().get();
}

bool Module::remove(const std::string& name) {
  for (auto it = functions.begin(); it != functions.end(); ++it) {
    if ((*it)->name == name) {
      functions.erase(it);
      return true;
    }
  }
  return false;
}

std::unique_ptr<Module> Module::clone() const {
  auto m = std::make_unique<Module>();
  m->functions.reserve(functions.size());
  for (const auto& f : functions) m->functions.push_back(f->clone());
  return m;
}

ExprPtr make_int(i64 v) { return std::make_unique<IntLit>(v); }
ExprPtr make_float(double v) { return std::make_unique<FloatLit>(v); }
ExprPtr make_str(std::string v) { return std::make_unique<StrLit>(std::move(v)); }
ExprPtr make_var(std::string name) { return std::make_unique<VarRef>(std::move(name)); }
ExprPtr make_unary(UnOp op, ExprPtr e) {
  return std::make_unique<UnaryExpr>(op, std::move(e));
}
ExprPtr make_binary(BinOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr make_call(std::string callee, std::vector<ExprPtr> args) {
  return std::make_unique<CallExpr>(std::move(callee), std::move(args));
}
ExprPtr make_index(ExprPtr base, ExprPtr idx) {
  return std::make_unique<IndexExpr>(std::move(base), std::move(idx));
}

}  // namespace antarex::cir
