#include "cir/printer.hpp"

#include "support/strings.hpp"

namespace antarex::cir {

namespace {

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Eq:
    case BinOp::Ne: return 3;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 4;
    case BinOp::Add:
    case BinOp::Sub: return 5;
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: return 6;
  }
  return 0;
}

void print_expr(const Expr& e, std::string& out, int parent_prec);

void print_operand(const Expr& e, std::string& out, int parent_prec) {
  print_expr(e, out, parent_prec);
}

void print_expr(const Expr& e, std::string& out, int parent_prec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out += format("%lld", static_cast<long long>(static_cast<const IntLit&>(e).value));
      break;
    case ExprKind::FloatLit: {
      const double v = static_cast<const FloatLit&>(e).value;
      std::string s = format("%g", v);
      // Keep float literals lexically float so they round-trip.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
        s += ".0";
      out += s;
      break;
    }
    case ExprKind::StrLit: {
      out += '"';
      for (char c : static_cast<const StrLit&>(e).value) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out += c;
        }
      }
      out += '"';
      break;
    }
    case ExprKind::VarRef:
      out += static_cast<const VarRef&>(e).name;
      break;
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      out += unop_name(u.op);
      const bool need_paren = u.operand->kind == ExprKind::Binary;
      if (need_paren) out += '(';
      print_expr(*u.operand, out, 100);
      if (need_paren) out += ')';
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      const int prec = precedence(b.op);
      const bool need_paren = prec < parent_prec;
      if (need_paren) out += '(';
      print_operand(*b.lhs, out, prec);
      out += ' ';
      out += binop_name(b.op);
      out += ' ';
      // Right operand gets prec+1: conservative parenthesization for
      // non-associative operators (a - (b - c)).
      print_operand(*b.rhs, out, prec + 1);
      if (need_paren) out += ')';
      break;
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      out += c.callee;
      out += '(';
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i) out += ", ";
        print_expr(*c.args[i], out, 0);
      }
      out += ')';
      break;
    }
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      print_expr(*ix.base, out, 100);
      out += '[';
      print_expr(*ix.index, out, 0);
      out += ']';
      break;
    }
  }
}

std::string indent_str(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

void print_stmt(const Stmt& s, std::string& out, int indent);

void print_block_body(const Block& b, std::string& out, int indent) {
  out += "{\n";
  for (const auto& st : b.stmts) print_stmt(*st, out, indent + 1);
  out += indent_str(indent) + "}";
}

/// Prints a statement without leading indent / trailing newline / ';'
/// (for use inside for-headers).
std::string inline_stmt(const Stmt& s) {
  std::string out;
  switch (s.kind) {
    case StmtKind::VarDecl: {
      const auto& d = static_cast<const VarDeclStmt&>(s);
      out += type_name(d.type);
      out += ' ';
      out += d.name;
      if (d.init) {
        out += " = ";
        print_expr(*d.init, out, 0);
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      print_expr(*a.target, out, 0);
      out += " = ";
      print_expr(*a.value, out, 0);
      break;
    }
    case StmtKind::ExprStmt:
      print_expr(*static_cast<const ExprStmt&>(s).expr, out, 0);
      break;
    default:
      ANTAREX_CHECK(false, "inline_stmt: unsupported statement kind in for-header");
  }
  return out;
}

void print_stmt(const Stmt& s, std::string& out, int indent) {
  out += indent_str(indent);
  switch (s.kind) {
    case StmtKind::Block:
      print_block_body(static_cast<const Block&>(s), out, indent);
      out += '\n';
      break;
    case StmtKind::ExprStmt:
      print_expr(*static_cast<const ExprStmt&>(s).expr, out, 0);
      out += ";\n";
      break;
    case StmtKind::VarDecl:
      out += inline_stmt(s);
      out += ";\n";
      break;
    case StmtKind::Assign:
      out += inline_stmt(s);
      out += ";\n";
      break;
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      out += "if (";
      print_expr(*i.cond, out, 0);
      out += ") ";
      print_block_body(*i.then_block, out, indent);
      if (i.else_block) {
        out += " else ";
        print_block_body(*i.else_block, out, indent);
      }
      out += '\n';
      break;
    }
    case StmtKind::For: {
      const auto& f = static_cast<const ForStmt&>(s);
      out += "for (";
      if (f.init) out += inline_stmt(*f.init);
      out += "; ";
      if (f.cond) print_expr(*f.cond, out, 0);
      out += "; ";
      if (f.step) out += inline_stmt(*f.step);
      out += ") ";
      print_block_body(*f.body, out, indent);
      out += '\n';
      break;
    }
    case StmtKind::While: {
      const auto& w = static_cast<const WhileStmt&>(s);
      out += "while (";
      print_expr(*w.cond, out, 0);
      out += ") ";
      print_block_body(*w.body, out, indent);
      out += '\n';
      break;
    }
    case StmtKind::Return: {
      const auto& r = static_cast<const ReturnStmt&>(s);
      out += "return";
      if (r.value) {
        out += ' ';
        print_expr(*r.value, out, 0);
      }
      out += ";\n";
      break;
    }
    case StmtKind::Break:
      out += "break;\n";
      break;
    case StmtKind::Continue:
      out += "continue;\n";
      break;
  }
}

}  // namespace

std::string to_source(const Expr& e) {
  std::string out;
  print_expr(e, out, 0);
  return out;
}

std::string to_source(const Stmt& s, int indent) {
  std::string out;
  print_stmt(s, out, indent);
  return out;
}

std::string to_source(const Function& f) {
  std::string out;
  out += type_name(f.return_type);
  out += ' ';
  out += f.name;
  out += '(';
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) out += ", ";
    out += type_name(f.params[i].type);
    out += ' ';
    out += f.params[i].name;
  }
  out += ") ";
  print_block_body(*f.body, out, 0);
  out += '\n';
  return out;
}

std::string to_source(const Module& m) {
  std::string out;
  for (std::size_t i = 0; i < m.functions.size(); ++i) {
    if (i) out += '\n';
    out += to_source(*m.functions[i]);
  }
  return out;
}

}  // namespace antarex::cir
