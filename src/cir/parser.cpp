#include "cir/parser.hpp"

#include <optional>

#include "cir/lexer.hpp"
#include "support/strings.hpp"

namespace antarex::cir {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(lex(source)) {}

  std::unique_ptr<Module> module() {
    auto m = std::make_unique<Module>();
    while (!at(TokKind::End)) m->add(function());
    return m;
  }

  ExprPtr single_expression() {
    ExprPtr e = expression();
    expect(TokKind::End, "trailing tokens after expression");
    return e;
  }

  std::unique_ptr<Block> snippet() {
    auto b = std::make_unique<Block>();
    while (!at(TokKind::End)) b->stmts.push_back(statement());
    return b;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(TokKind k) const { return peek().kind == k; }
  const Token& advance() { return toks_[pos_++]; }
  bool match(TokKind k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(TokKind k, const char* what) {
    if (!at(k)) fail(format("expected %s (%s), got %s", tok_kind_name(k), what,
                            tok_kind_name(peek().kind)));
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    const auto& t = peek();
    throw Error(format("parse error at %d:%d: %s", t.loc.line, t.loc.col, msg.c_str()));
  }

  bool at_type() const {
    switch (peek().kind) {
      case TokKind::KwInt:
      case TokKind::KwDouble:
      case TokKind::KwFloat:
      case TokKind::KwVoid:
      case TokKind::KwConst:
      case TokKind::KwChar:
        return true;
      default:
        return false;
    }
  }

  Type type() {
    const bool is_const = match(TokKind::KwConst);
    Type base;
    switch (peek().kind) {
      case TokKind::KwInt: advance(); base = Type::Int; break;
      case TokKind::KwDouble:
      case TokKind::KwFloat: advance(); base = Type::Float; break;
      case TokKind::KwVoid: advance(); base = Type::Void; break;
      case TokKind::KwChar: advance(); base = Type::Str; break;
      default: fail("expected a type name");
    }
    const bool ptr = match(TokKind::Star);
    if (base == Type::Str) {
      if (!ptr) fail("bare 'char' is not supported; use 'const char*'");
      return Type::Str;
    }
    (void)is_const;
    if (ptr) {
      if (base == Type::Int) return Type::IntArr;
      if (base == Type::Float) return Type::FloatArr;
      fail("'void*' is not supported in mini-C");
    }
    return base;
  }

  std::unique_ptr<Function> function() {
    auto f = std::make_unique<Function>();
    f->loc = peek().loc;
    f->return_type = type();
    f->name = expect(TokKind::Ident, "function name").text;
    expect(TokKind::LParen, "parameter list");
    if (!at(TokKind::RParen)) {
      do {
        Param p;
        p.type = type();
        if (p.type == Type::Void) fail("'void' parameter is not allowed");
        p.name = expect(TokKind::Ident, "parameter name").text;
        f->params.push_back(std::move(p));
      } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "end of parameter list");
    f->body = block();
    return f;
  }

  std::unique_ptr<Block> block() {
    const SourceLoc loc = peek().loc;
    expect(TokKind::LBrace, "block");
    auto b = std::make_unique<Block>();
    b->loc = loc;
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::End)) fail("unterminated block");
      b->stmts.push_back(statement());
    }
    expect(TokKind::RBrace, "end of block");
    return b;
  }

  /// Wraps a non-block statement in a Block (normalizes if/for/while bodies).
  std::unique_ptr<Block> block_or_stmt() {
    if (at(TokKind::LBrace)) return block();
    auto b = std::make_unique<Block>();
    b->loc = peek().loc;
    b->stmts.push_back(statement());
    return b;
  }

  StmtPtr statement() {
    const SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case TokKind::LBrace:
        return block();
      case TokKind::KwIf: {
        advance();
        expect(TokKind::LParen, "if condition");
        ExprPtr cond = expression();
        expect(TokKind::RParen, "end of if condition");
        auto then_b = block_or_stmt();
        std::unique_ptr<Block> else_b;
        if (match(TokKind::KwElse)) else_b = block_or_stmt();
        auto s = std::make_unique<IfStmt>(std::move(cond), std::move(then_b),
                                          std::move(else_b));
        s->loc = loc;
        return s;
      }
      case TokKind::KwWhile: {
        advance();
        expect(TokKind::LParen, "while condition");
        ExprPtr cond = expression();
        expect(TokKind::RParen, "end of while condition");
        auto s = std::make_unique<WhileStmt>(std::move(cond), block_or_stmt());
        s->loc = loc;
        return s;
      }
      case TokKind::KwFor: {
        advance();
        expect(TokKind::LParen, "for header");
        StmtPtr init;
        if (!at(TokKind::Semi)) {
          init = at_type() ? declaration() : assign_statement();
        }
        expect(TokKind::Semi, "';' after for-init");
        ExprPtr cond;
        if (!at(TokKind::Semi)) cond = expression();
        expect(TokKind::Semi, "';' after for-condition");
        StmtPtr step;
        if (!at(TokKind::RParen)) step = assign_statement();
        expect(TokKind::RParen, "end of for header");
        auto s = std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                           std::move(step), block_or_stmt());
        s->loc = loc;
        return s;
      }
      case TokKind::KwReturn: {
        advance();
        ExprPtr v;
        if (!at(TokKind::Semi)) v = expression();
        expect(TokKind::Semi, "';' after return");
        auto s = std::make_unique<ReturnStmt>(std::move(v));
        s->loc = loc;
        return s;
      }
      case TokKind::KwBreak: {
        advance();
        expect(TokKind::Semi, "';' after break");
        auto s = std::make_unique<BreakStmt>();
        s->loc = loc;
        return s;
      }
      case TokKind::KwContinue: {
        advance();
        expect(TokKind::Semi, "';' after continue");
        auto s = std::make_unique<ContinueStmt>();
        s->loc = loc;
        return s;
      }
      default:
        break;
    }
    if (at_type()) {
      StmtPtr d = declaration();
      expect(TokKind::Semi, "';' after declaration");
      return d;
    }
    StmtPtr s = assign_statement();
    expect(TokKind::Semi, "';' after statement");
    return s;
  }

  StmtPtr declaration() {
    const SourceLoc loc = peek().loc;
    const Type t = type();
    if (t == Type::Void) fail("cannot declare a 'void' variable");
    std::string name = expect(TokKind::Ident, "variable name").text;
    ExprPtr init;
    if (match(TokKind::Assign)) init = expression();
    auto s = std::make_unique<VarDeclStmt>(t, std::move(name), std::move(init));
    s->loc = loc;
    return s;
  }

  /// Assignment statement, ++/-- sugar, compound assignment, or a bare
  /// expression statement (typically a call).
  StmtPtr assign_statement() {
    const SourceLoc loc = peek().loc;
    ExprPtr lhs = expression();

    auto desugar = [&](BinOp op, ExprPtr rhs) -> StmtPtr {
      if (lhs->kind != ExprKind::VarRef && lhs->kind != ExprKind::Index)
        fail("left side of assignment must be a variable or array element");
      ExprPtr lhs_copy = lhs->clone();
      auto s = std::make_unique<AssignStmt>(
          std::move(lhs),
          make_binary(op, std::move(lhs_copy), std::move(rhs)));
      s->loc = loc;
      return s;
    };

    switch (peek().kind) {
      case TokKind::Assign: {
        advance();
        if (lhs->kind != ExprKind::VarRef && lhs->kind != ExprKind::Index)
          fail("left side of assignment must be a variable or array element");
        auto s = std::make_unique<AssignStmt>(std::move(lhs), expression());
        s->loc = loc;
        return s;
      }
      case TokKind::PlusAssign: advance(); return desugar(BinOp::Add, expression());
      case TokKind::MinusAssign: advance(); return desugar(BinOp::Sub, expression());
      case TokKind::StarAssign: advance(); return desugar(BinOp::Mul, expression());
      case TokKind::SlashAssign: advance(); return desugar(BinOp::Div, expression());
      case TokKind::PlusPlus: advance(); return desugar(BinOp::Add, make_int(1));
      case TokKind::MinusMinus: advance(); return desugar(BinOp::Sub, make_int(1));
      default: {
        auto s = std::make_unique<ExprStmt>(std::move(lhs));
        s->loc = loc;
        return s;
      }
    }
  }

  // Expression precedence climbing.
  ExprPtr expression() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (at(TokKind::PipePipe)) {
      const SourceLoc loc = advance().loc;
      e = make_binary(BinOp::Or, std::move(e), and_expr());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr and_expr() {
    ExprPtr e = equality();
    while (at(TokKind::AmpAmp)) {
      const SourceLoc loc = advance().loc;
      e = make_binary(BinOp::And, std::move(e), equality());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr equality() {
    ExprPtr e = relational();
    while (at(TokKind::EqEq) || at(TokKind::Ne)) {
      const BinOp op = at(TokKind::EqEq) ? BinOp::Eq : BinOp::Ne;
      const SourceLoc loc = advance().loc;
      e = make_binary(op, std::move(e), relational());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr relational() {
    ExprPtr e = additive();
    while (true) {
      BinOp op;
      if (at(TokKind::Lt)) op = BinOp::Lt;
      else if (at(TokKind::Le)) op = BinOp::Le;
      else if (at(TokKind::Gt)) op = BinOp::Gt;
      else if (at(TokKind::Ge)) op = BinOp::Ge;
      else break;
      const SourceLoc loc = advance().loc;
      e = make_binary(op, std::move(e), additive());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr additive() {
    ExprPtr e = multiplicative();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      const BinOp op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      const SourceLoc loc = advance().loc;
      e = make_binary(op, std::move(e), multiplicative());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr multiplicative() {
    ExprPtr e = unary();
    while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
      BinOp op = BinOp::Mul;
      if (at(TokKind::Slash)) op = BinOp::Div;
      else if (at(TokKind::Percent)) op = BinOp::Mod;
      const SourceLoc loc = advance().loc;
      e = make_binary(op, std::move(e), unary());
      e->loc = loc;
    }
    return e;
  }

  ExprPtr unary() {
    if (at(TokKind::Minus)) {
      const SourceLoc loc = advance().loc;
      ExprPtr e = make_unary(UnOp::Neg, unary());
      e->loc = loc;
      return e;
    }
    if (at(TokKind::Bang)) {
      const SourceLoc loc = advance().loc;
      ExprPtr e = make_unary(UnOp::Not, unary());
      e->loc = loc;
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (at(TokKind::LBracket)) {
      const SourceLoc loc = advance().loc;
      ExprPtr idx = expression();
      expect(TokKind::RBracket, "array subscript");
      e = make_index(std::move(e), std::move(idx));
      e->loc = loc;
    }
    return e;
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::IntLit: {
        advance();
        ExprPtr e = make_int(t.int_value);
        e->loc = t.loc;
        return e;
      }
      case TokKind::FloatLit: {
        advance();
        ExprPtr e = make_float(t.float_value);
        e->loc = t.loc;
        return e;
      }
      case TokKind::StrLit: {
        advance();
        ExprPtr e = make_str(t.text);
        e->loc = t.loc;
        return e;
      }
      case TokKind::LParen: {
        advance();
        ExprPtr e = expression();
        expect(TokKind::RParen, "closing parenthesis");
        return e;
      }
      case TokKind::Ident: {
        advance();
        if (match(TokKind::LParen)) {
          std::vector<ExprPtr> args;
          if (!at(TokKind::RParen)) {
            do {
              args.push_back(expression());
            } while (match(TokKind::Comma));
          }
          expect(TokKind::RParen, "end of call arguments");
          ExprPtr e = make_call(t.text, std::move(args));
          e->loc = t.loc;
          return e;
        }
        ExprPtr e = make_var(t.text);
        e->loc = t.loc;
        return e;
      }
      default:
        fail(format("unexpected token %s in expression", tok_kind_name(t.kind)));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Module> parse_module(std::string_view source) {
  return Parser(source).module();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).single_expression();
}

std::unique_ptr<Block> parse_snippet(std::string_view source) {
  return Parser(source).snippet();
}

}  // namespace antarex::cir
