#include "cir/analysis.hpp"

#include <unordered_map>
#include <unordered_set>

#include "support/strings.hpp"

namespace antarex::cir {

void walk_stmts(Block& b, const std::function<void(Stmt&)>& fn) {
  for (auto& sp : b.stmts) {
    Stmt& s = *sp;
    fn(s);
    switch (s.kind) {
      case StmtKind::Block:
        walk_stmts(static_cast<Block&>(s), fn);
        break;
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(s);
        walk_stmts(*i.then_block, fn);
        if (i.else_block) walk_stmts(*i.else_block, fn);
        break;
      }
      case StmtKind::For: {
        auto& f = static_cast<ForStmt&>(s);
        if (f.init) fn(*f.init);
        if (f.step) fn(*f.step);
        walk_stmts(*f.body, fn);
        break;
      }
      case StmtKind::While:
        walk_stmts(*static_cast<WhileStmt&>(s).body, fn);
        break;
      default:
        break;
    }
  }
}

void walk_stmts(const Block& b, const std::function<void(const Stmt&)>& fn) {
  // Const overload delegates to the mutable walker on a const_cast; the
  // callback signature guarantees no mutation.
  walk_stmts(const_cast<Block&>(b),
             [&fn](Stmt& s) { fn(static_cast<const Stmt&>(s)); });
}

void walk_exprs(Expr& e, const std::function<void(Expr&)>& fn) {
  fn(e);
  switch (e.kind) {
    case ExprKind::Unary:
      walk_exprs(*static_cast<UnaryExpr&>(e).operand, fn);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(e);
      walk_exprs(*b.lhs, fn);
      walk_exprs(*b.rhs, fn);
      break;
    }
    case ExprKind::Call:
      for (auto& a : static_cast<CallExpr&>(e).args) walk_exprs(*a, fn);
      break;
    case ExprKind::Index: {
      auto& ix = static_cast<IndexExpr&>(e);
      walk_exprs(*ix.base, fn);
      walk_exprs(*ix.index, fn);
      break;
    }
    default:
      break;
  }
}

void walk_exprs(const Expr& e, const std::function<void(const Expr&)>& fn) {
  walk_exprs(const_cast<Expr&>(e),
             [&fn](Expr& x) { fn(static_cast<const Expr&>(x)); });
}

void walk_exprs(Stmt& s, const std::function<void(Expr&)>& fn) {
  switch (s.kind) {
    case StmtKind::ExprStmt:
      walk_exprs(*static_cast<ExprStmt&>(s).expr, fn);
      break;
    case StmtKind::VarDecl: {
      auto& d = static_cast<VarDeclStmt&>(s);
      if (d.init) walk_exprs(*d.init, fn);
      break;
    }
    case StmtKind::Assign: {
      auto& a = static_cast<AssignStmt&>(s);
      walk_exprs(*a.target, fn);
      walk_exprs(*a.value, fn);
      break;
    }
    case StmtKind::If:
      walk_exprs(*static_cast<IfStmt&>(s).cond, fn);
      break;
    case StmtKind::For: {
      auto& f = static_cast<ForStmt&>(s);
      if (f.cond) walk_exprs(*f.cond, fn);
      break;
    }
    case StmtKind::While:
      walk_exprs(*static_cast<WhileStmt&>(s).cond, fn);
      break;
    case StmtKind::Return: {
      auto& r = static_cast<ReturnStmt&>(s);
      if (r.value) walk_exprs(*r.value, fn);
      break;
    }
    default:
      break;
  }
}

void walk_exprs(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  walk_exprs(const_cast<Stmt&>(s),
             [&fn](Expr& x) { fn(static_cast<const Expr&>(x)); });
}

std::vector<CallSite> collect_call_sites(Function& f) {
  std::vector<CallSite> out;
  // Recurse keeping track of the owning (block, index) of each top-level
  // statement; calls nested anywhere inside that statement report it as the
  // insertion anchor.
  std::function<void(Block&)> visit_block = [&](Block& b) {
    for (std::size_t i = 0; i < b.stmts.size(); ++i) {
      Stmt& s = *b.stmts[i];
      // Collect calls in the statement itself (header expressions included),
      // anchored at (b, i).
      walk_exprs(s, [&](Expr& e) {
        if (e.kind == ExprKind::Call) {
          out.push_back(CallSite{static_cast<CallExpr*>(&e), &f, &b, i});
        }
      });
      // Recurse into nested regions; calls there anchor to their own block.
      switch (s.kind) {
        case StmtKind::Block:
          visit_block(static_cast<Block&>(s));
          break;
        case StmtKind::If: {
          auto& st = static_cast<IfStmt&>(s);
          visit_block(*st.then_block);
          if (st.else_block) visit_block(*st.else_block);
          break;
        }
        case StmtKind::For: {
          auto& st = static_cast<ForStmt&>(s);
          // init/step call sites anchor at the loop statement itself.
          auto scan_header = [&](Stmt* hs) {
            if (!hs) return;
            walk_exprs(*hs, [&](Expr& e) {
              if (e.kind == ExprKind::Call)
                out.push_back(CallSite{static_cast<CallExpr*>(&e), &f, &b, i});
            });
          };
          scan_header(st.init.get());
          scan_header(st.step.get());
          visit_block(*st.body);
          break;
        }
        case StmtKind::While:
          visit_block(*static_cast<WhileStmt&>(s).body);
          break;
        default:
          break;
      }
    }
  };
  if (f.body) visit_block(*f.body);
  return out;
}

std::vector<CallExpr*> collect_calls(Function& f) {
  std::vector<CallExpr*> out;
  for (auto& site : collect_call_sites(f)) out.push_back(site.call);
  return out;
}

std::vector<const CallExpr*> collect_calls(const Function& f) {
  std::vector<const CallExpr*> out;
  for (auto& site : collect_call_sites(const_cast<Function&>(f)))
    out.push_back(site.call);
  return out;
}

std::vector<ForStmt*> collect_for_loops(Function& f) {
  std::vector<ForStmt*> out;
  if (f.body)
    walk_stmts(*f.body, [&](Stmt& s) {
      if (s.kind == StmtKind::For) out.push_back(static_cast<ForStmt*>(&s));
    });
  return out;
}

namespace {

/// Extract (var, constant) from a canonical init: `int i = C` or `i = C`.
std::optional<std::pair<std::string, i64>> canonical_init(const Stmt& init) {
  if (init.kind == StmtKind::VarDecl) {
    const auto& d = static_cast<const VarDeclStmt&>(init);
    if (d.type == Type::Int && d.init && d.init->kind == ExprKind::IntLit)
      return {{d.name, static_cast<const IntLit&>(*d.init).value}};
  } else if (init.kind == StmtKind::Assign) {
    const auto& a = static_cast<const AssignStmt&>(init);
    if (a.target->kind == ExprKind::VarRef && a.value->kind == ExprKind::IntLit)
      return {{static_cast<const VarRef&>(*a.target).name,
               static_cast<const IntLit&>(*a.value).value}};
  }
  return std::nullopt;
}

/// Extract step constant from `i = i + C` / `i = i - C` (including the
/// desugared forms of i++, i += C).
std::optional<i64> canonical_step(const Stmt& step, const std::string& var) {
  if (step.kind != StmtKind::Assign) return std::nullopt;
  const auto& a = static_cast<const AssignStmt&>(step);
  if (a.target->kind != ExprKind::VarRef ||
      static_cast<const VarRef&>(*a.target).name != var)
    return std::nullopt;
  if (a.value->kind != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(*a.value);
  if (b.op != BinOp::Add && b.op != BinOp::Sub) return std::nullopt;
  if (b.lhs->kind != ExprKind::VarRef ||
      static_cast<const VarRef&>(*b.lhs).name != var)
    return std::nullopt;
  if (b.rhs->kind != ExprKind::IntLit) return std::nullopt;
  const i64 c = static_cast<const IntLit&>(*b.rhs).value;
  return b.op == BinOp::Add ? c : -c;
}

struct CondFacts {
  BinOp op;
  i64 bound;
};

/// Extract `var <relop> C` from the condition.
std::optional<CondFacts> canonical_cond(const Expr& cond, const std::string& var) {
  if (cond.kind != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(cond);
  if (b.op != BinOp::Lt && b.op != BinOp::Le && b.op != BinOp::Gt && b.op != BinOp::Ge)
    return std::nullopt;
  if (b.lhs->kind != ExprKind::VarRef ||
      static_cast<const VarRef&>(*b.lhs).name != var)
    return std::nullopt;
  if (b.rhs->kind != ExprKind::IntLit) return std::nullopt;
  return CondFacts{b.op, static_cast<const IntLit&>(*b.rhs).value};
}

}  // namespace

LoopFacts analyze_loop(const ForStmt& loop) {
  LoopFacts facts;

  bool nested_loop = false;
  walk_stmts(*loop.body, [&](const Stmt& s) {
    if (s.kind == StmtKind::For || s.kind == StmtKind::While) nested_loop = true;
  });
  facts.is_innermost = !nested_loop;

  if (!loop.init || !loop.cond || !loop.step) return facts;
  const auto init = canonical_init(*loop.init);
  if (!init) return facts;
  const auto& [var, c0] = *init;
  const auto step = canonical_step(*loop.step, var);
  if (!step || *step == 0) return facts;
  const auto cond = canonical_cond(*loop.cond, var);
  if (!cond) return facts;
  // Induction variable must not be written inside the body, and the body must
  // not break out early.
  if (is_var_modified(*loop.body, var)) return facts;
  bool has_break = false;
  walk_stmts(*loop.body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Break) has_break = true;
  });
  if (has_break) return facts;

  facts.induction_var = var;
  facts.lower_bound = c0;
  facts.step = *step;

  const i64 s = *step;
  const i64 c1 = cond->bound;
  i64 count = 0;
  switch (cond->op) {
    case BinOp::Lt:
      if (s > 0 && c0 < c1) count = (c1 - c0 + s - 1) / s;
      break;
    case BinOp::Le:
      if (s > 0 && c0 <= c1) count = (c1 - c0) / s + 1;
      break;
    case BinOp::Gt:
      if (s < 0 && c0 > c1) count = (c0 - c1 + (-s) - 1) / (-s);
      break;
    case BinOp::Ge:
      if (s < 0 && c0 >= c1) count = (c0 - c1) / (-s) + 1;
      break;
    default:
      return facts;
  }
  // count==0 is a legitimate static fact (loop never runs) only when the
  // direction matches; a mismatched direction means "cannot tell" (infinite).
  const bool direction_ok = (s > 0 && (cond->op == BinOp::Lt || cond->op == BinOp::Le)) ||
                            (s < 0 && (cond->op == BinOp::Gt || cond->op == BinOp::Ge));
  if (direction_ok) facts.trip_count = count;
  return facts;
}

void for_each_expr_slot(Stmt& s,
                        const std::function<void(ExprPtr&, bool)>& fn) {
  switch (s.kind) {
    case StmtKind::Block:
      for_each_expr_slot(static_cast<Block&>(s), fn);
      break;
    case StmtKind::ExprStmt:
      fn(static_cast<ExprStmt&>(s).expr, false);
      break;
    case StmtKind::VarDecl: {
      auto& d = static_cast<VarDeclStmt&>(s);
      if (d.init) fn(d.init, false);
      break;
    }
    case StmtKind::Assign: {
      auto& a = static_cast<AssignStmt&>(s);
      fn(a.target, true);
      fn(a.value, false);
      break;
    }
    case StmtKind::If: {
      auto& i = static_cast<IfStmt&>(s);
      fn(i.cond, false);
      for_each_expr_slot(*i.then_block, fn);
      if (i.else_block) for_each_expr_slot(*i.else_block, fn);
      break;
    }
    case StmtKind::For: {
      auto& f = static_cast<ForStmt&>(s);
      if (f.init) for_each_expr_slot(*f.init, fn);
      if (f.cond) fn(f.cond, false);
      if (f.step) for_each_expr_slot(*f.step, fn);
      for_each_expr_slot(*f.body, fn);
      break;
    }
    case StmtKind::While: {
      auto& w = static_cast<WhileStmt&>(s);
      fn(w.cond, false);
      for_each_expr_slot(*w.body, fn);
      break;
    }
    case StmtKind::Return: {
      auto& r = static_cast<ReturnStmt&>(s);
      if (r.value) fn(r.value, false);
      break;
    }
    default:
      break;
  }
}

void for_each_expr_slot(Block& b,
                        const std::function<void(ExprPtr&, bool)>& fn) {
  for (auto& sp : b.stmts) for_each_expr_slot(*sp, fn);
}

bool is_var_modified(const Block& b, const std::string& name) {
  bool modified = false;
  walk_stmts(b, [&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) {
      const auto& a = static_cast<const AssignStmt&>(s);
      if (a.target->kind == ExprKind::VarRef &&
          static_cast<const VarRef&>(*a.target).name == name)
        modified = true;
    } else if (s.kind == StmtKind::VarDecl) {
      if (static_cast<const VarDeclStmt&>(s).name == name) modified = true;
    }
  });
  return modified;
}

std::size_t substitute_var(Block& b, const std::string& name, const Expr& replacement) {
  std::size_t count = 0;
  // Collect parent expression slots: we must replace the ExprPtr that owns a
  // VarRef. Walk statements and rewrite expression trees in place.
  std::function<void(ExprPtr&)> rewrite = [&](ExprPtr& e) {
    if (!e) return;
    if (e->kind == ExprKind::VarRef && static_cast<VarRef&>(*e).name == name) {
      e = replacement.clone();
      ++count;
      return;
    }
    switch (e->kind) {
      case ExprKind::Unary:
        rewrite(static_cast<UnaryExpr&>(*e).operand);
        break;
      case ExprKind::Binary: {
        auto& bin = static_cast<BinaryExpr&>(*e);
        rewrite(bin.lhs);
        rewrite(bin.rhs);
        break;
      }
      case ExprKind::Call:
        for (auto& a : static_cast<CallExpr&>(*e).args) rewrite(a);
        break;
      case ExprKind::Index: {
        auto& ix = static_cast<IndexExpr&>(*e);
        // Array base stays a VarRef unless it is exactly the substituted name
        // (substituting an array with another array variable is allowed).
        rewrite(ix.base);
        rewrite(ix.index);
        break;
      }
      default:
        break;
    }
  };

  std::function<void(Block&)> visit = [&](Block& blk) {
    for (auto& sp : blk.stmts) {
      Stmt& s = *sp;
      switch (s.kind) {
        case StmtKind::Block:
          visit(static_cast<Block&>(s));
          break;
        case StmtKind::ExprStmt:
          rewrite(static_cast<ExprStmt&>(s).expr);
          break;
        case StmtKind::VarDecl:
          rewrite(static_cast<VarDeclStmt&>(s).init);
          break;
        case StmtKind::Assign: {
          auto& a = static_cast<AssignStmt&>(s);
          // Only the value side and the index of an index target are reads.
          if (a.target->kind == ExprKind::Index)
            rewrite(static_cast<IndexExpr&>(*a.target).index);
          rewrite(a.value);
          break;
        }
        case StmtKind::If: {
          auto& i = static_cast<IfStmt&>(s);
          rewrite(i.cond);
          visit(*i.then_block);
          if (i.else_block) visit(*i.else_block);
          break;
        }
        case StmtKind::For: {
          auto& f = static_cast<ForStmt&>(s);
          if (f.init && f.init->kind == StmtKind::VarDecl)
            rewrite(static_cast<VarDeclStmt&>(*f.init).init);
          else if (f.init && f.init->kind == StmtKind::Assign)
            rewrite(static_cast<AssignStmt&>(*f.init).value);
          rewrite(f.cond);
          if (f.step && f.step->kind == StmtKind::Assign)
            rewrite(static_cast<AssignStmt&>(*f.step).value);
          visit(*f.body);
          break;
        }
        case StmtKind::While: {
          auto& w = static_cast<WhileStmt&>(s);
          rewrite(w.cond);
          visit(*w.body);
          break;
        }
        case StmtKind::Return: {
          auto& r = static_cast<ReturnStmt&>(s);
          rewrite(r.value);
          break;
        }
        default:
          break;
      }
    }
  };
  visit(b);
  return count;
}

bool is_builtin_callee(const std::string& name) {
  static const std::unordered_set<std::string> builtins = {
      "sqrt", "fabs", "exp", "log", "sin", "cos", "pow", "floor", "min", "max",
      "print_int", "print_float",
      // Instrumentation probes injected by aspects (paper Fig. 2).
      "profile_args", "monitor_begin", "monitor_end", "antarex_probe",
  };
  return builtins.contains(name);
}

namespace {

class Checker {
 public:
  explicit Checker(const Module& m) : module_(m) {}

  std::vector<Diagnostic> run() {
    for (const auto& f : module_.functions) check_function(*f);
    return std::move(diags_);
  }

 private:
  void error(SourceLoc loc, std::string msg) {
    diags_.push_back({loc, std::move(msg)});
  }

  void check_function(const Function& f) {
    scopes_.clear();
    scopes_.emplace_back();
    current_ = &f;
    loop_depth_ = 0;
    for (const auto& p : f.params) declare(f.loc, p.name);
    check_block_inner(*f.body);
    if (f.return_type != Type::Void && !always_returns(*f.body))
      error(f.loc, format("function '%s' may fall off the end without returning a value",
                          f.name.c_str()));
    scopes_.pop_back();
  }

  void declare(SourceLoc loc, const std::string& name) {
    if (scopes_.back().contains(name))
      error(loc, format("redeclaration of '%s' in the same scope", name.c_str()));
    scopes_.back().insert(name);
  }

  bool is_declared(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->contains(name)) return true;
    return false;
  }

  void check_block(const Block& b) {
    scopes_.emplace_back();
    check_block_inner(b);
    scopes_.pop_back();
  }

  void check_block_inner(const Block& b) {
    for (const auto& sp : b.stmts) check_stmt(*sp);
  }

  void check_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block:
        check_block(static_cast<const Block&>(s));
        break;
      case StmtKind::ExprStmt:
        check_expr(*static_cast<const ExprStmt&>(s).expr);
        break;
      case StmtKind::VarDecl: {
        const auto& d = static_cast<const VarDeclStmt&>(s);
        if (d.init) check_expr(*d.init);
        declare(d.loc, d.name);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        check_expr(*a.target);
        check_expr(*a.value);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        check_expr(*i.cond);
        check_block(*i.then_block);
        if (i.else_block) check_block(*i.else_block);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        scopes_.emplace_back();  // for-init scope
        if (f.init) check_stmt(*f.init);
        if (f.cond) check_expr(*f.cond);
        if (f.step) check_stmt(*f.step);
        ++loop_depth_;
        check_block(*f.body);
        --loop_depth_;
        scopes_.pop_back();
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        check_expr(*w.cond);
        ++loop_depth_;
        check_block(*w.body);
        --loop_depth_;
        break;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) check_expr(*r.value);
        if (current_->return_type == Type::Void && r.value)
          error(r.loc, "void function returns a value");
        if (current_->return_type != Type::Void && !r.value)
          error(r.loc, "non-void function returns without a value");
        break;
      }
      case StmtKind::Break:
        if (loop_depth_ == 0) error(s.loc, "'break' outside of a loop");
        break;
      case StmtKind::Continue:
        if (loop_depth_ == 0) error(s.loc, "'continue' outside of a loop");
        break;
    }
  }

  void check_expr(const Expr& e) {
    walk_exprs(e, [&](const Expr& x) {
      if (x.kind == ExprKind::VarRef) {
        const auto& v = static_cast<const VarRef&>(x);
        if (!is_declared(v.name))
          error(v.loc, format("use of undeclared variable '%s'", v.name.c_str()));
      } else if (x.kind == ExprKind::Call) {
        const auto& c = static_cast<const CallExpr&>(x);
        if (const Function* callee = module_.find(c.callee)) {
          if (callee->params.size() != c.args.size())
            error(c.loc, format("call to '%s' with %zu arguments, expected %zu",
                                c.callee.c_str(), c.args.size(),
                                callee->params.size()));
        } else if (!is_builtin_callee(c.callee)) {
          error(c.loc, format("call to unknown function '%s'", c.callee.c_str()));
        }
      }
    });
  }

  /// Conservative "all paths return": last statement is a return, or an
  /// if/else where both arms always return.
  static bool always_returns(const Block& b) {
    for (auto it = b.stmts.rbegin(); it != b.stmts.rend(); ++it) {
      const Stmt& s = **it;
      if (s.kind == StmtKind::Return) return true;
      if (s.kind == StmtKind::If) {
        const auto& i = static_cast<const IfStmt&>(s);
        if (i.else_block && always_returns(*i.then_block) &&
            always_returns(*i.else_block))
          return true;
      }
      if (s.kind == StmtKind::Block && always_returns(static_cast<const Block&>(s)))
        return true;
      // While/for loops do not guarantee a return; keep scanning earlier
      // statements only if this one is unreachable-neutral — conservatively
      // stop at the first non-returning trailing statement.
      return false;
    }
    return false;
  }

  const Module& module_;
  const Function* current_ = nullptr;
  std::vector<std::unordered_set<std::string>> scopes_;
  int loop_depth_ = 0;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> check_module(const Module& m) { return Checker(m).run(); }

}  // namespace antarex::cir
