// Structural analyses over the mini-C AST.
//
// These provide the attributes the DSL join-point model exposes to aspects
// ($loop.isInnermost, $loop.numIter, $fCall.argList, ...) and the facts the
// transformation passes need (static trip counts, induction variables,
// side-effect queries).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cir/ast.hpp"

namespace antarex::cir {

// ---------------------------------------------------------------------------
// Generic walkers (preorder).
// ---------------------------------------------------------------------------

/// Visit every statement in the block, recursively (including nested blocks,
/// loop bodies, branch bodies, and for-header init/step statements).
void walk_stmts(Block& b, const std::function<void(Stmt&)>& fn);
void walk_stmts(const Block& b, const std::function<void(const Stmt&)>& fn);

/// Visit every expression reachable from a statement, recursively.
void walk_exprs(Stmt& s, const std::function<void(Expr&)>& fn);
void walk_exprs(const Stmt& s, const std::function<void(const Expr&)>& fn);
void walk_exprs(Expr& e, const std::function<void(Expr&)>& fn);
void walk_exprs(const Expr& e, const std::function<void(const Expr&)>& fn);

// ---------------------------------------------------------------------------
// Join-point collections.
// ---------------------------------------------------------------------------

/// A call expression plus enough context to insert statements around the
/// statement that (transitively) contains it — the weaver's `insert before`.
struct CallSite {
  CallExpr* call = nullptr;
  Function* func = nullptr;      ///< enclosing function
  Block* block = nullptr;        ///< block owning the containing statement
  std::size_t stmt_index = 0;    ///< index of the containing statement in block
};

std::vector<CallSite> collect_call_sites(Function& f);
/// All call expressions (no insertion context needed).
std::vector<CallExpr*> collect_calls(Function& f);
std::vector<const CallExpr*> collect_calls(const Function& f);

/// All counted FOR loops in a function, outermost first.
std::vector<ForStmt*> collect_for_loops(Function& f);

// ---------------------------------------------------------------------------
// Loop facts.
// ---------------------------------------------------------------------------

struct LoopFacts {
  bool is_innermost = false;              ///< no For/While nested inside
  std::optional<i64> trip_count;          ///< static trip count if derivable
  std::string induction_var;              ///< empty if not in canonical form
  std::optional<i64> lower_bound;         ///< init constant, if canonical
  std::optional<i64> step;                ///< increment constant, if canonical
};

/// Derive static facts about a for-loop. The canonical analyzable shape is
///   for (i = C0; i <relop> C1; i = i + C2)   with integer literals C0,C1,C2,
/// where relop ∈ {<, <=, >, >=} and the induction variable is not written in
/// the body. Loops outside this shape get is_innermost only.
LoopFacts analyze_loop(const ForStmt& loop);

// ---------------------------------------------------------------------------
// Owning-slot walker (for rewriting passes).
// ---------------------------------------------------------------------------

/// Visits every owning ExprPtr slot in a block, recursively: statement
/// expressions, declaration initializers, assignment targets and values,
/// branch/loop conditions, for-header init/step expressions, return values.
/// `is_store_target` is true exactly for the target slot of an assignment
/// (callbacks that rewrite reads must skip those — though rewriting *inside*
/// an IndexExpr target is the callback's own recursive business).
/// The callback may replace the pointed-to tree wholesale.
void for_each_expr_slot(Block& b,
                        const std::function<void(ExprPtr&, bool is_store_target)>& fn);
void for_each_expr_slot(Stmt& s,
                        const std::function<void(ExprPtr&, bool is_store_target)>& fn);

// ---------------------------------------------------------------------------
// Variable queries and substitution.
// ---------------------------------------------------------------------------

/// True if the named variable is assigned anywhere in the block
/// (Assign target or re-declaration).
bool is_var_modified(const Block& b, const std::string& name);

/// Replace every read of `name` with a clone of `replacement`.
/// Does not touch assignment targets; returns the number of replacements.
std::size_t substitute_var(Block& b, const std::string& name, const Expr& replacement);

// ---------------------------------------------------------------------------
// Semantic checking.
// ---------------------------------------------------------------------------

struct Diagnostic {
  SourceLoc loc;
  std::string message;
};

/// Names the module treats as always-defined externs (host functions the VM
/// provides: math builtins and instrumentation probes).
bool is_builtin_callee(const std::string& name);

/// Validates: variables declared before use, no duplicate declarations in a
/// scope, call arity against module-local functions, break/continue only
/// inside loops, non-void functions return on the trailing path.
std::vector<Diagnostic> check_module(const Module& m);

}  // namespace antarex::cir
