// Pretty-printer: AST back to mini-C source.
//
// The weaver is a source-to-source tool (Figure 1: "S2S Compiler and
// Weaver" emits "C/C++ w/ OpenMP, MPI, OpenCL API"); this printer is the
// emission side. Round-tripping (parse → print → parse) is covered by tests.
#pragma once

#include <string>

#include "cir/ast.hpp"

namespace antarex::cir {

std::string to_source(const Expr& e);
std::string to_source(const Stmt& s, int indent = 0);
std::string to_source(const Function& f);
std::string to_source(const Module& m);

}  // namespace antarex::cir
