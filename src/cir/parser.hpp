// Recursive-descent parser for the ANTAREX mini-C language.
//
// Grammar (EBNF, whitespace/comments elided):
//   module    := function*
//   function  := type IDENT '(' [param {',' param}] ')' block
//   param     := type IDENT
//   type      := ('int'|'double'|'float'|'void'|'const'? 'char') '*'?
//   block     := '{' stmt* '}'
//   stmt      := block | if | for | while
//              | 'return' [expr] ';' | 'break' ';' | 'continue' ';'
//              | decl ';' | assign-or-expr ';'
//   decl      := type IDENT ['=' expr]
//   if        := 'if' '(' expr ')' stmt ['else' stmt]   (bodies normalized to blocks)
//   for       := 'for' '(' [decl|assign] ';' [expr] ';' [assign] ')' stmt
//   while     := 'while' '(' expr ')' stmt
//   assign    := lvalue ('='|'+='|'-='|'*='|'/=') expr | lvalue '++' | lvalue '--'
//   expr      := or  (C precedence: || < && < ==,!= < <,<=,>,>= < +,- < *,/,% < unary)
//
// Not supported (rejected with a diagnostic): pointers beyond 1-D array
// parameters, structs, casts, function pointers, side effects inside
// expressions (++ only as a statement).
#pragma once

#include <memory>
#include <string_view>

#include "cir/ast.hpp"

namespace antarex::cir {

/// Parses a full translation unit. Throws antarex::Error on syntax errors.
std::unique_ptr<Module> parse_module(std::string_view source);

/// Parses a single expression (used by DSL-templated code snippets).
ExprPtr parse_expression(std::string_view source);

/// Parses a sequence of statements into a block (used when aspects insert
/// code snippets, e.g. Figure 2's probe injection).
std::unique_ptr<Block> parse_snippet(std::string_view source);

}  // namespace antarex::cir
