// Energy attribution: which span/phase/task spent the joules?
//
// The ANTAREX premise is that energy is a first-class observable feeding the
// tuning loop. antarex::telemetry (PR 1) gives raw counters and spans; this
// layer closes the gap between "the package consumed E joules" and "phase X
// of the computation consumed e_x of them", the task-level attribution APEX
// performs with hardware counters.
//
// Model (see DESIGN.md "Observability"):
//  - SpanTracker mirrors the open-span stack of every thread, fed by the
//    telemetry span hooks. A thread with at least one open span is an
//    *attribution context*; its innermost span is the leaf, its outermost
//    the phase.
//  - EnergyAccountant::sample(now) reads each registered RaplDomain counter
//    (wrap-aware 32-bit delta, the real MSR idiom), and apportions the
//    interval's delta-joules equally across the live contexts — which is
//    exactly "weighted by active workers": an exec pool worker is a context
//    only while it is running a task (run_task opens the exec.task span), so
//    an interval with k active workers splits k ways. With no context open
//    the energy lands on "(unattributed)".
//  - Conservation: every sampled joule is attributed to some row, so each
//    table's total equals the sum of counter deltas exactly (tested to 1e-6
//    on a fake clock at 1/2/8 workers).
//
// Cost: hooks + accounting only run while install()ed and telemetry is
// enabled; per span it is one mutex-guarded push/pop. Sampling cost is
// O(domains + threads) per tick. Uninstalled, the stack pays nothing beyond
// the telemetry enabled() gate.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "power/rapl.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

namespace antarex::exec {
class ThreadPool;
}

namespace antarex::obs {

class PolicyEngine;

/// Mirrors every thread's stack of currently-open telemetry spans.
/// Singleton: the telemetry span hooks are process-wide function pointers.
class SpanTracker {
 public:
  static SpanTracker& global();

  /// Install the telemetry span hooks (idempotent). While installed, span
  /// enter/exit from any thread updates this tracker; if a PolicyEngine was
  /// attached (set_policy_engine), span exits also evaluate its policies.
  void install();
  void uninstall();
  bool installed() const;

  /// One live attribution context: a thread with >= 1 open span.
  struct Context {
    const char* leaf;   ///< innermost open span name
    const char* phase;  ///< outermost open span name
    std::size_t depth;  ///< open spans on this thread
  };
  std::vector<Context> snapshot() const;

  /// Attach/detach the policy engine evaluated on span exits (nullptr
  /// detaches). The engine must outlive the attachment.
  void set_policy_engine(PolicyEngine* engine);

  /// Drop all tracked state (test isolation; spans must be quiescent).
  void clear();

 private:
  SpanTracker() = default;
  struct ThreadStack;
  static void hook_enter(const char* name);
  static void hook_exit(const char* name, u64 start_ns, u64 end_ns);
  ThreadStack& my_stack();

  mutable std::mutex mu_;
  std::vector<ThreadStack*> stacks_;
  PolicyEngine* engine_ = nullptr;  ///< guarded by mu_
  bool installed_ = false;
};

struct AttributionRow {
  std::string key;      ///< span name, or "(unattributed)"
  double joules = 0.0;
  double seconds = 0.0;
  u64 samples = 0;      ///< sampling intervals that credited this row
};

/// Accumulated attribution, ordered by descending joules.
class AttributionTable {
 public:
  void add(const std::string& key, double joules, double seconds);
  std::vector<AttributionRow> rows() const;  ///< sorted, joules desc
  double total_joules() const;
  double total_seconds() const;
  std::size_t size() const { return rows_.size(); }

  /// Render via support/table (key, joules, share %, seconds, samples).
  Table table(const std::string& key_header = "span") const;

 private:
  std::map<std::string, AttributionRow> rows_;
};

/// The sampling accountant: reads RAPL domains, splits the delta-joules over
/// the live span contexts. Drive it from the simulation clock (deterministic)
/// or wall time; `interval_s` documents the intended cadence for periodic
/// drivers and is exported with the dump.
class EnergyAccountant {
 public:
  struct Options {
    double interval_s = 0.25;  ///< intended sampling cadence (documentation +
                               ///< dump metadata; sample() takes explicit now)
  };

  EnergyAccountant() : EnergyAccountant(Options()) {}
  explicit EnergyAccountant(Options opts);

  /// Register a domain to sample (non-owning; must outlive the accountant).
  void add_domain(const power::RaplDomain* domain);

  /// Optional pool: lets the dump record worker counts next to attribution.
  void set_pool(const exec::ThreadPool* pool);

  /// Convenience: install the global SpanTracker hooks.
  void install() const;
  void uninstall() const;

  /// Read all domains and attribute the energy accrued since the previous
  /// sample. The first call only establishes the counter baselines.
  void sample(double now_s);

  AttributionTable by_leaf() const;   ///< per innermost span name
  AttributionTable by_phase() const;  ///< per outermost span name
  double attributed_joules() const;
  u64 samples() const;
  double interval_s() const { return opts_.interval_s; }

  /// JSON dump, schema "antarex.obs.attribution/v1" — the attribution input
  /// of antarex-report and the bench reports.
  std::string json() const;

  void reset();

 private:
  Options opts_;
  mutable std::mutex mu_;
  struct DomainState {
    const power::RaplDomain* domain;
    u32 last_counter = 0;
    double joules = 0.0;  ///< total attributed from this domain
  };
  std::vector<DomainState> domains_;
  const exec::ThreadPool* pool_ = nullptr;
  AttributionTable leaf_;
  AttributionTable phase_;
  double last_now_s_ = 0.0;
  u64 samples_ = 0;
  bool primed_ = false;
};

}  // namespace antarex::obs
