#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/common.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace antarex::obs {

namespace {

/// One reconstructed span interval from the B/E event stream.
struct Interval {
  std::string name;
  double begin_us = 0.0;
  double end_us = 0.0;
  std::size_t depth = 0;
  double dur_us() const { return end_us - begin_us; }
};

struct SpanAgg {
  std::string name;
  u64 count = 0;
  double total_us = 0.0;
  double self_us = 0.0;  ///< total minus time in nested spans
  double max_us = 0.0;
};

/// Rebuild intervals from the exporter's single-track B/E stream. The
/// exporter guarantees balance (it repairs truncated tails), but stay
/// defensive: orphan 'E's are skipped, open 'B's closed at the last
/// timestamp.
std::vector<Interval> reconstruct(const JsonValue& trace) {
  const JsonValue* events = trace.get("traceEvents");
  ANTAREX_REQUIRE(events != nullptr && events->is_array(),
                  "report: trace has no traceEvents array");
  std::vector<Interval> out;
  struct Open {
    std::size_t slot;
    double child_us = 0.0;
  };
  std::vector<Open> stack;
  double last_ts = 0.0;
  for (const JsonValue& e : events->as_array()) {
    if (!e.is_object()) continue;
    const JsonValue* ph = e.get("ph");
    const JsonValue* name = e.get("name");
    if (!ph || !ph->is_string()) continue;
    const double ts = e.number_or("ts", last_ts);
    last_ts = ts;
    if (ph->as_string() == "B") {
      Interval iv;
      iv.name = (name && name->is_string()) ? name->as_string() : "(unnamed)";
      iv.begin_us = ts;
      iv.depth = stack.size();
      out.push_back(iv);
      stack.push_back(Open{out.size() - 1});
    } else if (ph->as_string() == "E" && !stack.empty()) {
      const Open open = stack.back();
      stack.pop_back();
      out[open.slot].end_us = ts;
      if (!stack.empty())
        stack.back().child_us += out[open.slot].dur_us();
      // Self time = duration minus nested children.
      // Stored via the aggregate pass below using child_us snapshots:
      out[open.slot].end_us = ts;
    }
  }
  while (!stack.empty()) {
    out[stack.back().slot].end_us = last_ts;
    stack.pop_back();
  }
  return out;
}

/// Aggregate per name; self time recomputed by re-walking with a stack.
std::vector<SpanAgg> aggregate(const std::vector<Interval>& intervals) {
  // Intervals are in begin order; children always follow parents. Compute
  // child time per interval by a containment sweep over depth.
  std::vector<double> child_us(intervals.size(), 0.0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    while (!stack.empty() &&
           intervals[stack.back()].depth >= intervals[i].depth)
      stack.pop_back();
    if (!stack.empty()) child_us[stack.back()] += intervals[i].dur_us();
    stack.push_back(i);
  }
  std::map<std::string, SpanAgg> by_name;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    SpanAgg& a = by_name[intervals[i].name];
    a.name = intervals[i].name;
    ++a.count;
    a.total_us += intervals[i].dur_us();
    a.self_us += intervals[i].dur_us() - child_us[i];
    a.max_us = std::max(a.max_us, intervals[i].dur_us());
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, a] : by_name) out.push_back(a);
  std::sort(out.begin(), out.end(), [](const SpanAgg& a, const SpanAgg& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Stable pastel color per span name (hash -> hue).
std::string color_for(const std::string& name) {
  u32 h = 2166136261u;
  for (const char c : name) h = (h ^ static_cast<u8>(c)) * 16777619u;
  return format("hsl(%u,55%%,72%%)", h % 360u);
}

std::string fmt_us(double us) {
  if (us >= 1e6) return format("%.3f s", us / 1e6);
  if (us >= 1e3) return format("%.3f ms", us / 1e3);
  return format("%.0f us", us);
}

void emit_flame(std::string& html, const std::vector<Interval>& intervals) {
  if (intervals.empty()) {
    html += "<p class=note>trace contains no spans</p>\n";
    return;
  }
  double t0 = intervals[0].begin_us, t1 = 0.0;
  std::size_t max_depth = 0;
  for (const Interval& iv : intervals) {
    t0 = std::min(t0, iv.begin_us);
    t1 = std::max(t1, iv.end_us);
    max_depth = std::max(max_depth, iv.depth);
  }
  const double span_us = std::max(1e-9, t1 - t0);
  // Bound the DOM size: beyond the cap, note the truncation loudly rather
  // than silently rendering a partial-looking picture.
  constexpr std::size_t kMaxBoxes = 4000;
  const std::size_t n = std::min(intervals.size(), kMaxBoxes);
  html += format(
      "<div class=flame style=\"height:%zupx\" "
      "title=\"timeline: %s total\">\n",
      (max_depth + 1) * 22 + 2, fmt_us(span_us).c_str());
  for (std::size_t i = 0; i < n; ++i) {
    const Interval& iv = intervals[i];
    const double left = 100.0 * (iv.begin_us - t0) / span_us;
    const double width = 100.0 * iv.dur_us() / span_us;
    if (width < 0.02) continue;  // sub-pixel boxes only bloat the file
    html += format(
        "<div class=sp style=\"left:%.3f%%;width:%.3f%%;top:%zupx;"
        "background:%s\" title=\"%s (%s)\">%s</div>\n",
        left, std::max(width, 0.05), iv.depth * 22,
        color_for(iv.name).c_str(), html_escape(iv.name).c_str(),
        fmt_us(iv.dur_us()).c_str(), html_escape(iv.name).c_str());
  }
  html += "</div>\n";
  if (intervals.size() > kMaxBoxes)
    html += format("<p class=note>timeline truncated to the first %zu of %zu "
                   "spans</p>\n",
                   kMaxBoxes, intervals.size());
}

void emit_span_table(std::string& html, const std::vector<SpanAgg>& aggs) {
  html += "<table><tr><th>span</th><th>count</th><th>total</th><th>self</th>"
          "<th>max</th></tr>\n";
  for (const SpanAgg& a : aggs)
    html += format(
        "<tr><td><span class=chip style=\"background:%s\"></span>%s</td>"
        "<td class=r>%llu</td><td class=r>%s</td><td class=r>%s</td>"
        "<td class=r>%s</td></tr>\n",
        color_for(a.name).c_str(), html_escape(a.name).c_str(),
        static_cast<unsigned long long>(a.count), fmt_us(a.total_us).c_str(),
        fmt_us(a.self_us).c_str(), fmt_us(a.max_us).c_str());
  html += "</table>\n";
}

void emit_attribution(std::string& html, const JsonValue& attr) {
  const double total = attr.number_or("total_joules", 0.0);
  html += format(
      "<p>%.3f J attributed over %.0f samples (interval %.3g s)",
      total, attr.number_or("samples", 0.0), attr.number_or("interval_s", 0.0));
  if (const JsonValue* workers = attr.get("workers"))
    html += format(", %d pool workers", static_cast<int>(workers->as_number()));
  html += "</p>\n";
  const auto emit_table = [&](const char* key, const char* caption) {
    const JsonValue* rows = attr.get(key);
    if (!rows || !rows->is_array() || rows->as_array().empty()) return;
    html += format("<h3>%s</h3>\n", caption);
    html += "<table><tr><th>span</th><th>joules</th><th>share</th>"
            "<th>seconds</th><th>samples</th></tr>\n";
    for (const JsonValue& row : rows->as_array()) {
      if (!row.is_object()) continue;
      const std::string name =
          row.get("span") && row.get("span")->is_string()
              ? row.get("span")->as_string() : "(unnamed)";
      const double j = row.number_or("joules", 0.0);
      html += format(
          "<tr><td>%s</td><td class=r>%.3f</td><td class=r>%.1f%%</td>"
          "<td class=r>%.3f</td><td class=r>%.0f</td></tr>\n",
          html_escape(name).c_str(), j, total > 0.0 ? 100.0 * j / total : 0.0,
          row.number_or("seconds", 0.0), row.number_or("samples", 0.0));
      // Bar visualization of the share.
      html += format(
          "<tr class=barrow><td colspan=5><div class=bar "
          "style=\"width:%.2f%%;background:%s\"></div></td></tr>\n",
          total > 0.0 ? 100.0 * j / total : 0.0, color_for(name).c_str());
    }
    html += "</table>\n";
  };
  emit_table("by_phase", "By phase (outermost span)");
  emit_table("by_leaf", "By leaf (innermost span)");
}

void emit_metrics(std::string& html, const JsonValue& metrics) {
  const auto section = [&](const char* key) -> const JsonValue* {
    const JsonValue* v = metrics.get(key);
    return (v && v->is_object() && !v->members().empty()) ? v : nullptr;
  };
  if (const JsonValue* counters = section("counters")) {
    html += "<h3>Counters</h3>\n<table><tr><th>name</th><th>value</th></tr>\n";
    for (const auto& [name, v] : counters->members())
      if (v.is_number())
        html += format("<tr><td>%s</td><td class=r>%.0f</td></tr>\n",
                       html_escape(name).c_str(), v.as_number());
    html += "</table>\n";
  }
  if (const JsonValue* gauges = section("gauges")) {
    html += "<h3>Gauges</h3>\n<table><tr><th>name</th><th>last</th>"
            "<th>min</th><th>max</th><th>updates</th></tr>\n";
    for (const auto& [name, v] : gauges->members())
      if (v.is_object())
        html += format(
            "<tr><td>%s</td><td class=r>%.4g</td><td class=r>%.4g</td>"
            "<td class=r>%.4g</td><td class=r>%.0f</td></tr>\n",
            html_escape(name).c_str(), v.number_or("last", 0.0),
            v.number_or("min", 0.0), v.number_or("max", 0.0),
            v.number_or("updates", 0.0));
    html += "</table>\n";
  }
  if (const JsonValue* hists = section("histograms")) {
    html += "<h3>Histograms</h3>\n<table><tr><th>name</th><th>count</th>"
            "<th>mean</th><th>p50</th><th>p95</th><th>p99</th></tr>\n";
    for (const auto& [name, v] : hists->members())
      if (v.is_object())
        html += format(
            "<tr><td>%s</td><td class=r>%.0f</td><td class=r>%.4g</td>"
            "<td class=r>%.4g</td><td class=r>%.4g</td><td class=r>%.4g</td>"
            "</tr>\n",
            html_escape(name).c_str(), v.number_or("count", 0.0),
            v.number_or("mean", 0.0), v.number_or("p50", 0.0),
            v.number_or("p95", 0.0), v.number_or("p99", 0.0));
    html += "</table>\n";
  }
  if (const JsonValue* series = section("series")) {
    html += "<h3>Series</h3>\n<table><tr><th>name</th><th>count</th>"
            "<th>last</th><th>mean</th><th>p95</th><th>ewma</th></tr>\n";
    for (const auto& [name, v] : series->members())
      if (v.is_object())
        html += format(
            "<tr><td>%s</td><td class=r>%.0f</td><td class=r>%.4g</td>"
            "<td class=r>%.4g</td><td class=r>%.4g</td><td class=r>%.4g</td>"
            "</tr>\n",
            html_escape(name).c_str(), v.number_or("count", 0.0),
            v.number_or("last", 0.0), v.number_or("mean", 0.0),
            v.number_or("p95", 0.0), v.number_or("ewma", 0.0));
    html += "</table>\n";
  }
}

/// Fixed palette per anomaly kind (hash hues would collide or drift).
const char* kind_color(const std::string& kind) {
  if (kind == "thermal_runaway") return "#e05252";
  if (kind == "power_spike") return "#e8a33d";
  if (kind == "throttle") return "#4f9dd6";
  return "#8f6fc9";  // slow_node
}

void emit_cluster_health(std::string& html, const JsonValue& health) {
  html += format(
      "<p class=meta>%.0f shards, %.0f sampling sweeps, %.0f frames "
      "aggregated (%.0f published, %.0f dropped), fabric core %.1f KiB</p>\n",
      health.number_or("shards", 0.0), health.number_or("samples", 0.0),
      health.number_or("frames", 0.0), health.number_or("published", 0.0),
      health.number_or("dropped", 0.0),
      health.number_or("fabric_bytes", 0.0) / 1024.0);

  // Shard heatmap: one row per metric, one cell per shard, shaded by where
  // the shard's mean sits between the row's min and max.
  const JsonValue* shard_mean = health.get("shard_mean");
  if (shard_mean && shard_mean->is_object() &&
      !shard_mean->members().empty()) {
    html += "<h3>Shard heatmap</h3>\n<table class=heat><tr><th>metric</th>";
    std::size_t n_shards = 0;
    for (const auto& [metric, row] : shard_mean->members())
      if (row.is_array()) n_shards = std::max(n_shards, row.as_array().size());
    for (std::size_t s = 0; s < n_shards; ++s)
      html += format("<th class=r>s%zu</th>", s);
    html += "</tr>\n";
    for (const auto& [metric, row] : shard_mean->members()) {
      if (!row.is_array()) continue;
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (const JsonValue& v : row.as_array()) {
        if (!v.is_number()) continue;
        lo = first ? v.as_number() : std::min(lo, v.as_number());
        hi = first ? v.as_number() : std::max(hi, v.as_number());
        first = false;
      }
      html += "<tr><td>" + html_escape(metric) + "</td>";
      for (const JsonValue& v : row.as_array()) {
        const double x = v.is_number() ? v.as_number() : 0.0;
        const double t = hi > lo ? (x - lo) / (hi - lo) : 0.0;
        html += format(
            "<td class=r style=\"background:hsl(210,60%%,%.0f%%)\">%.4g</td>",
            93.0 - 38.0 * t, x);
      }
      html += "</tr>\n";
    }
    html += "</table>\n";
  }

  // Anomaly timeline: one lane per episode over the sampled window, colored
  // by kind, followed by the episode table.
  html += "<h3>Anomaly timeline</h3>\n";
  const JsonValue* episodes = health.get("episodes");
  if (!episodes || !episodes->is_array() || episodes->as_array().empty()) {
    html += "<p class=note>no anomaly episodes</p>\n";
    return;
  }
  const auto& eps = episodes->as_array();
  double t1 = 1e-9;
  for (const JsonValue& e : eps) t1 = std::max(t1, e.number_or("close_s", 0.0));
  constexpr std::size_t kMaxLanes = 400;
  const std::size_t lanes = std::min(eps.size(), kMaxLanes);
  html += format("<div class=flame style=\"height:%zupx\">\n", lanes * 16 + 2);
  for (std::size_t i = 0; i < lanes; ++i) {
    const JsonValue& e = eps[i];
    const std::string kind = e.get("kind") && e.get("kind")->is_string()
                                 ? e.get("kind")->as_string()
                                 : "(unknown)";
    const double open_s = e.number_or("open_s", 0.0);
    const double close_s = std::max(e.number_or("close_s", 0.0), open_s);
    html += format(
        "<div class=\"sp ep\" style=\"left:%.3f%%;width:%.3f%%;top:%zupx;"
        "background:%s\" title=\"node %.0f %s [%.1f s, %.1f s] peak z "
        "%.2f\">n%.0f %s</div>\n",
        100.0 * open_s / t1,
        std::max(100.0 * (close_s - open_s) / t1, 0.3), i * 16,
        kind_color(kind), e.number_or("node", 0.0), html_escape(kind).c_str(),
        open_s, close_s, e.number_or("peak_z", 0.0), e.number_or("node", 0.0),
        html_escape(kind).c_str());
  }
  html += "</div>\n";
  if (eps.size() > kMaxLanes)
    html += format("<p class=note>timeline truncated to the first %zu of %zu "
                   "episodes</p>\n",
                   kMaxLanes, eps.size());
  html += "<table><tr><th>node</th><th>shard</th><th>kind</th>"
          "<th>open s</th><th>close s</th><th>peak z</th><th>samples</th>"
          "<th>state</th></tr>\n";
  for (const JsonValue& e : eps) {
    const std::string kind = e.get("kind") && e.get("kind")->is_string()
                                 ? e.get("kind")->as_string()
                                 : "(unknown)";
    const JsonValue* open = e.get("open");
    html += format(
        "<tr><td class=r>%.0f</td><td class=r>%.0f</td>"
        "<td><span class=chip style=\"background:%s\"></span>%s</td>"
        "<td class=r>%.1f</td><td class=r>%.1f</td><td class=r>%.2f</td>"
        "<td class=r>%.0f</td><td>%s</td></tr>\n",
        e.number_or("node", 0.0), e.number_or("shard", 0.0), kind_color(kind),
        html_escape(kind).c_str(), e.number_or("open_s", 0.0),
        e.number_or("close_s", 0.0), e.number_or("peak_z", 0.0),
        e.number_or("samples", 0.0),
        open && open->is_bool() && open->as_bool() ? "open" : "closed");
  }
  html += "</table>\n";
}

// Decision provenance: the causal::DecisionLedger dump as an "explain"
// timeline — who decided what, on what evidence, and what happened next.
void emit_decisions(std::string& html, const JsonValue& ledger) {
  const JsonValue* decisions = ledger.get("decisions");
  if (!decisions || !decisions->is_array() ||
      decisions->as_array().empty()) {
    html += "<p class=note>no decisions recorded</p>\n";
    return;
  }
  const auto& recs = decisions->as_array();
  html += format("<p class=meta>%zu decisions (%.0f dropped at the ledger)"
                 "</p>\n",
                 recs.size(), ledger.number_or("dropped", 0.0));
  html += "<table><tr><th>#</th><th>t (s)</th><th>actor</th><th>action</th>"
          "<th>cause</th><th>observed effect</th></tr>\n";
  for (const JsonValue& r : recs) {
    const auto str = [&r](const char* key) -> std::string {
      const JsonValue* v = r.get(key);
      return v && v->is_string() ? v->as_string() : std::string();
    };
    const JsonValue* effect = r.get("effect");
    const std::string effect_text =
        effect && effect->is_string() ? effect->as_string()
                                      : std::string("(pending)");
    html += format(
        "<tr><td class=r>%.0f</td><td class=r>%.3f</td><td>%s</td>"
        "<td>%s</td><td>%s</td><td>%s</td></tr>\n",
        r.number_or("seq", 0.0), r.number_or("t_s", 0.0),
        html_escape(str("actor")).c_str(), html_escape(str("action")).c_str(),
        html_escape(str("cause")).c_str(), html_escape(effect_text).c_str());
  }
  html += "</table>\n";
}

constexpr const char* kStyle = R"css(
body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:1100px;
     color:#222;background:#fafafa}
h1{font-size:22px;border-bottom:2px solid #ddd;padding-bottom:6px}
h2{font-size:17px;margin-top:28px}
h3{font-size:14px;margin:14px 0 4px}
table{border-collapse:collapse;margin:6px 0;background:#fff}
th,td{border:1px solid #ddd;padding:3px 10px;text-align:left}
th{background:#f0f0f0}
td.r{text-align:right;font-variant-numeric:tabular-nums}
.flame{position:relative;background:#fff;border:1px solid #ddd;
       overflow:hidden;margin:8px 0}
.sp{position:absolute;height:20px;font-size:10px;line-height:20px;
    overflow:hidden;white-space:nowrap;border-radius:2px;
    border:1px solid rgba(0,0,0,.15);box-sizing:border-box;padding:0 3px}
.chip{display:inline-block;width:10px;height:10px;border-radius:2px;
      margin-right:6px;border:1px solid rgba(0,0,0,.2)}
.bar{height:5px;border-radius:2px}
.barrow td{border:none;padding:0 10px 4px}
.note{color:#777;font-style:italic}
.meta{color:#555}
.heat td{padding:3px 8px}
.ep{height:14px;font-size:10px;line-height:14px;color:#fff}
)css";

}  // namespace

std::string html_report(const ReportInputs& inputs) {
  const JsonValue trace = parse_json(inputs.trace_json);
  const std::vector<Interval> intervals = reconstruct(trace);
  const std::vector<SpanAgg> aggs = aggregate(intervals);

  std::string html;
  html += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  html += "<title>" + html_escape(inputs.title) + "</title>\n";
  html += "<style>";
  html += kStyle;
  html += "</style>\n</head>\n<body>\n";
  html += "<h1>" + html_escape(inputs.title) + "</h1>\n";

  double recorded = 0.0, dropped = 0.0;
  if (const JsonValue* other = trace.get("otherData")) {
    recorded = other->number_or("recorded", 0.0);
    dropped = other->number_or("dropped", 0.0);
  }
  html += format("<p class=meta>%zu spans reconstructed from %.0f events "
                 "(%.0f dropped at the buffer)</p>\n",
                 intervals.size(), recorded, dropped);

  if (!inputs.attribution_json.empty()) {
    html += "<h2>Energy attribution</h2>\n";
    emit_attribution(html, parse_json(inputs.attribution_json));
  }

  if (!inputs.health_json.empty()) {
    html += "<h2>Cluster health</h2>\n";
    emit_cluster_health(html, parse_json(inputs.health_json));
  }

  if (!inputs.decisions_json.empty()) {
    html += "<h2>Decision provenance</h2>\n";
    emit_decisions(html, parse_json(inputs.decisions_json));
  }

  html += "<h2>Timeline</h2>\n";
  emit_flame(html, intervals);

  html += "<h2>Spans</h2>\n";
  emit_span_table(html, aggs);

  if (!inputs.metrics_json.empty()) {
    html += "<h2>Metrics</h2>\n";
    emit_metrics(html, parse_json(inputs.metrics_json));
  }

  html += "</body>\n</html>\n";
  return html;
}

}  // namespace antarex::obs
