#include "obs/policy.hpp"

#include <algorithm>
#include <memory>

#include "causal/ledger.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::obs {

const char* policy_action_name(PolicyAction a) {
  switch (a) {
    case PolicyAction::None: return "none";
    case PolicyAction::Restrict: return "restrict";
    case PolicyAction::Relax: return "relax";
  }
  return "?";
}

int PolicyEngine::add_policy(Policy p) {
  ANTAREX_REQUIRE(p.when != nullptr, "PolicyEngine: null predicate");
  ANTAREX_REQUIRE(p.then != nullptr || p.act != nullptr,
                  "PolicyEngine: null callback");
  ANTAREX_REQUIRE(p.opts.cooldown_s >= 0.0,
                  "PolicyEngine: negative cooldown");
  std::lock_guard<std::mutex> lock(mu_);
  p.id = next_id_++;
  const int id = p.id;
  policies_.push_back(std::move(p));
  return id;
}

int PolicyEngine::add(std::string name, Predicate when, Callback then,
                      Callback on_clear) {
  return add(std::move(name), std::move(when), std::move(then),
             std::move(on_clear), PolicyOptions{});
}

int PolicyEngine::add(std::string name, Predicate when, Callback then,
                      Callback on_clear, PolicyOptions opts) {
  Policy p;
  p.name = std::move(name);
  p.when = std::move(when);
  p.then = std::move(then);
  p.on_clear = std::move(on_clear);
  p.opts = opts;
  return add_policy(std::move(p));
}

int PolicyEngine::add_actuating(std::string name, Predicate when,
                                Actuation act, PolicyOptions opts) {
  Policy p;
  p.name = std::move(name);
  p.when = std::move(when);
  p.act = std::move(act);
  p.opts = opts;
  return add_policy(std::move(p));
}

void PolicyEngine::remove(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.erase(std::remove_if(policies_.begin(), policies_.end(),
                                 [handle](const Policy& p) {
                                   return p.id == handle;
                                 }),
                  policies_.end());
}

void PolicyEngine::fire(Policy& p, const PolicyContext& ctx) {
  p.fired_once = true;
  p.last_fire_s = ctx.now_s;
  ++p.fires;
  TELEMETRY_COUNT("obs.policy_fires", 1);
  PolicyAction action = PolicyAction::None;
  if (p.act) {
    action = p.act(ctx);
    switch (action) {
      case PolicyAction::None:
        break;
      case PolicyAction::Restrict:
        ++p.restricts;
        TELEMETRY_COUNT("obs.policy_actions.restrict", 1);
        break;
      case PolicyAction::Relax:
        ++p.relaxes;
        TELEMETRY_COUNT("obs.policy_actions.relax", 1);
        break;
    }
  } else {
    p.then(ctx);
  }

  // Decision provenance: every fire is a control-plane decision. The cause
  // is whatever drove the predicate — the configured cause_metric reading,
  // or the span that just exited, or the bare tick.
  causal::DecisionRecord rec;
  rec.t_s = ctx.now_s;
  rec.actor = "policy." + p.name;
  rec.action = p.act ? format("actuate:%s", policy_action_name(action))
                     : std::string("alert");
  if (!p.opts.cause_metric.empty()) {
    const double v = ctx.registry->gauge(p.opts.cause_metric).last();
    rec.cause = format("%s=%.6g", p.opts.cause_metric.c_str(), v);
    rec.cause_value = v;
  } else if (ctx.span != nullptr) {
    rec.cause = format("span %s took %.6fs", ctx.span, ctx.span_duration_s);
    rec.cause_value = ctx.span_duration_s;
  } else {
    rec.cause = "tick";
  }
  const u64 seq = causal::DecisionLedger::global().record(std::move(rec));
  if (!p.opts.effect_metric.empty()) p.pending_seq = seq;
}

void PolicyEngine::evaluate(const PolicyContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  for (Policy& p : policies_) {
    // A fire from the previous evaluation left a pending ledger record:
    // attach the configured effect metric's current reading as the observed
    // effect, one evaluation later.
    if (p.pending_seq != 0 && !p.opts.effect_metric.empty()) {
      const double v = ctx.registry->gauge(p.opts.effect_metric).last();
      causal::DecisionLedger::global().note_effect(
          p.pending_seq, format("%s=%.6g", p.opts.effect_metric.c_str(), v),
          v);
      p.pending_seq = 0;
    }
    const bool cond = p.when(ctx);
    // With a cooldown, any fire (first crossing or re-fire while held) must
    // sit at least cooldown_s after the previous one; without one, only the
    // false->true edge fires.
    const bool cooled =
        !p.fired_once || ctx.now_s - p.last_fire_s >= p.opts.cooldown_s;
    if (cond && !p.latched) {
      p.latched = true;
      if (p.opts.cooldown_s == 0.0 || cooled) fire(p, ctx);
    } else if (cond && p.latched) {
      // Condition held across evaluations: re-fire once per cooldown
      // interval (covers a crossing that had to wait out the window too).
      if (p.opts.cooldown_s > 0.0 && cooled) fire(p, ctx);
    } else if (!cond && p.latched) {
      p.latched = false;
      if (p.on_clear) p.on_clear(ctx);
    }
  }
}

void PolicyEngine::tick(double now_s) {
  PolicyContext ctx;
  ctx.registry = &telemetry::Registry::global();
  ctx.now_s = now_s;
  evaluate(ctx);
}

void PolicyEngine::on_span_exit(const char* name, double duration_s,
                                double now_s) {
  PolicyContext ctx;
  ctx.registry = &telemetry::Registry::global();
  ctx.now_s = now_s;
  ctx.span = name;
  ctx.span_duration_s = duration_s;
  evaluate(ctx);
}

u64 PolicyEngine::fires(int handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Policy& p : policies_)
    if (p.id == handle) return p.fires;
  return 0;
}

u64 PolicyEngine::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const Policy& p : policies_)
    if (p.name == name) total += p.fires;
  return total;
}

u64 PolicyEngine::actions(int handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Policy& p : policies_)
    if (p.id == handle) return p.restricts + p.relaxes;
  return 0;
}

u64 PolicyEngine::restricts(int handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Policy& p : policies_)
    if (p.id == handle) return p.restricts;
  return 0;
}

u64 PolicyEngine::relaxes(int handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Policy& p : policies_)
    if (p.id == handle) return p.relaxes;
  return 0;
}

u64 PolicyEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::size_t PolicyEngine::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policies_.size();
}

std::vector<std::string> PolicyEngine::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const Policy& p : policies_) out.push_back(p.name);
  return out;
}

void install_builtin_policies(PolicyEngine& engine, BuiltinPolicyConfig cfg) {
  // Throttle alert: the RTRM control loop publishes how close the hottest
  // device sits to the critical temperature; alert when headroom shrinks.
  engine.add(
      "thermal.throttle_alert",
      [threshold = cfg.thermal_headroom_alert_c](const PolicyContext& ctx) {
        const telemetry::Gauge& g = ctx.registry->gauge("rtrm.thermal_headroom_c");
        return g.updates() > 0 && g.last() < threshold;
      },
      [](const PolicyContext&) { TELEMETRY_COUNT("obs.alerts.thermal", 1); });

  // Phase-change notification: one fire per tuner.phase_changes increment
  // (the callback advances the acknowledged count, which re-arms the edge).
  auto acked = std::make_shared<u64>(0);
  engine.add(
      "tuner.phase_change",
      [acked](const PolicyContext& ctx) {
        return ctx.registry->counter("tuner.phase_changes").value() > *acked;
      },
      [acked](const PolicyContext& ctx) {
        *acked = ctx.registry->counter("tuner.phase_changes").value();
        TELEMETRY_COUNT("obs.alerts.phase_change", 1);
      });

  // Queue-depth backpressure: raise the nav.backpressure gauge while the nav
  // server's admission queue sits at/above the limit, drop it when it clears.
  engine.add(
      "nav.backpressure",
      [limit = cfg.nav_queue_depth_limit](const PolicyContext& ctx) {
        const telemetry::Gauge& g = ctx.registry->gauge("nav.queue_depth");
        return g.updates() > 0 && g.last() >= limit;
      },
      [](const PolicyContext&) {
        TELEMETRY_COUNT("obs.alerts.backpressure", 1);
        TELEMETRY_GAUGE("nav.backpressure", 1.0);
      },
      [](const PolicyContext&) { TELEMETRY_GAUGE("nav.backpressure", 0.0); });
}

}  // namespace antarex::obs
