#include "obs/attribution.hpp"

#include <algorithm>

#include "exec/pool.hpp"
#include "obs/policy.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::obs {

// --- SpanTracker ------------------------------------------------------------

// Per-thread open-span stack. Registers itself with the tracker on first use
// and deregisters on thread exit, so snapshot() never sees a dangling stack.
struct SpanTracker::ThreadStack {
  std::vector<const char*> names;

  ThreadStack() {
    SpanTracker& t = SpanTracker::global();
    std::lock_guard<std::mutex> lock(t.mu_);
    t.stacks_.push_back(this);
  }
  ~ThreadStack() {
    SpanTracker& t = SpanTracker::global();
    std::lock_guard<std::mutex> lock(t.mu_);
    auto it = std::find(t.stacks_.begin(), t.stacks_.end(), this);
    if (it != t.stacks_.end()) t.stacks_.erase(it);
  }
};

SpanTracker& SpanTracker::global() {
  // Leaked like the telemetry registry: thread-exit destructors of
  // ThreadStack may run during static teardown.
  static SpanTracker* g = new SpanTracker();
  return *g;
}

SpanTracker::ThreadStack& SpanTracker::my_stack() {
  thread_local ThreadStack stack;
  return stack;
}

void SpanTracker::hook_enter(const char* name) {
  SpanTracker& t = global();
  ThreadStack& s = t.my_stack();
  std::lock_guard<std::mutex> lock(t.mu_);
  s.names.push_back(name);
}

void SpanTracker::hook_exit(const char* name, u64 start_ns, u64 end_ns) {
  SpanTracker& t = global();
  ThreadStack& s = t.my_stack();
  PolicyEngine* engine = nullptr;
  {
    std::lock_guard<std::mutex> lock(t.mu_);
    if (!s.names.empty()) s.names.pop_back();
    engine = t.engine_;
  }
  // Outside the tracker lock: policy callbacks may take their own locks.
  if (engine) {
    const double dur_s = static_cast<double>(end_ns - start_ns) * 1e-9;
    engine->on_span_exit(name, dur_s, static_cast<double>(end_ns) * 1e-9);
  }
}

void SpanTracker::install() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    installed_ = true;
  }
  telemetry::set_span_enter_hook(&SpanTracker::hook_enter);
  telemetry::set_span_exit_hook(&SpanTracker::hook_exit);
}

void SpanTracker::uninstall() {
  telemetry::set_span_enter_hook(nullptr);
  telemetry::set_span_exit_hook(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  installed_ = false;
}

bool SpanTracker::installed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return installed_;
}

std::vector<SpanTracker::Context> SpanTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Context> out;
  out.reserve(stacks_.size());
  for (const ThreadStack* s : stacks_)
    if (!s->names.empty())
      out.push_back(Context{s->names.back(), s->names.front(), s->names.size()});
  return out;
}

void SpanTracker::set_policy_engine(PolicyEngine* engine) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_ = engine;
}

void SpanTracker::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadStack* s : stacks_) s->names.clear();
}

// --- AttributionTable -------------------------------------------------------

void AttributionTable::add(const std::string& key, double joules,
                           double seconds) {
  AttributionRow& row = rows_[key];
  if (row.key.empty()) row.key = key;
  row.joules += joules;
  row.seconds += seconds;
  ++row.samples;
}

std::vector<AttributionRow> AttributionTable::rows() const {
  std::vector<AttributionRow> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              if (a.joules != b.joules) return a.joules > b.joules;
              return a.key < b.key;
            });
  return out;
}

double AttributionTable::total_joules() const {
  double total = 0.0;
  for (const auto& [key, row] : rows_) total += row.joules;
  return total;
}

double AttributionTable::total_seconds() const {
  double total = 0.0;
  for (const auto& [key, row] : rows_) total += row.seconds;
  return total;
}

Table AttributionTable::table(const std::string& key_header) const {
  Table t({key_header, "joules", "share", "seconds", "samples"});
  const double total = total_joules();
  for (const AttributionRow& row : rows())
    t.add_row({row.key, format("%.3f", row.joules),
               total > 0.0 ? format("%.1f%%", 100.0 * row.joules / total) : "-",
               format("%.3f", row.seconds),
               format("%llu", static_cast<unsigned long long>(row.samples))});
  return t;
}

// --- EnergyAccountant -------------------------------------------------------

EnergyAccountant::EnergyAccountant(Options opts) : opts_(opts) {
  ANTAREX_REQUIRE(opts_.interval_s > 0.0,
                  "EnergyAccountant: need a positive sampling interval");
}

void EnergyAccountant::add_domain(const power::RaplDomain* domain) {
  ANTAREX_REQUIRE(domain != nullptr, "EnergyAccountant: null domain");
  std::lock_guard<std::mutex> lock(mu_);
  domains_.push_back(DomainState{domain, domain->counter_uj(), 0.0});
}

void EnergyAccountant::set_pool(const exec::ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_ = pool;
}

void EnergyAccountant::install() const { SpanTracker::global().install(); }

void EnergyAccountant::uninstall() const { SpanTracker::global().uninstall(); }

void EnergyAccountant::sample(double now_s) {
  const std::vector<SpanTracker::Context> contexts =
      SpanTracker::global().snapshot();
  std::lock_guard<std::mutex> lock(mu_);

  if (!primed_) {
    // First sample: baselines only (the counters may predate install(), and
    // pre-baseline joules belong to nobody).
    for (DomainState& d : domains_) d.last_counter = d.domain->counter_uj();
    primed_ = true;
    last_now_s_ = now_s;
    return;
  }
  double delta_j = 0.0;
  for (DomainState& d : domains_) {
    const u32 cur = d.domain->counter_uj();
    const double dj = power::RaplDomain::delta_j(d.last_counter, cur);
    d.last_counter = cur;
    d.joules += dj;
    delta_j += dj;
  }
  const double dt_s = std::max(0.0, now_s - last_now_s_);
  last_now_s_ = now_s;
  ++samples_;

  if (contexts.empty()) {
    leaf_.add("(unattributed)", delta_j, dt_s);
    phase_.add("(unattributed)", delta_j, dt_s);
  } else {
    // Equal split across live contexts == weighting by active workers: a
    // pool worker only has an open span while running a task.
    const double share_j = delta_j / static_cast<double>(contexts.size());
    const double share_s = dt_s / static_cast<double>(contexts.size());
    for (const SpanTracker::Context& c : contexts) {
      leaf_.add(c.leaf, share_j, share_s);
      phase_.add(c.phase, share_j, share_s);
    }
  }
  TELEMETRY_COUNT("obs.attribution_samples", 1);
  TELEMETRY_GAUGE("obs.attribution_contexts",
                  static_cast<double>(contexts.size()));
  if (pool_)
    TELEMETRY_GAUGE("obs.active_workers",
                    static_cast<double>(pool_->active_workers()));
}

AttributionTable EnergyAccountant::by_leaf() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaf_;
}

AttributionTable EnergyAccountant::by_phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

double EnergyAccountant::attributed_joules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaf_.total_joules();
}

u64 EnergyAccountant::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string EnergyAccountant::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema\":\"antarex.obs.attribution/v1\"";
  out += format(",\"interval_s\":%.9g", opts_.interval_s);
  out += format(",\"samples\":%llu", static_cast<unsigned long long>(samples_));
  out += format(",\"total_joules\":%.9g", leaf_.total_joules());
  if (pool_) out += format(",\"workers\":%d", pool_->size());
  out += ",\"domains\":[";
  bool first = true;
  for (const DomainState& d : domains_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + json_quote(d.domain->name()) +
           format(",\"joules\":%.9g}", d.joules);
  }
  out += "]";
  const auto emit_table = [&out](const char* key, const AttributionTable& t) {
    out += ",\"";
    out += key;
    out += "\":[";
    bool f = true;
    for (const AttributionRow& row : t.rows()) {
      if (!f) out += ',';
      f = false;
      out += "{\"span\":" + json_quote(row.key) +
             format(",\"joules\":%.9g,\"seconds\":%.9g,\"samples\":%llu}",
                    row.joules, row.seconds,
                    static_cast<unsigned long long>(row.samples));
    }
    out += "]";
  };
  emit_table("by_leaf", leaf_);
  emit_table("by_phase", phase_);
  out += "}";
  return out;
}

void EnergyAccountant::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  leaf_ = AttributionTable();
  phase_ = AttributionTable();
  samples_ = 0;
  primed_ = false;
  last_now_s_ = 0.0;
  for (DomainState& d : domains_) {
    d.last_counter = d.domain->counter_uj();
    d.joules = 0.0;
  }
}

}  // namespace antarex::obs
