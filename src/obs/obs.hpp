// antarex::obs — observability on top of antarex::telemetry: energy
// attribution (which span spent the joules), the APEX-style policy engine,
// and the self-contained HTML run report. See DESIGN.md "Observability".
#pragma once

#include "obs/attribution.hpp"
#include "obs/policy.hpp"
#include "obs/report.hpp"
