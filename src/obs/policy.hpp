// APEX-style policy engine: registered {metric predicate -> callback} pairs
// evaluated on a periodic tick or on span-exit events.
//
// APEX exposes apex_register_policy(event, fn) and
// apex_register_periodic_policy(period, fn); this is the same observe->decide
// shape on top of the antarex::telemetry registry. Policies are
// edge-triggered: a policy fires when its predicate transitions false->true,
// stays silent while the condition holds, and re-arms when it clears — so a
// threshold crossing fires exactly once (tested), not once per tick. An
// optional on_clear callback runs on the true->false transition (e.g. to
// drop a backpressure gauge).
//
// Cooldown (PolicyOptions::cooldown_s): a pure edge-triggered policy whose
// predicate *stays* true never re-fires — fine for alerts, wrong for
// actuation, where a persistent violation must keep producing corrective
// steps without firing every tick. With cooldown_s > 0 the policy re-fires
// while the condition holds, at most once per cooldown interval, and a fresh
// crossing inside the cooldown window also waits it out — the hysteresis
// that stops an oscillating signal from double-actuating.
//
// Actuating policies (add_actuating, the govern layer's entry point) return
// a PolicyAction instead of being fire-and-forget: the engine counts the
// Restrict/Relax decisions per policy and in the obs.policy_actions.*
// counters, so reports show what the control loop *did*, not just what it
// observed.
//
// Evaluation is synchronous on the calling thread (the control loop's tick,
// or the thread exiting a span). Callbacks must not register/remove policies
// on the same engine (the engine lock is held) and should be cheap — raise a
// counter, set a gauge, notify a controller.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "telemetry/registry.hpp"

namespace antarex::obs {

/// What a predicate/callback sees at evaluation time. The registry is
/// mutable on purpose: lookups are get-or-create, and callbacks typically
/// respond by raising counters or setting gauges.
struct PolicyContext {
  telemetry::Registry* registry;  ///< never null
  double now_s = 0.0;             ///< driving clock (sim or wall)
  const char* span = nullptr;     ///< span name on span-exit, else null
  double span_duration_s = 0.0;   ///< valid when span != nullptr
};

/// What an actuating policy decided. The engine only counts these; applying
/// them (DVFS step, worker throttle, admission shrink) is the actuator's job
/// in antarex::govern.
enum class PolicyAction {
  None,      ///< observed, decided not to act
  Restrict,  ///< pull the knob toward lower power / less parallelism
  Relax,     ///< give headroom back toward nominal
};

const char* policy_action_name(PolicyAction a);

/// Per-policy trigger shaping.
struct PolicyOptions {
  /// 0 (default): pure edge trigger — one fire per false->true crossing.
  /// > 0: while the predicate stays true, re-fire every cooldown_s; a
  /// crossing that lands inside the cooldown window of the previous fire
  /// waits for the window to expire (anti-oscillation hysteresis).
  double cooldown_s = 0.0;
  /// Provenance wiring (causal::DecisionLedger records every fire). When
  /// cause_metric names a gauge, its reading at fire time becomes the
  /// recorded cause; when effect_metric names one, the *next* evaluation
  /// after the fire attaches its reading as the observed effect — the
  /// closed-loop "what did the world do after we acted" measurement.
  std::string cause_metric;
  std::string effect_metric;
};

class PolicyEngine {
 public:
  using Predicate = std::function<bool(const PolicyContext&)>;
  using Callback = std::function<void(const PolicyContext&)>;
  using Actuation = std::function<PolicyAction(const PolicyContext&)>;

  /// Register a policy; returns its handle. `when` is evaluated on every
  /// tick() and span exit; `then` runs on the false->true edge; `on_clear`
  /// (optional) on the subsequent true->false edge.
  int add(std::string name, Predicate when, Callback then,
          Callback on_clear = nullptr);
  /// Same, with explicit trigger shaping (cooldown/re-fire).
  int add(std::string name, Predicate when, Callback then, Callback on_clear,
          PolicyOptions opts);
  /// Register an actuating policy: fires under the same edge/cooldown rules,
  /// but the callback returns the action it took, which the engine tallies
  /// (actions(), restricts(), relaxes(), obs.policy_actions.* counters).
  int add_actuating(std::string name, Predicate when, Actuation act,
                    PolicyOptions opts = {});
  void remove(int handle);

  /// Periodic evaluation (call from the control loop / sampling driver).
  void tick(double now_s);

  /// Span-exit evaluation; invoked by the SpanTracker hooks when attached.
  void on_span_exit(const char* name, double duration_s, double now_s);

  u64 fires(int handle) const;
  u64 fires(const std::string& name) const;  ///< 0 if unknown
  /// Actuating-policy tallies (all zero for plain policies).
  u64 actions(int handle) const;    ///< non-None actions taken
  u64 restricts(int handle) const;
  u64 relaxes(int handle) const;
  u64 evaluations() const;
  std::size_t size() const;
  std::vector<std::string> names() const;

 private:
  struct Policy {
    int id;
    std::string name;
    Predicate when;
    Callback then;
    Callback on_clear;
    Actuation act;         ///< set for actuating policies (then is null)
    PolicyOptions opts;
    bool latched = false;  ///< predicate was true at last evaluation
    bool fired_once = false;
    double last_fire_s = 0.0;
    u64 fires = 0;
    u64 restricts = 0;
    u64 relaxes = 0;
    u64 pending_seq = 0;  ///< ledger record awaiting its observed effect
  };
  int add_policy(Policy p);
  void fire(Policy& p, const PolicyContext& ctx);
  void evaluate(const PolicyContext& ctx);

  mutable std::mutex mu_;
  std::vector<Policy> policies_;
  int next_id_ = 1;
  u64 evaluations_ = 0;
};

/// Thresholds for the built-in policies wired into the stack.
struct BuiltinPolicyConfig {
  /// Fire thermal.throttle_alert when the RTRM's published thermal headroom
  /// (rtrm.thermal_headroom_c gauge: t_crit - hottest device) shrinks below
  /// this many degrees.
  double thermal_headroom_alert_c = 8.0;
  /// Fire nav.backpressure when the nav server's queue-depth gauge reaches
  /// this; the obs gauge nav.backpressure is raised to 1 until it clears.
  double nav_queue_depth_limit = 48.0;
};

/// Install the three built-in stack policies on `engine`:
///  - thermal.throttle_alert  (counts obs.alerts.thermal)
///  - tuner.phase_change      (counts obs.alerts.phase_change, one fire per
///                             tuner.phase_changes increment)
///  - nav.backpressure        (counts obs.alerts.backpressure, drives the
///                             nav.backpressure gauge 1/0)
void install_builtin_policies(PolicyEngine& engine,
                              BuiltinPolicyConfig config = {});

}  // namespace antarex::obs
