// Self-contained HTML report from a run's exported artifacts: the flame
// timeline + per-span summary of a Chrome trace, the metrics registry dump,
// the energy-attribution tables, and the cluster-health section (per-shard
// heatmap + anomaly timeline) from a monitor health dump. Everything is
// inlined (one <style>, no scripts, no external fetches), so the file opens
// anywhere.
#pragma once

#include <string>

namespace antarex::obs {

struct ReportInputs {
  std::string title = "antarex run";
  std::string trace_json;        ///< Chrome trace (required)
  std::string metrics_json;      ///< telemetry::metrics_json() (optional)
  std::string attribution_json;  ///< EnergyAccountant::json() (optional)
  std::string health_json;       ///< MonitorFabric::health_json() (optional)
  std::string decisions_json;    ///< causal::DecisionLedger::json() (optional)
};

/// Render the report; throws antarex::Error when trace_json (or a provided
/// optional input) is not valid JSON of the expected shape.
std::string html_report(const ReportInputs& inputs);

}  // namespace antarex::obs
