// antarex-weave: command-line front door of the ANTAREX tool flow (Figure 1).
//
// Subcommands:
//   weave   <app.c> <strategy.lara> <Aspect> [inputs...]   S2S: print woven source
//   run     <app.c> <entry> [int args...]                  execute on the VM
//   explore [--threads N] <app.c> <entry> [int args...]    iterative compilation
//   disasm  <app.c> <function>                             show VM bytecode
//   check   <app.c>                                        semantic diagnostics
//
// `explore` evaluates candidate pipelines on an antarex::exec thread pool;
// --threads N sets the worker count (default: hardware concurrency). Results
// are bit-identical for every N — see README "Parallel execution".
//
// The global --telemetry=<off|on|trace> flag (any position, any subcommand)
// enables the telemetry runtime: `on` prints the registry summary after the
// command, `trace` additionally writes antarex_weave_trace.json.
//
// Aspect inputs are passed as strings when quoted ('...'), numbers otherwise.
// `run` array parameters are not supported from the CLI; use the examples for
// buffer-based kernels.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cir/analysis.hpp"
#include "cir/parser.hpp"
#include "cir/printer.hpp"
#include "dsl/weaver.hpp"
#include "exec/pool.hpp"
#include "passes/iterative.hpp"
#include "support/strings.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/compiler.hpp"
#include "vm/engine.hpp"

namespace {

using namespace antarex;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fputs(
      "usage: antarex-weave <command> ...\n"
      "  weave   <app.c> <strategy.lara> <Aspect> [inputs...]\n"
      "  run     <app.c> <entry> [int args...]\n"
      "  explore [--threads N] <app.c> <entry> [int args...]\n"
      "  disasm  <app.c> <function>\n"
      "  check   <app.c>\n"
      "global flags:\n"
      "  --telemetry=off|on|trace  off (default): no telemetry; on: print\n"
      "                            the metrics registry summary; trace: also\n"
      "                            write antarex_weave_trace.json\n",
      stderr);
  return 2;
}

/// Strip the global --telemetry flag from argv (any position) and apply it.
/// Returns the trace-mode decision so main can dump the buffer on exit.
bool apply_telemetry_flag(int& argc, char** argv) {
  bool trace = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--telemetry=", 0) == 0) {
      const std::string mode = arg.substr(std::strlen("--telemetry="));
      if (mode == "trace") {
        trace = true;
        telemetry::set_enabled(true);
      } else if (mode == "on") {
        telemetry::set_enabled(true);
      } else if (mode == "off") {
        telemetry::set_enabled(false);
      } else {
        throw Error("unknown --telemetry mode '" + mode +
                    "' (want off|on|trace)");
      }
      continue;  // strip
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return trace;
}

dsl::Val parse_input(const std::string& arg) {
  if (arg.size() >= 2 && arg.front() == '\'' && arg.back() == '\'')
    return dsl::Val::str(arg.substr(1, arg.size() - 2));
  char* end = nullptr;
  const double v = std::strtod(arg.c_str(), &end);
  if (end && *end == '\0') return dsl::Val::num(v);
  return dsl::Val::str(arg);
}

int cmd_weave(int argc, char** argv) {
  if (argc < 3) return usage();
  auto module = cir::parse_module(read_file(argv[0]));
  vm::Engine engine;
  engine.load_module(*module);
  dsl::Weaver weaver(*module, &engine);
  weaver.load_source(read_file(argv[1]));

  std::vector<dsl::Val> inputs;
  for (int i = 3; i < argc; ++i) inputs.push_back(parse_input(argv[i]));
  weaver.run(argv[2], std::move(inputs));

  const auto& st = weaver.stats();
  std::fprintf(stderr,
               "// woven: %zu selection(s), %zu insert(s), %zu unroll(s), "
               "%zu specialization(s), %zu dynamic registration(s)\n",
               st.selections, st.inserts, st.unrolls, st.specializations,
               st.dynamic_registrations);
  std::fputs(cir::to_source(*module).c_str(), stdout);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 2) return usage();
  auto module = cir::parse_module(read_file(argv[0]));
  const auto diags = cir::check_module(*module);
  for (const auto& d : diags)
    std::fprintf(stderr, "%s: error: %s\n", d.loc.to_string().c_str(),
                 d.message.c_str());
  if (!diags.empty()) return 1;

  vm::Engine engine;
  engine.load_module(*module);
  std::vector<vm::Value> args;
  for (int i = 2; i < argc; ++i)
    args.push_back(vm::Value::from_int(std::strtoll(argv[i], nullptr, 10)));
  const vm::Value result = engine.call(argv[1], std::move(args));
  std::printf("%s\n", result.to_string().c_str());
  std::fprintf(stderr, "// %llu instructions executed\n",
               static_cast<unsigned long long>(engine.executed_instructions()));
  return 0;
}

int cmd_explore(int argc, char** argv) {
  int threads = exec::ThreadPool::hardware_threads();
  if (argc >= 2 && std::strcmp(argv[0], "--threads") == 0) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) threads = static_cast<int>(v);
    argc -= 2;
    argv += 2;
  }
  if (argc < 2) return usage();
  auto module = cir::parse_module(read_file(argv[0]));
  const std::string entry = argv[1];
  std::vector<i64> int_args;
  for (int i = 2; i < argc; ++i) int_args.push_back(std::strtoll(argv[i], nullptr, 10));

  passes::Workload workload;
  workload.entry = entry;
  workload.make_args = [int_args] {
    std::vector<vm::Value> out;
    for (i64 v : int_args) out.push_back(vm::Value::from_int(v));
    return out;
  };
  exec::ThreadPool pool(threads);
  passes::IterativeCompiler explorer;
  explorer.set_pool(&pool);
  const passes::IterativeResult r = explorer.explore_exhaustive(*module, workload, 2);
  std::printf("threads:  %d\n", threads);
  std::printf("baseline: %llu instructions\n",
              static_cast<unsigned long long>(r.baseline_instructions));
  std::printf("best:     %llu instructions  (pipeline '%s', %.2fx)\n",
              static_cast<unsigned long long>(r.best_instructions),
              r.best_pipeline.c_str(), r.best_speedup());
  std::printf("evaluated %zu pipelines:\n", r.evaluated.size());
  for (const auto& c : r.evaluated)
    std::printf("  %-40s %10llu%s\n", c.pipeline.c_str(),
                static_cast<unsigned long long>(c.instructions),
                c.output_matches_baseline ? "" : "  [OUTPUT MISMATCH]");
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 2) return usage();
  auto module = cir::parse_module(read_file(argv[0]));
  const cir::Function* f = module->find(argv[1]);
  if (!f) {
    std::fprintf(stderr, "error: no function '%s'\n", argv[1]);
    return 1;
  }
  std::fputs(vm::compile_function(*f).disassemble().c_str(), stdout);
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 1) return usage();
  auto module = cir::parse_module(read_file(argv[0]));
  const auto diags = cir::check_module(*module);
  for (const auto& d : diags)
    std::printf("%s: error: %s\n", d.loc.to_string().c_str(), d.message.c_str());
  std::printf("%zu function(s), %zu diagnostic(s)\n", module->functions.size(),
              diags.size());
  return diags.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bool trace = apply_telemetry_flag(argc, argv);
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    int rc = 2;
    if (cmd == "weave") rc = cmd_weave(argc - 2, argv + 2);
    else if (cmd == "run") rc = cmd_run(argc - 2, argv + 2);
    else if (cmd == "explore") rc = cmd_explore(argc - 2, argv + 2);
    else if (cmd == "disasm") rc = cmd_disasm(argc - 2, argv + 2);
    else if (cmd == "check") rc = cmd_check(argc - 2, argv + 2);
    else return usage();
    if (telemetry::enabled()) {
      std::puts("\n-- telemetry registry --");
      telemetry::summary_table().print();
      if (trace) {
        telemetry::write_text_file("antarex_weave_trace.json",
                                   telemetry::chrome_trace_json());
        std::puts("wrote antarex_weave_trace.json");
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "antarex-weave: %s\n", e.what());
    return 1;
  }
}
