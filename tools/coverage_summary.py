#!/usr/bin/env python3
"""Aggregate gcov line coverage for the antarex sources.

Walks a build tree for .gcda files (produced by running tests in a build
configured with -DANTAREX_COVERAGE=ON), asks gcov for JSON intermediate
output, merges execution counts across translation units, and prints a
per-file table for everything under <source-dir>/src. Optionally writes a
machine-readable coverage.json (the CI artifact) and enforces a minimum
total line coverage with --fail-under.

Usage:
  coverage_summary.py --build-dir build-cov --source-dir . -o coverage.json
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        out.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return sorted(out)


def gcov_json(gcda, source_dir):
    """Run gcov on one .gcda and yield its parsed JSON documents."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=os.path.dirname(gcda),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            print(f"warning: unparseable gcov output for {gcda}",
                  file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--source-dir", required=True)
    ap.add_argument("-o", "--output", help="write coverage.json here")
    ap.add_argument("--fail-under", type=float, default=0.0,
                    help="exit 1 if total line coverage (%%) is below this")
    args = ap.parse_args()

    src_root = os.path.realpath(os.path.join(args.source_dir, "src"))
    gcda_files = find_gcda(args.build_dir)
    if not gcda_files:
        print("no .gcda files found — configure with -DANTAREX_COVERAGE=ON "
              "and run the tests first", file=sys.stderr)
        return 2

    # file -> line -> max execution count across all translation units.
    lines = defaultdict(dict)
    for gcda in gcda_files:
        for doc in gcov_json(gcda, args.source_dir):
            cwd = doc.get("current_working_directory", "")
            for f in doc.get("files", []):
                path = f["file"]
                if not os.path.isabs(path):
                    path = os.path.join(cwd, path)
                path = os.path.realpath(path)
                if not path.startswith(src_root + os.sep):
                    continue
                rel = os.path.relpath(path, os.path.dirname(src_root))
                per_file = lines[rel]
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    per_file[n] = max(per_file.get(n, 0), ln["count"])

    if not lines:
        print("gcov produced no data for files under src/", file=sys.stderr)
        return 2

    rows = []
    total = covered = 0
    for rel in sorted(lines):
        per_file = lines[rel]
        file_total = len(per_file)
        if file_total == 0:  # header with no executable lines
            continue
        file_covered = sum(1 for c in per_file.values() if c > 0)
        total += file_total
        covered += file_covered
        rows.append((rel, file_covered, file_total,
                     100.0 * file_covered / file_total))

    width = max(len(r[0]) for r in rows)
    print(f"{'file':<{width}}  covered   total     %")
    for rel, file_covered, file_total, pct in rows:
        print(f"{rel:<{width}}  {file_covered:7d} {file_total:7d} {pct:5.1f}")
    pct_total = 100.0 * covered / total
    print("-" * (width + 26))
    print(f"{'TOTAL':<{width}}  {covered:7d} {total:7d} {pct_total:5.1f}")

    if args.output:
        report = {
            "schema": "antarex.coverage/v1",
            "line_coverage_percent": round(pct_total, 2),
            "covered_lines": covered,
            "total_lines": total,
            "files": {
                rel: {"covered": fc, "total": ft, "percent": round(p, 2)}
                for rel, fc, ft, p in rows
            },
        }
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")

    if pct_total < args.fail_under:
        print(f"coverage {pct_total:.1f}% below --fail-under "
              f"{args.fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
