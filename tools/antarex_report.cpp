// antarex-report — render a self-contained HTML report from a run's exported
// artifacts: the Chrome trace (required), plus the metrics registry dump,
// the energy-attribution dump, and the monitor's cluster-health dump when
// available.
//
//   antarex-report <trace.json> [--metrics <metrics.json>]
//                  [--attribution <attribution.json>]
//                  [--monitor <health.json>]
//                  [--decisions <decisions.json>] [--title <title>]
//                  [-o <out.html>]
//   antarex-report --selftest
//
// --selftest renders a report from a synthetic in-process run (used by the
// test suite; needs no input files) and validates the output shape.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "support/common.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace antarex;

int usage() {
  std::fprintf(
      stderr,
      "usage: antarex-report <trace.json> [--metrics <metrics.json>]\n"
      "                      [--attribution <attribution.json>]\n"
      "                      [--monitor <health.json>]\n"
      "                      [--decisions <decisions.json>]\n"
      "                      [--title <title>] [-o <out.html>]\n"
      "       antarex-report --selftest\n"
      "\n"
      "Renders a self-contained HTML report (flame timeline, per-span\n"
      "summary, metrics tables, energy attribution, cluster health, and\n"
      "the decision-provenance explain timeline) from the JSON artifacts\n"
      "a telemetry-enabled run writes. No scripts, no external fetches —\n"
      "the output opens anywhere.\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ANTAREX_REQUIRE(in.good(), "antarex-report: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Render from a synthetic run: real spans through the real telemetry
/// buffer, so the selftest exercises the same path as production traces.
int selftest() {
  telemetry::set_enabled(true);
  {
    TELEMETRY_SPAN("selftest.outer");
    for (int i = 0; i < 3; ++i) {
      TELEMETRY_SPAN("selftest.inner");
      TELEMETRY_COUNT("selftest.iterations", 1);
    }
    TELEMETRY_GAUGE("selftest.gauge", 42.0);
  }
  obs::ReportInputs inputs;
  inputs.title = "antarex-report selftest";
  inputs.trace_json = telemetry::chrome_trace_json();
  inputs.metrics_json = telemetry::metrics_json();
  inputs.attribution_json =
      "{\"schema\":\"antarex.obs.attribution/v1\",\"interval_s\":0.25,"
      "\"samples\":4,\"total_joules\":12.5,\"domains\":["
      "{\"name\":\"package-0\",\"joules\":12.5}],"
      "\"by_leaf\":[{\"span\":\"selftest.inner\",\"joules\":10.0,"
      "\"seconds\":0.8,\"samples\":3},{\"span\":\"(unattributed)\","
      "\"joules\":2.5,\"seconds\":0.2,\"samples\":1}],"
      "\"by_phase\":[{\"span\":\"selftest.outer\",\"joules\":10.0,"
      "\"seconds\":0.8,\"samples\":3},{\"span\":\"(unattributed)\","
      "\"joules\":2.5,\"seconds\":0.2,\"samples\":1}]}";
  inputs.health_json =
      "{\"schema\":\"antarex.monitor.health/v1\",\"shards\":2,\"samples\":8,"
      "\"frames\":32,\"published\":32,\"dropped\":0,\"fabric_bytes\":4096,"
      "\"metrics\":{\"power_w\":{\"count\":32,\"mean\":180.0,\"min\":64.0,"
      "\"max\":210.0,\"p50\":181.0,\"p95\":204.0}},"
      "\"shard_mean\":{\"power_w\":[178.5,183.0],\"temp_c\":[48.0,51.5]},"
      "\"ring\":{\"power_w\":[[180.0,181.0],[180.5],[]]},"
      "\"hot_nodes\":[{\"node\":3,\"weight\":5,\"error\":0}],"
      "\"episodes\":[{\"node\":3,\"shard\":1,\"kind\":\"throttle\","
      "\"open_s\":4.0,\"close_s\":6.0,\"peak_z\":9.5,\"samples\":3,"
      "\"open\":false},{\"node\":0,\"shard\":0,\"kind\":\"slow_node\","
      "\"open_s\":5.0,\"close_s\":8.0,\"peak_z\":6.2,\"samples\":4,"
      "\"open\":true}]}";
  inputs.decisions_json =
      "{\"schema\":\"antarex.causal.decisions/v1\",\"decisions\":["
      "{\"seq\":1,\"t_s\":4.0,\"actor\":\"monitor.detector\","
      "\"action\":\"episode_open:throttle\",\"cause\":\"node 3 shard 1 "
      "z=9.50\",\"cause_value\":9.5,\"effect\":\"closed after 2.00s, 3 "
      "samples, peak z=9.50\",\"effect_value\":9.5},"
      "{\"seq\":2,\"t_s\":4.5,\"actor\":\"govern.coordinator\","
      "\"action\":\"restrict:dvfs\",\"cause\":\"epoch mean 240.0 W > "
      "effective cap 220.0 W for 2 epochs\",\"cause_value\":240.0}],"
      "\"dropped\":0}";
  const std::string html = obs::html_report(inputs);
  const auto has = [&html](const char* needle) {
    return html.find(needle) != std::string::npos;
  };
  ANTAREX_CHECK(has("<!DOCTYPE html>") && has("</html>"), "selftest: not HTML");
  ANTAREX_CHECK(has("selftest.outer") && has("selftest.inner"),
                "selftest: spans missing from report");
  ANTAREX_CHECK(has("Energy attribution") && has("(unattributed)"),
                "selftest: attribution section missing");
  ANTAREX_CHECK(has("selftest.iterations"), "selftest: metrics missing");
  ANTAREX_CHECK(has("Cluster health") && has("Shard heatmap") &&
                    has("Anomaly timeline"),
                "selftest: cluster-health section missing");
  ANTAREX_CHECK(has("throttle") && has("slow_node"),
                "selftest: anomaly episodes missing from timeline");
  ANTAREX_CHECK(has("Decision provenance") && has("episode_open:throttle") &&
                    has("restrict:dvfs") && has("(pending)"),
                "selftest: decision-provenance section missing");
  ANTAREX_CHECK(!has("<script"), "selftest: report must not contain scripts");
  std::printf("antarex-report selftest OK (%zu bytes of HTML)\n", html.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) {
    try {
      return selftest();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "antarex-report: %s\n", e.what());
      return 1;
    }
  }
  if (argc < 2) return usage();

  obs::ReportInputs inputs;
  std::string out_path;
  std::string trace_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        ANTAREX_REQUIRE(i + 1 < argc,
                        "antarex-report: " + arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--metrics") {
        inputs.metrics_json = read_file(value());
      } else if (arg == "--attribution") {
        inputs.attribution_json = read_file(value());
      } else if (arg == "--monitor") {
        inputs.health_json = read_file(value());
      } else if (arg == "--decisions") {
        inputs.decisions_json = read_file(value());
      } else if (arg == "--title") {
        inputs.title = value();
      } else if (arg == "-o" || arg == "--output") {
        out_path = value();
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "antarex-report: unknown option '%s'\n",
                     arg.c_str());
        return usage();
      } else if (trace_path.empty()) {
        trace_path = arg;
      } else {
        std::fprintf(stderr, "antarex-report: extra argument '%s'\n",
                     arg.c_str());
        return usage();
      }
    }
    if (trace_path.empty()) return usage();
    inputs.trace_json = read_file(trace_path);
    if (inputs.title == "antarex run") inputs.title = trace_path;
    if (out_path.empty()) {
      out_path = trace_path;
      const std::size_t dot = out_path.rfind(".json");
      if (dot != std::string::npos) out_path.erase(dot);
      out_path += ".html";
    }
    telemetry::write_text_file(out_path, obs::html_report(inputs));
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "antarex-report: %s\n", e.what());
    return 1;
  }
}
