// Sample mini-C application for the antarex-weave CLI.
int saxpy(int n, int a) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc = acc + a * i;
  }
  return acc;
}
int main_entry(int n, int a) {
  int total = 0;
  for (int r = 0; r < 4; r++) {
    total = total + saxpy(n, a);
  }
  return total;
}
