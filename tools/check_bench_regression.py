#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json reports against baselines.

Every *.json in the baseline directory must have a matching report in the
produced directory, and every numeric value present in the baseline must be
within --tolerance (relative) of the produced value. Keys that vary run-to-run
(wall time, machine thread counts, measured_* wall-clock metrics) are never
baselined: --update strips them while regenerating baselines from a produced
directory, so the committed files contain deterministic model outputs only.

Usage:
  check_bench_regression.py [--tolerance 0.10] <baseline_dir> <produced_dir>
  check_bench_regression.py --update <baseline_dir> <produced_dir> [id ...]

With --update, baselines are (re)written from the produced reports — all of
them, or only the named bench ids. Exit status: 0 clean, 1 regression or
missing report, 2 usage error.
"""

import argparse
import json
import os
import sys

# Dropped from baselines: anything measured on the host rather than computed
# by the (seeded, deterministic) models.
VOLATILE_TOP_LEVEL = {"wall_seconds", "threads"}
VOLATILE_METRIC_PREFIXES = ("measured_",)


def strip_volatile(report):
    out = {}
    for key, value in report.items():
        if key in VOLATILE_TOP_LEVEL:
            continue
        if key == "metrics" and isinstance(value, dict):
            out[key] = {
                k: v
                for k, v in value.items()
                if k not in VOLATILE_TOP_LEVEL
                and not k.startswith(VOLATILE_METRIC_PREFIXES)
            }
            continue
        if key == "verdict" and isinstance(value, dict):
            # The measured text may quote host timings (e.g. the trace
            # overhead bench); the boolean shape_reproduced is the gate.
            out[key] = {k: v for k, v in value.items() if k != "measured"}
            continue
        out[key] = value
    return out


def compare(baseline, produced, tolerance, path=""):
    """Yield (path, baseline, produced, message) for every mismatch."""
    if isinstance(baseline, dict):
        if not isinstance(produced, dict):
            yield (path, baseline, produced, "type changed")
            return
        for key, b in baseline.items():
            if key not in produced:
                yield (f"{path}.{key}", b, None, "missing from produced report")
                continue
            yield from compare(b, produced[key], tolerance, f"{path}.{key}")
    elif isinstance(baseline, list):
        if not isinstance(produced, list) or len(baseline) != len(produced):
            yield (path, baseline, produced, "array shape changed")
            return
        for i, b in enumerate(baseline):
            yield from compare(b, produced[i], tolerance, f"{path}[{i}]")
    elif isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        if baseline != produced:
            yield (path, baseline, produced, "value changed")
    else:
        if not isinstance(produced, (int, float)) or isinstance(produced, bool):
            yield (path, baseline, produced, "type changed")
            return
        denom = max(abs(baseline), abs(produced))
        if denom < 1e-9:
            return  # both (near) zero
        if abs(baseline - produced) / denom > tolerance:
            drift = 100.0 * (produced - baseline) / (baseline or denom)
            delta = produced - baseline
            yield (path, baseline, produced,
                   f"delta {delta:+.6g}, drift {drift:+.1f}%")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline_dir")
    ap.add_argument("produced_dir")
    ap.add_argument("ids", nargs="*",
                    help="bench ids to --update (default: all produced)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative tolerance (default 0.10 = ±10%%)")
    ap.add_argument("--update", action="store_true",
                    help="regenerate baselines from the produced reports")
    args = ap.parse_args()

    if not os.path.isdir(args.produced_dir):
        print(f"error: produced dir '{args.produced_dir}' does not exist")
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        names = [
            f for f in sorted(os.listdir(args.produced_dir))
            if f.startswith("BENCH_") and f.endswith(".json")
            and "_trace" not in f
        ]
        if args.ids:
            wanted = {f"BENCH_{i}.json" for i in args.ids}
            names = [f for f in names if f in wanted]
            missing = wanted - set(names)
            if missing:
                print(f"error: no produced report for {sorted(missing)}")
                return 2
        for name in names:
            with open(os.path.join(args.produced_dir, name)) as f:
                report = strip_volatile(json.load(f))
            dest = os.path.join(args.baseline_dir, name)
            with open(dest, "w") as f:
                json.dump(report, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"updated {dest}")
        return 0

    if not os.path.isdir(args.baseline_dir):
        print(f"error: baseline dir '{args.baseline_dir}' does not exist")
        return 2

    failures = 0
    checked = 0
    all_mismatches = []  # (report name, path, baseline, produced, message)
    for name in sorted(os.listdir(args.baseline_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(args.baseline_dir, name)) as f:
            baseline = json.load(f)
        produced_path = os.path.join(args.produced_dir, name)
        if not os.path.exists(produced_path):
            print(f"FAIL {name}: report not produced")
            failures += 1
            all_mismatches.append((name, "<report>", "present", "missing",
                                   "report not produced"))
            continue
        with open(produced_path) as f:
            produced = json.load(f)
        mismatches = list(compare(baseline, produced, args.tolerance))
        checked += 1
        if mismatches:
            failures += 1
            print(f"FAIL {name}:")
            for path, b, p, msg in mismatches:
                print(f"  {path or '<root>'}: baseline={b!r} produced={p!r}"
                      f" ({msg})")
                all_mismatches.append((name, path or "<root>", b, p, msg))
        else:
            print(f"OK   {name} (tolerance ±{args.tolerance * 100:.0f}%)")

    if checked == 0 and failures == 0:
        print(f"error: no baselines found in '{args.baseline_dir}'")
        return 2
    if failures:
        # One consolidated block at the end of the log: every out-of-tolerance
        # metric across every report, so a multi-metric regression is
        # diagnosable without scrolling through interleaved bench output.
        print(f"\n=== regression summary "
              f"({len(all_mismatches)} metric(s) out of tolerance) ===")
        for name, path, b, p, msg in all_mismatches:
            print(f"  {name} :: {path}: baseline={b!r} produced={p!r} ({msg})")
        print(f"\n{failures} bench report(s) regressed beyond "
              f"±{args.tolerance * 100:.0f}%")
        return 1
    print(f"\nall {checked} bench report(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
