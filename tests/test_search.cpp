// Tests for antarex::search: the performance model (fit quality, top-K
// ranking), the genetic engine (domain-respecting operators, elitism,
// duplicate suppression, determinism), the SearchStrategy two-stage flow
// through the Autotuner batch path (convergence + byte-identical
// trajectories across worker counts), the cross-run transfer cache
// (nearest-neighbour, knob mapping, serialization round-trip), and the
// strategy factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "exec/exec.hpp"
#include "search/search.hpp"
#include "tuner/autotuner.hpp"

namespace antarex::search {
namespace {

using tuner::Configuration;
using tuner::DesignSpace;
using tuner::Knob;

DesignSpace three_knob_space() {
  DesignSpace s;
  s.add_knob({"tile", {4, 8, 16, 32, 64, 128, 256}});
  s.add_knob({"unroll", {1, 2, 4, 8}});
  s.add_knob({"threads", {1, 2, 4, 8, 16}});
  return s;
}

/// Landscape exactly in the model family: linear + one interaction over the
/// normalized encodings. The model must fit it to r2 ~ 1.
double planar_cost(const DesignSpace& s, const Configuration& c) {
  const double t = (s.value(c, "tile") - 4.0) / 252.0;
  const double u = (s.value(c, "unroll") - 1.0) / 7.0;
  const double h = (s.value(c, "threads") - 1.0) / 15.0;
  return 2.0 + 1.5 * t - 0.8 * u + 0.6 * h + 0.9 * t * u;
}

/// Curved landscape with a unique interior optimum for convergence tests.
double bowl_cost(const DesignSpace& s, const Configuration& c) {
  const double tile = s.value(c, "tile");
  const double unroll = s.value(c, "unroll");
  const double threads = s.value(c, "threads");
  double v = 1.0;
  v += 0.002 * (tile - 32.0) * (tile - 32.0) / 32.0;
  v += 0.15 * std::fabs(std::log2(unroll / 4.0));
  v += 0.35 * std::fabs(std::log2(threads / 8.0));
  return v;
}

double oracle(const DesignSpace& s,
              double (*cost)(const DesignSpace&, const Configuration&)) {
  double best = 1e300;
  for (std::size_t i = 0; i < s.size(); ++i)
    best = std::min(best, cost(s, s.at(i)));
  return best;
}

// --------------------------------------------------------------------------
// PerfModel
// --------------------------------------------------------------------------

TEST(PerfModel, UnderdeterminedFitIsRejected) {
  const DesignSpace s = three_knob_space();
  tuner::Knowledge kb;
  kb.observe({s.at(0), {{"time_s", 1.0}}});
  kb.observe({s.at(1), {{"time_s", 2.0}}});
  PerfModel m;
  const FitReport r = m.fit(s, kb, "time_s");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.samples, 2u);
  EXPECT_EQ(r.dims, 1u + 3u + 6u);  // bias + linear + interactions (i <= j)
  EXPECT_FALSE(m.fitted());
  EXPECT_THROW(m.predict(s, s.at(0)), Error);
}

TEST(PerfModel, FitsItsOwnFamilyExactly) {
  const DesignSpace s = three_knob_space();
  tuner::Knowledge kb;
  Rng rng(7);
  for (int i = 0; i < 24; ++i) {
    const Configuration c = tuner::random_config(s, rng);
    kb.observe({c, {{"time_s", planar_cost(s, c)}}});
  }
  PerfModel m;
  const FitReport r = m.fit(s, kb, "time_s");
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.r2, 0.999);
  EXPECT_LT(r.rmse, 1e-6);
  // Out-of-sample prediction is exact too: the landscape is in-family.
  for (std::size_t i = 0; i < s.size(); i += 11)
    EXPECT_NEAR(m.predict(s, s.at(i)), planar_cost(s, s.at(i)), 1e-6);
}

TEST(PerfModel, TopKRanksTheTrueOptimaFirst) {
  const DesignSpace s = three_knob_space();
  tuner::Knowledge kb;
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const Configuration c = tuner::random_config(s, rng);
    kb.observe({c, {{"time_s", planar_cost(s, c)}}});
  }
  PerfModel m;
  ASSERT_TRUE(m.fit(s, kb, "time_s").ok);

  const auto top = m.top_k(s, 5, /*minimize=*/true);
  ASSERT_EQ(top.size(), 5u);
  // Distinct, and the first one is the true enumerated optimum.
  std::set<std::string> keys;
  for (const auto& c : top) keys.insert(tuner::config_key(c));
  EXPECT_EQ(keys.size(), top.size());
  double best = 1e300;
  Configuration best_c;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double v = planar_cost(s, s.at(i));
    if (v < best) {
      best = v;
      best_c = s.at(i);
    }
  }
  EXPECT_EQ(tuner::config_key(top[0]), tuner::config_key(best_c));
  // Predictions are sorted best-first.
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_LE(m.predict(s, top[i - 1]), m.predict(s, top[i]) + 1e-12);
}

TEST(PerfModel, SampledScanIsDeterministic) {
  const DesignSpace s = three_knob_space();
  tuner::Knowledge kb;
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const Configuration c = tuner::random_config(s, rng);
    kb.observe({c, {{"time_s", planar_cost(s, c)}}});
  }
  PerfModel m;
  ASSERT_TRUE(m.fit(s, kb, "time_s").ok);
  // Force the sampled path with a scan cap below the space size.
  const auto a = m.top_k(s, 4, true, /*seed=*/3, /*scan_cap=*/64);
  const auto b = m.top_k(s, 4, true, /*seed=*/3, /*scan_cap=*/64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(tuner::config_key(a[i]), tuner::config_key(b[i]));
}

// --------------------------------------------------------------------------
// GeneticEngine
// --------------------------------------------------------------------------

TEST(GeneticEngine, ChildrenRespectAnnotatedDomains) {
  DesignSpace s = three_knob_space();
  s.restrict_range("tile", 16, 64);  // candidates shrink to {16, 32, 64}
  GeneticConfig cfg;
  cfg.population = 12;
  GeneticEngine engine(cfg);

  // Parents straddle the annotation (some indices outside the candidates).
  std::vector<Configuration> parents;
  std::vector<double> fitness;
  Rng rng(5);
  for (std::size_t i = 0; i < 8; ++i) {
    Configuration c(3);
    c[0] = i % s.knob(0).values.size();  // includes out-of-annotation tiles
    c[1] = i % s.knob(1).values.size();
    c[2] = i % s.knob(2).values.size();
    parents.push_back(c);
    fitness.push_back(static_cast<double>(i));
  }
  const auto children = engine.next_generation(s, parents, fitness, true, 1);
  ASSERT_EQ(children.size(), cfg.population);
  for (const Configuration& c : children) {
    ASSERT_TRUE(s.valid(c));
    // Elites pass through unchanged (may predate the annotation); every
    // *bred* child must draw from the candidate lists. Elites here are
    // parents[0] and parents[1] by fitness.
    if (c == parents[0] || c == parents[1]) continue;
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& cand = s.candidates(k);
      EXPECT_NE(std::find(cand.begin(), cand.end(), c[k]), cand.end());
    }
  }
}

TEST(GeneticEngine, ElitesSurviveAndGenerationsAreDeterministic) {
  const DesignSpace s = three_knob_space();
  GeneticConfig cfg;
  cfg.population = 10;
  cfg.elites = 2;
  GeneticEngine engine(cfg);

  std::vector<Configuration> parents;
  std::vector<double> fitness;
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    parents.push_back(tuner::random_config(s, rng));
    fitness.push_back(bowl_cost(s, parents.back()));
  }
  const std::size_t best =
      static_cast<std::size_t>(std::min_element(fitness.begin(), fitness.end()) -
                               fitness.begin());

  const auto gen_a = engine.next_generation(s, parents, fitness, true, 3);
  const auto gen_b = engine.next_generation(s, parents, fitness, true, 3);
  ASSERT_EQ(gen_a.size(), gen_b.size());
  for (std::size_t i = 0; i < gen_a.size(); ++i)
    EXPECT_EQ(tuner::config_key(gen_a[i]), tuner::config_key(gen_b[i]));

  // The best parent survives verbatim (elitism).
  bool found = false;
  for (const Configuration& c : gen_a)
    if (tuner::config_key(c) == tuner::config_key(parents[best])) found = true;
  EXPECT_TRUE(found);

  // Different generation index => different stream => (generically)
  // different children.
  const auto gen_c = engine.next_generation(s, parents, fitness, true, 4);
  std::string a_keys, c_keys;
  for (const auto& c : gen_a) a_keys += tuner::config_key(c) + ";";
  for (const auto& c : gen_c) c_keys += tuner::config_key(c) + ";";
  EXPECT_NE(a_keys, c_keys);
}

TEST(GeneticEngine, DuplicatesAreSuppressed) {
  const DesignSpace s = three_knob_space();  // 140 configs: room to be distinct
  GeneticConfig cfg;
  cfg.population = 16;
  GeneticEngine engine(cfg);
  std::vector<Configuration> parents;
  std::vector<double> fitness;
  Rng rng(21);
  for (int i = 0; i < 16; ++i) {
    parents.push_back(tuner::random_config(s, rng));
    fitness.push_back(bowl_cost(s, parents.back()));
  }
  const auto children = engine.next_generation(s, parents, fitness, true, 1);
  std::set<std::string> keys;
  for (const Configuration& c : children) keys.insert(tuner::config_key(c));
  EXPECT_EQ(keys.size(), children.size());
}

// --------------------------------------------------------------------------
// SearchStrategy through the Autotuner
// --------------------------------------------------------------------------

TEST(SearchStrategy, ConvergesOnTheBowl) {
  DesignSpace s = three_knob_space();
  const double target = 1.05 * oracle(s, bowl_cost);
  tuner::Autotuner tuner(s, std::make_unique<SearchStrategy>(), {}, 17);
  int evals_to_target = -1;
  for (int i = 1; i <= 140; ++i) {
    const Configuration& c = tuner.next_configuration();
    tuner.report({{"time_s", bowl_cost(tuner.space(), c)}});
    const auto best = tuner.best();
    if (best && bowl_cost(tuner.space(), *best) <= target) {
      evals_to_target = i;
      break;
    }
  }
  ASSERT_GT(evals_to_target, 0) << "no convergence within one space sweep";
  EXPECT_LT(evals_to_target, 100);  // beats exhaustive enumeration
}

TEST(SearchStrategy, TrajectoryIsIdenticalAcrossWorkerCounts) {
  // The acceptance criterion: next_batch generations evaluated on pools of
  // 1, 2, and 8 workers produce byte-identical search trajectories.
  auto run = [](int threads) {
    DesignSpace s = three_knob_space();
    SearchConfig cfg;
    cfg.seed = 99;
    cfg.genetic.seed = 99;
    tuner::Autotuner tuner(s, std::make_unique<SearchStrategy>(cfg), {}, 4);
    exec::ThreadPool pool(threads);
    std::string trajectory;
    for (int round = 0; round < 10; ++round) {
      const auto configs = tuner.next_batch(8);
      for (const auto& c : configs) trajectory += tuner::config_key(c) + ";";
      const auto costs = exec::parallel_map<double>(
          pool, configs.size(), 1,
          [&](std::size_t i) { return bowl_cost(tuner.space(), configs[i]); });
      std::vector<std::map<std::string, double>> metrics;
      for (double v : costs) metrics.push_back({{"time_s", v}});
      tuner.report_batch(metrics);
    }
    const auto best = tuner.best();
    trajectory += "| best " + (best ? tuner::config_key(*best) : "none");
    return trajectory;
  };
  const std::string t1 = run(1);
  EXPECT_EQ(t1, run(2));
  EXPECT_EQ(t1, run(8));
}

TEST(SearchStrategy, ModelIsFitAfterBootstrap) {
  DesignSpace s = three_knob_space();
  SearchConfig cfg;
  cfg.bootstrap = 14;
  auto strategy = std::make_unique<SearchStrategy>(cfg);
  SearchStrategy* raw = strategy.get();
  tuner::Autotuner tuner(s, std::move(strategy), {}, 23);
  for (int i = 0; i < 14; ++i) {
    const Configuration& c = tuner.next_configuration();
    tuner.report({{"time_s", planar_cost(tuner.space(), c)}});
  }
  EXPECT_EQ(raw->model(), nullptr);  // still bootstrapping
  // Next decision assembles generation 0 and fits the model.
  tuner.next_configuration();
  tuner.report({{"time_s", 1.0}});
  ASSERT_NE(raw->model(), nullptr);
  EXPECT_GE(raw->model()->report().samples, 10u);
  EXPECT_GT(raw->model()->report().r2, 0.99);  // in-family landscape
}

TEST(SearchStrategy, ResetRestartsTheFlow) {
  DesignSpace s = three_knob_space();
  SearchConfig cfg;
  cfg.bootstrap = 4;
  SearchStrategy strategy(cfg);
  tuner::Knowledge kb;
  Rng rng(1);
  std::string first;
  for (int i = 0; i < 6; ++i) {
    const Configuration c = strategy.next(s, kb, "time_s", true, rng);
    if (i == 0) first = tuner::config_key(c);
    strategy.observe(s, c, bowl_cost(s, c));
    kb.observe({c, {{"time_s", bowl_cost(s, c)}}});
  }
  strategy.reset();
  tuner::Knowledge kb2;
  EXPECT_EQ(tuner::config_key(strategy.next(s, kb2, "time_s", true, rng)),
            first);  // same seeded streams from the top
  EXPECT_EQ(strategy.generation(), 0u);
}

// --------------------------------------------------------------------------
// TransferCache
// --------------------------------------------------------------------------

/// A knowledge base over any space: the cost is the plain sum of knob values,
/// so the helper works for arbitrary knob names.
tuner::Knowledge learned_kb(const DesignSpace& s, int samples, u64 seed) {
  tuner::Knowledge kb;
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const Configuration c = tuner::random_config(s, rng);
    double cost = 1.0;
    for (std::size_t k = 0; k < s.knob_count(); ++k) cost += s.value(c, k);
    kb.observe({c, {{"time_s", cost}}});
  }
  return kb;
}

TEST(TransferCache, NearestPrefersTheMatchingSignature) {
  TransferCache cache;
  const DesignSpace docking = three_knob_space();
  cache.record("docking", docking, learned_kb(docking, 20, 3));

  DesignSpace nav;
  nav.add_knob({"cache_mb", {64, 128, 256}});
  nav.add_knob({"quality", {1, 2, 3, 4}});
  cache.record("navigation", nav, learned_kb(nav, 10, 4));

  // A near-clone of the docking space (same knob names, shifted ranges)
  // must warm-start from "docking", not "navigation".
  DesignSpace docking2;
  docking2.add_knob({"tile", {8, 16, 32, 64, 128}});
  docking2.add_knob({"unroll", {1, 2, 4}});
  docking2.add_knob({"threads", {2, 4, 8}});
  const TransferEntry* hit = cache.nearest(docking2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->app, "docking");

  // Excluding the app itself falls back to the other entry.
  const TransferEntry* other = cache.nearest(docking2, "docking");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->app, "navigation");
}

TEST(TransferCache, SeedConfigsMapKnobsByNameAndValue) {
  TransferCache cache;
  const DesignSpace src = three_knob_space();
  tuner::Knowledge kb;
  // One clearly-best measured config: tile=32, unroll=4, threads=8.
  const Configuration best{3, 2, 3};
  kb.observe({best, {{"time_s", 0.5}}});
  kb.observe({Configuration{0, 0, 0}, {{"time_s", 9.0}}});
  cache.record("src", src, kb);

  DesignSpace dst;
  dst.add_knob({"tile", {8, 24, 48, 96}});      // nearest to 32 is 24
  dst.add_knob({"unroll", {1, 2, 4}});          // exact 4 exists
  dst.add_knob({"batch", {16, 32, 64}});        // no source knob: middle
  const auto seeds =
      TransferCache::seed_configs(*cache.nearest(dst), dst, "time_s", true, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(dst.value(seeds[0], "tile"), 24.0);
  EXPECT_DOUBLE_EQ(dst.value(seeds[0], "unroll"), 4.0);
  EXPECT_DOUBLE_EQ(dst.value(seeds[0], "batch"), 32.0);
}

TEST(TransferCache, ExportImportRoundTrips) {
  TransferCache cache;
  const DesignSpace s = three_knob_space();
  cache.record("app-a", s, learned_kb(s, 15, 5));
  DesignSpace nav;
  nav.add_knob({"quality", {1, 2, 3}});
  cache.record("app-b", nav, learned_kb(nav, 6, 6));

  const std::string text = cache.export_text();
  TransferCache loaded;
  loaded.import_text(text);
  ASSERT_EQ(loaded.size(), cache.size());
  EXPECT_EQ(loaded.export_text(), text);  // byte-stable round trip
  EXPECT_EQ(loaded.entries()[0].app, "app-a");
  EXPECT_EQ(loaded.entries()[0].knobs.size(), 3u);
  EXPECT_EQ(loaded.entries()[0].knowledge_text,
            cache.entries()[0].knowledge_text);
}

TEST(TransferCache, ImportRejectsMalformedInput) {
  TransferCache cache;
  EXPECT_THROW(cache.import_text("[knob] orphan 1,2\n"), Error);
  EXPECT_THROW(cache.import_text("[entry] a\n[kb]\n"), Error);  // no [end]
  EXPECT_THROW(cache.import_text("garbage\n"), Error);
}

TEST(TransferCache, WarmStartedSearchStartsNearTheOptimum) {
  // End-to-end: a finished docking run warm-starts a sibling space; the
  // strategy's generation 0 contains the mapped seed, so the best-known
  // config is good immediately after the bootstrap probes.
  const DesignSpace src = three_knob_space();
  tuner::Autotuner first(src, std::make_unique<SearchStrategy>(), {}, 31);
  for (int i = 0; i < 60; ++i) {
    const Configuration& c = first.next_configuration();
    first.report({{"time_s", bowl_cost(first.space(), c)}});
  }
  TransferCache cache;
  cache.record("first", first.space(), first.knowledge());

  DesignSpace dst;
  dst.add_knob({"tile", {8, 16, 32, 64}});
  dst.add_knob({"unroll", {1, 2, 4, 8}});
  dst.add_knob({"threads", {2, 4, 8}});
  const TransferEntry* hit = cache.nearest(dst, "second");
  ASSERT_NE(hit, nullptr);

  SearchConfig cfg;
  cfg.bootstrap = 4;
  auto strategy = std::make_unique<SearchStrategy>(cfg);
  strategy->warm_start(
      TransferCache::seed_configs(*hit, dst, "time_s", true, 4));
  tuner::Autotuner second(dst, std::move(strategy), {}, 32);
  // Bootstrap probes + one generation: the transferred seed is in there.
  double best_seen = 1e300;
  for (int i = 0; i < 4 + 24; ++i) {
    const Configuration& c = second.next_configuration();
    const double v = bowl_cost(second.space(), c);
    best_seen = std::min(best_seen, v);
    second.report({{"time_s", v}});
  }
  EXPECT_LE(best_seen, 1.05 * oracle(dst, bowl_cost));
}

// --------------------------------------------------------------------------
// Strategy factory
// --------------------------------------------------------------------------

TEST(MakeStrategy, ResolvesEveryKnownName) {
  EXPECT_EQ(make_strategy("flat")->name(), "full-search");
  EXPECT_EQ(make_strategy("full-search")->name(), "full-search");
  EXPECT_EQ(make_strategy("epsilon-greedy")->name(), "epsilon-greedy");
  EXPECT_EQ(make_strategy("model-guided")->name(), "model-guided");
  EXPECT_EQ(make_strategy("evolutionary")->name(), "evolutionary");
  EXPECT_EQ(make_strategy("search")->name(), "evolutionary");
  EXPECT_THROW(make_strategy("simulated-annealing"), Error);
}

}  // namespace
}  // namespace antarex::search
