// Shared property-based invariant suite for rtrm::ShardedCluster.
//
// Each seed builds a randomized heterogeneous blueprint + job mix + fault
// environment, runs it through the SoA engine, and checks the four core
// sharding invariants:
//   1. Energy conservation — the integrated IT energy equals the sum of the
//      per-node batched energy counters to 1e-9 relative (parking replays
//      skipped accumulations exactly, it never invents or drops joules).
//   2. No lost jobs — every submitted job is accounted for in exactly one
//      dispatcher bucket after the drain phase.
//   3. Monotone virtual time — step observers and applied fault events see
//      strictly/weakly increasing timestamps.
//   4. Shard-merge determinism — the same scenario re-run with different
//      shard and worker counts produces a byte-identical state trace.
//
// The suite is instantiated twice: test_fuzz.cpp pulls a small seed range
// into the default tier; test_sharded_long.cpp instantiates the 1k-seed
// sweep behind the `long` ctest label.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "exec/pool.hpp"
#include "sharded_common.hpp"

namespace antarex::rtrm {

struct ShardedScenarioResult {
  u64 submitted = 0;
  u64 accounted = 0;  ///< queued + running + completed + failed at the end
  bool drained = false;
  double it_energy_j = 0.0;
  double node_energy_sum_j = 0.0;
  bool monotone_steps = true;
  bool monotone_events = true;
  std::string trace;
};

/// One randomized scenario at an explicit (shards, threads) point. The
/// plant, jobs, and faults depend only on `seed`, so two calls with the same
/// seed but different shard/thread counts must return identical traces.
inline ShardedScenarioResult run_sharded_scenario(u64 seed, std::size_t shards,
                                                  int threads) {
  Rng rng(seed * 0x9e3779b9ULL + 1);

  ShardedClusterConfig cfg;
  cfg.shards = shards;
  cfg.base.backfill = rng.bernoulli(0.5);
  const std::size_t placement = rng.index(3);
  cfg.base.placement = placement == 0   ? PlacementPolicy::FirstFit
                       : placement == 1 ? PlacementPolicy::FastestFirst
                                        : PlacementPolicy::EnergyAware;
  const std::size_t governor = rng.index(4);
  cfg.base.governor = governor == 0   ? GovernorPolicy::Performance
                      : governor == 1 ? GovernorPolicy::Powersave
                      : governor == 2 ? GovernorPolicy::Ondemand
                                      : GovernorPolicy::EnergyAware;
  const std::size_t n_nodes = 8 + rng.index(9);
  if (rng.bernoulli(0.3))
    cfg.base.facility_cap_w = (90.0 + 60.0 * rng.uniform()) *
                              static_cast<double>(n_nodes);
  ShardedCluster cluster(cfg);
  ClusterBlueprint::exascale(seed, n_nodes).build(cluster);

  const std::size_t n_jobs = 8 + rng.index(12);
  submit_job_mix(cluster, seed, n_jobs);

  const double horizon_s = 30.0;
  const bool faulted = rng.bernoulli(0.7);
  std::optional<fault::ShardFaultDriver> driver;
  if (faulted)
    driver.emplace(cluster, make_fault_schedule(n_nodes, horizon_s, seed));

  ShardedScenarioResult res;
  double last_now = 0.0;
  cluster.add_step_observer([&](double now, double, double) {
    if (now <= last_now) res.monotone_steps = false;
    last_now = now;
  });

  exec::ThreadPool pool(threads);
  cluster.set_pool(&pool);
  cluster.run_for(horizon_s, 0.25);
  // Past the horizon only repair/clear/end events remain, so the drain
  // phase converges: crashed nodes come back and every job finishes or
  // exhausts its retry budget.
  res.drained = cluster.run_until_idle(5000.0, 0.25);

  res.submitted = n_jobs;
  res.accounted = cluster.dispatcher().queued() + cluster.dispatcher().running() +
                  cluster.dispatcher().completed() + cluster.dispatcher().failed();
  res.it_energy_j = cluster.telemetry().it_energy_j;
  for (std::size_t i = 0; i < cluster.node_count(); ++i)
    res.node_energy_sum_j += cluster.node_energy_j(i);

  if (driver) {
    double last_event_s = 0.0;
    for (std::size_t i = 0; i < driver->applied(); ++i) {
      const double t = driver->schedule().events[i].at_s;
      if (t < last_event_s) res.monotone_events = false;
      last_event_s = t;
    }
  }
  res.trace = state_trace(cluster);
  return res;
}

class ShardedClusterProps : public ::testing::TestWithParam<u64> {};

TEST_P(ShardedClusterProps, ShardingInvariantsHold) {
  const u64 seed = GetParam();
  const ShardedScenarioResult r =
      run_sharded_scenario(seed, 1 + seed % 6, 1 + static_cast<int>(seed % 3));

  // 1. Energy conservation to 1e-9 relative.
  const double denom = std::max(1.0, std::fabs(r.it_energy_j));
  EXPECT_LT(std::fabs(r.it_energy_j - r.node_energy_sum_j) / denom, 1e-9);

  // 2. No lost jobs.
  EXPECT_TRUE(r.drained) << "cluster failed to drain after the fault window";
  EXPECT_EQ(r.submitted, r.accounted);

  // 3. Monotone virtual time.
  EXPECT_TRUE(r.monotone_steps);
  EXPECT_TRUE(r.monotone_events);

  // 4. Shard-merge determinism: a serial single-shard run and a different
  // parallel sharding both reproduce the trace byte-for-byte.
  const ShardedScenarioResult serial = run_sharded_scenario(seed, 1, 1);
  EXPECT_EQ(serial.trace, r.trace) << "seed=" << seed;
  const ShardedScenarioResult wide =
      run_sharded_scenario(seed, 4 + seed % 13, 8);
  EXPECT_EQ(serial.trace, wide.trace) << "seed=" << seed;
}

}  // namespace antarex::rtrm
