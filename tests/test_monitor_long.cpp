// Nightly 1000-seed sweep of the antarex::monitor property suite (frame
// accounting, >= 0.8 precision/recall on the progress-drop anomaly kinds,
// determinism across pool sizes, capacity-shaped memory). Runs behind the
// `long` ctest label; test_fuzz.cpp carries the CI-fast 48-seed slice.
#include "monitor_props.hpp"

namespace antarex::monitor {

INSTANTIATE_TEST_SUITE_P(ThousandSeeds, MonitorProps,
                         ::testing::Range<u64>(1, 1001));

}  // namespace antarex::monitor
