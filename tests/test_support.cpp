// Unit tests for the support layer: RNG determinism and distribution shape,
// streaming statistics, string utilities, tables, and the simulation clock.
#include <gtest/gtest.h>

#include <cmath>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/sim_clock.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace antarex {
namespace {

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.exponential(4.0));
  EXPECT_NEAR(st.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScaleAndIsHeavyTailed) {
  Rng rng(17);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.pareto(1.0, 2.0));
  EXPECT_GE(st.min(), 1.0);
  // E[X] = alpha*xm/(alpha-1) = 2 for alpha=2, xm=1.
  EXPECT_NEAR(st.mean(), 2.0, 0.25);
  EXPECT_GT(st.max(), 5.0);  // tail reaches far out
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ThrowsOnInvalidArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.uniform_int(2, 1), Error);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.pareto(0.0, 1.0), Error);
  EXPECT_THROW(rng.index(0), Error);
}

// --------------------------------------------------------------------------
// RunningStats
// --------------------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesConcatenation) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

// --------------------------------------------------------------------------
// Ewma / SlidingWindow / percentile
// --------------------------------------------------------------------------

TEST(Ewma, SeedsWithFirstValue) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, TracksStepChange) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 20; ++i) e.add(100.0);
  EXPECT_GT(e.value(), 99.0);
}

TEST(Ewma, RejectsInvalidAlpha) {
  EXPECT_THROW(Ewma(0.0), Error);
  EXPECT_THROW(Ewma(1.5), Error);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
}

TEST(SlidingWindow, PercentileOnWindow) {
  SlidingWindow w(100);
  for (int i = 1; i <= 100; ++i) w.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(w.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(w.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(w.percentile(100), 100.0);
}

TEST(Percentile, NearestRankSemantics) {
  std::vector<double> xs{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 40), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
}

TEST(Percentile, ThrowsOnEmptyOrBadP) {
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), Error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(9), 10.0);
}

// --------------------------------------------------------------------------
// strings
// --------------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("antarex", "anta"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_TRUE(ends_with("kernel.c", ".c"));
  EXPECT_FALSE(ends_with(".c", "kernel.c"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("[[v]] = [[v]]", "[[v]]", "size"), "size = size");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

// --------------------------------------------------------------------------
// Table / SimClock
// --------------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table t({"metric", "paper", "ours"});
  t.add_row({"savings", "18-50%", "37.2%"});
  const std::string s = t.render();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("37.2%"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

// --------------------------------------------------------------------------
// JSON: the one escaping implementation + the small parser
// --------------------------------------------------------------------------

TEST(Json, EscapeCoversQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_quote("k\"v"), "\"k\\\"v\"");
}

TEST(Json, ParseRoundTripsEscapedStrings) {
  const std::string nasty = "name with \"quotes\" and \\backslash\\ and\nnewline";
  const JsonValue v = parse_json("{" + json_quote(nasty) + ": 1}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members().size(), 1u);
  EXPECT_EQ(v.members()[0].first, nasty);
  EXPECT_DOUBLE_EQ(v.members()[0].second.as_number(), 1.0);
}

TEST(Json, ParsesNestedDocuments) {
  const JsonValue v = parse_json(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"x\"}");
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("b").at("d").is_null());
  EXPECT_EQ(v.at("s").as_string(), "x");
  EXPECT_EQ(v.get("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\":}"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("1 2"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("nulL"), Error);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  EXPECT_THROW(c.advance(-1.0), Error);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

}  // namespace
}  // namespace antarex
