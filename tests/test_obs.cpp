// antarex::obs: energy attribution conservation, the APEX-style policy
// engine's edge-triggering, the built-in stack policies, and the HTML report.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "power/rapl.hpp"
#include "support/json.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace antarex;
using namespace antarex::obs;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::Registry::global().reset();
    SpanTracker::global().uninstall();
    SpanTracker::global().set_policy_engine(nullptr);
    SpanTracker::global().clear();
  }
  void TearDown() override {
    SpanTracker::global().uninstall();
    SpanTracker::global().set_policy_engine(nullptr);
    SpanTracker::global().clear();
    telemetry::set_enabled(false);
  }
};

// --- attribution ------------------------------------------------------------

// Single-thread staircase with exact-microjoule amounts: every joule lands on
// the row dictated by the open-span stack at sample time, exactly.
TEST_F(ObsTest, ApportionsEnergyToTheOpenSpanStack) {
  power::RaplDomain pkg("pkg-test");
  EnergyAccountant acc(EnergyAccountant::Options{0.5});
  acc.add_domain(&pkg);
  acc.install();

  acc.sample(0.0);  // priming: baseline only, attributes nothing
  {
    TELEMETRY_SPAN("phase.A");
    pkg.accumulate(20.0, 0.5);  // 10 J, exact in uJ
    acc.sample(0.5);
    {
      TELEMETRY_SPAN("leaf.B");
      pkg.accumulate(40.0, 0.5);  // 20 J
      acc.sample(1.0);
    }
  }
  pkg.accumulate(10.0, 0.5);  // 5 J with nothing open
  acc.sample(1.5);
  acc.uninstall();

  const std::vector<AttributionRow> leaf = acc.by_leaf().rows();
  ASSERT_EQ(leaf.size(), 3u);
  // Sorted joules-desc: leaf.B 20, phase.A 10, unattributed 5.
  EXPECT_EQ(leaf[0].key, "leaf.B");
  EXPECT_DOUBLE_EQ(leaf[0].joules, 20.0);
  EXPECT_EQ(leaf[1].key, "phase.A");
  EXPECT_DOUBLE_EQ(leaf[1].joules, 10.0);
  EXPECT_EQ(leaf[2].key, "(unattributed)");
  EXPECT_DOUBLE_EQ(leaf[2].joules, 5.0);

  // By phase, the outermost span owns the nested interval too: A = 30.
  const std::vector<AttributionRow> phase = acc.by_phase().rows();
  ASSERT_EQ(phase.size(), 2u);
  EXPECT_EQ(phase[0].key, "phase.A");
  EXPECT_DOUBLE_EQ(phase[0].joules, 30.0);
  EXPECT_DOUBLE_EQ(phase[1].joules, 5.0);

  EXPECT_DOUBLE_EQ(acc.attributed_joules(), 35.0);
  EXPECT_EQ(acc.samples(), 3u);
}

TEST_F(ObsTest, PreBaselineEnergyBelongsToNobody) {
  power::RaplDomain pkg("pkg-test");
  pkg.accumulate(100.0, 1.0);  // burned before the accountant ever looked
  EnergyAccountant acc;
  acc.add_domain(&pkg);
  acc.install();
  acc.sample(0.0);
  acc.sample(0.25);  // no accumulate in between: zero joules to attribute
  acc.uninstall();
  EXPECT_DOUBLE_EQ(acc.attributed_joules(), 0.0);
}

// Conservation under real pool concurrency: blocking tasks hold exec.task
// spans open across samples, and every sampled joule must land in the tables
// regardless of how the split goes. Runs at 1, 2, and 8 workers.
class ConservationTest : public ObsTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(ConservationTest, AttributedJoulesSumToDomainTotal) {
  const int workers = GetParam();
  power::RaplDomain pkg("pkg-test");
  EnergyAccountant acc;
  acc.add_domain(&pkg);
  acc.install();

  exec::ThreadPool pool(workers);
  acc.set_pool(&pool);

  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  bool release = false;
  for (int i = 0; i < workers; ++i) {
    pool.submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++started;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
  }
  {
    // Until every worker sits inside its exec.task span, sampled energy may
    // be split between fewer contexts — conserved either way, but waiting
    // makes the worker-count assertion below meaningful.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started == workers; });
  }

  acc.sample(0.0);  // prime
  double fed_j = 0.0;
  for (int s = 1; s <= 6; ++s) {
    const double watts = 100.0 * s;           // 100, 200, ... 600 W
    pkg.accumulate(watts, 0.01);              // exact in uJ: watts * 10^4 uJ
    fed_j += watts * 0.01;
    acc.sample(0.01 * s);
  }
  EXPECT_EQ(pool.active_workers(), workers);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.parallel_for(1, 1, [](std::size_t, std::size_t) {});  // drain

  acc.uninstall();
  EXPECT_NEAR(acc.attributed_joules(), fed_j, 1e-6);
  EXPECT_NEAR(acc.by_leaf().total_joules(), fed_j, 1e-6);
  EXPECT_NEAR(acc.by_phase().total_joules(), fed_j, 1e-6);
  // All six sampling intervals had every worker parked in exec.task.
  const std::vector<AttributionRow> rows = acc.by_leaf().rows();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].key, "exec.task");
  EXPECT_NEAR(rows[0].joules, fed_j, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workers, ConservationTest,
                         ::testing::Values(1, 2, 8));

TEST_F(ObsTest, JsonDumpCarriesSchemaAndTables) {
  power::RaplDomain pkg("pkg-test");
  EnergyAccountant acc(EnergyAccountant::Options{0.125});
  acc.add_domain(&pkg);
  acc.install();
  acc.sample(0.0);
  {
    TELEMETRY_SPAN("json.span");
    pkg.accumulate(8.0, 1.0);
    acc.sample(1.0);
  }
  acc.uninstall();
  const std::string dump = acc.json();
  EXPECT_NE(dump.find("antarex.obs.attribution/v1"), std::string::npos);
  const JsonValue v = parse_json(dump);
  EXPECT_DOUBLE_EQ(v.at("interval_s").as_number(), 0.125);
  EXPECT_DOUBLE_EQ(v.at("total_joules").as_number(), 8.0);
  EXPECT_EQ(v.at("by_leaf").as_array().size(), 1u);
  EXPECT_EQ(v.at("by_leaf").as_array()[0].at("span").as_string(), "json.span");
  EXPECT_EQ(v.at("domains").as_array()[0].at("name").as_string(), "pkg-test");
}

// --- policy engine ----------------------------------------------------------

TEST_F(ObsTest, PolicyFiresExactlyOncePerCrossing) {
  PolicyEngine engine;
  int clears = 0;
  const int h = engine.add(
      "test.threshold",
      [](const PolicyContext& ctx) {
        return ctx.registry->gauge("test.signal").last() > 10.0;
      },
      [](const PolicyContext&) {},
      [&clears](const PolicyContext&) { ++clears; });

  TELEMETRY_GAUGE("test.signal", 5.0);
  engine.tick(0.0);
  EXPECT_EQ(engine.fires(h), 0u);

  TELEMETRY_GAUGE("test.signal", 15.0);
  engine.tick(1.0);
  engine.tick(2.0);
  engine.tick(3.0);  // latched: still one fire while the condition holds
  EXPECT_EQ(engine.fires(h), 1u);
  EXPECT_EQ(clears, 0);

  TELEMETRY_GAUGE("test.signal", 5.0);
  engine.tick(4.0);  // true -> false: on_clear runs, policy re-arms
  EXPECT_EQ(engine.fires(h), 1u);
  EXPECT_EQ(clears, 1);

  TELEMETRY_GAUGE("test.signal", 20.0);
  engine.tick(5.0);  // second crossing, second fire
  EXPECT_EQ(engine.fires(h), 2u);
  EXPECT_EQ(engine.fires("test.threshold"), 2u);
  EXPECT_EQ(engine.evaluations(), 6u);
}

// With cooldown_s > 0 a held condition keeps producing fires — but never
// more than one per cooldown interval. This is the actuation contract the
// govern escalation ladder depends on (a persistent cap violation must keep
// stepping DVFS down, one notch per cooldown, not once ever and not per tick).
TEST_F(ObsTest, CooldownRefiresWhileConditionHolds) {
  PolicyEngine engine;
  PolicyOptions opts;
  opts.cooldown_s = 2.0;
  const int h = engine.add(
      "test.cooldown",
      [](const PolicyContext& ctx) {
        return ctx.registry->gauge("test.signal").last() > 10.0;
      },
      [](const PolicyContext&) {}, nullptr, opts);

  TELEMETRY_GAUGE("test.signal", 15.0);
  engine.tick(0.0);  // first crossing fires immediately
  EXPECT_EQ(engine.fires(h), 1u);
  engine.tick(1.0);  // held, but inside the cooldown window
  EXPECT_EQ(engine.fires(h), 1u);
  engine.tick(2.0);  // window expired: re-fire
  EXPECT_EQ(engine.fires(h), 2u);
  engine.tick(3.5);  // 1.5 s after the last fire: still cooling
  EXPECT_EQ(engine.fires(h), 2u);
  engine.tick(4.0);
  EXPECT_EQ(engine.fires(h), 3u);
}

// A fresh false->true crossing that lands inside the cooldown window of the
// previous fire must wait the window out — the hysteresis that stops an
// oscillating signal from double-actuating.
TEST_F(ObsTest, CrossingInsideCooldownWaitsItOut) {
  PolicyEngine engine;
  int clears = 0;
  PolicyOptions opts;
  opts.cooldown_s = 2.0;
  const int h = engine.add(
      "test.hysteresis",
      [](const PolicyContext& ctx) {
        return ctx.registry->gauge("test.signal").last() > 10.0;
      },
      [](const PolicyContext&) {},
      [&clears](const PolicyContext&) { ++clears; }, opts);

  TELEMETRY_GAUGE("test.signal", 15.0);
  engine.tick(0.0);
  EXPECT_EQ(engine.fires(h), 1u);

  TELEMETRY_GAUGE("test.signal", 5.0);
  engine.tick(0.5);  // clears and re-arms
  EXPECT_EQ(clears, 1);

  TELEMETRY_GAUGE("test.signal", 15.0);
  engine.tick(1.0);  // re-crossed 1 s after the fire: inside the window
  EXPECT_EQ(engine.fires(h), 1u) << "crossing must wait out the cooldown";
  engine.tick(2.0);  // window expired while held: now it fires
  EXPECT_EQ(engine.fires(h), 2u);
}

// Actuating policies return what they decided; the engine tallies the
// Restrict/Relax split per handle and in the obs.policy_actions.* counters.
TEST_F(ObsTest, ActuatingPolicyTalliesRestrictAndRelax) {
  PolicyEngine engine;
  PolicyOptions opts;
  opts.cooldown_s = 1.0;
  const int h = engine.add_actuating(
      "test.actuate",
      [](const PolicyContext& ctx) {
        const telemetry::Gauge& g = ctx.registry->gauge("test.signal");
        return g.updates() > 0 && (g.last() > 10.0 || g.last() < 5.0);
      },
      [](const PolicyContext& ctx) {
        const double v = ctx.registry->gauge("test.signal").last();
        if (v > 10.0) return PolicyAction::Restrict;
        if (v < 5.0) return PolicyAction::Relax;
        return PolicyAction::None;
      },
      opts);

  TELEMETRY_GAUGE("test.signal", 20.0);
  engine.tick(0.0);  // restrict
  engine.tick(1.0);  // held past cooldown: restrict again
  TELEMETRY_GAUGE("test.signal", 2.0);
  engine.tick(2.0);  // still true (low side), cooled: relax
  engine.tick(2.5);  // cooling
  EXPECT_EQ(engine.fires(h), 3u);
  EXPECT_EQ(engine.restricts(h), 2u);
  EXPECT_EQ(engine.relaxes(h), 1u);
  EXPECT_EQ(engine.actions(h), 3u);
  EXPECT_EQ(telemetry::Registry::global()
                .counter("obs.policy_actions.restrict")
                .value(),
            2u);
  EXPECT_EQ(
      telemetry::Registry::global().counter("obs.policy_actions.relax").value(),
      1u);
}

TEST_F(ObsTest, SpanExitsEvaluatePoliciesWhenEngineAttached) {
  PolicyEngine engine;
  std::atomic<int> seen{0};
  engine.add(
      "test.span_watch",
      [](const PolicyContext& ctx) {
        return ctx.span != nullptr &&
               std::strcmp(ctx.span, "watched.span") == 0;
      },
      [&seen](const PolicyContext& ctx) {
        ++seen;
        EXPECT_GE(ctx.span_duration_s, 0.0);
      });
  SpanTracker::global().install();
  SpanTracker::global().set_policy_engine(&engine);
  { TELEMETRY_SPAN("watched.span"); }
  { TELEMETRY_SPAN("other.span"); }  // predicate false: re-arms the edge
  { TELEMETRY_SPAN("watched.span"); }
  SpanTracker::global().set_policy_engine(nullptr);
  SpanTracker::global().uninstall();
  EXPECT_EQ(seen.load(), 2);
}

TEST_F(ObsTest, BuiltinPoliciesWatchTheStackSignals) {
  PolicyEngine engine;
  install_builtin_policies(engine);
  EXPECT_EQ(engine.size(), 3u);

  // Thermal: headroom above the 8 C default threshold is quiet, below fires.
  TELEMETRY_GAUGE("rtrm.thermal_headroom_c", 30.0);
  engine.tick(0.0);
  EXPECT_EQ(engine.fires("thermal.throttle_alert"), 0u);
  TELEMETRY_GAUGE("rtrm.thermal_headroom_c", 3.0);
  engine.tick(1.0);
  EXPECT_EQ(engine.fires("thermal.throttle_alert"), 1u);
  EXPECT_EQ(telemetry::Registry::global().counter("obs.alerts.thermal").value(),
            1u);

  // Tuner phase change: one fire per counter increment.
  TELEMETRY_COUNT("tuner.phase_changes", 1);
  engine.tick(2.0);
  engine.tick(3.0);
  EXPECT_EQ(engine.fires("tuner.phase_change"), 1u);
  TELEMETRY_COUNT("tuner.phase_changes", 1);
  engine.tick(4.0);
  EXPECT_EQ(engine.fires("tuner.phase_change"), 2u);

  // Nav backpressure: gauge raised at/above the limit, dropped on clear.
  TELEMETRY_GAUGE("nav.queue_depth", 60.0);
  engine.tick(5.0);
  EXPECT_EQ(engine.fires("nav.backpressure"), 1u);
  EXPECT_DOUBLE_EQ(
      telemetry::Registry::global().gauge("nav.backpressure").last(), 1.0);
  TELEMETRY_GAUGE("nav.queue_depth", 2.0);
  engine.tick(6.0);
  EXPECT_DOUBLE_EQ(
      telemetry::Registry::global().gauge("nav.backpressure").last(), 0.0);
}

// --- report -----------------------------------------------------------------

TEST_F(ObsTest, HtmlReportRendersSpansMetricsAndAttribution) {
  {
    TELEMETRY_SPAN("report.outer");
    TELEMETRY_SPAN("report.inner");
    TELEMETRY_COUNT("report.counter", 7);
  }
  ReportInputs inputs;
  inputs.title = "unit <test> & title";  // must be escaped
  inputs.trace_json = telemetry::chrome_trace_json();
  inputs.metrics_json = telemetry::metrics_json();
  inputs.attribution_json =
      "{\"total_joules\":5,\"samples\":2,\"interval_s\":0.25,"
      "\"by_phase\":[{\"span\":\"report.outer\",\"joules\":5,"
      "\"seconds\":1,\"samples\":2}],\"by_leaf\":[],\"domains\":[]}";
  const std::string html = html_report(inputs);

  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("unit &lt;test&gt; &amp; title"), std::string::npos);
  EXPECT_NE(html.find("report.outer"), std::string::npos);
  EXPECT_NE(html.find("report.inner"), std::string::npos);
  EXPECT_NE(html.find("report.counter"), std::string::npos);
  EXPECT_NE(html.find("Energy attribution"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST_F(ObsTest, HtmlReportRejectsMalformedTrace) {
  ReportInputs inputs;
  inputs.trace_json = "{\"not\": \"a trace\"}";
  EXPECT_THROW(html_report(inputs), Error);
  inputs.trace_json = "not json at all";
  EXPECT_THROW(html_report(inputs), Error);
}

}  // namespace
