// Tests for the drug-discovery use case: grid scoring, pose transforms,
// docking search behaviour, heavy-tailed workload generation, and the
// static-vs-dynamic load-balancing simulators.
#include <gtest/gtest.h>

#include <cmath>

#include "dock/dock.hpp"
#include "dock/parallel.hpp"
#include "support/stats.hpp"

namespace antarex::dock {
namespace {

// --------------------------------------------------------------------------
// Molecule / transforms
// --------------------------------------------------------------------------

TEST(MoleculeTest, CenterMovesCentroidToOrigin) {
  Molecule m;
  m.atoms = {{1, 2, 3, 1.5, 0}, {3, 4, 5, 1.5, 0}};
  m.center();
  const auto c = m.centroid();
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_NEAR(c[1], 0.0, 1e-12);
  EXPECT_NEAR(c[2], 0.0, 1e-12);
}

TEST(Transform, IdentityPoseIsTranslationOnly) {
  Atom a{1.0, 2.0, 3.0, 1.5, 0.0};
  Pose p;
  p.tx = 10;
  p.ty = 20;
  p.tz = 30;
  const auto r = transform(p, a);
  EXPECT_NEAR(r[0], 11.0, 1e-12);
  EXPECT_NEAR(r[1], 22.0, 1e-12);
  EXPECT_NEAR(r[2], 33.0, 1e-12);
}

TEST(Transform, RotationPreservesDistanceFromPivot) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Atom a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5), 1.5, 0};
    Pose p;
    p.rx = rng.uniform(0, 6.28);
    p.ry = rng.uniform(0, 6.28);
    p.rz = rng.uniform(0, 6.28);
    const auto r = transform(p, a);
    const double before = std::sqrt(a.x * a.x + a.y * a.y + a.z * a.z);
    const double after = std::sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]);
    EXPECT_NEAR(before, after, 1e-9);
  }
}

// --------------------------------------------------------------------------
// AffinityGrid
// --------------------------------------------------------------------------

TEST(Grid, TrilinearInterpolationIsExactOnNodes) {
  AffinityGrid g(4, 4, 4, 2.0);
  g.at(1, 2, 3) = -7.5;
  EXPECT_DOUBLE_EQ(g.sample(2.0, 4.0, 6.0), -7.5);
}

TEST(Grid, InterpolatesBetweenNodes) {
  AffinityGrid g(2, 2, 2, 1.0);
  g.at(0, 0, 0) = 0.0;
  g.at(1, 0, 0) = 10.0;
  EXPECT_NEAR(g.sample(0.25, 0.0, 0.0), 2.5, 1e-12);
  EXPECT_NEAR(g.sample(0.5, 0.0, 0.0), 5.0, 1e-12);
}

TEST(Grid, OutOfBoxIsPenalized) {
  AffinityGrid g(4, 4, 4, 1.0);
  EXPECT_GT(g.sample(-0.5, 1.0, 1.0), 10.0);
  EXPECT_GT(g.sample(1.0, 1.0, 99.0), 10.0);
}

TEST(Grid, SyntheticPocketHasAttractiveWells) {
  Rng rng(11);
  const AffinityGrid g = AffinityGrid::synthetic_pocket(rng, 24, 1.0, 3);
  double min_v = 1e300;
  for (std::size_t k = 0; k < g.nz(); ++k)
    for (std::size_t j = 0; j < g.ny(); ++j)
      for (std::size_t i = 0; i < g.nx(); ++i) min_v = std::min(min_v, g.at(i, j, k));
  EXPECT_LT(min_v, -1.0);  // somewhere clearly favourable
  // Walls repel.
  EXPECT_GT(g.at(0, 12, 12), 1.0);
}

// --------------------------------------------------------------------------
// Docking
// --------------------------------------------------------------------------

class DockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng grid_rng(2016);
    grid_ = std::make_unique<AffinityGrid>(
        AffinityGrid::synthetic_pocket(grid_rng, 20, 1.0, 2));
  }
  std::unique_ptr<AffinityGrid> grid_;
};

TEST_F(DockTest, FindsFavourablePose) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 10, 40);
  DockParams params;
  Rng pose_rng(2);
  const DockResult r = dock_ligand(*grid_, lig, params, pose_rng);
  EXPECT_LT(r.best_score, 0.0);  // found a binding pose
  EXPECT_GT(r.poses_evaluated, 0u);
  EXPECT_LE(r.poses_evaluated,
            static_cast<u64>(params.rotations) * params.translations);
}

TEST_F(DockTest, DeterministicGivenSeeds) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 10, 40);
  Rng p1(9), p2(9);
  const DockResult a = dock_ligand(*grid_, lig, {}, p1);
  const DockResult b = dock_ligand(*grid_, lig, {}, p2);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.poses_evaluated, b.poses_evaluated);
}

TEST_F(DockTest, MorePosesNeverWorse) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 10, 40);
  DockParams few{8, 16, 0.25};
  DockParams many{32, 64, 0.25};
  Rng p1(5), p2(5);
  const double s_few = dock_ligand(*grid_, lig, few, p1).best_score;
  const double s_many = dock_ligand(*grid_, lig, many, p2).best_score;
  EXPECT_LE(s_many, s_few + 1e-9);
}

TEST_F(DockTest, RefinementNeverWorsensAndUsuallyImproves) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 12, 40);
  Rng p1(5);
  const DockResult coarse = dock_ligand(*grid_, lig, {12, 24, 0.25}, p1);
  Rng p2(6);
  const DockResult refined =
      refine_pose(*grid_, lig, coarse.best_pose, {}, p2);
  EXPECT_LE(refined.best_score, coarse.best_score + 1e-12);
  // With 400 annealing steps the local optimizer should find a clearly
  // better pose than 288 random ones.
  EXPECT_LT(refined.best_score, coarse.best_score - 1e-6);
}

TEST_F(DockTest, RefinementIsDeterministic) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 12, 40);
  Pose start;
  start.tx = start.ty = start.tz = 9.0;
  Rng a(7), b(7);
  const DockResult r1 = refine_pose(*grid_, lig, start, {}, a);
  const DockResult r2 = refine_pose(*grid_, lig, start, {}, b);
  EXPECT_DOUBLE_EQ(r1.best_score, r2.best_score);
  EXPECT_EQ(r1.poses_evaluated, r2.poses_evaluated);
}

TEST_F(DockTest, RefinementValidatesParams) {
  Rng rng(1);
  const Molecule lig = random_ligand(rng, 12, 20);
  Pose start;
  RefineParams bad;
  bad.steps = 0;
  EXPECT_THROW(refine_pose(*grid_, lig, start, bad, rng), Error);
  bad = {};
  bad.t_end = 0.0;
  EXPECT_THROW(refine_pose(*grid_, lig, start, bad, rng), Error);
}

TEST(LigandGen, HeavyTailedSizes) {
  Rng rng(42);
  RunningStats sizes;
  for (int i = 0; i < 3000; ++i)
    sizes.add(static_cast<double>(random_ligand(rng).atoms.size()));
  // Heavy tail: max far beyond the mean; median modest.
  EXPECT_GT(sizes.max(), 5.0 * sizes.mean());
  EXPECT_GE(sizes.min(), 8.0);
  EXPECT_LE(sizes.max(), 400.0);  // clamped
}

TEST(LigandGen, CostUnitsScaleWithAtomsAndPoses) {
  Molecule small;
  small.atoms.resize(10);
  Molecule big;
  big.atoms.resize(100);
  const DockParams p{16, 32, 0.25};
  EXPECT_NEAR(ligand_cost_units(big, p) / ligand_cost_units(small, p), 10.0, 1e-9);
  const DockParams p2{32, 32, 0.25};
  EXPECT_NEAR(ligand_cost_units(small, p2) / ligand_cost_units(small, p), 2.0, 1e-9);
}

// --------------------------------------------------------------------------
// Load balancing
// --------------------------------------------------------------------------

std::vector<double> heavy_tailed_costs(std::size_t n, u64 seed = 99) {
  Rng rng(seed);
  std::vector<double> costs;
  costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) costs.push_back(rng.pareto(1.0, 1.4));
  return costs;
}

TEST(Schedule, StaticConservesWork) {
  const auto costs = heavy_tailed_costs(500);
  const ScheduleResult r = schedule_static(costs, 8);
  double total = 0.0;
  for (double b : r.worker_busy) total += b;
  double expect = 0.0;
  for (double c : costs) expect += c;
  EXPECT_NEAR(total, expect, 1e-9);
  EXPECT_GE(r.imbalance, 1.0);
}

TEST(Schedule, DynamicBeatsStaticOnHeavyTails) {
  // The paper's Sec. VII-a premise: unpredictable task times make dynamic
  // balancing essential.
  const auto costs = heavy_tailed_costs(1000);
  const ScheduleResult stat = schedule_static(costs, 16);
  const ScheduleResult dyn = schedule_dynamic(costs, 16, 1, 0.0);
  EXPECT_LT(dyn.makespan, 0.8 * stat.makespan);
  EXPECT_LT(dyn.imbalance, stat.imbalance);
}

TEST(Schedule, DynamicLowerBoundedByCriticalPath) {
  const auto costs = heavy_tailed_costs(200);
  const ScheduleResult dyn = schedule_dynamic(costs, 8, 1, 0.0);
  double total = 0.0, longest = 0.0;
  for (double c : costs) {
    total += c;
    longest = std::max(longest, c);
  }
  EXPECT_GE(dyn.makespan + 1e-9, total / 8.0);
  EXPECT_GE(dyn.makespan + 1e-9, longest);
}

TEST(Schedule, OverheadMakesTinyBatchesExpensive) {
  // With per-pull overhead, batch=1 pays the most overhead; the optimum
  // batch is interior — exactly the knob the autotuner controls in UC1.
  std::vector<double> costs(2000, 0.01);  // uniform small tasks
  const double overhead = 0.02;
  const ScheduleResult b1 = schedule_dynamic(costs, 8, 1, overhead);
  const ScheduleResult b16 = schedule_dynamic(costs, 8, 16, overhead);
  EXPECT_LT(b16.makespan, b1.makespan);
}

TEST(Schedule, HugeBatchDegeneratesTowardStatic) {
  const auto costs = heavy_tailed_costs(400);
  const ScheduleResult huge = schedule_dynamic(costs, 8, 400, 0.0);
  const ScheduleResult fine = schedule_dynamic(costs, 8, 1, 0.0);
  EXPECT_GT(huge.makespan, fine.makespan);
}

TEST(Schedule, SingleWorkerMakespanIsTotal) {
  const auto costs = heavy_tailed_costs(50);
  double total = 0.0;
  for (double c : costs) total += c;
  EXPECT_NEAR(schedule_static(costs, 1).makespan, total, 1e-9);
  EXPECT_NEAR(schedule_dynamic(costs, 1, 1, 0.0).makespan, total, 1e-9);
}

TEST(Schedule, ValidatesArguments) {
  EXPECT_THROW(schedule_static({1.0}, 0), Error);
  EXPECT_THROW(schedule_dynamic({1.0}, 0), Error);
  EXPECT_THROW(schedule_dynamic({1.0}, 1, 0), Error);
  EXPECT_THROW(schedule_dynamic({1.0}, 1, 1, -0.1), Error);
}

// --------------------------------------------------------------------------
// Measured parallel docking (exec pool)
// --------------------------------------------------------------------------

TEST(ParallelDock, ByteIdenticalToSerialAcrossThreadCounts) {
  Rng rng(2024);
  const AffinityGrid grid = AffinityGrid::synthetic_pocket(rng, 16, 1.0, 2);
  std::vector<Molecule> ligands;
  for (int i = 0; i < 24; ++i) ligands.push_back(random_ligand(rng, 8, 60));
  DockParams params;
  params.rotations = 6;
  params.translations = 12;
  const u64 run_seed = 7;

  const LibraryRunResult serial =
      dock_library_serial(grid, ligands, params, run_seed);
  ASSERT_EQ(serial.results.size(), ligands.size());

  for (int threads : {1, 2, 8}) {
    exec::ThreadPool pool(threads);
    for (int batch : {1, 4}) {
      const LibraryRunResult par =
          run_parallel(pool, grid, ligands, params, run_seed, batch);
      ASSERT_EQ(par.results.size(), serial.results.size());
      for (std::size_t i = 0; i < serial.results.size(); ++i) {
        // Exact equality: the determinism contract, not a tolerance check.
        EXPECT_EQ(par.results[i].best_score, serial.results[i].best_score)
            << "threads=" << threads << " batch=" << batch << " ligand=" << i;
        EXPECT_EQ(par.results[i].poses_evaluated,
                  serial.results[i].poses_evaluated);
        EXPECT_EQ(par.results[i].best_pose.tx, serial.results[i].best_pose.tx);
        EXPECT_EQ(par.results[i].best_pose.rz, serial.results[i].best_pose.rz);
      }
      EXPECT_EQ(par.threads, threads);
      EXPECT_EQ(par.batch, batch);
      EXPECT_EQ(static_cast<int>(par.worker_busy_s.size()), threads);
      EXPECT_GE(par.imbalance, 1.0);
    }
  }
}

TEST(ParallelDock, RejectsNonPositiveBatch) {
  Rng rng(3);
  const AffinityGrid grid = AffinityGrid::synthetic_pocket(rng, 8, 1.0, 1);
  exec::ThreadPool pool(1);
  EXPECT_THROW(run_parallel(pool, grid, {}, DockParams{}, 1, 0), Error);
}

}  // namespace
}  // namespace antarex::dock
