// Shared property-based invariant suite for antarex::causal.
//
// Each seed builds a randomized request fleet on a real exec::ThreadPool:
// async-submitted requests carrying explicit root trace contexts (with
// random nested span ladders and optional TaskGroup subtasks forked from
// inside the workers), plus parallel_for requests whose chunk tasks inherit
// the caller's context. Invariants checked over the reconstructed forest:
//   1. Causal completeness — one tree per request, every span closed, every
//      span's parent chain reaches the trace root (zero orphans).
//   2. Critical path — the longest causal chain through each tree never
//      exceeds the tree's wall time.
//   3. Decomposition sanity — every latency bucket is non-negative, the
//      buckets cover the request (sum >= total, equality for sequential
//      trees), and the decomposed total never exceeds the wall time.
//   4. Determinism — the timestamp-free structure() serialization is
//      byte-identical across 1/2/8 pool workers: work stolen across threads
//      still parents identically.
//
// The suite is instantiated twice: test_fuzz.cpp pulls a small seed range
// into the default tier; test_causal_long.cpp instantiates the 1k-seed
// sweep behind the `long` ctest label.
#pragma once

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "causal/causal.hpp"
#include "exec/pool.hpp"
#include "support/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace antarex::causal {

struct CausalScenarioResult {
  std::size_t requests = 0;
  std::size_t trees = 0;
  std::size_t spans = 0;
  std::size_t orphans = 0;
  bool complete = false;
  std::string structure;  ///< determinism key (timestamp-free)
};

/// Random nested span ladder. TraceEvent stores the name pointer, so every
/// name is a string literal; the shape (depth and which names) is the only
/// random part, drawn from a per-request generator.
inline void span_ladder(Rng& rng, int depth) {
  if (depth <= 0) return;
  switch (rng.index(4)) {
    case 0: {
      TELEMETRY_SPAN("compute");
      span_ladder(rng, depth - 1);
      break;
    }
    case 1: {
      TELEMETRY_SPAN("cache.lookup");
      span_ladder(rng, depth - 1);
      break;
    }
    case 2: {
      TELEMETRY_SPAN("degraded.path");
      span_ladder(rng, depth - 1);
      break;
    }
    default: {
      TELEMETRY_SPAN("step");
      span_ladder(rng, depth - 1);
      break;
    }
  }
}

/// One randomized request fleet at a given pool size. The request shapes
/// are drawn before anything executes, so worker scheduling cannot perturb
/// the generator: everything observable is a pure function of the seed and
/// `threads` must not change the reconstructed structure.
inline CausalScenarioResult run_causal_scenario(u64 seed, int threads) {
  telemetry::Registry::global().reset();
  telemetry::set_enabled(true);
  Rng rng(seed * 0x9e3779b9ULL + 11);

  struct AsyncShape {
    int depth = 1;
    bool subtask = false;
  };
  struct ForShape {
    std::size_t n = 16;
    std::size_t grain = 4;
  };
  std::vector<AsyncShape> async_shapes(8 + rng.index(17));  // 8..24
  for (AsyncShape& s : async_shapes) {
    s.depth = 1 + static_cast<int>(rng.index(4));
    s.subtask = rng.bernoulli(0.5);
  }
  std::vector<ForShape> for_shapes(2 + rng.index(5));  // 2..6
  for (ForShape& s : for_shapes) {
    s.n = 16 + rng.index(49);
    s.grain = 4 + rng.index(13);
  }

  {
    exec::ThreadPool pool(threads);
    exec::TaskGroup subtasks(pool);
    std::vector<std::future<void>> futures;
    futures.reserve(async_shapes.size());
    for (std::size_t i = 0; i < async_shapes.size(); ++i) {
      const telemetry::TraceContext root =
          telemetry::TraceContext::root(i + 1);
      telemetry::mark_scheduled(root);
      const AsyncShape shape = async_shapes[i];
      futures.push_back(pool.async([root, shape, &subtasks] {
        telemetry::ContextScope scope(root);
        TELEMETRY_SPAN("req");
        Rng local(root.trace_id * 0x2545f491'4f6cdd1dULL + 3);
        span_ladder(local, shape.depth);
        if (shape.subtask)
          subtasks.run([] { TELEMETRY_SPAN("subtask"); });
      }));
    }
    for (std::future<void>& f : futures) f.get();
    subtasks.wait();

    // parallel_for requests: the chunks inherit the caller's context and
    // land on whichever worker steals them.
    for (std::size_t j = 0; j < for_shapes.size(); ++j) {
      const telemetry::TraceContext root =
          telemetry::TraceContext::root(1000 + j);
      telemetry::mark_scheduled(root);
      telemetry::ContextScope scope(root);
      TELEMETRY_SPAN("req");
      pool.parallel_for(for_shapes[j].n, for_shapes[j].grain,
                        [](std::size_t b, std::size_t e) {
                          TELEMETRY_SPAN("compute");
                          volatile double acc = 0.0;
                          for (std::size_t k = b; k < e; ++k)
                            acc += static_cast<double>(k);
                          (void)acc;
                        });
    }
  }

  const TraceForest forest = TraceForest::from_registry();
  CausalScenarioResult res;
  res.requests = async_shapes.size() + for_shapes.size();
  res.trees = forest.trees().size();
  res.spans = forest.total_spans();
  res.orphans = forest.total_orphans();
  res.complete = forest.complete();
  res.structure = forest.structure();

  // Per-tree analytic invariants, checked here so both instantiations (the
  // fast slice and the 1k-seed sweep) carry them.
  for (const RequestTree& tree : forest.trees()) {
    EXPECT_NE(tree.root, static_cast<std::size_t>(SIZE_MAX))
        << "tree " << tree.trace_id << " has no unique root span";
    if (tree.root == SIZE_MAX) continue;
    const double wall = tree.wall_s();
    const double cp = critical_path_s(tree);
    EXPECT_GE(cp, 0.0);
    EXPECT_LE(cp, wall + 1e-9)
        << "critical path exceeds wall time in tree " << tree.trace_id;
    const Decomposition d = decompose(tree);
    EXPECT_GE(d.queue_wait_s, 0.0);
    EXPECT_GE(d.compute_s, 0.0);
    EXPECT_GE(d.cache_hit_s, 0.0);
    EXPECT_GE(d.degraded_s, 0.0);
    EXPECT_GE(d.other_s, 0.0);
    // The buckets cover the request: no wall time goes unaccounted. Strict
    // equality holds for sequential trees; parallel chunks may overlap and
    // be attributed more than once, so >= is the general invariant.
    EXPECT_GE(d.sum(), d.total_s - 1e-9);
    EXPECT_LE(d.total_s, wall + 1e-9);
  }

  telemetry::set_enabled(false);
  return res;
}

class CausalProps : public ::testing::TestWithParam<u64> {};

TEST_P(CausalProps, EverySpanReachesItsRoot) {
  const CausalScenarioResult res = run_causal_scenario(GetParam(), 2);
  EXPECT_EQ(res.trees, res.requests);
  EXPECT_EQ(res.orphans, 0u);
  EXPECT_TRUE(res.complete) << "forest incomplete at seed " << GetParam();
  EXPECT_GE(res.spans, res.requests);  // at least the "req" span per tree
}

TEST_P(CausalProps, ByteIdenticalAcrossPoolSizes) {
  const CausalScenarioResult r1 = run_causal_scenario(GetParam(), 1);
  const CausalScenarioResult r2 = run_causal_scenario(GetParam(), 2);
  const CausalScenarioResult r8 = run_causal_scenario(GetParam(), 8);
  EXPECT_EQ(r1.structure, r2.structure)
      << "structure differs between 1 and 2 workers at seed " << GetParam();
  EXPECT_EQ(r2.structure, r8.structure)
      << "structure differs between 2 and 8 workers at seed " << GetParam();
  EXPECT_TRUE(r1.complete && r2.complete && r8.complete);
}

}  // namespace antarex::causal
